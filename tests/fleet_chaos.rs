//! The fleet engine's fault-tolerance contract:
//!
//! 1. **Fault-free transparency** — with the chaos layer compiled in and
//!    armed (a plan whose clauses never fire, degraded mode on, a
//!    generous rack budget), the engine's decision stream and accounting
//!    are bit-identical to the plain pre-hardening engine, across
//!    `GPM_THREADS ∈ {1, 2, 8}` and across the flat and hierarchical
//!    solve paths.
//! 2. **Recovery** — for randomised *windowed* fault schedules (propcheck
//!    over flap/skew/corrupt/timeout clauses), the service returns to a
//!    fully steady tick (every decision a cache or dedup hit, no
//!    fallbacks, drops or rejections) within one phase rotation plus one
//!    tick of the last faulted tick — and the whole faulted run is
//!    pool-width independent.
//! 3. **Checkpoint/restore** — a run interrupted mid-way, checkpointed
//!    through JSON, restored and resumed is bit-identical (decisions,
//!    cache entries and recency order, integer stats) to a run that never
//!    stopped, for every pool width; restoring under a different
//!    configuration or checkpoint version is refused.

use std::sync::Mutex;

use gpm::core::{
    DegradedConfig, FleetCheckpoint, FleetConfig, FleetEngine, FleetStats, NodeDecision,
    NodeTelemetry, PowerBipsMatrices, RackConfig,
};
use gpm::faults::{CorruptField, FleetFaultKind, FleetFaultPlan, IntervalWindow, NodeSet};
use gpm::types::{ModeCombination, PowerMode, Watts};
use proptest::prelude::*;

/// `gpm::par::set_max_threads` is a process-global override; tests that
/// touch it must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    gpm::par::set_max_threads(Some(n));
    let out = f();
    gpm::par::set_max_threads(None);
    out
}

/// Phases each node cycles through (shared key population: node `n` is at
/// phase `(tick + n) % PHASES`, so every phase key is exercised by some
/// node every tick).
const PHASES: u64 = 3;

/// Telemetry for a `cores`-way node at `tick`, with matrices that vary by
/// the node's current phase.
fn telemetry(node: u64, tick: u64, cores: usize) -> NodeTelemetry {
    let phase = (tick + node) % PHASES;
    let power: Vec<[f64; 3]> = (0..cores)
        .map(|i| {
            let t = 12.0 + ((i as u64 * 7 + phase * 5) % 11) as f64 * 1.3;
            [t, t * 0.55, t * 0.3]
        })
        .collect();
    let bips: Vec<[f64; 3]> = (0..cores)
        .map(|i| {
            let t = 0.4 + ((i as u64 * 5 + phase * 3) % 9) as f64 * 0.35;
            [t, t * 0.85, t * 0.7]
        })
        .collect();
    let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
    NodeTelemetry {
        node,
        tick,
        matrices: PowerBipsMatrices::from_rows(power, bips),
        current: ModeCombination::uniform(cores, PowerMode::Turbo),
        budget,
    }
}

/// Drives `nodes` nodes for `ticks` ticks, collecting the full decision
/// stream and per-tick stats snapshots.
fn drive(
    engine: &mut FleetEngine,
    nodes: u64,
    ticks: std::ops::Range<u64>,
    cores: usize,
) -> (Vec<Vec<NodeDecision>>, Vec<FleetStats>) {
    let mut decisions = Vec::new();
    let mut stats = Vec::new();
    for tick in ticks {
        for node in 0..nodes {
            engine.submit(telemetry(node, tick, cores));
        }
        decisions.push(engine.run_tick(tick));
        stats.push(engine.stats());
    }
    (decisions, stats)
}

/// The integer (wall-clock-free) accounting of a stats snapshot.
#[allow(clippy::type_complexity)]
fn integer_stats(s: FleetStats) -> [u64; 16] {
    [
        s.decisions_total,
        s.cache_hits,
        s.dedup_hits,
        s.unique_solves,
        s.dropped_stale,
        s.dropped_dark,
        s.rejected_backpressure,
        s.rejected_invalid,
        s.fallback_decisions,
        s.solver_timeouts,
        s.flap_drops,
        s.skew_delayed,
        s.corrupted_reports,
        s.shed_clamps,
        s.rack_violation_ticks,
        s.watchdog_clamp_ticks,
    ]
}

/// A per-tick stats delta is "steady" when every decision was a hit and
/// nothing was dropped, rejected, degraded or clamped.
fn tick_is_steady(now: FleetStats, before: FleetStats) -> bool {
    now.unique_solves == before.unique_solves
        && now.fallback_decisions == before.fallback_decisions
        && now.dropped_stale == before.dropped_stale
        && now.dropped_dark == before.dropped_dark
        && now.rejected_invalid == before.rejected_invalid
        && now.solver_timeouts == before.solver_timeouts
        && now.decisions_total > before.decisions_total
}

#[test]
fn fault_free_armed_engine_is_bit_identical_to_plain_across_widths() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    // Clauses that can never fire: flap/corrupt on a node id that never
    // reports, a timeout window already in the past.
    let plan = FleetFaultPlan::none()
        .with(
            FleetFaultKind::NodeFlap { period: 2, down: 1 },
            NodeSet::Nodes(vec![999_983]),
            IntervalWindow::ALWAYS,
        )
        .with(
            FleetFaultKind::CorruptReport {
                field: CorruptField::Nan,
                rate: 1.0,
            },
            NodeSet::Nodes(vec![999_983]),
            IntervalWindow::ALWAYS,
        );
    // Flat (4-core) and hierarchical (16-core above an 8-core flat limit)
    // solve paths both stay transparent.
    for (cores, flat_core_limit) in [(4usize, 32usize), (16, 8)] {
        let armed_config = FleetConfig {
            flat_core_limit,
            faults: Some(plan.clone()),
            degraded: Some(DegradedConfig::default()),
            rack: Some(RackConfig::new(Watts::new(1e12))),
            ..FleetConfig::default()
        };
        let plain_config = FleetConfig {
            flat_core_limit,
            ..FleetConfig::default()
        };
        let reference = with_threads(1, || {
            let mut engine = FleetEngine::new(plain_config.clone()).expect("valid config");
            drive(&mut engine, 10, 0..5, cores)
        });
        for width in [1usize, 2, 8] {
            let (decisions, stats) = with_threads(width, || {
                let mut engine = FleetEngine::new(armed_config.clone()).expect("valid config");
                drive(&mut engine, 10, 0..5, cores)
            });
            assert_eq!(
                decisions, reference.0,
                "armed decisions diverged ({cores}-core, {width} threads)"
            );
            let (a, p) = (
                integer_stats(*stats.last().unwrap()),
                integer_stats(*reference.1.last().unwrap()),
            );
            assert_eq!(a, p, "armed stats diverged ({cores}-core, {width} threads)");
        }
    }
}

/// One randomly drawn windowed fault clause. All windows close by
/// `LAST_FAULT_TICK + 1`.
const LAST_FAULT_TICK: u64 = 5;

/// The vendored proptest has no `prop_oneof!`, so variant selection is an
/// index draw mapped in code (same idiom as `tests/fault_invariants.rs`).
fn clause_strategy() -> impl Strategy<Value = (FleetFaultKind, NodeSet, IntervalWindow)> {
    (
        // kind selector, small integer (flap down), big integer (skew
        // ticks / flap period spread), rate
        (0usize..4, 1u64..=3, 1u64..=9, 0.2f64..1.0),
        // corrupt-field selector, node-set selector, anchor node id
        (0usize..3, 0usize..3, 0u64..8),
        // window start, window length
        (0usize..=2, 1usize..=LAST_FAULT_TICK as usize + 1),
    )
        .prop_map(
            |((which, small, big, rate), (fieldsel, nodesel, node), (from, len))| {
                let kind = match which {
                    0 => FleetFaultKind::NodeFlap {
                        period: small + big % 3,
                        down: small,
                    },
                    1 => FleetFaultKind::TickSkew { ticks: big },
                    2 => FleetFaultKind::CorruptReport {
                        field: match fieldsel {
                            0 => CorruptField::Nan,
                            1 => CorruptField::Negative,
                            _ => CorruptField::Shape,
                        },
                        rate,
                    },
                    _ => FleetFaultKind::SolverTimeout { rate },
                };
                let nodes = match nodesel {
                    0 => NodeSet::All,
                    1 => NodeSet::Nodes(vec![node]),
                    _ => NodeSet::Nodes(vec![node, (node + 3) % 8]),
                };
                let window = IntervalWindow {
                    from,
                    to: Some((from + len).min(LAST_FAULT_TICK as usize + 1)),
                };
                (kind, nodes, window)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any windowed fault schedule: the service reaches a fully steady
    /// tick within one phase rotation plus one tick of the last faulted
    /// tick, the accounting identity holds throughout, and the entire
    /// faulted run (decisions + integer stats) is pool-width independent.
    #[test]
    fn windowed_schedules_recover_and_are_pool_width_independent(
        clauses in prop::collection::vec(clause_strategy(), 1..=3),
        seed in 0u64..1_000,
    ) {
        let _guard = THREAD_OVERRIDE.lock().unwrap();
        let mut plan = FleetFaultPlan::none().seeded(seed);
        for (kind, nodes, window) in clauses {
            plan = plan.with(kind, nodes, window);
        }
        let config = FleetConfig {
            faults: Some(plan),
            degraded: Some(DegradedConfig::default()),
            ..FleetConfig::default()
        };
        // Recovery bound: every key a fault could have kept out of the
        // cache is re-solved within one full phase rotation after the
        // last faulted tick, so some tick in the window after that must
        // be fully steady.
        let ticks = LAST_FAULT_TICK + PHASES + 3;
        let reference = with_threads(1, || {
            let mut engine = FleetEngine::new(config.clone()).expect("valid config");
            drive(&mut engine, 8, 0..ticks, 4)
        });
        let (decisions, stats) = &reference;
        for (tick, s) in stats.iter().enumerate() {
            prop_assert_eq!(
                s.decisions_total,
                s.cache_hits + s.dedup_hits + s.unique_solves,
                "identity broken at tick {}", tick
            );
        }
        let steady = (LAST_FAULT_TICK as usize + 1..ticks as usize).any(|t| {
            tick_is_steady(stats[t], stats[t - 1])
        });
        prop_assert!(
            steady,
            "no steady tick within {} ticks of the last fault window",
            PHASES + 2
        );
        for width in [2usize, 8] {
            let wide = with_threads(width, || {
                let mut engine = FleetEngine::new(config.clone()).expect("valid config");
                drive(&mut engine, 8, 0..ticks, 4)
            });
            prop_assert_eq!(&wide.0, decisions, "decisions diverged at width {}", width);
            prop_assert_eq!(
                integer_stats(*wide.1.last().unwrap()),
                integer_stats(*stats.last().unwrap()),
                "stats diverged at width {}", width
            );
        }
    }
}

#[test]
fn checkpoint_restore_is_bit_identical_across_widths() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    let plan = FleetFaultPlan::parse(
        "flap@2:period=3,down=1,from=2,to=8;corrupt@5:rate=0.7,from=0,to=9;timeout:rate=0.3,from=4,to=7",
    )
    .expect("spec parses");
    let config = FleetConfig {
        faults: Some(plan),
        degraded: Some(DegradedConfig::default()),
        rack: Some(RackConfig::new(Watts::new(900.0))),
        ..FleetConfig::default()
    };

    // Reference: an uninterrupted width-1 run.
    let reference = with_threads(1, || {
        let mut engine = FleetEngine::new(config.clone()).expect("valid config");
        let out = drive(&mut engine, 8, 0..12, 4);
        (out.0, engine.stats(), engine.cache().snapshot())
    });

    for width in [1usize, 2, 8] {
        let (decisions, stats, snapshot) = with_threads(width, || {
            let mut first = FleetEngine::new(config.clone()).expect("valid config");
            let (mut decisions, _) = drive(&mut first, 8, 0..6, 4);
            // Round-trip the checkpoint through JSON: the serialized form
            // is the restart contract.
            let json = first.checkpoint().to_json();
            let checkpoint = FleetCheckpoint::from_json(&json).expect("roundtrips");
            assert_eq!(
                FleetCheckpoint::from_json(&checkpoint.to_json()).expect("stable"),
                checkpoint,
                "checkpoint JSON round-trip must be bit-identical"
            );
            let mut resumed = FleetEngine::restore(config.clone(), &checkpoint).expect("restores");
            let (rest, _) = drive(&mut resumed, 8, 6..12, 4);
            decisions.extend(rest);
            (decisions, resumed.stats(), resumed.cache().snapshot())
        });
        assert_eq!(
            decisions, reference.0,
            "decision stream diverged across restore at width {width}"
        );
        assert_eq!(
            integer_stats(stats),
            integer_stats(reference.1),
            "stats diverged across restore at width {width}"
        );
        assert_eq!(
            snapshot.entries, reference.2.entries,
            "cache entries/recency diverged across restore at width {width}"
        );
    }
}

#[test]
fn restore_refuses_foreign_configurations() {
    let config = FleetConfig::default();
    let mut engine = FleetEngine::new(config.clone()).expect("valid config");
    drive(&mut engine, 4, 0..2, 4);
    let checkpoint = engine.checkpoint();
    assert!(FleetEngine::restore(config.clone(), &checkpoint).is_ok());
    // Any decision-relevant knob difference is refused.
    for mutate in [
        |c: &mut FleetConfig| c.stale_tolerance = 4,
        |c: &mut FleetConfig| c.dark_after = 20,
        |c: &mut FleetConfig| c.flat_core_limit = 2,
        |c: &mut FleetConfig| c.degraded = Some(DegradedConfig::default()),
        |c: &mut FleetConfig| c.rack = Some(RackConfig::new(Watts::new(100.0))),
        |c: &mut FleetConfig| {
            c.faults = Some(FleetFaultPlan::parse("flap@0:period=2").expect("parses"));
        },
    ] {
        let mut other = config.clone();
        mutate(&mut other);
        assert!(
            FleetEngine::restore(other, &checkpoint).is_err(),
            "a mismatched config must be refused"
        );
    }
}
