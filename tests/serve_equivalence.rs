//! The fleet service's contract, pinned end to end:
//!
//! 1. **Wire round-trip** — encode→decode is the identity over arbitrary
//!    valid telemetry and decision frames (proptest), and every corrupt
//!    frame (truncated, trailing bytes, foreign version, unknown kind,
//!    oversize length prefix, bad mode byte) is an explicit
//!    `GpmError::Wire`, never a panic or a silent repair.
//! 2. **Shard-count invariance** — per-node decision streams through a
//!    [`ShardedEngine`] are bit-identical for 1, 2 and 4 shards, and
//!    bit-identical to a single unsharded [`FleetEngine`]: sharding only
//!    changes which exact-keyed cache answers a node, and exact-keyed
//!    hits are bit-identical to fresh solves (PR 8).
//! 3. **Pool-width invariance** — for a fixed shard count the decision
//!    stream is bit-identical across `GPM_THREADS ∈ {1, 2, 8}`.
//! 4. **Transport invariance** — the same load over TCP loopback and a
//!    Unix socket yields bit-identical decision streams.
//! 5. **Checkpoint/restore** — a sharded service restored from its
//!    per-shard checkpoints continues bit-identically.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::sync::Mutex;

use gpm::core::fleet_load::PhaseTables;
use gpm::core::{node_shard, FleetConfig, FleetEngine, NodeDecision, NodeTelemetry};
use gpm::net::wire::{
    self, decode_frame, encode_frame, Frame, FrameReader, MAX_FRAME_BYTES, WIRE_VERSION,
};
use gpm::net::{connect, Endpoint, ServeOptions, Server, ShardedEngine};
use gpm::types::{GpmError, ModeCombination, PowerMode, Watts};
use proptest::prelude::*;

/// `gpm::par::set_max_threads` is a process-global override; tests that
/// touch it must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    gpm::par::set_max_threads(Some(n));
    let out = f();
    gpm::par::set_max_threads(None);
    out
}

const NODES: usize = 96;
const TICKS: u64 = 6;

/// Per-node decision streams, keyed and ordered so that engines that emit
/// decisions in different global orders (sharded vs flat) compare equal
/// exactly when every node saw the same decisions in the same tick order.
fn per_node(decisions: Vec<NodeDecision>) -> BTreeMap<u64, Vec<NodeDecision>> {
    let mut map: BTreeMap<u64, Vec<NodeDecision>> = BTreeMap::new();
    for decision in decisions {
        map.entry(decision.node).or_default().push(decision);
    }
    map
}

fn drive_flat(config: FleetConfig, nodes: usize, ticks: u64) -> Vec<NodeDecision> {
    let tables = PhaseTables::build();
    let mut engine = FleetEngine::new(config).expect("flat engine config is valid");
    let mut decisions = Vec::new();
    for tick in 0..ticks {
        for node in 0..nodes as u64 {
            assert!(engine.submit(tables.telemetry(node, tick)));
        }
        decisions.extend(engine.run_tick(tick));
    }
    decisions
}

fn drive_sharded(
    config: &FleetConfig,
    shards: usize,
    nodes: usize,
    ticks: u64,
) -> Vec<NodeDecision> {
    let tables = PhaseTables::build();
    let mut engine = ShardedEngine::homogeneous(config, shards).expect("sharded config is valid");
    let mut decisions = Vec::new();
    for tick in 0..ticks {
        for node in 0..nodes as u64 {
            engine.try_submit(tables.telemetry(node, tick));
        }
        decisions.extend(engine.run_tick(tick));
    }
    decisions
}

#[test]
fn shard_assignment_is_pure_and_uniform() {
    // Pure: same node, same shard, every time.
    for node in 0..1000u64 {
        assert_eq!(node_shard(node, 4), node_shard(node, 4));
        assert!(node_shard(node, 4) < 4);
        assert_eq!(node_shard(node, 1), 0);
    }
    // Uniform-ish: sequential ids spread across shards rather than
    // clumping on `id % shards`.
    let mut counts = [0usize; 4];
    for node in 0..10_000u64 {
        counts[node_shard(node, 4)] += 1;
    }
    for &count in &counts {
        assert!(
            (2_000..=3_000).contains(&count),
            "splitmix shard spread skewed: {counts:?}"
        );
    }
}

#[test]
fn decision_streams_invariant_under_shard_count() {
    let config = FleetConfig {
        queue_capacity: NODES,
        ..FleetConfig::default()
    };
    let flat = per_node(drive_flat(config.clone(), NODES, TICKS));
    for shards in [1, 2, 4] {
        let sharded = per_node(drive_sharded(&config, shards, NODES, TICKS));
        assert_eq!(
            flat, sharded,
            "decision streams diverged at {shards} shards"
        );
    }
}

#[test]
fn decision_streams_invariant_under_pool_width() {
    let _guard = THREAD_OVERRIDE.lock().expect("thread override lock");
    let config = FleetConfig {
        queue_capacity: NODES,
        ..FleetConfig::default()
    };
    let reference = with_threads(1, || drive_sharded(&config, 2, NODES, TICKS));
    for threads in [2, 8] {
        let run = with_threads(threads, || drive_sharded(&config, 2, NODES, TICKS));
        assert_eq!(
            reference, run,
            "decision stream diverged at GPM_THREADS={threads}"
        );
    }
}

#[test]
fn sharded_checkpoint_restore_continues_bit_identically() {
    let tables = PhaseTables::build();
    let config = FleetConfig {
        queue_capacity: NODES,
        ..FleetConfig::default()
    };
    let mut original = ShardedEngine::homogeneous(&config, 2).expect("config is valid");
    for tick in 0..3u64 {
        for node in 0..NODES as u64 {
            original.try_submit(tables.telemetry(node, tick));
        }
        original.run_tick(tick);
    }
    let checkpoints = original.checkpoint();
    assert_eq!(checkpoints.len(), 2);
    let mut restored = ShardedEngine::restore(&config, &checkpoints).expect("restore succeeds");
    for tick in 3..TICKS {
        for node in 0..NODES as u64 {
            original.try_submit(tables.telemetry(node, tick));
            restored.try_submit(tables.telemetry(node, tick));
        }
        assert_eq!(
            original.run_tick(tick),
            restored.run_tick(tick),
            "restored service diverged at tick {tick}"
        );
    }
}

/// Drives the full wire protocol against a server endpoint and returns
/// every decision streamed back.
fn drive_transport(endpoint: &Endpoint, shards: usize) -> Vec<NodeDecision> {
    let server = Server::bind(
        endpoint,
        ServeOptions {
            shards,
            config: FleetConfig {
                queue_capacity: NODES,
                ..FleetConfig::default()
            },
            once: true,
        },
    )
    .expect("server binds");
    let bound = server.local_endpoint();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let tables = PhaseTables::build();
    let stream = connect(&bound).expect("client connects");
    let mut writer = BufWriter::new(stream.try_clone().expect("stream clones"));
    let mut reader = FrameReader::new(BufReader::new(stream));
    let mut out = Vec::new();
    let mut decisions = Vec::new();
    for tick in 0..TICKS {
        out.clear();
        for node in 0..NODES as u64 {
            wire::encode_telemetry(&tables.telemetry(node, tick), &mut out);
        }
        wire::encode_tick_end(tick, &mut out);
        wire::write_all(&mut writer, &out).expect("tick writes");
        loop {
            match reader.read().expect("tick readback") {
                Some(Frame::Decision(decision)) => decisions.push(decision),
                Some(Frame::TickDone { tick: done, .. }) => {
                    assert_eq!(done, tick);
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    drop(writer);
    drop(reader);
    handle.join().expect("server thread joins");
    decisions
}

#[test]
fn tcp_and_unix_transports_yield_identical_streams() {
    let over_tcp = drive_transport(&Endpoint::Tcp("127.0.0.1:0".into()), 2);
    let socket = std::env::temp_dir().join(format!("gpm-serve-eq-{}.sock", std::process::id()));
    let over_unix = drive_transport(&Endpoint::Unix(socket), 2);
    assert_eq!(over_tcp, over_unix);
    assert_eq!(over_tcp.len(), NODES * TICKS as usize);
}

// ---------------------------------------------------------------------
// Wire protocol: round-trip and corrupt-frame rejection.
// ---------------------------------------------------------------------

fn telemetry_strategy() -> impl Strategy<Value = NodeTelemetry> {
    (
        any::<u64>(),
        any::<u64>(),
        0.1f64..5_000.0,
        prop::collection::vec((8.0f64..30.0, 0.1f64..3.0, 0u64..3), 1..=16),
    )
        .prop_map(|(node, tick, budget, rows)| {
            let power = rows
                .iter()
                .map(|(p, _, _)| [*p, p * 0.55, p * 0.3])
                .collect();
            let bips = rows
                .iter()
                .map(|(_, b, _)| [*b, b * 0.85, b * 0.7])
                .collect();
            let current = ModeCombination::new(
                rows.iter()
                    .map(|(_, _, m)| PowerMode::from_index(*m as usize).expect("index < 3"))
                    .collect(),
            );
            NodeTelemetry {
                node,
                tick,
                matrices: gpm::core::PowerBipsMatrices::from_rows(power, bips),
                current,
                budget: Watts::new(budget),
            }
        })
}

fn decision_strategy() -> impl Strategy<Value = NodeDecision> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        prop::collection::vec(0u64..3, 1..=32),
    )
        .prop_map(|(node, tick, degraded, modes)| NodeDecision {
            node,
            tick,
            modes: ModeCombination::new(
                modes
                    .into_iter()
                    .map(|m| PowerMode::from_index(m as usize).expect("index < 3"))
                    .collect(),
            ),
            degraded,
        })
}

/// Round-trips one frame through a byte buffer and the streaming reader.
fn roundtrip(frame: &Frame) -> Frame {
    let mut bytes = Vec::new();
    encode_frame(frame, &mut bytes);
    // Via the stream reader (length prefix included)…
    let mut reader = FrameReader::new(bytes.as_slice());
    let from_stream = reader
        .read()
        .expect("frame decodes")
        .expect("frame present");
    assert!(reader.read().expect("clean EOF").is_none());
    // …and via the payload decoder directly.
    let from_payload = decode_frame(&bytes[4..]).expect("payload decodes");
    assert_eq!(from_stream, from_payload);
    from_stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn telemetry_roundtrips(telemetry in telemetry_strategy()) {
        let frame = Frame::Telemetry(telemetry);
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn decision_roundtrips(decision in decision_strategy()) {
        let frame = Frame::Decision(decision);
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn control_frames_roundtrip(tick in any::<u64>(), n in any::<u64>(), r in any::<u64>()) {
        for frame in [
            Frame::TickEnd { tick },
            Frame::TickDone { tick, decisions: n, rejected: r },
            Frame::StatsRequest,
            Frame::Stats(format!("{{\"tick\":{tick}}}")),
            Frame::Shutdown,
        ] {
            prop_assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn truncation_anywhere_is_rejected_not_panicked(
        telemetry in telemetry_strategy(),
        cut in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        wire::encode_telemetry(&telemetry, &mut bytes);
        let payload = &bytes[4..];
        let cut_at = (cut * (payload.len() - 1) as f64) as usize;
        // Every proper prefix of a valid payload must be an explicit error.
        prop_assert!(matches!(
            decode_frame(&payload[..cut_at]),
            Err(GpmError::Wire(_))
        ));
    }
}

fn expect_wire_error(payload: &[u8], needle: &str) {
    match decode_frame(payload) {
        Err(GpmError::Wire(msg)) => {
            assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
        }
        other => panic!("expected a wire error mentioning `{needle}`, got {other:?}"),
    }
}

#[test]
fn corrupt_frames_are_rejected_with_named_errors() {
    let tables = PhaseTables::build();
    let mut bytes = Vec::new();
    wire::encode_telemetry(&tables.telemetry(0, 0), &mut bytes);
    let payload = bytes[4..].to_vec();

    // Foreign version byte.
    let mut foreign = payload.clone();
    foreign[0] = WIRE_VERSION + 1;
    expect_wire_error(&foreign, "foreign protocol version");

    // Unknown kind.
    let mut unknown = payload.clone();
    unknown[1] = 200;
    expect_wire_error(&unknown, "unknown frame kind");

    // Trailing garbage after a valid body.
    let mut trailing = payload.clone();
    trailing.push(0);
    expect_wire_error(&trailing, "trailing");

    // Truncated body.
    expect_wire_error(&payload[..payload.len() - 3], "truncated");

    // Mode byte outside the Turbo/Eff1/Eff2 universe (first mode byte
    // sits right after node + tick + budget + cores).
    let mut bad_mode = payload.clone();
    bad_mode[2 + 8 + 8 + 8 + 4] = 9;
    expect_wire_error(&bad_mode, "not a power mode");

    // Zero cores.
    let mut zero_cores = payload.clone();
    zero_cores[2 + 8 + 8 + 8..2 + 8 + 8 + 8 + 4].copy_from_slice(&0u32.to_le_bytes());
    expect_wire_error(&zero_cores, "core count");

    // Header too short to carry version + kind.
    expect_wire_error(&payload[..1], "cannot hold version and kind");

    // Decision flags with unknown bits.
    let mut decision_bytes = Vec::new();
    wire::encode_decision(
        &NodeDecision {
            node: 1,
            tick: 2,
            modes: ModeCombination::uniform(4, PowerMode::Turbo),
            degraded: false,
        },
        &mut decision_bytes,
    );
    let mut bad_flags = decision_bytes[4..].to_vec();
    bad_flags[2 + 8 + 8] = 0x82;
    expect_wire_error(&bad_flags, "unknown bits");
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocation() {
    // A hostile length prefix (4 GiB) must fail the cap check, not try
    // to allocate or read 4 GiB.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_le_bytes());
    bytes.extend_from_slice(&[WIRE_VERSION, 3]);
    let mut reader = FrameReader::new(bytes.as_slice());
    match reader.read() {
        Err(GpmError::Wire(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("expected oversize rejection, got {other:?}"),
    }
}

#[test]
fn stream_truncated_mid_frame_is_an_error_not_eof() {
    let tables = PhaseTables::build();
    let mut bytes = Vec::new();
    wire::encode_telemetry(&tables.telemetry(0, 0), &mut bytes);
    // Cut the stream inside the payload: the reader must report a
    // truncation error, not a clean `None`.
    let cut = &bytes[..bytes.len() / 2];
    let mut reader = FrameReader::new(cut);
    match reader.read() {
        Err(GpmError::Wire(msg)) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("expected mid-frame truncation error, got {other:?}"),
    }
}
