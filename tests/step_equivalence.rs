//! Equivalence guarantees for the batched hot path.
//!
//! The instruction-stepping overhaul (batched op delivery, monomorphized
//! memory path, shared replay tape, integer-domain stream thresholds) is a
//! pure performance change: every observable output must be bit-identical
//! to the original one-op-at-a-time implementation. Two guards pin that:
//!
//! 1. Golden trace hashes: the serialized per-mode traces of all 12
//!    benchmarks must hash to the values recorded from the pre-overhaul
//!    seed. Any change to stream generation, core timing, or capture
//!    orchestration that alters a single byte of a trace fails here.
//! 2. Delivery-shape independence: a source that trickles ops one per
//!    `fill_ops` call must produce exactly the same interval statistics as
//!    the same stream delivering full batches, at every DVFS frequency.
//! 3. Engine independence: the SoA lane-batched kernel (`LaneBatch`) and
//!    the scalar `CoreModel` path must agree byte-for-byte — via the same
//!    golden hashes for full captures, via direct `IntervalStats` equality
//!    for mixed-mode lane batches, and via a property test over random
//!    quantum boundaries.

use gpm::microarch::{
    CoreConfig, CoreModel, InstructionSource, IntervalStats, LaneBatch, MicroOp, PrivateMemory,
};
use gpm::power::DvfsParams;
use gpm::trace::{capture_benchmark, CaptureConfig, CaptureEngine};
use gpm::types::{Hertz, PowerMode};
use gpm::workloads::SpecBenchmark;
use proptest::prelude::*;

/// FNV-1a 64 over the serialized trace; mirrors nothing in the library so
/// the goldens cannot drift with it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes of `serde_json::to_string` of each mode's `ModeTrace`, captured
/// with `CaptureConfig::fast(150_000)` on the pre-overhaul seed commit, in
/// `[Turbo, Eff1, Eff2]` order.
const GOLDEN_TRACE_HASHES: [(&str, [u64; 3]); 12] = [
    (
        "ammp",
        [0x3a232217da26e227, 0x7e019957e8b35a9e, 0xa857993fbc249621],
    ),
    (
        "art",
        [0xdedf91776c8153c0, 0x81d0cf8ff4c40877, 0x4cff9f55148bb156],
    ),
    (
        "crafty",
        [0xe5c0d5bab18d6743, 0x6cad2a69eb32d5bd, 0x97dcde493e3fd8cc],
    ),
    (
        "facerec",
        [0x4c5de16e52b21f9c, 0x16d30c3f702e93b5, 0xb1c467cf1845fc8a],
    ),
    (
        "gap",
        [0xbee3b8981392d791, 0x1e7169e360cc0070, 0xdebcdb3efbafe0ee],
    ),
    (
        "gcc",
        [0x9a34329c4a2fe94f, 0x69e287579d2f7de3, 0xe412a5afef9ca496],
    ),
    (
        "mcf",
        [0xbbaaa0e4d4d26687, 0x2bec97d0856511a8, 0x56ec6445adcd707c],
    ),
    (
        "mesa",
        [0x5cdfd79a5874135f, 0x0f0ce17d6bb875ac, 0x6cfdecc1683b5a79],
    ),
    (
        "perlbmk",
        [0xc5f790bb26a996c0, 0x020a8ec7f0e9a190, 0x7d865245f273b872],
    ),
    (
        "sixtrack",
        [0x5a533812acb1d4c0, 0xb15da354a481b7e5, 0xadc08ed8c3454f41],
    ),
    (
        "vortex",
        [0x4d4c17d030bd0b46, 0x7b75a3dcf4d6ae4c, 0x15dcdee0dadb7bb3],
    ),
    (
        "wupwise",
        [0x9b3ec8ba9293870b, 0x45e126fe14557e58, 0x4ab78149b730cc57],
    ),
];

#[test]
fn captured_traces_match_pre_overhaul_goldens() {
    let config = CaptureConfig::fast(150_000);
    for (name, golden) in GOLDEN_TRACE_HASHES {
        let bench = SpecBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .expect("golden table names a known benchmark");
        let traces = capture_benchmark(bench, &config).expect("capture");
        for (mode, expected) in [PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2]
            .into_iter()
            .zip(golden)
        {
            let json = serde_json::to_string(traces.trace(mode)).expect("serialize");
            assert_eq!(
                fnv1a(json.as_bytes()),
                expected,
                "trace bytes changed for {name} at {mode}",
            );
        }
    }
}

/// Delivers exactly one op per `fill_ops` call — the least batched source
/// the contract permits.
struct OneAtATime<S>(S);

impl<S: InstructionSource> InstructionSource for OneAtATime<S> {
    fn next_op(&mut self) -> MicroOp {
        self.0.next_op()
    }

    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        buf[0] = self.0.next_op();
        1
    }
}

/// The scalar capture engine must reproduce the same goldens the default
/// lane-batched engine is checked against above — pinning the two engines
/// to each other *and* to the pre-overhaul bytes, for all 12 benchmarks ×
/// 3 modes.
#[test]
fn scalar_engine_matches_lane_batched_goldens() {
    let mut config = CaptureConfig::fast(150_000);
    config.engine = CaptureEngine::Scalar;
    for (name, golden) in GOLDEN_TRACE_HASHES {
        let bench = SpecBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .expect("golden table names a known benchmark");
        let traces = capture_benchmark(bench, &config).expect("capture");
        for (mode, expected) in [PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2]
            .into_iter()
            .zip(golden)
        {
            let json = serde_json::to_string(traces.trace(mode)).expect("serialize");
            assert_eq!(
                fnv1a(json.as_bytes()),
                expected,
                "scalar-engine trace bytes diverged for {name} at {mode}",
            );
        }
    }
}

/// Steps `segments` of cycles on a scalar core and on one lane of a batch,
/// returning both interval-stat sequences for comparison.
fn run_both_paths(
    config: &CoreConfig,
    plan: &[(SpecBenchmark, Hertz, Vec<u64>)],
) -> (Vec<Vec<IntervalStats>>, Vec<Vec<IntervalStats>>) {
    let scalar: Vec<Vec<IntervalStats>> = plan
        .iter()
        .map(|(bench, freq, segments)| {
            let mut core = CoreModel::new(config, *freq).expect("valid config");
            let mut stream = bench.stream();
            segments
                .iter()
                .map(|&cycles| core.run_cycles(&mut stream, cycles))
                .collect()
        })
        .collect();

    let freqs: Vec<Hertz> = plan.iter().map(|(_, f, _)| *f).collect();
    let mut batch = LaneBatch::new(config, &freqs).expect("valid config");
    let mut sources: Vec<_> = plan.iter().map(|(b, _, _)| b.stream()).collect();
    let mut memories: Vec<PrivateMemory> = plan
        .iter()
        .map(|_| PrivateMemory::new(config).expect("valid config"))
        .collect();
    let first: Vec<u64> = plan.iter().map(|(_, _, s)| s[0]).collect();
    let mut done = vec![0usize; plan.len()];
    let mut batched: Vec<Vec<IntervalStats>> = vec![Vec::new(); plan.len()];
    batch.step_lanes(&mut sources, &mut memories, &first, |lane, stats| {
        batched[lane].push(*stats);
        done[lane] += 1;
        plan[lane].2.get(done[lane]).copied()
    });
    (scalar, batched)
}

/// A mixed-mode 8-lane batch — different benchmarks at different DVFS
/// frequencies, uneven segment schedules — must match eight independent
/// scalar cores segment-for-segment.
#[test]
fn mixed_mode_eight_lane_batch_matches_scalar_cores() {
    let dvfs = DvfsParams::paper();
    let plan: Vec<(SpecBenchmark, Hertz, Vec<u64>)> = SpecBenchmark::ALL
        .into_iter()
        .take(8)
        .enumerate()
        .map(|(i, bench)| {
            let mode = PowerMode::ALL[i % PowerMode::ALL.len()];
            let segments = (0..3)
                .map(|k| 20_000 + 7_000 * ((i + k) % 3) as u64)
                .collect();
            (bench, dvfs.frequency(mode), segments)
        })
        .collect();
    let (scalar, batched) = run_both_paths(&CoreConfig::power4(), &plan);
    for (lane, (bench, _, _)) in plan.iter().enumerate() {
        assert_eq!(
            scalar[lane],
            batched[lane],
            "lane {lane} ({}) diverged from its scalar twin",
            bench.name(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary quantum boundaries — including zero-cycle segments — must
    /// never open a gap between the scalar and lane-batched paths: the
    /// per-segment `IntervalStats` are identical wherever the cuts land.
    #[test]
    fn random_quantum_boundaries_match_scalar(
        lanes in prop::collection::vec(
            (
                0usize..SpecBenchmark::ALL.len(),
                0usize..PowerMode::ALL.len(),
                prop::collection::vec(0u64..30_000, 1..5),
            ),
            1..5,
        ),
    ) {
        let dvfs = DvfsParams::paper();
        let plan: Vec<(SpecBenchmark, Hertz, Vec<u64>)> = lanes
            .into_iter()
            .map(|(b, m, segments)| {
                (
                    SpecBenchmark::ALL[b],
                    dvfs.frequency(PowerMode::ALL[m]),
                    segments,
                )
            })
            .collect();
        let (scalar, batched) = run_both_paths(&CoreConfig::power4(), &plan);
        prop_assert_eq!(scalar, batched);
    }
}

#[test]
fn batched_delivery_matches_one_op_stepping() {
    let dvfs = DvfsParams::paper();
    for bench in SpecBenchmark::ALL {
        for mode in PowerMode::ALL {
            let freq = dvfs.frequency(mode);

            let mut batched_core = CoreModel::new(&CoreConfig::power4(), freq).unwrap();
            let mut batched = bench.stream();
            let batched_stats = batched_core.run_cycles(&mut batched, 200_000);

            let mut one_core = CoreModel::new(&CoreConfig::power4(), freq).unwrap();
            let mut one = OneAtATime(bench.stream());
            let one_stats = one_core.run_cycles(&mut one, 200_000);

            assert_eq!(
                batched_stats,
                one_stats,
                "delivery batching changed stats for {} at {mode}",
                bench.name(),
            );
        }
    }
}
