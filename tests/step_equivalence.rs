//! Equivalence guarantees for the batched hot path.
//!
//! The instruction-stepping overhaul (batched op delivery, monomorphized
//! memory path, shared replay tape, integer-domain stream thresholds) is a
//! pure performance change: every observable output must be bit-identical
//! to the original one-op-at-a-time implementation. Two guards pin that:
//!
//! 1. Golden trace hashes: the serialized per-mode traces of all 12
//!    benchmarks must hash to the values recorded from the pre-overhaul
//!    seed. Any change to stream generation, core timing, or capture
//!    orchestration that alters a single byte of a trace fails here.
//! 2. Delivery-shape independence: a source that trickles ops one per
//!    `fill_ops` call must produce exactly the same interval statistics as
//!    the same stream delivering full batches, at every DVFS frequency.

use gpm::microarch::{CoreConfig, CoreModel, InstructionSource, MicroOp};
use gpm::power::DvfsParams;
use gpm::trace::{capture_benchmark, CaptureConfig};
use gpm::types::PowerMode;
use gpm::workloads::SpecBenchmark;

/// FNV-1a 64 over the serialized trace; mirrors nothing in the library so
/// the goldens cannot drift with it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes of `serde_json::to_string` of each mode's `ModeTrace`, captured
/// with `CaptureConfig::fast(150_000)` on the pre-overhaul seed commit, in
/// `[Turbo, Eff1, Eff2]` order.
const GOLDEN_TRACE_HASHES: [(&str, [u64; 3]); 12] = [
    (
        "ammp",
        [0x3a232217da26e227, 0x7e019957e8b35a9e, 0xa857993fbc249621],
    ),
    (
        "art",
        [0xdedf91776c8153c0, 0x81d0cf8ff4c40877, 0x4cff9f55148bb156],
    ),
    (
        "crafty",
        [0xe5c0d5bab18d6743, 0x6cad2a69eb32d5bd, 0x97dcde493e3fd8cc],
    ),
    (
        "facerec",
        [0x4c5de16e52b21f9c, 0x16d30c3f702e93b5, 0xb1c467cf1845fc8a],
    ),
    (
        "gap",
        [0xbee3b8981392d791, 0x1e7169e360cc0070, 0xdebcdb3efbafe0ee],
    ),
    (
        "gcc",
        [0x9a34329c4a2fe94f, 0x69e287579d2f7de3, 0xe412a5afef9ca496],
    ),
    (
        "mcf",
        [0xbbaaa0e4d4d26687, 0x2bec97d0856511a8, 0x56ec6445adcd707c],
    ),
    (
        "mesa",
        [0x5cdfd79a5874135f, 0x0f0ce17d6bb875ac, 0x6cfdecc1683b5a79],
    ),
    (
        "perlbmk",
        [0xc5f790bb26a996c0, 0x020a8ec7f0e9a190, 0x7d865245f273b872],
    ),
    (
        "sixtrack",
        [0x5a533812acb1d4c0, 0xb15da354a481b7e5, 0xadc08ed8c3454f41],
    ),
    (
        "vortex",
        [0x4d4c17d030bd0b46, 0x7b75a3dcf4d6ae4c, 0x15dcdee0dadb7bb3],
    ),
    (
        "wupwise",
        [0x9b3ec8ba9293870b, 0x45e126fe14557e58, 0x4ab78149b730cc57],
    ),
];

#[test]
fn captured_traces_match_pre_overhaul_goldens() {
    let config = CaptureConfig::fast(150_000);
    for (name, golden) in GOLDEN_TRACE_HASHES {
        let bench = SpecBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .expect("golden table names a known benchmark");
        let traces = capture_benchmark(bench, &config).expect("capture");
        for (mode, expected) in [PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2]
            .into_iter()
            .zip(golden)
        {
            let json = serde_json::to_string(traces.trace(mode)).expect("serialize");
            assert_eq!(
                fnv1a(json.as_bytes()),
                expected,
                "trace bytes changed for {name} at {mode}",
            );
        }
    }
}

/// Delivers exactly one op per `fill_ops` call — the least batched source
/// the contract permits.
struct OneAtATime<S>(S);

impl<S: InstructionSource> InstructionSource for OneAtATime<S> {
    fn next_op(&mut self) -> MicroOp {
        self.0.next_op()
    }

    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        buf[0] = self.0.next_op();
        1
    }
}

#[test]
fn batched_delivery_matches_one_op_stepping() {
    let dvfs = DvfsParams::paper();
    for bench in SpecBenchmark::ALL {
        for mode in PowerMode::ALL {
            let freq = dvfs.frequency(mode);

            let mut batched_core = CoreModel::new(&CoreConfig::power4(), freq).unwrap();
            let mut batched = bench.stream();
            let batched_stats = batched_core.run_cycles(&mut batched, 200_000);

            let mut one_core = CoreModel::new(&CoreConfig::power4(), freq).unwrap();
            let mut one = OneAtATime(bench.stream());
            let one_stats = one_core.run_cycles(&mut one, 200_000);

            assert_eq!(
                batched_stats,
                one_stats,
                "delivery batching changed stats for {} at {mode}",
                bench.name(),
            );
        }
    }
}
