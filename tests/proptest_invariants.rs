//! Property-based tests over the workspace's core data structures and the
//! policy/budget invariants.

use gpm::core::{
    ChipWide, GreedyMaxBips, MaxBips, Policy, PolicyContext, PowerBipsMatrices, Priority,
    PullHiPushLo,
};
use gpm::power::DvfsParams;
use gpm::types::{Micros, ModeCombination, PowerMode, SummaryStats, TimeSeries, Watts};
use proptest::prelude::*;

/// Strategy: per-core Turbo (power, bips) rows.
fn turbo_rows(max_cores: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((8.0f64..30.0, 0.1f64..3.0), 1..=max_cores)
}

/// Builds exact cubic/linear matrices from Turbo rows.
fn matrices(rows: &[(f64, f64)]) -> PowerBipsMatrices {
    PowerBipsMatrices::from_rows(
        rows.iter()
            .map(|&(p, _)| PowerMode::ALL.map(|m| p * m.power_scale()))
            .collect(),
        rows.iter()
            .map(|&(_, b)| PowerMode::ALL.map(|m| b * m.bips_scale_bound()))
            .collect(),
    )
}

fn decide(policy: &mut dyn Policy, m: &PowerBipsMatrices, budget: f64) -> ModeCombination {
    let current = ModeCombination::uniform(m.cores(), PowerMode::Turbo);
    let dvfs = DvfsParams::paper();
    let ctx = PolicyContext {
        current_modes: &current,
        matrices: m,
        future: Some(m),
        budget: Watts::new(budget),
        dvfs: &dvfs,
        explore: Micros::new(500.0),
    };
    policy.decide(&ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy's decision fits the budget whenever any combination
    /// can, and always covers every core.
    #[test]
    fn policies_respect_feasible_budgets(
        rows in turbo_rows(5),
        budget_frac in 0.55f64..1.1,
    ) {
        let m = matrices(&rows);
        let turbo_power: f64 = rows.iter().map(|&(p, _)| p).sum();
        let budget = turbo_power * budget_frac;
        let floor = m.chip_power(&ModeCombination::uniform(rows.len(), PowerMode::Eff2));

        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(MaxBips::new()),
            Box::new(GreedyMaxBips::new()),
            Box::new(Priority::new()),
            Box::new(PullHiPushLo::new()),
            Box::new(ChipWide::new()),
        ];
        for policy in &mut policies {
            let combo = decide(&mut **policy, &m, budget);
            prop_assert_eq!(combo.len(), rows.len());
            if floor.value() <= budget {
                prop_assert!(
                    m.chip_power(&combo).value() <= budget + 1e-9,
                    "{} overshoots: {} > {}",
                    policy.name(),
                    m.chip_power(&combo).value(),
                    budget
                );
            }
        }
    }

    /// MaxBIPS is the argmax: no other policy's feasible decision has
    /// higher predicted throughput (same transition de-rating applies).
    #[test]
    fn maxbips_dominates_other_policies(
        rows in turbo_rows(4),
        budget_frac in 0.6f64..1.05,
    ) {
        let m = matrices(&rows);
        let turbo_power: f64 = rows.iter().map(|&(p, _)| p).sum();
        let budget = turbo_power * budget_frac;
        let dvfs = DvfsParams::paper();
        let current = ModeCombination::uniform(rows.len(), PowerMode::Turbo);
        let explore = Micros::new(500.0);

        let best = decide(&mut MaxBips::new(), &m, budget);
        let best_bips = m.chip_bips_with_transition(&current, &best, &dvfs, explore);
        let mut others: Vec<Box<dyn Policy>> = vec![
            Box::new(Priority::new()),
            Box::new(PullHiPushLo::new()),
            Box::new(ChipWide::new()),
            Box::new(GreedyMaxBips::new()),
        ];
        for policy in &mut others {
            let combo = decide(&mut **policy, &m, budget);
            if m.chip_power(&combo).value() <= budget {
                let bips = m.chip_bips_with_transition(&current, &combo, &dvfs, explore);
                prop_assert!(
                    best_bips.value() >= bips.value() - 1e-9,
                    "{} beat MaxBIPS: {} > {}",
                    policy.name(),
                    bips.value(),
                    best_bips.value()
                );
            }
        }
    }

    /// MaxBIPS's objective — transition-de-rated chip BIPS — is monotone
    /// non-decreasing in the budget: a larger budget only enlarges the
    /// feasible set. (Raw, un-de-rated BIPS is *not* guaranteed monotone:
    /// a larger budget can admit a combination with two shallow transitions
    /// that beats one deep transition after de-rating.)
    #[test]
    fn maxbips_monotone_in_budget(rows in turbo_rows(4), lo in 0.6f64..0.9) {
        let m = matrices(&rows);
        let turbo_power: f64 = rows.iter().map(|&(p, _)| p).sum();
        let hi = lo + 0.1;
        let combo_lo = decide(&mut MaxBips::new(), &m, turbo_power * lo);
        let combo_hi = decide(&mut MaxBips::new(), &m, turbo_power * hi);
        let dvfs = DvfsParams::paper();
        let current = ModeCombination::uniform(m.cores(), PowerMode::Turbo);
        let explore = Micros::new(500.0);
        let objective = |c: &ModeCombination| {
            m.chip_bips_with_transition(&current, c, &dvfs, explore).value()
        };
        prop_assert!(objective(&combo_hi) >= objective(&combo_lo) - 1e-9);
    }

    /// Rank encoding of mode combinations round-trips and enumeration is
    /// exhaustive and duplicate-free.
    #[test]
    fn mode_combination_rank_roundtrip(cores in 1usize..6, seed in any::<u64>()) {
        let total = 3usize.pow(cores as u32);
        let rank = (seed as usize) % total;
        let combo = ModeCombination::from_rank(cores, rank);
        let recovered = ModeCombination::enumerate(cores).nth(rank).unwrap();
        prop_assert_eq!(combo, recovered);
        prop_assert_eq!(ModeCombination::enumerate(cores).count(), total);
    }

    /// Transition times are symmetric, zero on the diagonal, and satisfy
    /// the triangle property for the three-point voltage ladder.
    #[test]
    fn transition_times_are_consistent(_x in 0..1i32) {
        let dvfs = DvfsParams::paper();
        for a in PowerMode::ALL {
            for b in PowerMode::ALL {
                let t_ab = dvfs.transition_time(a, b);
                let t_ba = dvfs.transition_time(b, a);
                prop_assert!((t_ab.value() - t_ba.value()).abs() < 1e-12);
                if a == b {
                    prop_assert_eq!(t_ab.value(), 0.0);
                }
            }
        }
        // Ladder: Turbo→Eff2 equals Turbo→Eff1 + Eff1→Eff2.
        let direct = dvfs.transition_time(PowerMode::Turbo, PowerMode::Eff2).value();
        let hop = dvfs.transition_time(PowerMode::Turbo, PowerMode::Eff1).value()
            + dvfs.transition_time(PowerMode::Eff1, PowerMode::Eff2).value();
        prop_assert!((direct - hop).abs() < 1e-9);
    }

    /// Summary statistics: min ≤ mean ≤ max; harmonic ≤ arithmetic mean.
    #[test]
    fn summary_stats_bounds(values in prop::collection::vec(0.01f64..100.0, 1..50)) {
        let s = SummaryStats::from_iter(values.iter().copied());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, values.len());
        let hm = SummaryStats::harmonic_mean(values.iter().copied());
        let am = SummaryStats::arithmetic_mean(values.iter().copied());
        prop_assert!(hm <= am + 1e-9);
    }

    /// TimeSeries window means never leave the [min, max] envelope of the
    /// data, for arbitrary (clamped) windows.
    #[test]
    fn window_mean_bounded(
        values in prop::collection::vec(-50.0f64..50.0, 1..100),
        a in 0.0f64..5000.0,
        len in 1.0f64..5000.0,
    ) {
        let mut series = TimeSeries::new(Micros::new(50.0));
        series.extend(values.iter().copied());
        let stats = series.stats();
        if let Some(mean) = series.window_mean(Micros::new(a), Micros::new(a + len)) {
            prop_assert!(mean >= stats.min - 1e-9);
            prop_assert!(mean <= stats.max + 1e-9);
        }
    }

    /// The power model's cubic property holds for arbitrary activity.
    #[test]
    fn power_model_cubic_for_any_activity(
        dispatch in 0.0f64..5.0,
        int_issue in 0.0f64..2.0,
        fp_issue in 0.0f64..2.0,
        mem_issue in 0.0f64..2.0,
        l2 in 0.0f64..0.2,
        busy in 0.0f64..1.0,
    ) {
        let model = gpm::power::PowerModel::power4_calibrated();
        let activity = gpm::microarch::ActivityFactors {
            dispatch, int_issue, fp_issue, mem_issue, l2, busy,
        };
        let p_turbo = model.power(&activity, PowerMode::Turbo);
        for mode in PowerMode::ALL {
            let p = model.power(&activity, mode);
            let expected = p_turbo.value() * mode.power_scale();
            prop_assert!((p.value() - expected).abs() < 1e-9);
        }
    }
}
