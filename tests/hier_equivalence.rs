//! Determinism guarantees for the cluster-sharded full-CMP drive and the
//! hierarchical budget arbiter.
//!
//! Three guards pin the hierarchical tier:
//!
//! 1. Degenerate bit-identity: the sharded drive with one cluster and a
//!    zero-cost interconnect must reproduce the *flat* drive's golden
//!    outcome hashes exactly (the same constants `cmp_equivalence.rs`
//!    pins). Adding `0.0` to a finite latency is exact in IEEE 754 and a
//!    single-cluster replay order is the flat global order, so any
//!    difference at all means the sharded refactor changed the protocol.
//! 2. Sharded golden hashes and thread independence: the 64-way 8×8
//!    configuration (default interconnect) must hash to the value recorded
//!    from the single-threaded run at the commit introducing the sharded
//!    drive, for `GPM_THREADS ∈ {1, 2, 8}` — per-cluster replay plus the
//!    serialised interconnect merge is scheduling-independent.
//! 3. Arbiter conservation: the water-filling global arbiter never hands
//!    the clusters more than the chip budget (propcheck, up to f64
//!    rounding).

use std::sync::Mutex;

use gpm::cmp::{ClusterTopology, FullCmpOutcome, FullCmpSim, InterconnectConfig};
use gpm::core::{cluster_budgets, PowerBipsMatrices};
use gpm::microarch::CoreConfig;
use gpm::power::{DvfsParams, PowerModel};
use gpm::types::{Micros, ModeCombination, PowerMode, Watts};
use gpm::workloads::{combos, WorkloadCombo};
use proptest::prelude::*;

/// `gpm::par::set_max_threads` is a process-global override; tests that
/// touch it must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// FNV-1a 64 over the serialized outcome; mirrors nothing in the library
/// so the goldens cannot drift with it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes every observable field of the outcome, floats by exact bit
/// pattern, so the hash detects any drift at all. Matches
/// `cmp_equivalence.rs` field-for-field (the flat goldens predate
/// `interconnect_utilization`, which is checked separately).
fn outcome_hash(out: &FullCmpOutcome) -> u64 {
    let mut repr = String::new();
    for c in &out.per_core {
        repr.push_str(&format!(
            "{}|{:?}|{}|{:016x}|{:016x}|{};",
            c.benchmark,
            c.mode,
            c.instructions,
            c.power.value().to_bits(),
            c.bips.value().to_bits(),
            c.l2_misses,
        ));
    }
    repr.push_str(&format!(
        "dur={:016x};util={:016x}",
        out.duration.value().to_bits(),
        out.l2_utilization.to_bits(),
    ));
    fnv1a(repr.as_bytes())
}

/// Runs `combo` all-Turbo on the sharded drive for `duration` with the
/// pool clamped to `threads` workers and returns the outcome.
fn run_sharded(
    combo: &WorkloadCombo,
    cluster_cores: usize,
    interconnect: InterconnectConfig,
    duration: Micros,
    threads: usize,
) -> FullCmpOutcome {
    gpm::par::set_max_threads(Some(threads));
    let mut sim = FullCmpSim::with_topology(
        combo,
        &ModeCombination::uniform(combo.cores(), PowerMode::Turbo),
        &CoreConfig::power4(),
        PowerModel::power4_calibrated(),
        DvfsParams::paper(),
        ClusterTopology::for_cores(combo.cores(), cluster_cores).expect("combo divides"),
        interconnect,
    )
    .expect("sharded sim builds");
    let out = sim.run(duration);
    gpm::par::set_max_threads(None);
    out
}

/// The flat drive's golden hashes from `cmp_equivalence.rs` (200 µs
/// all-Turbo runs, recorded at the commit introducing the two-phase
/// protocol). The degenerate sharded drive must reproduce them bit-for-bit.
const FLAT_GOLDEN: [(&str, u64); 3] = [
    ("gcc|mesa", 0xeb07_0995_9ecd_9532),
    ("ammp|mcf|crafty|art", 0xdf57_454f_913e_7bd3),
    ("eight-way-mixed", 0xc8d9_6bf5_495c_386a),
];

fn flat_golden_combos() -> [WorkloadCombo; 3] {
    [
        combos::gcc_mesa(),
        combos::ammp_mcf_crafty_art(),
        combos::eight_way_mixed(),
    ]
}

#[test]
fn degenerate_sharded_drive_matches_flat_goldens() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (combo, (label, want)) in flat_golden_combos().iter().zip(FLAT_GOLDEN) {
        let out = run_sharded(
            combo,
            combo.cores(), // one cluster spanning the chip
            InterconnectConfig::zero(),
            Micros::new(200.0),
            1,
        );
        assert_eq!(
            out.interconnect_utilization, 0.0,
            "{label}: a zero-cost interconnect must stay idle"
        );
        let got = outcome_hash(&out);
        assert_eq!(
            got, want,
            "{label}: K=1/zero-interconnect sharded hash {got:#018x} != flat \
             golden {want:#018x} — the sharded drive is not bit-identical"
        );
    }
}

/// Golden hash of the 64-way (8 clusters × 8 cores, default interconnect)
/// single-threaded 100 µs all-Turbo sharded run, recorded at the commit
/// introducing the sharded drive.
const SHARDED_64WAY_GOLDEN: u64 = 0x1cd0_ff31_e404_0d3b;

#[test]
fn sharded_64way_golden_hash_across_thread_counts() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let combo = combos::sixty_four_way_mixed();
    for threads in [1usize, 2, 8] {
        let out = run_sharded(
            &combo,
            8,
            InterconnectConfig::default(),
            Micros::new(100.0),
            threads,
        );
        let got = outcome_hash(&out);
        assert_eq!(
            got, SHARDED_64WAY_GOLDEN,
            "64-way sharded outcome hash {got:#018x} != golden \
             {SHARDED_64WAY_GOLDEN:#018x} under {threads} worker(s)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The water-filling arbiter conserves the chip budget: the per-cluster
    /// allocations never sum past it (beyond f64 rounding), for any matrix
    /// shape, cluster width and budget.
    #[test]
    fn arbiter_never_exceeds_chip_budget(
        rows in prop::collection::vec(
            (
                (0.1f64..40.0, 0.1f64..40.0, 0.1f64..40.0),
                (0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0),
            ),
            1..24
        ),
        cluster_cores in 1usize..9,
        budget in 0.0f64..600.0,
    ) {
        let n = rows.len();
        let power: Vec<[f64; 3]> = rows.iter().map(|&((a, b, c), _)| [a, b, c]).collect();
        let bips: Vec<[f64; 3]> = rows.iter().map(|&(_, (a, b, c))| [a, b, c]).collect();
        let matrices = PowerBipsMatrices::from_rows(power, bips);
        let budgets = cluster_budgets(&matrices, cluster_cores, Watts::new(budget));
        prop_assert_eq!(budgets.len(), n.div_ceil(cluster_cores));
        let total: f64 = budgets.iter().map(|b| b.value()).sum();
        prop_assert!(
            total <= budget * (1.0 + 1e-9) + 1e-9,
            "allocated {} over budget {}", total, budget
        );
        for b in &budgets {
            prop_assert!(b.value() >= 0.0 && b.value().is_finite());
        }
    }
}
