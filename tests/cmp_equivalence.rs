//! Determinism guarantees for the two-phase full-CMP protocol.
//!
//! The parallel full-CMP overhaul (per-core deferred request logs, serial
//! merge-replay against the shared L2, correction credits) must be a pure
//! performance change with respect to scheduling: the outcome of a run is
//! defined by the protocol alone, never by how phase 1 was mapped onto
//! worker threads. Two guards pin that:
//!
//! 1. Golden outcome hashes: 2-, 4- and 8-way combos must hash to the
//!    values recorded from the single-threaded (`GPM_THREADS=1`) run at
//!    the commit that introduced the protocol. Any change to stream
//!    generation, core timing, the replay order, or the correction
//!    arithmetic that alters a single bit of any per-core result fails
//!    here.
//! 2. Thread-count independence: the same runs repeated with 2 and 8
//!    workers must produce bit-identical outcomes to the 1-thread run.

use std::sync::Mutex;

use gpm::cmp::{FullCmpOutcome, FullCmpSim};
use gpm::microarch::CoreConfig;
use gpm::power::{DvfsParams, PowerModel};
use gpm::types::{Micros, ModeCombination, PowerMode};
use gpm::workloads::{combos, WorkloadCombo};

/// `gpm::par::set_max_threads` is a process-global override; tests that
/// touch it must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// FNV-1a 64 over the serialized outcome; mirrors nothing in the library
/// so the goldens cannot drift with it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes every observable field of the outcome, floats by exact bit
/// pattern, so the hash detects any drift at all.
fn outcome_hash(out: &FullCmpOutcome) -> u64 {
    let mut repr = String::new();
    for c in &out.per_core {
        repr.push_str(&format!(
            "{}|{:?}|{}|{:016x}|{:016x}|{};",
            c.benchmark,
            c.mode,
            c.instructions,
            c.power.value().to_bits(),
            c.bips.value().to_bits(),
            c.l2_misses,
        ));
    }
    repr.push_str(&format!(
        "dur={:016x};util={:016x}",
        out.duration.value().to_bits(),
        out.l2_utilization.to_bits(),
    ));
    fnv1a(repr.as_bytes())
}

/// Runs `combo` all-Turbo for 200 µs with the pool clamped to `threads`
/// workers and returns the outcome hash.
fn run_hash(combo: &WorkloadCombo, threads: usize) -> u64 {
    gpm::par::set_max_threads(Some(threads));
    let mut sim = FullCmpSim::new(
        combo,
        &ModeCombination::uniform(combo.cores(), PowerMode::Turbo),
        &CoreConfig::power4(),
        PowerModel::power4_calibrated(),
        DvfsParams::paper(),
    )
    .unwrap();
    let hash = outcome_hash(&sim.run(Micros::new(200.0)));
    gpm::par::set_max_threads(None);
    hash
}

/// Golden hashes of the single-threaded (`GPM_THREADS=1`) outcome for each
/// combo, recorded at the commit introducing the two-phase protocol.
const GOLDEN: [(&str, u64); 3] = [
    ("gcc|mesa", 0xeb07_0995_9ecd_9532),
    ("ammp|mcf|crafty|art", 0xdf57_454f_913e_7bd3),
    ("eight-way-mixed", 0xc8d9_6bf5_495c_386a),
];

fn golden_combos() -> [WorkloadCombo; 3] {
    [
        combos::gcc_mesa(),
        combos::ammp_mcf_crafty_art(),
        combos::eight_way_mixed(),
    ]
}

#[test]
fn golden_outcome_hashes() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (combo, (label, want)) in golden_combos().iter().zip(GOLDEN) {
        let got = run_hash(combo, 1);
        assert_eq!(
            got, want,
            "{label}: outcome hash {got:#018x} != golden {want:#018x} — \
             the full-CMP protocol's observable behaviour changed"
        );
    }
}

#[test]
fn outcome_is_bit_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for combo in &golden_combos() {
        let reference = run_hash(combo, 1);
        for threads in [2, 8] {
            let got = run_hash(combo, threads);
            assert_eq!(
                got,
                reference,
                "{}: {threads}-thread outcome diverged from serial",
                combo.label()
            );
        }
    }
}
