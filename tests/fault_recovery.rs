//! Acceptance tests for degraded operation: a MaxBIPS run whose sensor
//! telemetry is corrupted by a dropout window must return to the budget
//! within `watchdog_k + 1` explore intervals of the window closing — and
//! the hardened manager must never have left the budget in the first
//! place (a dark sensor is assumed worst-case Turbo, which over-covers).
//!
//! The workload is synthetic (constant-rate traces) so every number is
//! analytic: a 20 W "fast" core and a 12 W "slow" core under an 80%
//! budget (25.6 W of the 32 W envelope). Clean MaxBIPS settles at
//! fast=Eff1 + slow=Eff2 ≈ 24.5 W. A dropout on the fast core's sensor
//! makes the trusting controller see ~12 W of chip power, promote
//! everything to Turbo, and overshoot to 32 W until telemetry returns.

use std::sync::Arc;

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    BudgetSchedule, GlobalManager, GuardActionKind, GuardRails, MaxBips, RunOptions, RunResult,
};
use gpm::faults::FaultPlan;
use gpm::trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm::types::{Micros, PowerMode};

/// Builds a synthetic constant-rate trace set: `bips` at Turbo, linear
/// BIPS scaling and cubic power scaling across modes.
fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=4000)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64) as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

fn two_core_sim() -> TraceCmpSim {
    let traces = vec![
        constant_traces("fast", 30_000_000, 2.0, 20.0),
        constant_traces("slow", 8_000_000, 0.5, 12.0),
    ];
    TraceCmpSim::new(traces, SimParams::default()).unwrap()
}

const BUDGET: f64 = 0.80;
/// Dropout window in explore intervals, half-open.
const DROP_FROM: usize = 3;
const DROP_TO: usize = 8;

fn dropout_run(guards: Option<GuardRails>) -> RunResult {
    let plan = FaultPlan::parse(&format!("dropout@0:from={DROP_FROM},to={DROP_TO}")).unwrap();
    let options = RunOptions {
        faults: Some(plan),
        guards,
    };
    GlobalManager::new()
        .run_with(
            two_core_sim(),
            &mut MaxBips::new(),
            &BudgetSchedule::constant(BUDGET),
            &options,
        )
        .unwrap()
}

/// Indices of measured records (record index == interval index; index 0 is
/// the bootstrap warm-up) whose measured chip power exceeded the budget.
fn violation_intervals(run: &RunResult) -> Vec<usize> {
    run.records
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.bootstrap && r.chip_power > r.budget)
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn trusting_controller_overshoots_then_recovers_within_k_plus_one() {
    let k = GuardRails::default().watchdog_k;
    let run = dropout_run(None);
    let violations = violation_intervals(&run);

    // The dark sensor reads zero power, so the controller promotes to
    // all-Turbo and violates the budget while the window is open.
    assert!(
        !violations.is_empty(),
        "the trusting controller must overshoot under a dropout"
    );
    assert!(
        run.worst_overshoot_watts().value() > 3.0,
        "overshoot should be substantial, got {}",
        run.worst_overshoot_watts()
    );
    // Every violation is attributable to the fault: corrupted telemetry
    // from intervals [from, to) drives decisions [from+1, to+1).
    for &i in &violations {
        assert!(
            i > DROP_FROM && i <= DROP_TO,
            "violation at interval {i} outside the fault's influence"
        );
    }

    // Acceptance: back under budget within K+1 intervals of the window
    // closing, and it stays there for the rest of the run.
    let deadline = DROP_TO + k + 1;
    assert!(
        violations.iter().all(|&i| i < deadline),
        "violations {violations:?} persist past interval {deadline}"
    );
    assert!(
        run.records.len() > deadline + 5,
        "run too short ({} intervals) to witness recovery",
        run.records.len()
    );
    assert!(run.fault_events.len() >= DROP_TO - DROP_FROM);
    assert!(run.guard_actions.is_empty(), "no guards were requested");
}

#[test]
fn hardened_controller_covers_the_dark_sensor() {
    let k = GuardRails::default().watchdog_k;
    let run = dropout_run(Some(GuardRails::default()));

    // Worst-case Turbo assumption for the dark core over-covers: the
    // watchdog bound holds with room to spare.
    assert!(
        run.longest_violation_run() <= k,
        "hardened run exceeded the watchdog bound: {} > {k}",
        run.longest_violation_run()
    );
    let deadline = DROP_TO + k + 1;
    assert!(
        violation_intervals(&run).iter().all(|&i| i < deadline),
        "hardened run failed to recover by interval {deadline}"
    );

    // The guard must have recorded its worst-case substitutions.
    let dark_actions = run
        .guard_actions
        .iter()
        .filter(|a| matches!(a.kind, GuardActionKind::DarkWorstCase { core: 0 }))
        .count();
    assert_eq!(
        dark_actions,
        DROP_TO - DROP_FROM,
        "one DarkWorstCase per dropped interval"
    );

    // Degraded operation, not collapse: the hardened run keeps most of the
    // trusting run's throughput (it only loses the over-promoted burst).
    let trusting = dropout_run(None);
    assert!(
        run.average_chip_bips().value() > 0.8 * trusting.average_chip_bips().value(),
        "hardened {} vs trusting {}",
        run.average_chip_bips(),
        trusting.average_chip_bips()
    );
}

#[test]
fn fault_free_guarded_run_matches_legacy_bit_for_bit() {
    let schedule = BudgetSchedule::constant(BUDGET);
    let legacy = GlobalManager::new()
        .run(two_core_sim(), &mut MaxBips::new(), &schedule)
        .unwrap();
    let guarded = GlobalManager::new()
        .run_with(
            two_core_sim(),
            &mut MaxBips::new(),
            &schedule,
            &RunOptions::guarded(),
        )
        .unwrap();
    assert_eq!(legacy.to_json().unwrap(), {
        // Strip nothing: a fault-free guarded run records no events and no
        // actions, so the whole serialized result must match.
        guarded.to_json().unwrap()
    });
}
