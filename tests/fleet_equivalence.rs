//! The decision cache's contract: with exact keying (quantum = 0) a cached
//! decision path is *bit-identical* to the uncached exact solver — for
//! single solves, for full manager runs, and for the fleet engine's batched
//! tick protocol — and none of it depends on the worker-pool width.
//!
//! Four guards pin the fleet-mode engine:
//!
//! 1. Memoized solves match `solver::solve` exactly (propcheck, repeated
//!    queries audited by `verify_hits`).
//! 2. A `CachedMaxBips` manager run reproduces the plain `MaxBips` run
//!    bit-for-bit, across `GPM_THREADS ∈ {1, 2, 8}`.
//! 3. The fleet engine's per-tick decision stream and cache state are
//!    pool-width independent (flat and hierarchical solve paths alike).
//! 4. LRU eviction and within-tick dedup are deterministic: same access
//!    sequence, same evictions; decisions always return in submission
//!    order with followers bit-identical to their group leader.

use std::sync::{Arc, Mutex};

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    solver, BudgetSchedule, CacheConfig, CachedMaxBips, DecisionCache, FleetConfig, FleetEngine,
    GlobalManager, MaxBips, NodeTelemetry, PowerBipsMatrices,
};
use gpm::power::DvfsParams;
use gpm::trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm::types::{Micros, ModeCombination, PowerMode, Watts};
use proptest::prelude::*;

/// `gpm::par::set_max_threads` is a process-global override; tests that
/// touch it must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    gpm::par::set_max_threads(Some(n));
    let out = f();
    gpm::par::set_max_threads(None);
    out
}

fn paper_ctx() -> (DvfsParams, Micros) {
    (DvfsParams::paper(), Micros::new(500.0))
}

/// A cache with exact keying and hit auditing on: every hit re-solves and
/// asserts bit-identity, so any divergence fails inside the call.
fn exact_verifying_cache(capacity: usize) -> DecisionCache {
    DecisionCache::new(CacheConfig {
        capacity,
        verify_hits: true,
        ..CacheConfig::default()
    })
    .expect("capacity >= 1")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomised matrices, budgets and starting modes: the memoizing
    /// solve returns exactly what the uncached branch-and-bound returns,
    /// on the cold miss and again on the warm hit.
    #[test]
    fn cached_solve_matches_uncached_solver(
        rows in prop::collection::vec(
            (
                (8.0f64..30.0, 4.0f64..16.0, 2.0f64..9.0),
                (0.1f64..3.0, 0.05f64..2.5, 0.02f64..2.0),
            ),
            1..=8
        ),
        budget_frac in 0.3f64..1.1,
        current_seed in 0usize..6561,
    ) {
        let (dvfs, explore) = paper_ctx();
        let cores = rows.len();
        let power: Vec<[f64; 3]> = rows.iter().map(|&((a, b, c), _)| [a, b, c]).collect();
        let bips: Vec<[f64; 3]> = rows.iter().map(|&(_, (a, b, c))| [a, b, c]).collect();
        let budget = Watts::new(power.iter().map(|r| r[0]).sum::<f64>() * budget_frac);
        let m = PowerBipsMatrices::from_rows(power, bips);
        let current: ModeCombination = (0..cores)
            .map(|c| PowerMode::ALL[current_seed / 3usize.pow(c as u32) % 3])
            .collect();

        let want = solver::solve(&m, &current, budget, &dvfs, explore);
        let mut cache = exact_verifying_cache(64);
        let cold = cache.solve(&m, &current, budget, &dvfs, explore);
        let warm = cache.solve(&m, &current, budget, &dvfs, explore);
        prop_assert_eq!(&cold, &want, "cold miss diverged from the solver");
        prop_assert_eq!(&warm, &want, "warm hit diverged from the solver");
        let c = cache.counters();
        prop_assert_eq!(c.decisions_total, 2);
        prop_assert_eq!(c.cache_hits, 1);
    }
}

/// Synthetic constant-rate trace set (no capture needed): linear BIPS
/// scaling, cubic power scaling across modes.
fn synthetic(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=400)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64).round() as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

fn synthetic_suite(cores: usize) -> Vec<Arc<BenchmarkTraces>> {
    (0..cores)
        .map(|i| {
            let bips = 0.4 + (i * 5 % 9) as f64 * 0.3;
            let power = 12.0 + (i * 7 % 11) as f64 * 1.2;
            // ~3 ms of work per core so the run spans several intervals.
            let total = (bips * 1.0e9 * 0.003) as u64;
            synthetic(&format!("core{i}"), total, bips, power)
        })
        .collect()
}

/// An 8-way manager run answered through the decision cache (exact keying,
/// hits audited) is bit-identical to the plain MaxBIPS run, for any pool
/// width — cache on/off and pool width both leave the goldens untouched.
#[test]
fn cached_manager_run_matches_maxbips_across_pool_widths() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let traces = synthetic_suite(8);
    let baseline = with_threads(1, || {
        let sim = TraceCmpSim::new(traces.clone(), SimParams::default()).unwrap();
        GlobalManager::new()
            .run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.8))
            .unwrap()
    });
    let mut decisions_at_width_one = 0u64;
    for threads in [1usize, 2, 8] {
        let cached = with_threads(threads, || {
            let sim = TraceCmpSim::new(traces.clone(), SimParams::default()).unwrap();
            let mut policy = CachedMaxBips::with_config(CacheConfig {
                verify_hits: true,
                ..CacheConfig::default()
            })
            .unwrap();
            GlobalManager::new()
                .run(sim, &mut policy, &BudgetSchedule::constant(0.8))
                .unwrap()
        });
        assert_eq!(
            baseline.records, cached.records,
            "cached records diverged under {threads} worker(s)"
        );
        assert_eq!(baseline.per_core_instructions, cached.per_core_instructions);
        assert_eq!(baseline.duration, cached.duration);
        let counters = cached.cache_counters;
        assert!(
            counters.decisions_total > 0,
            "the cached policy must report its decision count"
        );
        if threads == 1 {
            decisions_at_width_one = counters.decisions_total;
        } else {
            assert_eq!(
                counters.decisions_total, decisions_at_width_one,
                "decision count diverged under {threads} worker(s)"
            );
        }
    }
}

/// Builds the telemetry for `node` at `tick`: `families` distinct decision
/// problems (round-robin over nodes), each cycling through 3 phases.
/// `cores` > the flat limit exercises the hierarchical solve path.
fn fleet_telemetry(node: u64, tick: u64, cores: usize, families: u64) -> NodeTelemetry {
    let phase = ((tick + node / families) % 3) as usize;
    let family = (node % families) as usize;
    let power: Vec<[f64; 3]> = (0..cores)
        .map(|i| {
            let t = 12.0 + ((i * 7 + family * 3 + phase * 5) % 11) as f64 * 1.3;
            [t, t * 0.55, t * 0.3]
        })
        .collect();
    let bips: Vec<[f64; 3]> = (0..cores)
        .map(|i| {
            let t = 0.4 + ((i * 5 + family * 2 + phase * 3) % 9) as f64 * 0.35;
            [t, t * 0.85, t * 0.7]
        })
        .collect();
    let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
    NodeTelemetry {
        node,
        tick,
        matrices: PowerBipsMatrices::from_rows(power, bips),
        current: ModeCombination::uniform(cores, PowerMode::Turbo),
        budget,
    }
}

/// Runs a 3-tick fleet epoch (mixed 8-way flat and 64-way hierarchical
/// nodes) under `threads` workers and returns the full decision stream
/// plus the engine's final cache length and accounting.
fn fleet_epoch(
    threads: usize,
) -> (
    Vec<(u64, u64, ModeCombination)>,
    usize,
    gpm::core::FleetStats,
) {
    with_threads(threads, || {
        let mut engine = FleetEngine::new(FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::default()
        })
        .unwrap();
        let mut stream = Vec::new();
        for tick in 0..3u64 {
            for node in 0..24u64 {
                // Two chip shapes: the flat B&B path (8-way) and the
                // hierarchical path (64-way, above the flat limit).
                let cores = if node % 2 == 0 { 8 } else { 64 };
                assert!(engine.submit(fleet_telemetry(node, tick, cores, 6)));
            }
            for d in engine.run_tick(tick) {
                stream.push((d.node, d.tick, d.modes));
            }
        }
        (stream, engine.cache().len(), engine.stats())
    })
}

/// The fleet engine's decision stream, cache population and accounting are
/// identical under 1, 2 and 8 workers: residual misses fan out over the
/// pool but land in submission order, and inserts replay serially.
#[test]
fn fleet_tick_protocol_is_pool_width_independent() {
    let _guard = THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (one, len_one, stats_one) = fleet_epoch(1);
    assert_eq!(one.len(), 3 * 24, "every submission decided");
    assert_eq!(
        stats_one.decisions_total,
        stats_one.cache_hits + stats_one.dedup_hits + stats_one.unique_solves,
        "fleet accounting must balance"
    );
    for threads in [2usize, 8] {
        let (wide, len_wide, stats_wide) = fleet_epoch(threads);
        assert_eq!(
            one, wide,
            "decision stream diverged under {threads} worker(s)"
        );
        assert_eq!(len_one, len_wide, "cache population diverged");
        assert_eq!(stats_one.decisions_total, stats_wide.decisions_total);
        assert_eq!(stats_one.cache_hits, stats_wide.cache_hits);
        assert_eq!(stats_one.dedup_hits, stats_wide.dedup_hits);
        assert_eq!(stats_one.unique_solves, stats_wide.unique_solves);
    }
}

/// Within one tick, duplicate problems submitted in scrambled order come
/// back in submission order, with every follower bit-identical to its
/// group leader's solve.
#[test]
fn within_tick_dedup_preserves_submission_order() {
    let mut engine = FleetEngine::new(FleetConfig {
        queue_capacity: 16,
        ..FleetConfig::default()
    })
    .unwrap();
    // 9 nodes over 3 families, interleaved so no family is contiguous.
    // Telemetry is keyed off `node % 3` only, so each family's three
    // nodes submit the *same* decision problem within the tick.
    let submission: Vec<u64> = vec![2, 0, 1, 5, 3, 4, 8, 6, 7];
    for &node in &submission {
        let mut t = fleet_telemetry(node % 3, 0, 8, 3);
        t.node = node;
        assert!(engine.submit(t));
    }
    let decisions = engine.run_tick(0);
    let order: Vec<u64> = decisions.iter().map(|d| d.node).collect();
    assert_eq!(order, submission, "decisions must keep submission order");
    let stats = engine.stats();
    assert_eq!(stats.unique_solves, 3, "one solve per distinct family");
    assert_eq!(stats.dedup_hits, 6, "two followers per family");
    // Followers reuse the leader's combination bit-for-bit.
    let (dvfs, explore) = paper_ctx();
    for d in &decisions {
        let t = fleet_telemetry(d.node % 3, 0, 8, 3);
        let fresh = solver::solve(&t.matrices, &t.current, t.budget, &dvfs, explore);
        assert_eq!(
            d.modes, fresh,
            "node {} diverged from a fresh solve",
            d.node
        );
    }
}

/// LRU eviction is a pure function of the access sequence: a capacity-4
/// cache driven twice through the same key pattern reports identical
/// hit/miss accounting, and the evicted victim is always the least
/// recently *used* key, not the least recently inserted.
#[test]
fn lru_eviction_is_deterministic_and_recency_driven() {
    let (dvfs, explore) = paper_ctx();
    let problems: Vec<NodeTelemetry> = (0..5).map(|f| fleet_telemetry(f, 0, 8, 5)).collect();
    let run_pattern = || {
        let mut cache = exact_verifying_cache(4);
        // Fill slots with families 0..4, touch 0 (promoting it), then
        // insert family 4 — evicting family 1, the true LRU.
        for t in &problems[..4] {
            cache.solve(&t.matrices, &t.current, t.budget, &dvfs, explore);
        }
        cache.solve(
            &problems[0].matrices,
            &problems[0].current,
            problems[0].budget,
            &dvfs,
            explore,
        );
        cache.solve(
            &problems[4].matrices,
            &problems[4].current,
            problems[4].budget,
            &dvfs,
            explore,
        );
        assert_eq!(cache.len(), 4, "bounded at capacity");
        // 0 survived its promotion; 1 was evicted.
        let key0 = cache.key(
            &problems[0].matrices,
            &problems[0].current,
            problems[0].budget,
            &dvfs,
            explore,
        );
        let key1 = cache.key(
            &problems[1].matrices,
            &problems[1].current,
            problems[1].budget,
            &dvfs,
            explore,
        );
        let hit0 = cache.get(&key0).is_some();
        let hit1 = cache.get(&key1).is_some();
        assert!(hit0, "promoted key must survive the eviction");
        assert!(!hit1, "least-recently-used key must be the victim");
        cache.counters()
    };
    let first = run_pattern();
    let second = run_pattern();
    assert_eq!(first.decisions_total, second.decisions_total);
    assert_eq!(first.cache_hits, second.cache_hits);
    assert_eq!(first.cache_hits, 1, "only the promoting touch hits");
}
