//! End-to-end integration: the full capture → simulate → manage pipeline,
//! checking the paper's headline claims on truncated regions.

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    static_oracle, throughput_degradation, turbo_baseline, weighted_slowdown, BudgetSchedule,
    ChipWide, GlobalManager, MaxBips, Oracle, Policy, Priority, PullHiPushLo, RunResult,
};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::{Micros, PowerMode, Watts};
use gpm::workloads::combos;

use std::sync::{Arc, OnceLock};

fn store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| {
        TraceStore::with_disk_cache(
            CaptureConfig::fast_duration(Micros::from_millis(6.0)),
            std::env::var("GPM_TRACE_CACHE_FAST")
                .unwrap_or_else(|_| "target/gpm-trace-cache-fast".to_owned()),
        )
    })
}

fn run_policy(
    traces: &[Arc<gpm::trace::BenchmarkTraces>],
    policy: &mut dyn Policy,
    budget: f64,
) -> RunResult {
    let sim = TraceCmpSim::new(traces.to_vec(), SimParams::default()).unwrap();
    GlobalManager::new()
        .run(sim, policy, &BudgetSchedule::constant(budget))
        .unwrap()
}

#[test]
fn headline_maxbips_tracks_oracle_and_beats_baselines() {
    let traces = store().combo(&combos::ammp_mcf_crafty_art()).unwrap();
    let baseline = turbo_baseline(&traces, &SimParams::default()).unwrap();

    let budgets = [0.65, 0.75, 0.85, 0.95];
    let mut gaps = Vec::new();
    for &budget in &budgets {
        let maxbips = run_policy(&traces, &mut MaxBips::new(), budget);
        let oracle = run_policy(&traces, &mut Oracle::new(), budget);
        let chipwide = run_policy(&traces, &mut ChipWide::new(), budget);

        let d_max = throughput_degradation(&maxbips, &baseline);
        let d_orc = throughput_degradation(&oracle, &baseline);
        let d_cw = throughput_degradation(&chipwide, &baseline);

        gaps.push(d_max - d_orc);
        assert!(
            d_max <= d_cw + 0.004,
            "budget {budget}: MaxBIPS {d_max} vs chip-wide {d_cw}"
        );
        // Budgets respected on (post-warm-up) average.
        assert!(
            maxbips.budget_utilization() <= 1.02,
            "{}",
            maxbips.budget_utilization()
        );
        assert!(chipwide.budget_utilization() <= 1.02);
    }
    // The paper's headline: within ~1% of the oracle across budgets.
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(
        mean_gap.abs() <= 0.01,
        "MaxBIPS-oracle mean gap {mean_gap} (per-budget {gaps:?})"
    );
}

#[test]
fn all_policies_complete_and_are_ranked_sanely() {
    let traces = store().combo(&combos::facerec_gcc_mesa_vortex()).unwrap();
    let baseline = turbo_baseline(&traces, &SimParams::default()).unwrap();
    let budget = 0.8;

    let mut results = Vec::new();
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(MaxBips::new()),
        Box::new(Priority::new()),
        Box::new(PullHiPushLo::new()),
        Box::new(ChipWide::new()),
    ];
    for mut p in policies {
        let run = run_policy(&traces, &mut *p, budget);
        let deg = throughput_degradation(&run, &baseline);
        let ws = weighted_slowdown(&run, &baseline);
        assert!(
            (0.0..0.25).contains(&deg),
            "{}: degradation {deg}",
            run.policy
        );
        assert!(
            ws >= deg - 0.02,
            "{}: slowdown {ws} vs degradation {deg}",
            run.policy
        );
        results.push((run.policy.clone(), deg));
    }
    let maxbips = results.iter().find(|(n, _)| n == "MaxBIPS").unwrap().1;
    for (name, deg) in &results {
        assert!(
            maxbips <= deg + 0.004,
            "MaxBIPS ({maxbips}) must lead; {name} at {deg}"
        );
    }
}

#[test]
fn dynamic_beats_optimistic_static_on_phased_workloads() {
    // Section 5.7: static assignment cannot track temporal variation. Use
    // the heavily phased memory-bound combo where dynamic adaptation pays.
    let traces = store().combo(&combos::ammp_mcf_crafty_art()).unwrap();
    let baseline = turbo_baseline(&traces, &SimParams::default()).unwrap();
    let envelope: Watts = traces
        .iter()
        .map(|t| t.trace(PowerMode::Turbo).peak_power())
        .sum();
    let static_turbo = static_oracle::all_turbo(&traces).unwrap();

    let mut dynamic_wins = 0;
    let budgets = [0.65, 0.75, 0.85];
    for &budget in &budgets {
        let maxbips = run_policy(&traces, &mut MaxBips::new(), budget);
        let d_dyn = throughput_degradation(&maxbips, &baseline);
        let st = static_oracle::best_or_floor(
            &traces,
            envelope * budget,
            static_oracle::BudgetCriterion::PeakPower,
        )
        .unwrap();
        let d_static = st.degradation_vs(&static_turbo);
        if d_dyn <= d_static + 0.002 {
            dynamic_wins += 1;
        }
    }
    // The static bound is *optimistic* (oracle choice, no transition
    // costs), so it can win at some budgets; dynamic must at least compete.
    assert!(
        dynamic_wins >= 1,
        "MaxBIPS should match/beat optimistic static somewhere in the sweep"
    );
}

#[test]
fn budget_schedule_drop_is_honoured_end_to_end() {
    let traces = store().combo(&combos::ammp_mcf_crafty_art()).unwrap();
    let sim = TraceCmpSim::new(traces, SimParams::default()).unwrap();
    let envelope = sim.power_envelope();
    let schedule =
        BudgetSchedule::steps(vec![(Micros::ZERO, 0.9), (Micros::from_millis(3.0), 0.7)]);
    let run = GlobalManager::new()
        .run(sim, &mut MaxBips::new(), &schedule)
        .unwrap();

    // Records after the drop must carry the lower budget and adapt power.
    let after: Vec<_> = run
        .records
        .iter()
        .filter(|r| r.start >= Micros::from_millis(3.0))
        .collect();
    assert!(!after.is_empty());
    for r in &after {
        assert!((r.budget.value() / envelope.value() - 0.7).abs() < 1e-9);
    }
    let avg_after: f64 =
        after.iter().map(|r| r.chip_power.value()).sum::<f64>() / after.len() as f64;
    assert!(
        avg_after <= envelope.value() * 0.72,
        "power after the drop: {avg_after} vs envelope {envelope}"
    );
}

#[test]
fn runs_are_deterministic() {
    let traces = store().combo(&combos::art_mcf()).unwrap();
    let run = |_: u32| {
        let sim = TraceCmpSim::new(traces.clone(), SimParams::default()).unwrap();
        GlobalManager::new()
            .run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.75))
            .unwrap()
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.per_core_instructions, b.per_core_instructions);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.modes, rb.modes);
        assert!((ra.chip_power.value() - rb.chip_power.value()).abs() < 1e-12);
    }
}

#[test]
fn sixteen_way_pipeline_works_with_greedy_search() {
    // The paper's trace tool "can explore a large number of cores from 2 to
    // 64"; exhaustive MaxBIPS stops being practical past ~10 cores, so the
    // greedy extension carries the larger scales.
    use gpm::core::GreedyMaxBips;
    let sixteen = combos::eight_way_mixed().concat(&combos::eight_way_corners());
    assert_eq!(sixteen.cores(), 16);
    let traces = store().combo(&sixteen).unwrap();
    let baseline = turbo_baseline(&traces, &SimParams::default()).unwrap();
    let run = run_policy(&traces, &mut GreedyMaxBips::new(), 0.8);
    let deg = throughput_degradation(&run, &baseline);
    assert!((0.0..0.15).contains(&deg), "16-way degradation {deg}");
    assert!(run.budget_utilization() <= 1.02);
}

#[test]
fn eight_way_pipeline_works() {
    let traces = store().combo(&combos::eight_way_mixed()).unwrap();
    assert_eq!(traces.len(), 8);
    let baseline = turbo_baseline(&traces, &SimParams::default()).unwrap();
    let run = run_policy(&traces, &mut MaxBips::new(), 0.8);
    let deg = throughput_degradation(&run, &baseline);
    assert!((0.0..0.15).contains(&deg), "8-way degradation {deg}");
    assert!(run.budget_utilization() <= 1.02);
    // 3^8 = 6561 combinations per decision actually happened.
    assert!(run.records.len() > 5);
}
