//! Fault-substrate invariants that must hold for *any* fault plan:
//!
//! 1. **Watchdog coverage** (property-based): under an arbitrary mix of
//!    fault clauses, the hardened manager never allows more than
//!    `watchdog_k` consecutive over-budget intervals that are not covered
//!    by an active watchdog clamp. (A clamped chip can still violate — a
//!    budget shock can drop the budget below even the all-Eff2 floor — but
//!    the watchdog must already be responding.)
//! 2. **Pool-width independence**: a faulted run is bit-identical under
//!    `GPM_THREADS` ∈ {1, 2, 8}. Fault injection and the guard rails live
//!    on the serial control path; only the policy's combination search
//!    fans out, and its reduction is order-insensitive.

use std::sync::{Arc, Mutex};

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    BudgetSchedule, GlobalManager, GuardActionKind, GuardRails, MaxBips, RunOptions, RunResult,
};
use gpm::faults::{CoreSet, DvfsFault, FaultClause, FaultKind, FaultPlan, IntervalWindow};
use gpm::trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm::types::{Micros, PowerMode};
use proptest::prelude::*;

/// Builds a synthetic constant-rate trace set (see `tests/fault_recovery.rs`).
fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=4000)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64) as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

fn two_core_sim() -> TraceCmpSim {
    let traces = vec![
        constant_traces("fast", 20_000_000, 2.0, 20.0),
        constant_traces("slow", 6_000_000, 0.5, 12.0),
    ];
    TraceCmpSim::new(traces, SimParams::default()).unwrap()
}

/// Strategy: one arbitrary fault clause over a 2-core chip, with windows
/// inside the run's ~20 measured intervals. The vendored proptest has no
/// `prop_oneof!`, so variant selection is an index draw mapped in code.
fn clause() -> impl Strategy<Value = FaultClause> {
    (
        // fault-kind selector, fractional parameter (noise std / shock
        // fraction), bias factor
        (0usize..7, 0.01f64..1.0, 0.3f64..2.5),
        // lag / delay, core-set selector
        (1usize..4, 0usize..3),
        // window start, window length
        (0usize..12, 1usize..8),
    )
        .prop_map(|((which, frac, factor), (lag, coreset), (from, len))| {
            let kind = match which {
                0 => FaultKind::SensorNoise { std: frac.min(0.5) },
                1 => FaultKind::SensorBias { factor },
                2 => FaultKind::StaleTelemetry { lag },
                3 => FaultKind::SensorDropout,
                4 => FaultKind::StuckDvfs(DvfsFault::Ignore),
                5 => FaultKind::StuckDvfs(DvfsFault::Delay(lag)),
                _ => FaultKind::BudgetShock {
                    fraction: frac.max(0.4),
                },
            };
            let cores = match coreset {
                0 => CoreSet::All,
                1 => CoreSet::Cores(vec![0]),
                _ => CoreSet::Cores(vec![1]),
            };
            FaultClause {
                kind,
                cores,
                window: IntervalWindow {
                    from,
                    to: Some(from + len),
                },
            }
        })
}

fn faulted_run(plan: FaultPlan) -> RunResult {
    GlobalManager::new()
        .run_with(
            two_core_sim(),
            &mut MaxBips::new(),
            &BudgetSchedule::constant(0.8),
            &RunOptions::faulted(plan),
        )
        .unwrap()
}

/// The watchdog-coverage check: no run of > `k` consecutive over-budget
/// intervals outside the union of active clamp windows.
fn assert_watchdog_covers(run: &RunResult, k: usize) {
    // Reconstruct clamp coverage from the action log: a clamp recorded at
    // interval `t` holds for intervals [t, t + hold).
    let mut covered = vec![false; run.records.len() + 1];
    for a in &run.guard_actions {
        if let GuardActionKind::WatchdogClamp { hold, .. } = a.kind {
            for i in a.interval..(a.interval + hold).min(covered.len()) {
                covered[i] = true;
            }
        }
    }
    let mut uncovered_streak = 0usize;
    for (i, r) in run.records.iter().enumerate() {
        if r.bootstrap {
            continue;
        }
        if r.chip_power > r.budget && !covered[i] {
            uncovered_streak += 1;
            assert!(
                uncovered_streak <= k,
                "interval {i}: {uncovered_streak} consecutive uncovered violations (> {k}); \
                 actions: {:?}",
                run.guard_actions
            );
        } else {
            uncovered_streak = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn watchdog_bounds_uncovered_violations(
        clauses in prop::collection::vec(clause(), 1..=3),
        seed in any::<u64>(),
    ) {
        let mut plan = FaultPlan::none().seeded(seed);
        for c in clauses {
            plan = plan.with(c.kind, c.cores, c.window);
        }
        let run = faulted_run(plan);
        assert_watchdog_covers(&run, GuardRails::default().watchdog_k);
    }
}

/// `gpm::par::set_max_threads` is process-global; keep thread-count tests
/// from interleaving with each other.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// An 8-core sim so MaxBIPS' parallel combination search actually engages
/// (it stays serial below 8 cores).
fn eight_core_sim() -> TraceCmpSim {
    let traces: Vec<_> = (0..8)
        .map(|i| {
            let bips = 0.5 + 0.25 * i as f64;
            let power = 10.0 + 1.5 * i as f64;
            constant_traces(&format!("b{i}"), 6_000_000, bips, power)
        })
        .collect();
    TraceCmpSim::new(traces, SimParams::default()).unwrap()
}

#[test]
fn faulted_run_is_identical_across_pool_widths() {
    let _lock = THREAD_OVERRIDE.lock().unwrap();
    let plan = FaultPlan::parse(
        "noise@all:std=0.1;dropout@2:from=3,to=6;stuck@5:from=2,to=9,delay=2;shock:from=7,to=9,frac=0.7",
    )
    .unwrap()
    .seeded(41);

    let run_json = |threads: usize| {
        gpm::par::set_max_threads(Some(threads));
        let run = GlobalManager::new()
            .run_with(
                eight_core_sim(),
                &mut MaxBips::new(),
                &BudgetSchedule::constant(0.75),
                &RunOptions::faulted(plan.clone()),
            )
            .unwrap();
        gpm::par::set_max_threads(None);
        run.to_json().unwrap()
    };

    let one = run_json(1);
    let two = run_json(2);
    let eight = run_json(8);
    assert!(one == two, "GPM_THREADS=2 diverged from serial");
    assert!(one == eight, "GPM_THREADS=8 diverged from serial");

    // The run actually exercised the fault path.
    let run = gpm::core::RunResult::from_json(&one).unwrap();
    assert!(!run.fault_events.is_empty());
}
