//! The exact solver's contract: `solver::solve` returns the *bit-identical*
//! argmax of the paper's exhaustive 3^N scan — same combination, same
//! first-strict-max tie-breaking — for every matrix, budget and starting
//! assignment. The branch-and-bound is only allowed to be faster, never
//! different.

use std::sync::{Arc, Mutex};

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{solver, BudgetSchedule, GlobalManager, MaxBips, PowerBipsMatrices};
use gpm::power::DvfsParams;
use gpm::trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm::types::{Micros, ModeCombination, ModeOdometer, PowerMode, Watts};
use proptest::prelude::*;

/// Serialises the tests that touch the process-wide thread override (the
/// integration-test harness runs `#[test]` functions concurrently).
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    gpm::par::set_max_threads(Some(n));
    let out = f();
    gpm::par::set_max_threads(None);
    out
}

fn paper_ctx() -> (DvfsParams, Micros) {
    (DvfsParams::paper(), Micros::new(500.0))
}

/// Builds exact cubic/linear matrices from per-core Turbo (power, bips)
/// rows — the same construction the manager's predictor uses.
fn matrices(rows: &[(f64, f64)]) -> PowerBipsMatrices {
    PowerBipsMatrices::from_rows(
        rows.iter()
            .map(|&(p, _)| PowerMode::ALL.map(|m| p * m.power_scale()))
            .collect(),
        rows.iter()
            .map(|&(_, b)| PowerMode::ALL.map(|m| b * m.bips_scale_bound()))
            .collect(),
    )
}

fn assert_solver_matches_scan(m: &PowerBipsMatrices, current: &ModeCombination, budget: Watts) {
    let (dvfs, explore) = paper_ctx();
    let want = solver::exhaustive(m, current, budget, &dvfs, explore);
    let got = solver::solve(m, current, budget, &dvfs, explore);
    assert_eq!(
        got, want,
        "solver diverged from the scan at budget {budget} (current {current})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomised matrices, budgets and starting modes, N <= 8: the
    /// branch-and-bound returns the scan's combination exactly.
    #[test]
    fn solver_matches_exhaustive_scan(
        rows in prop::collection::vec((8.0f64..30.0, 0.1f64..3.0), 1..=8),
        budget_frac in 0.3f64..1.1,
        current_seed in 0usize..6561,
    ) {
        let m = matrices(&rows);
        let cores = rows.len();
        let turbo_power: f64 = rows.iter().map(|&(p, _)| p).sum();
        let budget = Watts::new(turbo_power * budget_frac);
        // Derive a starting assignment from the seed in base 3 so that
        // every transition-stall class gets exercised.
        let current: ModeCombination = (0..cores)
            .map(|c| PowerMode::ALL[current_seed / 3usize.pow(c as u32) % 3])
            .collect();
        assert_solver_matches_scan(&m, &current, budget);
    }

    /// Near-duplicate cores force objective plateaus; the first-strict-max
    /// tie-break must still pick the scan's (earliest-enumerated) winner.
    #[test]
    fn solver_breaks_ties_like_the_scan(
        power in 8.0f64..30.0,
        bips in 0.1f64..3.0,
        cores in 2usize..=6,
        budget_frac in 0.3f64..1.05,
    ) {
        let rows = vec![(power, bips); cores];
        let m = matrices(&rows);
        let budget = Watts::new(power * cores as f64 * budget_frac);
        let current = ModeCombination::uniform(cores, PowerMode::Turbo);
        assert_solver_matches_scan(&m, &current, budget);
    }
}

/// Hand-crafted plateau: every core identical *and* zero BIPS spread
/// across modes, so all 3^N combinations under the budget tie exactly.
/// The winner must be the scan's first feasible combination.
#[test]
fn crafted_tie_cases_pick_the_earliest_combo() {
    let (dvfs, explore) = paper_ctx();
    // Zero BIPS spread: BIPS identical in every mode, power still cubic.
    let m = PowerBipsMatrices::from_rows(
        vec![PowerMode::ALL.map(|md| 20.0 * md.power_scale()); 4],
        vec![[1.0, 1.0, 1.0]; 4],
    );
    let current = ModeCombination::uniform(4, PowerMode::Turbo);
    for pct in [30, 50, 70, 85, 100] {
        let budget = Watts::new(80.0 * pct as f64 / 100.0);
        let want = solver::exhaustive(&m, &current, budget, &dvfs, explore);
        let got = solver::solve(&m, &current, budget, &dvfs, explore);
        assert_eq!(got, want, "tie at {pct}% budget");
    }
    // Fully-feasible plateau: everything ties, the scan's first candidate
    // (all-Turbo, rank 0) must win.
    let all_turbo = solver::solve(&m, &current, Watts::new(1000.0), &dvfs, explore);
    assert!(all_turbo
        .as_slice()
        .iter()
        .all(|&md| md == PowerMode::Turbo));
}

/// A budget below even the all-Eff2 floor: the solver must fall back to
/// the minimum-power assignment, exactly like the scan's fallback arm.
#[test]
fn infeasible_budget_returns_all_eff2() {
    let (dvfs, explore) = paper_ctx();
    let m = matrices(&[(25.0, 2.0), (18.0, 1.1), (12.0, 0.4)]);
    let current = ModeCombination::uniform(3, PowerMode::Turbo);
    let budget = Watts::new(0.5); // below any mode's chip power
    let got = solver::solve(&m, &current, budget, &dvfs, explore);
    assert!(got.as_slice().iter().all(|&md| md == PowerMode::Eff2));
    assert_eq!(
        got,
        solver::exhaustive(&m, &current, budget, &dvfs, explore)
    );
}

/// The parallel reference scan (`exhaustive_chunked`) is pool-width
/// independent and agrees with both the serial scan and the solver.
#[test]
fn chunked_scan_is_pool_width_independent() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let (dvfs, explore) = paper_ctx();
    let rows: Vec<(f64, f64)> = (0..7)
        .map(|i| {
            (
                12.0 + (i * 7 % 11) as f64 * 1.3,
                0.4 + (i * 5 % 9) as f64 * 0.35,
            )
        })
        .collect();
    let m = matrices(&rows);
    let current: ModeCombination = (0..7).map(|i| PowerMode::ALL[i % 3]).collect();
    let budget = Watts::new(0.75 * rows.iter().map(|r| r.0).sum::<f64>());
    let serial = solver::exhaustive(&m, &current, budget, &dvfs, explore);
    for threads in [1, 2, 8] {
        let chunked = with_threads(threads, || {
            solver::exhaustive_chunked(&m, &current, budget, &dvfs, explore, threads)
        });
        assert_eq!(chunked, serial, "pool width {threads}");
    }
    assert_eq!(solver::solve(&m, &current, budget, &dvfs, explore), serial);
}

/// The odometer the scan and the chunked ranges ride on really enumerates
/// ranks in the scan's order (core 0 = most significant base-3 digit).
#[test]
fn odometer_rank_seeding_matches_enumeration() {
    let total = 3usize.pow(4);
    let mut odo = ModeOdometer::new(4);
    for rank in 0..total {
        let seeded = ModeOdometer::from_rank(4, rank);
        assert_eq!(seeded.current(), odo.current(), "rank {rank}");
        let more = odo.advance();
        assert_eq!(more, rank + 1 < total);
    }
}

/// Synthetic constant-rate trace set, so the 16-core run below needs no
/// capture: linear BIPS scaling, cubic power scaling across modes.
fn synthetic(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=400)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64).round() as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

/// A full 16-way MaxBIPS run — every decision answered by the
/// branch-and-bound — is bit-identical for any worker-pool width. The
/// solver itself is serial; this pins that nothing on the decision path
/// picked up a pool-width dependence while the capture/step layers fan out.
#[test]
fn sixteen_way_run_is_bit_identical_across_pool_widths() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let traces: Vec<Arc<BenchmarkTraces>> = (0..16)
        .map(|i| {
            let bips = 0.4 + (i * 5 % 9) as f64 * 0.3;
            let power = 12.0 + (i * 7 % 11) as f64 * 1.2;
            // ~3 ms of work per core so the run spans several intervals.
            let total = (bips * 1.0e9 * 0.003) as u64;
            synthetic(&format!("core{i}"), total, bips, power)
        })
        .collect();
    let run_with = |threads: usize| {
        with_threads(threads, || {
            let sim = TraceCmpSim::new(traces.clone(), SimParams::default()).unwrap();
            GlobalManager::new()
                .run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.8))
                .unwrap()
        })
    };
    let one = run_with(1);
    for threads in [2, 8] {
        let wide = run_with(threads);
        assert_eq!(one.records, wide.records, "pool width {threads}");
        assert_eq!(one.per_core_instructions, wide.per_core_instructions);
        assert_eq!(one.duration, wide.duration);
    }
}
