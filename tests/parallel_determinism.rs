//! The parallel execution layer's contract: results are bit-identical for
//! any worker-pool width, and the shared state it fans out over really is
//! thread-safe.

use std::sync::{Arc, Mutex};

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{BudgetSchedule, GlobalManager, MaxBips};
use gpm::experiments::{suite_curves, ExperimentContext, PolicyKind};
use gpm::trace::{BenchmarkTraces, CaptureConfig, ModeTrace, TraceSample, TraceStore};
use gpm::types::{Micros, PowerMode};
use gpm::workloads::combos;

/// Serialises the tests that touch the process-wide thread override (the
/// integration-test harness runs `#[test]` functions concurrently).
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    gpm::par::set_max_threads(Some(n));
    let out = f();
    gpm::par::set_max_threads(None);
    out
}

/// The types the pool shares across workers must be `Send + Sync`; keeping
/// the assertions here turns an accidental `Rc`/`Cell` addition into a
/// compile error instead of a latent data race.
#[test]
fn shared_experiment_state_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TraceStore>();
    assert_send_sync::<BenchmarkTraces>();
    assert_send_sync::<SimParams>();
    assert_send_sync::<ExperimentContext>();
    assert_send_sync::<PolicyKind>();
    assert_send_sync::<gpm::core::MaxBips>();
    assert_send_sync::<gpm::core::ChipWide>();
    assert_send_sync::<gpm::core::Oracle>();
    assert_send_sync::<gpm::core::GreedyMaxBips>();
    assert_send_sync::<gpm::core::Priority>();
    assert_send_sync::<gpm::core::PullHiPushLo>();
    assert_send_sync::<gpm::core::RunResult>();
}

#[test]
fn cold_capture_is_identical_for_any_thread_count() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let combo = combos::art_mcf();
    let serial = with_threads(1, || {
        TraceStore::new(CaptureConfig::fast(300_000))
            .combo(&combo)
            .unwrap()
    });
    let parallel = with_threads(4, || {
        TraceStore::new(CaptureConfig::fast(300_000))
            .combo(&combo)
            .unwrap()
    });
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(**s, **p, "capture of {} diverged across pools", s.name());
    }
}

#[test]
fn suite_curves_match_serial_bit_for_bit() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let ctx = ExperimentContext::new(
        TraceStore::new(CaptureConfig::fast(400_000)),
        SimParams::default(),
        vec![0.7, 0.85],
    );
    let combo = combos::art_mcf();
    let policies = [PolicyKind::MaxBips, PolicyKind::ChipWide];
    let serial = with_threads(1, || suite_curves(&ctx, &combo, &policies, true).unwrap());
    let parallel = with_threads(4, || suite_curves(&ctx, &combo, &policies, true).unwrap());
    // PolicyCurve's PartialEq compares every f64 exactly — no tolerance.
    assert_eq!(serial.dynamic, parallel.dynamic);
    assert_eq!(serial.static_curve, parallel.static_curve);
}

/// Synthetic constant-rate trace set, so the 8-core test below needs no
/// capture: linear BIPS scaling, cubic power scaling across modes.
fn synthetic(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=400)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64).round() as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

/// On an 8-way chip MaxBIPS's 3^8 search takes the chunked parallel arm;
/// the run it produces must match the serial scan record for record.
#[test]
fn eight_core_policy_decisions_match_serial() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let specs: [(f64, f64); 8] = [
        (2.4, 22.0),
        (2.0, 20.0),
        (1.7, 18.5),
        (1.4, 17.0),
        (1.1, 15.0),
        (0.8, 13.0),
        (0.6, 12.0),
        (0.4, 10.0),
    ];
    let traces: Vec<Arc<BenchmarkTraces>> = specs
        .iter()
        .enumerate()
        .map(|(i, &(bips, power))| {
            // ~4 ms of work per core so the run spans several intervals.
            let total = (bips * 1.0e9 * 0.004) as u64;
            synthetic(&format!("core{i}"), total, bips, power)
        })
        .collect();
    let run_with = |threads: usize| {
        with_threads(threads, || {
            let sim = TraceCmpSim::new(traces.clone(), SimParams::default()).unwrap();
            GlobalManager::new()
                .run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.75))
                .unwrap()
        })
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.records, parallel.records);
    assert_eq!(serial.per_core_instructions, parallel.per_core_instructions);
    assert_eq!(serial.duration, parallel.duration);
}
