//! # gpm — Global CMP Power Management
//!
//! A from-scratch Rust reproduction of *“An Analysis of Efficient
//! Multi-Core Global Power Management Policies: Maximizing Performance for
//! a Given Power Budget”* (Isci, Buyuktosunoglu, Cher, Bose, Martonosi —
//! MICRO 2006): a global power manager that sets per-core DVFS modes
//! (Turbo / Eff1 / Eff2) every 500 µs so that a multi-core chip maximises
//! throughput while staying under a chip-wide power budget.
//!
//! This crate is the umbrella facade: it re-exports every workspace crate
//! under one name. See the member crates for the subsystems:
//!
//! * [`types`] — units, ids, power modes, time series.
//! * [`microarch`] — the out-of-order POWER4-class core timing model
//!   (caches, branch predictors, dataflow scoreboard).
//! * [`power`] — activity-based power model and the DVFS operating points.
//! * [`workloads`] — 12 synthetic SPEC CPU2000-class benchmarks and the
//!   paper's Table 2 combinations.
//! * [`trace`] — per-mode trace capture (the paper's methodology).
//! * [`cmp`] — the trace-driven CMP simulator plus the full shared-L2
//!   validation simulator.
//! * [`core`] — the global manager, the Power/BIPS matrices, and the
//!   policies: MaxBIPS, Priority, PullHiPushLo, ChipWide, Oracle, greedy.
//! * [`faults`] — seeded fault injection at the sensor/actuator seam and
//!   the guard rails hardening the manager against it.
//! * [`net`] — the fleet decision service: binary wire protocol, sharded
//!   thread-per-shard server, loadgen client.
//! * [`experiments`] — drivers regenerating every table and figure.
//!
//! # Quickstart
//!
//! ```no_run
//! use gpm::core::{BudgetSchedule, GlobalManager, MaxBips};
//! use gpm::cmp::{SimParams, TraceCmpSim};
//! use gpm::trace::{CaptureConfig, TraceStore};
//! use gpm::workloads::combos;
//!
//! // 1. Capture per-mode traces for a 4-way workload (Table 2).
//! let store = TraceStore::new(CaptureConfig::default());
//! let traces = store.combo(&combos::ammp_mcf_crafty_art())?;
//!
//! // 2. Build the trace-driven CMP simulator (500 µs explore intervals).
//! let sim = TraceCmpSim::new(traces, SimParams::default())?;
//!
//! // 3. Run MaxBIPS under an 83% chip power budget.
//! let result = GlobalManager::new().run(
//!     sim,
//!     &mut MaxBips::new(),
//!     &BudgetSchedule::constant(0.83),
//! )?;
//! println!(
//!     "avg power {:.1} (budget utilisation {:.1}%), chip throughput {:.2}",
//!     result.average_chip_power(),
//!     result.budget_utilization() * 100.0,
//!     result.average_chip_bips(),
//! );
//! # Ok::<(), gpm::types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gpm_cmp as cmp;
pub use gpm_core as core;
pub use gpm_experiments as experiments;
pub use gpm_faults as faults;
pub use gpm_microarch as microarch;
pub use gpm_net as net;
pub use gpm_par as par;
pub use gpm_power as power;
pub use gpm_trace as trace;
pub use gpm_types as types;
pub use gpm_workloads as workloads;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
