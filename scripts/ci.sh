#!/usr/bin/env bash
# Full local CI: format, lint, build, test.
#
# Everything runs offline against the vendored dependency subsets; no
# network access is required. The test suite runs twice — once with
# GPM_THREADS=1 (serial paths) and once with GPM_THREADS=2 (worker pool) —
# because the parallel engine guarantees bit-identical results for any
# pool width and both halves of that promise must stay covered.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> GPM_THREADS=1 cargo test --workspace"
GPM_THREADS=1 cargo test --workspace --quiet

echo "==> GPM_THREADS=2 cargo test --workspace"
GPM_THREADS=2 cargo test --workspace --quiet

# The fault-injection substrate promises pool-width-independent, seeded
# determinism on the manager control path; run its test group explicitly
# under both widths so the seam tests cannot silently drop out of the
# workspace filter, and lint the new crate at zero-warning strictness.
echo "==> fault substrate: tests under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test fault_recovery --test fault_invariants
GPM_THREADS=2 cargo test --quiet --test fault_recovery --test fault_invariants
cargo clippy -p gpm-faults --all-targets -- -D warnings

# The exact branch-and-bound behind MaxBIPS promises bit-identical
# decisions to the exhaustive scan; run its equivalence group explicitly
# under both pool widths (the chunked reference scan and the 16-way run
# ride the worker pool) and lint the solver's crate at zero-warning
# strictness.
echo "==> solver: equivalence tests under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test solver_equivalence
GPM_THREADS=2 cargo test --quiet --test solver_equivalence
cargo clippy -p gpm-core --all-targets -- -D warnings

# The SoA lane-batched kernel promises bit-identity with the scalar
# stepping path for any lane count, chunk schedule and pool width; run
# the equivalence group (golden trace hashes, scalar-vs-batched engines,
# the mixed-mode lane batch and the quantum-boundary proptest) under a
# serial and a saturated pool, and lint the core-model crate at
# zero-warning strictness.
echo "==> lane kernel: step_equivalence under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test step_equivalence
GPM_THREADS=8 cargo test --quiet --test step_equivalence
cargo clippy -p gpm-microarch --all-targets -- -D warnings

# The cluster-sharded drive promises K=1/zero-interconnect bit-identity
# with the flat path and a scheduling-independent 64-way golden hash;
# run the hierarchical equivalence group (flat goldens, 64-way sharded
# golden across thread counts, arbiter conservation proptest) under a
# serial and a saturated pool, and lint the simulator crate at
# zero-warning strictness.
echo "==> hierarchical tier: hier_equivalence under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test hier_equivalence
GPM_THREADS=8 cargo test --quiet --test hier_equivalence
cargo clippy -p gpm-cmp --all-targets -- -D warnings

# The fleet-mode decision engine promises bit-identical cached decisions
# under exact keying (memoized solves, CachedMaxBips manager runs) and a
# pool-width-independent tick protocol (dedup groups, residual misses over
# the worker pool, serial insert replay); run its equivalence group under
# a serial and a saturated pool and lint every crate the engine touches at
# zero-warning strictness (gpm-core is already linted above).
echo "==> fleet engine: fleet_equivalence under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test fleet_equivalence
GPM_THREADS=8 cargo test --quiet --test fleet_equivalence

# The fleet fault-tolerance layer promises three things that must stay
# pinned: a chaos-armed engine with a never-firing plan is bit-identical
# to the plain engine, any windowed fault schedule recovers to a steady
# tick with pool-width-independent decisions, and checkpoint/restore
# through JSON resumes bit-identically at every pool width.
echo "==> fleet chaos: fleet_chaos under two pool widths"
GPM_THREADS=1 cargo test --quiet --test fleet_chaos
GPM_THREADS=8 cargo test --quiet --test fleet_chaos
cargo clippy -p gpm-types --all-targets -- -D warnings
cargo clippy -p gpm-experiments --all-targets -- -D warnings
cargo clippy -p gpm-cli --all-targets -- -D warnings

# The fleet service promises wire-level determinism: per-node decision
# streams bit-identical across shard counts, pool widths and transports,
# corrupt frames rejected with named errors instead of panics, and
# checkpoint/restore continuing bit-identically through the sharded
# front. Run the equivalence group under a serial and a saturated pool
# and lint the wire crate at zero-warning strictness.
echo "==> fleet service: serve_equivalence under two pool widths + clippy -D warnings"
GPM_THREADS=1 cargo test --quiet --test serve_equivalence
GPM_THREADS=8 cargo test --quiet --test serve_equivalence
cargo clippy -p gpm-net --all-targets -- -D warnings

# Loopback serve smoke: `gpm serve` + `gpm loadgen` must keep running end
# to end from the CLI over both transports — a Unix socket under a serial
# pool and TCP under a saturated pool. `--once` exits the server after the
# client disconnects; the retry loop absorbs bind latency.
serve_smoke() {
    local threads="$1" listen="$2" connect="$3"
    echo "==> GPM_THREADS=$threads gpm serve --listen $listen + loadgen smoke"
    GPM_THREADS="$threads" cargo run --release --quiet -p gpm-cli -- \
        serve --listen "$listen" --shards 2 --once > /dev/null &
    local server_pid=$!
    local attempt
    for attempt in $(seq 1 50); do
        if GPM_THREADS="$threads" cargo run --release --quiet -p gpm-cli -- \
            loadgen --connect "$connect" --nodes 64 --ticks 4 --shutdown \
            > /dev/null 2>&1; then
            break
        fi
        if [ "$attempt" -eq 50 ]; then
            echo "serve smoke: loadgen never connected to $connect" >&2
            kill "$server_pid" 2> /dev/null || true
            return 1
        fi
        sleep 0.1
    done
    wait "$server_pid"
}
GPM_SERVE_SOCK="$(mktemp -u /tmp/gpm-ci-serve.XXXXXX.sock)"
serve_smoke 1 "unix:$GPM_SERVE_SOCK" "unix:$GPM_SERVE_SOCK"
rm -f "$GPM_SERVE_SOCK"
serve_smoke 8 "tcp:127.0.0.1:47391" "tcp:127.0.0.1:47391"

# 16-way wide-CMP smoke: the scaling tier must keep running end to end
# from the CLI (exact MaxBIPS vs greedy on a 3^16 search space).
echo "==> gpm figure wide --cores 16 --fast"
cargo run --release --quiet -p gpm-cli -- figure wide --cores 16 --fast > /dev/null

# 64-way hierarchical smoke: the cluster-sharded drive plus the two-level
# HierMaxBips must keep running end to end from the CLI.
echo "==> gpm figure wide --cores 64 --fast"
cargo run --release --quiet -p gpm-cli -- figure wide --cores 64 --fast > /dev/null

# Fleet smoke: the saturating-load tier (decision cache + within-tick
# dedup over replayed phase telemetry) must keep running end to end from
# the CLI.
echo "==> gpm figure fleet --nodes 64 --fast"
cargo run --release --quiet -p gpm-cli -- figure fleet --nodes 64 --fast > /dev/null

# Fleet chaos smoke: the fault-injection tier (per-fault-class recovery
# time, worst rack overshoot, longest violation run) must keep running
# end to end from the CLI, fault grammar included.
echo "==> gpm figure fleet --faults ... --nodes 64 --fast"
cargo run --release --quiet -p gpm-cli -- figure fleet --nodes 64 --fast \
    --faults 'flap@0+8:period=4,down=2,from=2,to=8;corrupt:rate=0.5,to=8;timeout:rate=0.3,to=8' \
    --fault-seed 7 > /dev/null

# Smoke-run the throughput baseline (including the full-CMP two-phase
# cases, the lane-batched vs scalar capture-engine cases and the
# policy-decide latency cases) so the bench target cannot bit-rot;
# GPM_BENCH_QUICK bounds the run and failure means panic, not
# regression.
echo "==> GPM_BENCH_QUICK=1 cargo bench -p gpm-bench --bench sim_throughput"
GPM_BENCH_QUICK=1 cargo bench -p gpm-bench --bench sim_throughput

# Gate the recorded benchmark trajectory: any before/after speedup row
# in BENCH_sim_throughput.json below 0.95 (a >5% regression against its
# recorded baseline, beyond best-of-N noise) fails CI, as does a missing
# required row (the 64-way sharding comparison, the 256-way hierarchical
# decide latency). Tune with --floor; see the methodology block in that
# file.
echo "==> scripts/bench_check.py"
python3 scripts/bench_check.py

echo "CI OK"
