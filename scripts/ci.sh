#!/usr/bin/env bash
# Full local CI: format, lint, build, test.
#
# Everything runs offline against the vendored dependency subsets; no
# network access is required. Set GPM_THREADS=1 to exercise the serial
# paths (results are identical for any worker-pool width).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Smoke-run the throughput baseline so the bench target cannot bit-rot;
# GPM_BENCH_QUICK bounds the run and failure means panic, not regression.
echo "==> GPM_BENCH_QUICK=1 cargo bench -p gpm-bench --bench sim_throughput"
GPM_BENCH_QUICK=1 cargo bench -p gpm-bench --bench sim_throughput

echo "CI OK"
