#!/usr/bin/env python3
"""Regression gate over the recorded benchmark trajectory.

Walks BENCH_sim_throughput.json (repo root) and fails if any recorded
``"speedup"`` ratio sits below the floor (default 0.95, i.e. a >5%
regression against that row's recorded baseline). The floor matches the
measured round-to-round noise of the benchmark host (~±10%, best-of-N
recorded): a best-of ratio under 0.95 is a real regression, not noise.

It also fails if any REQUIRED_PATHS row is missing: load-bearing rows
(the wide-CMP sharding comparison, the 256-way hierarchical decide
latency, the cached 8-way decide latency, the fleet engine's sustained
decision throughput) must not silently drop out of the record when the
harness or the JSON is reorganised.

Usage:
    scripts/bench_check.py [--floor 0.95] [--file BENCH_sim_throughput.json]

The ``--floor`` knob sets the minimum acceptable value for every
``speedup`` row (default 0.95). Raise it to tighten the gate on a quieter
host, or lower it temporarily when a known-noisy row needs to land with a
recorded explanation; the floor applies uniformly to all speedup rows, so
per-row waivers belong in the record's notes, not here.

The speedup check is structural, not positional: every object anywhere in
the JSON document with a ``speedup`` key is gated, so new measurement
sections are covered automatically. Rows document themselves via their
JSON path.

Exit status: 0 when all required rows are present and all speedups clear
the floor, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


# Dotted JSON paths that must resolve to a number in the record. These are
# the rows later PRs' gates reason about; losing one silently would turn the
# trajectory file into noise.
REQUIRED_PATHS = (
    "simulated_mips.cmp_full_8way_mixed.speedup",
    "simulated_mips.cmp_full_64way.speedup",
    "policy_decide_latency.micros_per_decide.policy_decide_32way_exact",
    "policy_decide_latency.micros_per_decide.policy_decide_256way_hier",
    "policy_decide_latency.micros_per_decide.policy_decide_8way_cached",
    "fleet_decisions.fleet_decisions_10k_nodes.decisions_per_sec",
    "fleet_decisions.fleet_decisions_10k_nodes.hit_rate",
    "fleet_chaos_overhead.fleet_chaos_armed_10k_nodes.speedup",
    "serve_decisions.serve_decisions_10k_nodes.speedup",
    "serve_decisions.serve_decisions_10k_nodes.loopback_tcp_1shard_decisions_per_sec",
)


def resolve(document, dotted):
    """Follows a dotted key path through nested dicts; None when absent."""
    node = document
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def missing_required(document):
    """Yields every REQUIRED_PATHS entry absent or non-numeric."""
    for dotted in REQUIRED_PATHS:
        value = resolve(document, dotted)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            yield dotted


def walk_speedups(node, path=""):
    """Yields (json_path, value) for every "speedup" key in the document."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if key == "speedup" and isinstance(value, (int, float)):
                yield path or "<root>", float(value)
            else:
                yield from walk_speedups(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk_speedups(value, f"{path}[{i}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--floor",
        type=float,
        default=0.95,
        help="minimum acceptable speedup ratio (default: 0.95)",
    )
    parser.add_argument(
        "--file",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_sim_throughput.json",
        help="benchmark record to check (default: repo-root BENCH_sim_throughput.json)",
    )
    args = parser.parse_args()

    try:
        document = json.loads(args.file.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_check: cannot read {args.file}: {err}", file=sys.stderr)
        return 1

    absent = list(missing_required(document))
    for dotted in absent:
        print(f"bench_check: required row missing or non-numeric: {dotted}")

    rows = list(walk_speedups(document))
    if not rows:
        print(f"bench_check: no 'speedup' rows found in {args.file}", file=sys.stderr)
        return 1

    failures = [(path, value) for path, value in rows if value < args.floor]
    for path, value in failures:
        print(f"bench_check: {path}: speedup {value} < floor {args.floor}")
    print(
        f"bench_check: {len(REQUIRED_PATHS) - len(absent)}/{len(REQUIRED_PATHS)} "
        f"required rows present; {len(rows) - len(failures)}/{len(rows)} speedups "
        f"at or above {args.floor} in {args.file.name}"
    )
    return 1 if failures or absent else 0


if __name__ == "__main__":
    sys.exit(main())
