//! The `gpm` binary: parse, execute, print.

fn main() {
    let command = match gpm_cli::parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", gpm_cli::USAGE);
            std::process::exit(2);
        }
    };
    match gpm_cli::execute(command) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
