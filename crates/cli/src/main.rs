//! The `gpm` binary: parse, execute, print.

fn main() {
    let invocation = match gpm_cli::parse_args(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", gpm_cli::USAGE);
            std::process::exit(2);
        }
    };
    invocation.apply_thread_override();
    match gpm_cli::execute(invocation.command) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
