//! Implementation of the `gpm` command-line tool: argument parsing and the
//! subcommands. The binary in `main.rs` is a thin wrapper so that parsing
//! and execution stay unit-testable.
//!
//! ```text
//! gpm run    --combo "ammp|mcf|crafty|art" --policy maxbips --budget 0.83
//! gpm sweep  --combo "art|mcf" --policies maxbips,chipwide --budgets 0.6:1.0:0.05
//! gpm figure fig4            # regenerate one paper experiment
//! gpm list                   # benchmarks, combos, policies, experiments
//! ```
//!
//! Options: `--fast` (truncated ~6 ms regions), `--json` (machine-readable
//! run output where supported).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use gpm_cmp::{SimParams, TraceCmpSim};
use gpm_core::RunOptions;
use gpm_core::{
    static_oracle, sweep_policy, throughput_degradation, turbo_baseline, weighted_slowdown,
    BudgetSchedule, GlobalManager, MinPower, Policy,
};
use gpm_experiments::{ExperimentContext, PolicyKind};
use gpm_faults::FaultPlan;
use gpm_types::{GpmError, Result};
use gpm_workloads::{combos, SpecBenchmark, WorkloadCombo};

/// A fully parsed command line: the subcommand plus the global options
/// that apply to every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand to execute.
    pub command: Command,
    /// Worker-pool width from `--threads N` (`None` = `GPM_THREADS` or the
    /// detected hardware parallelism; see [`gpm_par::max_threads`]).
    pub threads: Option<usize>,
}

impl Invocation {
    /// Applies the `--threads` override to the process-wide worker pool.
    /// A no-op when the flag was not given.
    pub fn apply_thread_override(&self) {
        if self.threads.is_some() {
            gpm_par::set_max_threads(self.threads);
        }
    }
}

impl From<Command> for Invocation {
    fn from(command: Command) -> Self {
        Self {
            command,
            threads: None,
        }
    }
}

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one policy at one budget and report the outcome.
    Run {
        /// The workload combination.
        combo: WorkloadCombo,
        /// Policy to drive the chip.
        policy: PolicySpec,
        /// Budget as a fraction of maximum chip power.
        budget: f64,
        /// Emit the full run as JSON instead of a summary.
        json: bool,
        /// Use truncated captures.
        fast: bool,
        /// Fault plan injected at the sensor/actuator seam, if any.
        faults: Option<FaultPlan>,
        /// Disable the guard rails (only meaningful with `faults`;
        /// reproduces the paper's trusting controller under faults).
        no_guards: bool,
    },
    /// Sweep policies across budgets (policy curves).
    Sweep {
        /// The workload combination.
        combo: WorkloadCombo,
        /// Policies to sweep.
        policies: Vec<PolicySpec>,
        /// Budget points.
        budgets: Vec<f64>,
        /// Use truncated captures.
        fast: bool,
    },
    /// Regenerate one paper experiment by name (`fig4`, `table5`, …).
    Figure {
        /// Experiment name.
        name: String,
        /// Use truncated captures.
        fast: bool,
        /// Core-count restriction for the wide/hierarchical scaling tiers
        /// (`--cores 16|32|64|128|256`; `None` runs each tier's default
        /// widths).
        cores: Option<usize>,
        /// Fleet size for the `fleet` saturating-load tier
        /// (`--nodes N`; `None` = 10 000 nodes).
        nodes: Option<usize>,
        /// Raw fleet fault spec for the `fleet` chaos tier
        /// (`--faults SPEC`; the fleet grammar — flap/skew/corrupt/
        /// timeout — parsed by `gpm_faults::FleetFaultPlan`).
        faults: Option<String>,
        /// Seed override for the chaos tier's probability draws.
        fault_seed: Option<u64>,
        /// Emit machine-readable JSON instead of the text rendering
        /// (currently the `fleet` saturating-load tier only).
        json: bool,
    },
    /// Serve the sharded fleet decision engine over TCP or a Unix socket.
    Serve {
        /// Endpoint to listen on (`tcp:host:port`, `unix:path`, or bare
        /// `host:port`).
        listen: String,
        /// Shard count: engines and worker threads.
        shards: usize,
        /// Fleet fault spec armed on every shard, if any.
        faults: Option<String>,
        /// Seed override for the fault plan's probability draws.
        fault_seed: Option<u64>,
        /// Whole-rack power budget in watts, divided evenly across
        /// shards.
        rack_budget: Option<f64>,
        /// Exit after the first client disconnects (scripted smokes).
        once: bool,
    },
    /// Drive a serve endpoint with the synthetic fleet load.
    Loadgen {
        /// Endpoint to connect to (same grammar as `--listen`).
        connect: String,
        /// Nodes submitted per tick.
        nodes: usize,
        /// Measured ticks (after the warm epoch).
        ticks: usize,
        /// Emit the report as JSON.
        json: bool,
        /// Send a shutdown frame when done, stopping the server.
        shutdown: bool,
    },
    /// List benchmarks, combos, policies and experiments.
    List,
    /// Print usage.
    Help,
}

/// A policy selected on the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// One of the named dynamic policies.
    Kind(PolicyKind),
    /// The MinPower extension with its throughput-target fraction.
    MinPower(f64),
    /// The offline optimistic-static bound.
    Static,
}

impl PolicySpec {
    /// Parses `maxbips`, `priority`, `pullhipushlo`, `chipwide`, `oracle`,
    /// `greedy`, `hier`, `cached`, `static`, or `minpower:<target>`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        let lower = s.to_ascii_lowercase();
        if let Some(target) = lower.strip_prefix("minpower:") {
            let target: f64 = target.parse().map_err(|_| GpmError::InvalidConfig {
                parameter: "policy",
                reason: format!("bad MinPower target in `{s}`"),
            })?;
            return Ok(PolicySpec::MinPower(target));
        }
        Ok(match lower.as_str() {
            "maxbips" => PolicySpec::Kind(PolicyKind::MaxBips),
            "priority" => PolicySpec::Kind(PolicyKind::Priority),
            "pullhipushlo" => PolicySpec::Kind(PolicyKind::PullHiPushLo),
            "chipwide" | "chipwidedvfs" => PolicySpec::Kind(PolicyKind::ChipWide),
            "oracle" => PolicySpec::Kind(PolicyKind::Oracle),
            "greedy" | "greedymaxbips" => PolicySpec::Kind(PolicyKind::GreedyMaxBips),
            "hier" | "hiermaxbips" => PolicySpec::Kind(PolicyKind::HierMaxBips),
            "cached" | "cachedmaxbips" => PolicySpec::Kind(PolicyKind::CachedMaxBips),
            "static" => PolicySpec::Static,
            _ => {
                return Err(GpmError::InvalidConfig {
                    parameter: "policy",
                    reason: format!("unknown policy `{s}`"),
                })
            }
        })
    }

    fn make(&self) -> Option<Box<dyn Policy>> {
        match self {
            PolicySpec::Kind(kind) => Some(kind.make()),
            PolicySpec::MinPower(target) => Some(Box::new(MinPower::new(*target))),
            PolicySpec::Static => None,
        }
    }
}

/// Parses a `lo:hi:step` budget range or a comma list of fractions.
///
/// # Errors
///
/// Returns [`GpmError::InvalidConfig`] on malformed input.
pub fn parse_budgets(s: &str) -> Result<Vec<f64>> {
    let bad = |reason: String| GpmError::InvalidConfig {
        parameter: "budgets",
        reason,
    };
    if s.contains(':') {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(bad(format!("`{s}` is not lo:hi:step")));
        }
        let nums: Vec<f64> = parts
            .iter()
            .map(|p| p.parse().map_err(|_| bad(format!("bad number in `{s}`"))))
            .collect::<Result<_>>()?;
        let (lo, hi, step) = (nums[0], nums[1], nums[2]);
        if step <= 0.0 || hi < lo {
            return Err(bad(format!("empty range `{s}`")));
        }
        let mut out = Vec::new();
        let mut b = lo;
        while b <= hi + 1e-9 {
            out.push((b * 1000.0).round() / 1000.0);
            b += step;
        }
        Ok(out)
    } else {
        s.split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| bad(format!("bad number `{p}`")))
            })
            .collect()
    }
}

/// Parses the command line (without the program name).
///
/// # Errors
///
/// Returns [`GpmError::InvalidConfig`] on unknown commands, flags or values.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation> {
    let mut args = args.into_iter().peekable();
    let bad = |reason: String| GpmError::InvalidConfig {
        parameter: "arguments",
        reason,
    };
    let Some(cmd) = args.next() else {
        return Ok(Command::Help.into());
    };

    // Collect `--key value` pairs and bare flags.
    let mut combo: Option<WorkloadCombo> = None;
    let mut policy = None;
    let mut policies = None;
    let mut budget = None;
    let mut budgets = None;
    let mut threads = None;
    let mut cores = None;
    let mut nodes = None;
    let mut fast = false;
    let mut json = false;
    let mut faults: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut no_guards = false;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut ticks: Option<usize> = None;
    let mut rack_budget: Option<f64> = None;
    let mut once = false;
    let mut shutdown = false;
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--json" => json = true,
            "--once" => once = true,
            "--shutdown" => shutdown = true,
            "--listen" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--listen needs an endpoint".into()))?;
                listen = Some(v);
            }
            "--connect" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--connect needs an endpoint".into()))?;
                connect = Some(v);
            }
            "--shards" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--shards needs a value".into()))?;
                let n =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        bad(format!("bad shard count `{v}` (need an integer ≥ 1)"))
                    })?;
                shards = Some(n);
            }
            "--ticks" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--ticks needs a value".into()))?;
                let n =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        bad(format!("bad tick count `{v}` (need an integer ≥ 1)"))
                    })?;
                ticks = Some(n);
            }
            "--rack-budget" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--rack-budget needs watts".into()))?;
                let w = v
                    .parse::<f64>()
                    .ok()
                    .filter(|w| w.is_finite() && *w > 0.0)
                    .ok_or_else(|| bad(format!("bad rack budget `{v}` (need watts > 0)")))?;
                rack_budget = Some(w);
            }
            "--threads" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--threads needs a value".into()))?;
                let n =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        bad(format!("bad thread count `{v}` (need an integer ≥ 1)"))
                    })?;
                threads = Some(n);
            }
            "--combo" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--combo needs a value".into()))?;
                combo = Some(WorkloadCombo::parse(&v)?);
            }
            "--policy" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--policy needs a value".into()))?;
                policy = Some(PolicySpec::parse(&v)?);
            }
            "--policies" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--policies needs a value".into()))?;
                policies = Some(
                    v.split(',')
                        .map(PolicySpec::parse)
                        .collect::<Result<Vec<_>>>()?,
                );
            }
            "--budget" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--budget needs a value".into()))?;
                budget = Some(
                    v.parse::<f64>()
                        .map_err(|_| bad(format!("bad budget `{v}`")))?,
                );
            }
            "--cores" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--cores needs a value".into()))?;
                let n = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| [16, 32, 64, 128, 256].contains(n))
                    .ok_or_else(|| {
                        bad(format!(
                            "bad core count `{v}` (need 16, 32, 64, 128 or 256 — \
                             a power-of-two multiple of the 8-core cluster size)"
                        ))
                    })?;
                cores = Some(n);
            }
            "--nodes" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--nodes needs a value".into()))?;
                let n =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        bad(format!("bad node count `{v}` (need an integer ≥ 1)"))
                    })?;
                nodes = Some(n);
            }
            "--no-guards" => no_guards = true,
            "--faults" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--faults needs a spec (see README)".into()))?;
                faults = Some(v);
            }
            "--fault-seed" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--fault-seed needs a value".into()))?;
                fault_seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| bad(format!("bad fault seed `{v}`")))?,
                );
            }
            "--budgets" => {
                let v = args
                    .next()
                    .ok_or_else(|| bad("--budgets needs a value".into()))?;
                budgets = Some(parse_budgets(&v)?);
            }
            other if other.starts_with("--") => {
                return Err(bad(format!("unknown flag `{other}`")));
            }
            other => positional.push(other.to_owned()),
        }
    }

    let command = match cmd.as_str() {
        "run" => Command::Run {
            combo: combo.unwrap_or_else(combos::ammp_mcf_crafty_art),
            policy: policy.unwrap_or(PolicySpec::Kind(PolicyKind::MaxBips)),
            budget: budget.unwrap_or(0.8),
            json,
            fast,
            faults: match (faults, fault_seed) {
                (Some(spec), Some(seed)) => Some(FaultPlan::parse(&spec)?.seeded(seed)),
                (Some(spec), None) => Some(FaultPlan::parse(&spec)?),
                (None, _) => None,
            },
            no_guards,
        },
        "sweep" => Command::Sweep {
            combo: combo.unwrap_or_else(combos::ammp_mcf_crafty_art),
            policies: policies.unwrap_or_else(|| {
                vec![
                    PolicySpec::Kind(PolicyKind::MaxBips),
                    PolicySpec::Kind(PolicyKind::ChipWide),
                ]
            }),
            budgets: budgets.unwrap_or_else(|| gpm_core::DEFAULT_BUDGETS.to_vec()),
            fast,
        },
        "figure" | "experiment" => {
            let name = positional
                .first()
                .cloned()
                .ok_or_else(|| bad("figure needs an experiment name (e.g. fig4)".into()))?;
            Command::Figure {
                name,
                fast,
                cores,
                nodes,
                faults,
                fault_seed,
                json,
            }
        }
        "serve" => Command::Serve {
            listen: listen.ok_or_else(|| bad("serve needs --listen <endpoint>".into()))?,
            shards: shards.unwrap_or(1),
            faults,
            fault_seed,
            rack_budget,
            once,
        },
        "loadgen" => Command::Loadgen {
            connect: connect.ok_or_else(|| bad("loadgen needs --connect <endpoint>".into()))?,
            nodes: nodes.unwrap_or(1_000),
            ticks: ticks.unwrap_or(8),
            json,
            shutdown,
        },
        "list" => Command::List,
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(bad(format!("unknown command `{other}`"))),
    };
    Ok(Invocation { command, threads })
}

/// Usage text.
pub const USAGE: &str = "gpm — global CMP power management (MICRO 2006 reproduction)

USAGE:
  gpm run    [--combo \"a|b|c\"] [--policy NAME] [--budget F] [--json] [--fast]
             [--faults SPEC] [--fault-seed N] [--no-guards]
  gpm sweep  [--combo \"a|b|c\"] [--policies a,b,c] [--budgets lo:hi:step] [--fast]
  gpm figure NAME [--fast] [--cores 16|32|64|128|256] [--nodes N]
                  [--faults SPEC] [--fault-seed N]
                                regenerate a paper experiment (see `gpm list`);
                                --cores picks one CMP width for the `wide`
                                scaling tier (default 16 and 32; 64/128/256
                                route to the hierarchical tier) or for the
                                `hier` tier (default 64, 128 and 256);
                                --nodes sizes the `fleet` saturating-load
                                tier (default 10000 simulated CMP nodes);
                                --faults switches the `fleet` tier to the
                                chaos runs (default 1000 nodes): fleet
                                grammar `kind[@nodes][:key=val,...]` with
                                kinds flap (period=, down=), skew (ticks=),
                                corrupt (field=nan|neg|shape, rate=),
                                timeout (rate=); windows from=/to= in
                                ticks, nodes `all` or `+`-joined ids.
                                Example: --faults \"flap@0+1:period=4,from=2,to=8\"
                                --json emits the `fleet` load tier as JSON
  gpm serve   --listen EP [--shards K] [--faults SPEC] [--fault-seed N]
              [--rack-budget W] [--once]
                                serve the sharded fleet decision engine;
                                EP is tcp:host:port, unix:path, or bare
                                host:port (tcp:host:0 binds an ephemeral
                                port, announced on stdout); --shards K
                                pins K engines to K worker threads
                                (node → shard via splitmix64); --faults
                                arms the fleet chaos plan on every shard
                                (degraded mode on); --rack-budget W
                                splits a whole-rack watt budget evenly
                                across shards; --once exits after the
                                first client disconnects; a client's
                                shutdown frame always stops the server
  gpm loadgen --connect EP [--nodes N] [--ticks T] [--json] [--shutdown]
                                drive a serve endpoint with the synthetic
                                phase-repeating fleet (default 1000 nodes,
                                8 measured ticks after a warm epoch);
                                reports decisions/s and p50/p99 per-tick
                                latency; --shutdown stops the server when
                                done
  gpm list                      benchmarks, combos, policies, experiments
  gpm help

GLOBAL OPTIONS:
  --threads N    worker-pool width for capture/sweep/figure parallelism
                 (default: GPM_THREADS env var, else the detected core
                 count; results are identical for any value)

POLICIES: maxbips, priority, pullhipushlo, chipwide, oracle, greedy, hier,
          cached (MaxBIPS behind the decision cache), minpower:<target>,
          static (sweep only)

FAULTS:   SPEC is `kind[@cores][:key=val,...]` clauses joined by `;`.
          Kinds: noise (std=F), bias (factor=F), stale (lag=N),
          dropout, stuck (delay=N, omitted = ignore), shock (frac=F).
          Cores: `all` (default) or `+`-joined indices, e.g. `0+2`.
          Windows: from=N, to=N in 500 µs explore intervals, half-open.
          Example: --faults \"dropout@1:from=3,to=6;noise@all:std=0.05\"
          Guard rails are on by default under faults; --no-guards runs
          the paper's trusting controller instead.
";

fn context(fast: bool) -> ExperimentContext {
    if fast {
        ExperimentContext::fast()
    } else {
        ExperimentContext::full()
    }
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Propagates capture/simulation errors and unknown experiment names.
pub fn execute(command: Command) -> Result<String> {
    match command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::List => Ok(list_text()),
        Command::Run {
            combo,
            policy,
            budget,
            json,
            fast,
            faults,
            no_guards,
        } => run_one(&combo, &policy, budget, json, fast, faults, no_guards),
        Command::Sweep {
            combo,
            policies,
            budgets,
            fast,
        } => run_sweep(&combo, &policies, &budgets, fast),
        Command::Figure {
            name,
            fast,
            cores,
            nodes,
            faults,
            fault_seed,
            json,
        } => run_figure(
            &name,
            fast,
            cores,
            nodes,
            faults.as_deref(),
            fault_seed,
            json,
        ),
        Command::Serve {
            listen,
            shards,
            faults,
            fault_seed,
            rack_budget,
            once,
        } => run_serve(
            &listen,
            shards,
            faults.as_deref(),
            fault_seed,
            rack_budget,
            once,
        ),
        Command::Loadgen {
            connect,
            nodes,
            ticks,
            json,
            shutdown,
        } => run_loadgen(&connect, nodes, ticks, json, shutdown),
    }
}

/// Builds the per-shard engine config for `gpm serve`: the PR 9 chaos /
/// degraded / rack machinery armed per shard when requested. A whole-rack
/// budget is divided evenly across shards — deterministic, but each shard
/// enforces its slice independently (a single global arbiter would shed
/// differently; see DESIGN.md §15).
fn serve_config(
    shards: usize,
    faults: Option<&str>,
    fault_seed: Option<u64>,
    rack_budget: Option<f64>,
) -> Result<gpm_core::FleetConfig> {
    let mut config = gpm_core::FleetConfig::default();
    if let Some(spec) = faults {
        let mut plan = gpm_faults::FleetFaultPlan::parse(spec)?;
        if let Some(seed) = fault_seed {
            plan = plan.seeded(seed);
        }
        config.faults = Some(plan);
        config.degraded = Some(gpm_core::DegradedConfig::default());
    }
    if let Some(watts) = rack_budget {
        config.rack = Some(gpm_core::RackConfig::new(gpm_types::Watts::new(
            watts / shards as f64,
        )));
    }
    Ok(config)
}

fn run_serve(
    listen: &str,
    shards: usize,
    faults: Option<&str>,
    fault_seed: Option<u64>,
    rack_budget: Option<f64>,
    once: bool,
) -> Result<String> {
    let endpoint = gpm_net::Endpoint::parse(listen)?;
    let config = serve_config(shards, faults, fault_seed, rack_budget)?;
    let server = gpm_net::Server::bind(
        &endpoint,
        gpm_net::ServeOptions {
            shards,
            config,
            once,
        },
    )?;
    // Announce the bound endpoint before blocking so scripts driving
    // `--listen tcp:127.0.0.1:0` can learn the ephemeral port.
    println!(
        "gpm serve: listening on {} ({shards} shards)",
        server.local_endpoint()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run()?;
    Ok(format!(
        "gpm serve: done — {} connections, {} ticks, {} decisions\n\
         hit rate {:.1}%  router rejected {}\n",
        summary.connections,
        summary.ticks,
        summary.decisions,
        100.0 * summary.stats.fleet.hit_rate(),
        summary.stats.router_rejected,
    ))
}

fn run_loadgen(
    connect: &str,
    nodes: usize,
    ticks: usize,
    json: bool,
    shutdown: bool,
) -> Result<String> {
    let endpoint = gpm_net::Endpoint::parse(connect)?;
    let report = gpm_net::loadgen::run(
        &endpoint,
        &gpm_net::LoadgenOptions {
            nodes,
            ticks,
            shutdown,
        },
    )?;
    Ok(if json {
        report.to_json()
    } else {
        report.render()
    })
}

fn list_text() -> String {
    let mut out = String::from("benchmarks:\n  ");
    out.push_str(
        &SpecBenchmark::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("\n\ncombos (Table 2):\n");
    for combo in combos::two_way_suite()
        .into_iter()
        .chain(combos::four_way_suite())
        .chain(combos::eight_way_suite())
    {
        let _ = writeln!(out, "  {}", combo.label());
    }
    let _ = writeln!(
        out,
        "\ncombos (wide-CMP tier):\n  16-way: {}\n  32-way: 16-way doubled\n  \
         64/128/256-way: doubled again (hierarchical tier, 8-core clusters)",
        combos::sixteen_way_mixed().label()
    );
    out.push_str(
        "\npolicies: maxbips priority pullhipushlo chipwide oracle greedy hier \
         cached minpower:<t> static\n",
    );
    out.push_str(
        "\nexperiments: table3 table4 table5 fig2 fig3 fig4 fig5 fig6 fig6_faulted fig7\n",
    );
    out.push_str(
        "             fig8 fig9 fig10 fig11 wide hier fleet validation prediction minpower\n",
    );
    out.push_str("             thermal transition\n");
    out
}

fn run_one(
    combo: &WorkloadCombo,
    policy: &PolicySpec,
    budget: f64,
    json: bool,
    fast: bool,
    faults: Option<FaultPlan>,
    no_guards: bool,
) -> Result<String> {
    if budget <= 0.0 || budget > 1.0 {
        return Err(GpmError::InvalidConfig {
            parameter: "budget",
            reason: format!("{budget} outside (0, 1]"),
        });
    }
    let ctx = context(fast);
    let traces = ctx.traces(combo)?;
    let params = SimParams::default();
    let baseline = turbo_baseline(&traces, &params)?;

    let Some(mut boxed) = policy.make() else {
        // Static: offline analysis.
        let envelope: gpm_types::Watts = traces
            .iter()
            .map(|t| t.trace(gpm_types::PowerMode::Turbo).peak_power())
            .sum();
        let base = static_oracle::all_turbo(&traces)?;
        let best = static_oracle::best_or_floor(
            &traces,
            envelope * budget,
            static_oracle::BudgetCriterion::PeakPower,
        )?;
        return Ok(format!(
            "Static (offline, optimistic) on {} at {:.0}% budget:\n  modes {}\n  ΔPerf {:.2}%  w.slowdown {:.2}%  avg power {:.1}\n",
            combo,
            budget * 100.0,
            best.modes,
            best.degradation_vs(&base) * 100.0,
            best.weighted_slowdown_vs(&base) * 100.0,
            best.average_power,
        ));
    };

    let sim = TraceCmpSim::new(traces, params)?;
    let faulted = faults.is_some();
    let options = match faults {
        Some(plan) if no_guards => RunOptions {
            faults: Some(plan),
            guards: None,
        },
        Some(plan) => RunOptions::faulted(plan),
        None => RunOptions::default(),
    };
    let run = GlobalManager::new().run_with(
        sim,
        &mut *boxed,
        &BudgetSchedule::constant(budget),
        &options,
    )?;
    if json {
        return run.to_json();
    }
    let mut out = format!(
        "{} on {} at {:.0}% budget:\n  ΔPerf {:.2}%  w.slowdown {:.2}%  power/budget {:.1}%\n  avg power {:.1}  avg BIPS {:.2}  stalls {:.1}  intervals {}\n",
        run.policy,
        combo,
        budget * 100.0,
        throughput_degradation(&run, &baseline) * 100.0,
        weighted_slowdown(&run, &baseline) * 100.0,
        run.budget_utilization() * 100.0,
        run.average_chip_power(),
        run.average_chip_bips(),
        run.total_stall(),
        run.records.len(),
    );
    if faulted {
        let _ = writeln!(
            out,
            "  faults: {} events  guards: {}{} actions  worst overshoot {:.2}  longest violation run {}",
            run.fault_events.len(),
            if no_guards { "off, " } else { "" },
            run.guard_actions.len(),
            run.worst_overshoot_watts(),
            run.longest_violation_run(),
        );
    }
    let cc = run.cache_counters;
    if cc.decisions_total > 0 {
        let _ = writeln!(
            out,
            "  cache: {} decisions  {} hits ({:.0}%)  {} dedup  solver µs saved {:.0}",
            cc.decisions_total,
            cc.cache_hits,
            cc.hit_rate() * 100.0,
            cc.dedup_hits,
            cc.solver_us_saved,
        );
    }
    Ok(out)
}

fn run_sweep(
    combo: &WorkloadCombo,
    policies: &[PolicySpec],
    budgets: &[f64],
    fast: bool,
) -> Result<String> {
    let ctx = context(fast);
    let traces = ctx.traces(combo)?;
    let params = SimParams::default();
    let baseline = turbo_baseline(&traces, &params)?;

    let mut out = format!("policy curves for {combo} (ΔPerf per budget)\n");
    let mut header = vec![format!("{:<14}", "policy")];
    header.extend(budgets.iter().map(|b| format!("{:>7.0}%", b * 100.0)));
    out.push_str(&header.join(" "));
    out.push('\n');

    for spec in policies {
        let curve = match spec {
            PolicySpec::Static => {
                let sub = ExperimentContext::new(
                    gpm_trace::TraceStore::new(ctx.store().config().clone()),
                    params.clone(),
                    budgets.to_vec(),
                );
                gpm_experiments::static_curve(&sub, combo)?
            }
            PolicySpec::Kind(kind) => {
                sweep_policy(&traces, &params, budgets, &baseline, &|| kind.make())?
            }
            PolicySpec::MinPower(target) => {
                let t = *target;
                sweep_policy(&traces, &params, budgets, &baseline, &move || {
                    Box::new(MinPower::new(t))
                })?
            }
        };
        let mut cells = vec![format!("{:<14}", curve.policy)];
        for p in &curve.points {
            cells.push(format!("{:>7.2}%", p.perf_degradation * 100.0));
        }
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    Ok(out)
}

fn run_figure(
    name: &str,
    fast: bool,
    cores: Option<usize>,
    nodes: Option<usize>,
    faults: Option<&str>,
    fault_seed: Option<u64>,
    json: bool,
) -> Result<String> {
    use gpm_experiments as exp;
    let ctx = context(fast);
    let unknown = || GpmError::InvalidConfig {
        parameter: "experiment",
        reason: format!("unknown experiment `{name}` (see `gpm list`)"),
    };
    Ok(match name.to_ascii_lowercase().as_str() {
        "table3" => exp::tables::table3().render(),
        "table4" => exp::tables::table4(&gpm_power::DvfsParams::paper()).render(),
        "table5" => exp::tables::table5(&gpm_power::DvfsParams::paper()).render(),
        "fig2" => exp::fig2::run(&ctx)?.render(),
        "fig3" => exp::fig3::run(&ctx)?.render(),
        "fig4" => exp::fig4::run(&ctx)?.render(),
        "fig5" => exp::fig5::run(&ctx)?.render(),
        "fig6" => exp::fig6::run(&ctx)?.render(),
        "fig6_faulted" | "fig6f" => exp::fig6_faulted::run(&ctx)?.render(),
        "fig7" => exp::fig7::run(&ctx)?.render(),
        "fig8" => exp::scaling::fig8(&ctx)?.render(),
        "fig9" => exp::scaling::fig9(&ctx)?.render(),
        "fig10" => exp::scaling::fig10(&ctx)?.render(),
        "fig11" => exp::scaling::fig11(&ctx)?.render(),
        "wide" => {
            let widths = cores.map_or_else(|| vec![16, 32], |c| vec![c]);
            if widths.iter().any(|&c| c > 32) {
                // 64-way and up belong to the hierarchical tier.
                exp::scaling::hier(&ctx, &widths)?.render()
            } else {
                exp::scaling::wide(&ctx, &widths)?.render()
            }
        }
        "hier" => {
            let widths = cores.map_or_else(|| vec![64, 128, 256], |c| vec![c]);
            exp::scaling::hier(&ctx, &widths)?.render()
        }
        "fleet" => match faults {
            Some(spec) => {
                if json {
                    return Err(GpmError::InvalidConfig {
                        parameter: "json",
                        reason: "--json covers the fleet load tier only, not the chaos tier".into(),
                    });
                }
                // Chaos tier: cold-start runs per fault class. More ticks
                // than the load tier so windowed faults can close and the
                // service can demonstrate recovery.
                let ticks = if fast { 12 } else { 24 };
                exp::fleet_chaos::run(nodes.unwrap_or(1_000), ticks, spec, fault_seed)?.render()
            }
            None => {
                let ticks = if fast { 4 } else { 12 };
                let load = exp::fleet::run(nodes.unwrap_or(10_000), ticks)?;
                if json {
                    load.to_json()
                } else {
                    load.render()
                }
            }
        },
        "validation" => exp::validation::render_trace_vs_full(&exp::validation::run_trace_vs_full(
            &ctx,
            gpm_types::Micros::from_millis(2.0),
        )?),
        "prediction" => {
            exp::validation::prediction_error(&ctx, &combos::ammp_mcf_crafty_art(), 0.8)?.render()
        }
        "minpower" => exp::ablation::dual_problem(&ctx)?.render(),
        "thermal" => exp::ablation::thermal(&ctx, 72.0)?.render(),
        "transition" => exp::ablation::transition_overlap(&ctx)?.render(),
        _ => return Err(unknown()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Command> {
        parse_args(line.split_whitespace().map(str::to_owned)).map(|inv| inv.command)
    }

    #[test]
    fn parses_run_with_all_flags() {
        let cmd =
            parse("run --combo art|mcf --policy maxbips --budget 0.75 --fast --json").unwrap();
        match cmd {
            Command::Run {
                combo,
                policy,
                budget,
                json,
                fast,
                faults,
                no_guards,
            } => {
                assert_eq!(combo.label(), "art|mcf");
                assert_eq!(policy, PolicySpec::Kind(PolicyKind::MaxBips));
                assert_eq!(budget, 0.75);
                assert!(json && fast);
                assert!(faults.is_none() && !no_guards);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_sweep_with_budget_range() {
        let cmd =
            parse("sweep --policies maxbips,static,minpower:0.95 --budgets 0.6:0.8:0.1").unwrap();
        match cmd {
            Command::Sweep {
                policies, budgets, ..
            } => {
                assert_eq!(policies.len(), 3);
                assert_eq!(policies[1], PolicySpec::Static);
                assert_eq!(policies[2], PolicySpec::MinPower(0.95));
                assert_eq!(budgets, vec![0.6, 0.7, 0.8]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_figure_and_list_and_help() {
        assert!(matches!(
            parse("figure fig4 --fast").unwrap(),
            Command::Figure { ref name, fast: true, cores: None, nodes: None, .. } if name == "fig4"
        ));
        assert_eq!(parse("list").unwrap(), Command::List);
        assert_eq!(parse("help").unwrap(), Command::Help);
        assert_eq!(parse("").unwrap(), Command::Help);
    }

    #[test]
    fn parses_cores_flag() {
        assert!(matches!(
            parse("figure wide --cores 16 --fast").unwrap(),
            Command::Figure { ref name, fast: true, cores: Some(16), .. } if name == "wide"
        ));
        assert!(matches!(
            parse("figure wide --cores 32").unwrap(),
            Command::Figure {
                cores: Some(32),
                ..
            }
        ));
        for cores in [64, 128, 256] {
            assert!(
                matches!(
                    parse(&format!("figure hier --cores {cores}")).unwrap(),
                    Command::Figure { cores: Some(c), .. } if c == cores
                ),
                "--cores {cores} must parse"
            );
        }
        assert!(parse("figure wide --cores 7").is_err());
        assert!(parse("figure wide --cores 48").is_err());
        assert!(parse("figure wide --cores 512").is_err());
        assert!(parse("figure wide --cores lots").is_err());
        assert!(parse("figure wide --cores").is_err());
    }

    #[test]
    fn parses_nodes_flag_and_cached_policy() {
        assert!(matches!(
            parse("figure fleet --nodes 64 --fast").unwrap(),
            Command::Figure { ref name, fast: true, cores: None, nodes: Some(64), .. }
                if name == "fleet"
        ));
        assert!(matches!(
            parse("figure fleet").unwrap(),
            Command::Figure { nodes: None, .. }
        ));
        assert!(parse("figure fleet --nodes 0").is_err());
        assert!(parse("figure fleet --nodes many").is_err());
        assert!(parse("figure fleet --nodes").is_err());
        for spec in ["cached", "CachedMaxBIPS"] {
            assert_eq!(
                PolicySpec::parse(spec).unwrap(),
                PolicySpec::Kind(PolicyKind::CachedMaxBips)
            );
        }
    }

    #[test]
    fn fleet_figure_reports_steady_state_hits() {
        let out = run_figure("fleet", true, None, Some(64), None, None, false).unwrap();
        assert!(out.contains("64 nodes x 4 ticks"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("100.0%"), "{out}");
    }

    #[test]
    fn cached_run_prints_cache_summary() {
        let out = execute(Command::Run {
            combo: combos::art_mcf(),
            policy: PolicySpec::Kind(PolicyKind::CachedMaxBips),
            budget: 0.8,
            json: false,
            fast: true,
            faults: None,
            no_guards: false,
        })
        .unwrap();
        assert!(out.contains("CachedMaxBIPS"), "{out}");
        assert!(out.contains("cache:"), "{out}");
        assert!(out.contains("decisions"), "{out}");
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(parse("frobnicate").is_err());
        assert!(parse("run --policy nosuch").is_err());
        assert!(parse("run --combo quake|doom").is_err());
        assert!(parse("run --nonsense").is_err());
        assert!(parse("figure").is_err());
    }

    #[test]
    fn parses_threads_flag() {
        let inv = parse_args("list --threads 3".split_whitespace().map(str::to_owned)).unwrap();
        assert_eq!(inv.threads, Some(3));
        assert_eq!(inv.command, Command::List);
        let inv = parse_args(["list".to_owned()]).unwrap();
        assert_eq!(inv.threads, None);
        assert!(parse("list --threads 0").is_err());
        assert!(parse("list --threads many").is_err());
        assert!(parse("list --threads").is_err());
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_budgets("0.7,0.8").unwrap(), vec![0.7, 0.8]);
        assert_eq!(parse_budgets("0.6:0.7:0.05").unwrap(), vec![0.6, 0.65, 0.7]);
        assert!(parse_budgets("0.9:0.6:0.1").is_err());
        assert!(parse_budgets("a:b:c").is_err());
        assert!(parse_budgets("xyz").is_err());
    }

    #[test]
    fn help_and_list_execute() {
        assert!(execute(Command::Help).unwrap().contains("USAGE"));
        let list = execute(Command::List).unwrap();
        assert!(list.contains("ammp|mcf|crafty|art"));
        assert!(list.contains("maxbips"));
        assert!(list.contains("hier"));
        assert!(list.contains("64/128/256-way"));
    }

    #[test]
    fn static_tables_execute_without_captures() {
        for name in ["table3", "table4", "table5"] {
            let out = run_figure(name, true, None, None, None, None, false).unwrap();
            assert!(out.contains("Table"), "{name}: {out}");
        }
        assert!(run_figure("nope", true, None, None, None, None, false).is_err());
    }

    #[test]
    fn run_rejects_bad_budget() {
        let combo = combos::art_mcf();
        assert!(run_one(
            &combo,
            &PolicySpec::Kind(PolicyKind::MaxBips),
            1.5,
            false,
            true,
            None,
            false
        )
        .is_err());
    }

    #[test]
    fn end_to_end_run_and_sweep_fast() {
        let out = execute(Command::Run {
            combo: combos::art_mcf(),
            policy: PolicySpec::Kind(PolicyKind::MaxBips),
            budget: 0.8,
            json: false,
            fast: true,
            faults: None,
            no_guards: false,
        })
        .unwrap();
        assert!(out.contains("MaxBIPS"), "{out}");
        assert!(out.contains("ΔPerf"));

        let out = execute(Command::Sweep {
            combo: combos::art_mcf(),
            policies: vec![
                PolicySpec::Kind(PolicyKind::MaxBips),
                PolicySpec::MinPower(0.95),
            ],
            budgets: vec![0.7, 0.9],
            fast: true,
        })
        .unwrap();
        assert!(out.contains("MaxBIPS"));
        assert!(out.contains("MinPower"));
    }

    #[test]
    fn parses_fault_flags() {
        let cmd =
            parse("run --combo art|mcf --faults dropout@1:from=3,to=6 --fault-seed 7 --no-guards")
                .unwrap();
        match cmd {
            Command::Run {
                faults, no_guards, ..
            } => {
                let plan = faults.expect("plan parsed");
                assert_eq!(plan.seed, 7);
                assert_eq!(plan.clauses.len(), 1);
                assert!(no_guards);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --faults nosuchkind").is_err());
        assert!(parse("run --fault-seed notanumber").is_err());
        assert!(parse("run --faults").is_err());
    }

    #[test]
    fn faulted_run_reports_fault_summary() {
        let out = execute(Command::Run {
            combo: combos::art_mcf(),
            policy: PolicySpec::Kind(PolicyKind::MaxBips),
            budget: 0.8,
            json: false,
            fast: true,
            faults: Some(FaultPlan::parse("dropout@1:from=2,to=4").unwrap()),
            no_guards: false,
        })
        .unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("worst overshoot"), "{out}");
    }

    #[test]
    fn json_run_roundtrips() {
        let out = execute(Command::Run {
            combo: combos::art_mcf(),
            policy: PolicySpec::Kind(PolicyKind::MaxBips),
            budget: 0.8,
            json: true,
            fast: true,
            faults: None,
            no_guards: false,
        })
        .unwrap();
        let run = gpm_core::RunResult::from_json(&out).unwrap();
        assert_eq!(run.policy, "MaxBIPS");
    }
}
