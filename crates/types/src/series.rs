//! Fixed-rate time series used for power and performance telemetry.

use serde::{Deserialize, Serialize};

use crate::{Micros, SummaryStats};

/// One timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample<T> {
    /// Time since the start of the run.
    pub at: Micros,
    /// The observed value.
    pub value: T,
}

/// A time series sampled on a fixed grid (every `dt` microseconds), matching
/// the paper's `delta_sim_time` bookkeeping: the simulator re-evaluates
/// per-core and chip statistics every 50 µs.
///
/// # Examples
///
/// ```
/// use gpm_types::{Micros, TimeSeries};
///
/// let mut s = TimeSeries::new(Micros::new(50.0));
/// s.push(1.0);
/// s.push(3.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.duration(), Micros::new(100.0));
/// assert_eq!(s.stats().mean, 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries<T = f64> {
    dt: Micros,
    values: Vec<T>,
}

impl<T> TimeSeries<T> {
    /// Creates an empty series sampled every `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn new(dt: Micros) -> Self {
        assert!(dt.value() > 0.0, "sampling interval must be positive");
        Self {
            dt,
            values: Vec::new(),
        }
    }

    /// The sampling interval.
    #[must_use]
    pub fn dt(&self) -> Micros {
        self.dt
    }

    /// Number of samples collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no samples have been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total time covered: `len × dt`.
    #[must_use]
    pub fn duration(&self) -> Micros {
        self.dt * self.values.len() as f64
    }

    /// Appends the observation for the next interval.
    pub fn push(&mut self, value: T) {
        self.values.push(value);
    }

    /// The raw values, oldest first.
    #[must_use]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterates over timestamped samples; the timestamp is the *end* of each
    /// sampling interval.
    pub fn iter(&self) -> impl Iterator<Item = Sample<&T>> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, value)| Sample {
                at: self.dt * (i + 1) as f64,
                value,
            })
    }

    /// Consumes the series, returning the raw values.
    #[must_use]
    pub fn into_values(self) -> Vec<T> {
        self.values
    }
}

impl<T: Copy + Into<f64>> TimeSeries<T> {
    /// Summary statistics over the whole series.
    ///
    /// Returns all-zero statistics for an empty series.
    #[must_use]
    pub fn stats(&self) -> SummaryStats {
        SummaryStats::from_iter(self.values.iter().map(|&v| v.into()))
    }

    /// Mean value over the window `[from, to)` (half-open, in microseconds).
    ///
    /// Partial overlaps are clamped to the available data; returns `None` if
    /// the window covers no samples.
    #[must_use]
    pub fn window_mean(&self, from: Micros, to: Micros) -> Option<f64> {
        let lo = (from.value() / self.dt.value()).floor().max(0.0) as usize;
        let hi = ((to.value() / self.dt.value()).ceil() as usize).min(self.values.len());
        if lo >= hi {
            return None;
        }
        let slice = &self.values[lo..hi];
        Some(slice.iter().map(|&v| v.into()).sum::<f64>() / slice.len() as f64)
    }
}

impl<T> Extend<T> for TimeSeries<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(Micros::new(50.0));
        s.extend(values.iter().copied());
        s
    }

    #[test]
    fn push_and_len() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.duration(), Micros::new(150.0));
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_timestamps_are_interval_ends() {
        let s = series(&[1.0, 2.0]);
        let ts: Vec<f64> = s.iter().map(|smp| smp.at.value()).collect();
        assert_eq!(ts, vec![50.0, 100.0]);
    }

    #[test]
    fn stats_basic() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        let st = s.stats();
        assert_eq!(st.mean, 2.5);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 4.0);
        assert_eq!(st.count, 4);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s: TimeSeries = TimeSeries::new(Micros::new(50.0));
        assert!(s.is_empty());
        assert_eq!(s.stats().count, 0);
        assert_eq!(s.stats().mean, 0.0);
    }

    #[test]
    fn window_mean_clamps() {
        let s = series(&[10.0, 20.0, 30.0]);
        // Full window.
        assert_eq!(
            s.window_mean(Micros::new(0.0), Micros::new(150.0)),
            Some(20.0)
        );
        // Second sample only.
        assert_eq!(
            s.window_mean(Micros::new(50.0), Micros::new(100.0)),
            Some(20.0)
        );
        // Past the end clamps.
        assert_eq!(
            s.window_mean(Micros::new(100.0), Micros::new(1e9)),
            Some(30.0)
        );
        // Empty window.
        assert_eq!(s.window_mean(Micros::new(150.0), Micros::new(150.0)), None);
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_dt_panics() {
        let _: TimeSeries = TimeSeries::new(Micros::ZERO);
    }

    #[test]
    fn into_values() {
        let s = series(&[5.0]);
        assert_eq!(s.into_values(), vec![5.0]);
    }
}
