//! Shared vocabulary types for the `gpm` workspace.
//!
//! This crate defines the strongly-typed units ([`Watts`], [`Volts`],
//! [`Hertz`], [`Micros`], …), identifiers ([`CoreId`]), the per-core DVFS
//! operating modes ([`PowerMode`]), fixed-rate [`TimeSeries`] containers and
//! the workspace-wide error type [`GpmError`].
//!
//! Everything downstream — the core timing model, the power model, the CMP
//! simulators and the global power-management policies — speaks in these
//! types, which rules out entire classes of unit-confusion bugs (watts vs.
//! percent-of-budget, microseconds vs. cycles) at compile time.
//!
//! # Examples
//!
//! ```
//! use gpm_types::{PowerMode, Watts, Volts};
//!
//! let turbo = PowerMode::Turbo;
//! assert_eq!(turbo.frequency_scale(), 1.0);
//! assert!(PowerMode::Eff2.power_scale() < PowerMode::Eff1.power_scale());
//!
//! let chip = Watts::new(80.0);
//! let budget = chip * 0.83;
//! assert!(budget < chip);
//! let _v = Volts::new(1.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod mode;
mod quant;
mod series;
mod stats;
mod units;

pub use error::GpmError;
pub use ids::CoreId;
pub use mode::{Enumerate, ModeCombination, ModeOdometer, PowerMode};
pub use quant::{quantize_value, QuantizedKey, QuantizedKeyBuilder};
pub use series::{Sample, TimeSeries};
pub use stats::SummaryStats;
pub use units::{Bips, Cycles, Hertz, Instructions, Joules, Micros, Seconds, Volts, Watts};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, GpmError>;
