//! Quantized canonical keys for memoizing mode decisions.
//!
//! The fleet-mode decision cache (`gpm-core`) keys each solved interval on
//! the exact inputs of the MaxBIPS argmax: the per-core Power/BIPS
//! prediction matrix, the current mode vector, the budget and the interval
//! parameters. Every float input is mapped to one `u64` *cell* by
//! [`quantize_value`]:
//!
//! * **quantum ≤ 0 (exact keying)** — the cell is the raw IEEE-754 bit
//!   pattern. Two inputs share a key only when they are bit-identical, so
//!   a cache hit returns exactly what a fresh solve of the same inputs
//!   would have returned: the solver is a pure function of its arguments.
//! * **quantum > 0 (bucketed keying)** — the cell is the index of the
//!   nearest quantum multiple (`round(value / quantum)`). Matrices within
//!   half a quantum of each other per cell collapse onto one key, trading
//!   exactness for hit rate; the decision error is bounded by the solver's
//!   sensitivity to a half-quantum perturbation of each cell.
//!
//! The key itself ([`QuantizedKey`]) is just the canonical word sequence —
//! cells in a fixed row-major order, prefixed with the shape — wrapped for
//! use as a `HashMap` key. [`QuantizedKeyBuilder`] keeps construction
//! allocation-cheap and the canonical order explicit at the call site.

/// Maps one float to its canonical key cell. Exact bit pattern when
/// `quantum <= 0`, nearest-multiple bucket index otherwise.
///
/// The bucketed path is deterministic for every input: the `f64 → i64`
/// cast saturates, so `±∞` pin to the extreme buckets and NaN lands on
/// bucket zero (degenerate matrices never promise cache exactness — the
/// solver itself falls back to the exhaustive scan on them).
///
/// # Examples
///
/// ```
/// use gpm_types::quantize_value;
///
/// // Exact keying: distinct bit patterns stay distinct (even -0.0 vs 0.0).
/// assert_eq!(quantize_value(1.5, 0.0), 1.5f64.to_bits());
/// assert_ne!(quantize_value(0.0, 0.0), quantize_value(-0.0, 0.0));
///
/// // Bucketed keying: values within half a quantum collapse.
/// assert_eq!(quantize_value(10.01, 0.1), quantize_value(9.98, 0.1));
/// assert_ne!(quantize_value(10.01, 0.1), quantize_value(10.07, 0.1));
/// ```
#[must_use]
pub fn quantize_value(value: f64, quantum: f64) -> u64 {
    if quantum <= 0.0 {
        value.to_bits()
    } else {
        ((value / quantum).round() as i64) as u64
    }
}

/// A canonicalized, hashable decision-cache key: the quantized cells of
/// one decision problem in a fixed order.
///
/// Equality and hashing are over the exact word sequence, so two keys are
/// equal iff they were built from the same shape and the same quantized
/// cells in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct QuantizedKey {
    words: Vec<u64>,
}

impl QuantizedKey {
    /// The canonical word sequence (shape prefix plus quantized cells).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Builds a [`QuantizedKey`] cell by cell in canonical order.
///
/// # Examples
///
/// ```
/// use gpm_types::QuantizedKeyBuilder;
///
/// let mut builder = QuantizedKeyBuilder::with_capacity(3);
/// builder.push_word(2); // shape prefix: core count
/// builder.push_value(17.15, 0.0);
/// builder.push_value(1.9, 0.0);
/// let key = builder.finish();
/// assert_eq!(key.words().len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct QuantizedKeyBuilder {
    words: Vec<u64>,
}

impl QuantizedKeyBuilder {
    /// A builder expecting about `words` cells (exact capacity is a hint).
    #[must_use]
    pub fn with_capacity(words: usize) -> Self {
        Self {
            words: Vec::with_capacity(words),
        }
    }

    /// Appends a raw word (shape prefixes, mode indices, counts).
    pub fn push_word(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Appends one float cell quantized by [`quantize_value`].
    pub fn push_value(&mut self, value: f64, quantum: f64) {
        self.words.push(quantize_value(value, quantum));
    }

    /// Finalizes the key.
    #[must_use]
    pub fn finish(self) -> QuantizedKey {
        QuantizedKey { words: self.words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_keying_is_the_bit_pattern() {
        for v in [0.0, -0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(quantize_value(v, 0.0), v.to_bits());
            assert_eq!(quantize_value(v, -1.0), v.to_bits());
        }
    }

    #[test]
    fn bucketed_keying_merges_within_half_quantum() {
        assert_eq!(quantize_value(9.96, 0.1), quantize_value(10.04, 0.1));
        assert_ne!(quantize_value(9.94, 0.1), quantize_value(10.04, 0.1));
        // Negative values bucket symmetrically.
        assert_eq!(quantize_value(-9.96, 0.1), quantize_value(-10.04, 0.1));
        assert_ne!(quantize_value(-10.0, 0.1), quantize_value(10.0, 0.1));
    }

    #[test]
    fn bucketed_keying_is_total_on_degenerate_inputs() {
        // Saturating casts: the non-finite inputs map deterministically.
        assert_eq!(quantize_value(f64::INFINITY, 0.5), i64::MAX as u64);
        assert_eq!(quantize_value(f64::NEG_INFINITY, 0.5), i64::MIN as u64);
        assert_eq!(quantize_value(f64::NAN, 0.5), 0);
    }

    #[test]
    fn keys_compare_by_word_sequence() {
        let build = |cells: &[f64], quantum: f64| {
            let mut b = QuantizedKeyBuilder::with_capacity(cells.len() + 1);
            b.push_word(cells.len() as u64);
            for &c in cells {
                b.push_value(c, quantum);
            }
            b.finish()
        };
        assert_eq!(build(&[1.0, 2.0], 0.0), build(&[1.0, 2.0], 0.0));
        assert_ne!(build(&[1.0, 2.0], 0.0), build(&[2.0, 1.0], 0.0));
        // Shape prefix keeps a 2-cell key distinct from a 3-cell key that
        // happens to share a word prefix.
        assert_ne!(
            build(&[1.0, 2.0], 0.0).words().first(),
            build(&[1.0, 2.0, 3.0], 0.0).words().first()
        );
        // Bucketing makes near-identical cell lists collide on purpose.
        assert_eq!(build(&[10.01, 0.499], 0.05), build(&[9.99, 0.501], 0.05));
    }
}
