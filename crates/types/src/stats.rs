//! Small summary-statistics helper shared by telemetry consumers.

use serde::{Deserialize, Serialize};

/// Mean / min / max / standard deviation over a set of observations.
///
/// # Examples
///
/// ```
/// use gpm_types::SummaryStats;
///
/// let s = SummaryStats::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.std_dev, 2.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean; 0 when `count` is 0.
    pub mean: f64,
    /// Smallest observation; 0 when `count` is 0.
    pub min: f64,
    /// Largest observation; 0 when `count` is 0.
    pub max: f64,
    /// Population standard deviation; 0 when `count` is 0.
    pub std_dev: f64,
    /// Number of observations.
    pub count: usize,
}

impl SummaryStats {
    /// Computes statistics from an iterator of observations.
    ///
    /// Uses Welford's online algorithm, so it is numerically stable even for
    /// long power traces with a large mean.
    ///
    /// Named like `FromIterator::from_iter` deliberately — it *is* the
    /// from-iterator constructor, but a trait impl cannot carry the
    /// `f64`-only bound ergonomically.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return Self::default();
        }
        Self {
            mean,
            min,
            max,
            std_dev: (m2 / count as f64).sqrt(),
            count,
        }
    }

    /// Relative spread `(max − min) / mean`; 0 when the mean is 0.
    #[must_use]
    pub fn relative_range(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }
}

/// Harmonic mean of strictly positive values; returns 0 for an empty input.
///
/// Used for the paper's weighted-slowdown metric (Section 5.4): the harmonic
/// mean of per-thread speedups relative to all-Turbo execution.
///
/// # Panics
///
/// Panics if any value is not strictly positive (a speedup of zero would be a
/// thread that never ran, which the metric cannot represent).
///
/// # Examples
///
/// ```
/// let hm = gpm_types::SummaryStats::harmonic_mean([1.0, 0.5]);
/// assert!((hm - 2.0 / 3.0).abs() < 1e-12);
/// ```
impl SummaryStats {
    /// See the type-level docs: harmonic mean of positive values.
    #[must_use]
    pub fn harmonic_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
        let mut count = 0usize;
        let mut reciprocal_sum = 0.0f64;
        for v in values {
            assert!(
                v > 0.0,
                "harmonic mean requires strictly positive values, got {v}"
            );
            count += 1;
            reciprocal_sum += 1.0 / v;
        }
        if count == 0 {
            0.0
        } else {
            count as f64 / reciprocal_sum
        }
    }

    /// Arithmetic mean; returns 0 for an empty input. Companion to
    /// [`harmonic_mean`](Self::harmonic_mean) for the weighted-speedup
    /// variant of the fairness metric.
    #[must_use]
    pub fn arithmetic_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        for v in values {
            count += 1;
            sum += v;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [3.0, 7.0, 7.0, 19.0];
        let s = SummaryStats::from_iter(data);
        assert_eq!(s.mean, 9.0);
        let var = data.iter().map(|v| (v - 9.0) * (v - 9.0)).sum::<f64>() / 4.0;
        assert!((s.std_dev - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_is_default() {
        let s = SummaryStats::from_iter(std::iter::empty());
        assert_eq!(s, SummaryStats::default());
    }

    #[test]
    fn single_value() {
        let s = SummaryStats::from_iter([42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn relative_range() {
        let s = SummaryStats::from_iter([8.0, 12.0]);
        assert!((s.relative_range() - 0.4).abs() < 1e-12);
        assert_eq!(SummaryStats::default().relative_range(), 0.0);
    }

    #[test]
    fn harmonic_mean_identical_values() {
        assert!((SummaryStats::harmonic_mean([0.9, 0.9, 0.9]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_below_arithmetic() {
        let data = [0.5, 1.0];
        assert!(SummaryStats::harmonic_mean(data) < SummaryStats::arithmetic_mean(data));
    }

    #[test]
    fn harmonic_mean_empty_is_zero() {
        assert_eq!(SummaryStats::harmonic_mean(std::iter::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn harmonic_mean_rejects_zero() {
        let _ = SummaryStats::harmonic_mean([1.0, 0.0]);
    }
}
