//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the `gpm` workspace.
///
/// # Examples
///
/// ```
/// use gpm_types::GpmError;
///
/// let err = GpmError::UnknownBenchmark("quake".to_owned());
/// assert!(err.to_string().contains("quake"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpmError {
    /// A benchmark name did not match any registered workload profile.
    UnknownBenchmark(String),
    /// A configuration value was invalid (wrong range, inconsistent, …).
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A policy requested modes for the wrong number of cores.
    CoreCountMismatch {
        /// Number of cores the simulation runs.
        expected: usize,
        /// Number of per-core entries actually supplied.
        actual: usize,
    },
    /// No mode combination can satisfy the requested power budget.
    InfeasibleBudget {
        /// Budget as a fraction of maximum chip power.
        budget_fraction: f64,
    },
    /// A trace was requested for a (benchmark, mode) pair that was never
    /// captured.
    MissingTrace {
        /// The benchmark whose trace is absent.
        benchmark: String,
        /// The power mode whose trace is absent.
        mode: crate::PowerMode,
    },
    /// Trace data could not be encoded or decoded.
    TraceFormat(String),
    /// A fault-injection plan was malformed (bad spec syntax, out-of-range
    /// core index, inverted interval window, …).
    FaultSpec(String),
    /// A simulation was asked to run for a region longer than its traces.
    TraceExhausted {
        /// The benchmark whose trace ran out.
        benchmark: String,
    },
    /// A wire-protocol frame was rejected (truncated, oversized, foreign
    /// version, unknown kind, malformed body) or transport I/O failed.
    Wire(String),
}

impl fmt::Display for GpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpmError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark `{name}`")
            }
            GpmError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            GpmError::CoreCountMismatch { expected, actual } => {
                write!(
                    f,
                    "core count mismatch: expected {expected} per-core entries, got {actual}"
                )
            }
            GpmError::InfeasibleBudget { budget_fraction } => {
                write!(
                    f,
                    "no mode combination satisfies the power budget ({:.1}% of max chip power)",
                    budget_fraction * 100.0
                )
            }
            GpmError::MissingTrace { benchmark, mode } => {
                write!(
                    f,
                    "no trace captured for benchmark `{benchmark}` in mode {mode}"
                )
            }
            GpmError::TraceFormat(msg) => write!(f, "trace format error: {msg}"),
            GpmError::FaultSpec(msg) => write!(f, "invalid fault plan: {msg}"),
            GpmError::TraceExhausted { benchmark } => {
                write!(
                    f,
                    "trace for benchmark `{benchmark}` exhausted before termination"
                )
            }
            GpmError::Wire(msg) => write!(f, "wire protocol error: {msg}"),
        }
    }
}

impl std::error::Error for GpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GpmError, &str)> = vec![
            (GpmError::UnknownBenchmark("x".into()), "unknown benchmark"),
            (
                GpmError::InvalidConfig {
                    parameter: "explore_us",
                    reason: "must be a multiple of delta_sim_us".into(),
                },
                "explore_us",
            ),
            (
                GpmError::CoreCountMismatch {
                    expected: 4,
                    actual: 2,
                },
                "expected 4",
            ),
            (
                GpmError::InfeasibleBudget {
                    budget_fraction: 0.5,
                },
                "50.0%",
            ),
            (
                GpmError::MissingTrace {
                    benchmark: "mcf".into(),
                    mode: crate::PowerMode::Eff1,
                },
                "mcf",
            ),
            (GpmError::TraceFormat("bad header".into()), "bad header"),
            (
                GpmError::FaultSpec("unknown fault kind `melt`".into()),
                "melt",
            ),
            (
                GpmError::TraceExhausted {
                    benchmark: "art".into(),
                },
                "art",
            ),
            (
                GpmError::Wire("frame of 2 bytes is truncated".into()),
                "truncated",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpmError>();
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(GpmError::TraceFormat("x".into()));
        assert!(err.source().is_none());
    }
}
