//! Identifier newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one core of the CMP chip, zero-indexed.
///
/// In the paper's Priority policy, larger ids have higher priority: on a
/// four-core CMP, core 4 (id 3 here) has the highest priority and core 1
/// (id 0) the lowest.
///
/// # Examples
///
/// ```
/// use gpm_types::CoreId;
///
/// let id = CoreId::new(2);
/// assert_eq!(id.value(), 2);
/// assert_eq!(id.to_string(), "core2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(usize);

impl CoreId {
    /// Wraps a zero-based core index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the zero-based index.
    #[must_use]
    pub const fn value(self) -> usize {
        self.0
    }

    /// Iterates over the ids of the first `count` cores.
    pub fn all(count: usize) -> impl ExactSizeIterator<Item = CoreId> {
        (0..count).map(CoreId::new)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl From<CoreId> for usize {
    fn from(id: CoreId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = CoreId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.value(), 7);
    }

    #[test]
    fn all_iterates_in_order() {
        let ids: Vec<_> = CoreId::all(3).collect();
        assert_eq!(ids, vec![CoreId::new(0), CoreId::new(1), CoreId::new(2)]);
        assert_eq!(CoreId::all(5).len(), 5);
    }

    #[test]
    fn ordering() {
        assert!(CoreId::new(0) < CoreId::new(1));
    }

    #[test]
    fn display() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
    }
}
