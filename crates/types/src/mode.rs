//! Per-core DVFS operating modes.
//!
//! The paper deliberately limits each core to three modes (Section 4): the
//! global manager's state space grows linearly and its exploration space
//! superlinearly in the number of modes, and contemporary CMP server parts
//! (Sossaman, Woodcrest) exposed a similarly small number of global (V, f)
//! levels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A per-core DVFS power mode under the paper's linear-scaling scenario.
///
/// | Mode  | (V, f) scale | Dynamic-power scale (cubic) | Target (Table 3)      |
/// |-------|--------------|------------------------------|-----------------------|
/// | Turbo | 1.00         | 1.000                        | baseline              |
/// | Eff1  | 0.95         | 0.857                        | −15% power, −5% perf  |
/// | Eff2  | 0.85         | 0.614                        | −45% power, −15% perf |
///
/// The derived `Ord` ranks modes by performance: `Eff2 < Eff1 < Turbo`.
///
/// # Examples
///
/// ```
/// use gpm_types::PowerMode;
///
/// assert!(PowerMode::Eff2 < PowerMode::Turbo);
/// assert_eq!(PowerMode::Turbo.slower(), Some(PowerMode::Eff1));
/// assert_eq!(PowerMode::Eff2.slower(), None);
/// let cubic = PowerMode::Eff1.power_scale();
/// assert!((cubic - 0.95f64.powi(3)).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PowerMode {
    /// High power saving, relatively significant performance degradation
    /// (85% V, 85% f).
    Eff2,
    /// Medium power savings with minimal performance degradation
    /// (95% V, 95% f).
    Eff1,
    /// Full-throttle execution at nominal voltage and frequency.
    #[default]
    Turbo,
}

impl PowerMode {
    /// All modes, fastest first.
    pub const ALL: [PowerMode; 3] = [PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2];

    /// Number of distinct modes.
    pub const COUNT: usize = 3;

    /// Dense index: Turbo = 0, Eff1 = 1, Eff2 = 2 (fastest first, matching
    /// the paper's Power/BIPS matrix columns).
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            PowerMode::Turbo => 0,
            PowerMode::Eff1 => 1,
            PowerMode::Eff2 => 2,
        }
    }

    /// Inverse of [`PowerMode::index`].
    ///
    /// Returns `None` for indices ≥ 3.
    #[must_use]
    pub const fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(PowerMode::Turbo),
            1 => Some(PowerMode::Eff1),
            2 => Some(PowerMode::Eff2),
            _ => None,
        }
    }

    /// The linear voltage *and* frequency scale of this mode relative to
    /// Turbo (Section 4's linear DVFS scenario).
    #[must_use]
    pub const fn frequency_scale(self) -> f64 {
        match self {
            PowerMode::Turbo => 1.0,
            PowerMode::Eff1 => 0.95,
            PowerMode::Eff2 => 0.85,
        }
    }

    /// The voltage scale relative to Turbo. Identical to
    /// [`frequency_scale`](Self::frequency_scale) under linear DVFS.
    #[must_use]
    pub const fn voltage_scale(self) -> f64 {
        self.frequency_scale()
    }

    /// Cubic dynamic-power scale `(V/V₀)² · (f/f₀) = s³` relative to Turbo.
    #[must_use]
    pub fn power_scale(self) -> f64 {
        let s = self.frequency_scale();
        s * s * s
    }

    /// Upper-bound BIPS scale (linear in frequency) relative to Turbo.
    ///
    /// Actual performance is better for memory-bound workloads because
    /// asynchronous memory latencies do not scale with DVFS.
    #[must_use]
    pub const fn bips_scale_bound(self) -> f64 {
        self.frequency_scale()
    }

    /// The next faster mode, or `None` if already at Turbo.
    #[must_use]
    pub const fn faster(self) -> Option<Self> {
        match self {
            PowerMode::Turbo => None,
            PowerMode::Eff1 => Some(PowerMode::Turbo),
            PowerMode::Eff2 => Some(PowerMode::Eff1),
        }
    }

    /// The next slower mode, or `None` if already at Eff2.
    #[must_use]
    pub const fn slower(self) -> Option<Self> {
        match self {
            PowerMode::Turbo => Some(PowerMode::Eff1),
            PowerMode::Eff1 => Some(PowerMode::Eff2),
            PowerMode::Eff2 => None,
        }
    }

    /// Absolute voltage-scale distance between two modes, as a fraction of
    /// nominal Vdd. Used to compute DVFS transition times (Table 5).
    #[must_use]
    pub fn voltage_distance(self, other: Self) -> f64 {
        (self.voltage_scale() - other.voltage_scale()).abs()
    }
}

impl fmt::Display for PowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerMode::Turbo => "Turbo",
            PowerMode::Eff1 => "Eff1",
            PowerMode::Eff2 => "Eff2",
        };
        f.write_str(s)
    }
}

/// An assignment of one [`PowerMode`] per core — one point in the global
/// manager's 3^N search space.
///
/// # Examples
///
/// ```
/// use gpm_types::{ModeCombination, PowerMode};
///
/// let all_turbo = ModeCombination::uniform(4, PowerMode::Turbo);
/// assert_eq!(all_turbo.len(), 4);
/// assert!(all_turbo.is_uniform());
///
/// let mut c = all_turbo.clone();
/// c.set(gpm_types::CoreId::new(2), PowerMode::Eff2);
/// assert!(!c.is_uniform());
/// assert_eq!(ModeCombination::enumerate(2).count(), 9);
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModeCombination {
    modes: Vec<PowerMode>,
}

impl Clone for ModeCombination {
    fn clone(&self) -> Self {
        Self {
            modes: self.modes.clone(),
        }
    }

    /// Reuses the destination's allocation — hot loops that re-record a
    /// same-width combination every tick (e.g. the fleet engine's
    /// last-good bookkeeping) stay allocation-free at steady state.
    fn clone_from(&mut self, source: &Self) {
        self.modes.clone_from(&source.modes);
    }
}

impl ModeCombination {
    /// Creates a combination from explicit per-core modes.
    #[must_use]
    pub fn new(modes: Vec<PowerMode>) -> Self {
        Self { modes }
    }

    /// Creates a combination with every core in the same `mode`.
    #[must_use]
    pub fn uniform(cores: usize, mode: PowerMode) -> Self {
        Self {
            modes: vec![mode; cores],
        }
    }

    /// Number of cores covered by this combination.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Returns `true` if the combination covers no cores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Mode of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn mode(&self, core: crate::CoreId) -> PowerMode {
        self.modes[core.value()]
    }

    /// Sets the mode of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set(&mut self, core: crate::CoreId, mode: PowerMode) {
        self.modes[core.value()] = mode;
    }

    /// Per-core modes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PowerMode] {
        &self.modes
    }

    /// Iterates over `(CoreId, PowerMode)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (crate::CoreId, PowerMode)> + '_ {
        self.modes
            .iter()
            .enumerate()
            .map(|(i, &m)| (crate::CoreId::new(i), m))
    }

    /// Returns `true` if all cores share the same mode (the chip-wide DVFS
    /// special case).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.modes.windows(2).all(|w| w[0] == w[1])
    }

    /// Enumerates all `3^cores` combinations in lexicographic order
    /// (core 0 varies slowest; Turbo before Eff1 before Eff2).
    ///
    /// This is the exhaustive search space of the MaxBIPS policy. The
    /// iterator is lazy, so callers can prune early. Each yielded item is
    /// an owned allocation; exhaustive hot loops should drive a
    /// [`ModeOdometer`] in place instead and clone only the combinations
    /// they keep.
    pub fn enumerate(cores: usize) -> Enumerate {
        let total = 3usize.checked_pow(cores as u32).expect("3^cores overflow");
        Enumerate {
            odometer: ModeOdometer::new(cores),
            remaining: total,
        }
    }

    /// Decodes the `rank`-th combination of `cores` cores in the
    /// [`enumerate`](Self::enumerate) order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= 3^cores`.
    #[must_use]
    pub fn from_rank(cores: usize, rank: usize) -> Self {
        let total = 3usize.pow(cores as u32);
        assert!(rank < total, "rank {rank} out of range for {cores} cores");
        let mut modes = vec![PowerMode::Turbo; cores];
        let mut r = rank;
        for i in (0..cores).rev() {
            modes[i] = PowerMode::from_index(r % 3).expect("index < 3");
            r /= 3;
        }
        Self { modes }
    }
}

impl fmt::Display for ModeCombination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, m) in self.modes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<PowerMode> for ModeCombination {
    fn from_iter<T: IntoIterator<Item = PowerMode>>(iter: T) -> Self {
        Self {
            modes: iter.into_iter().collect(),
        }
    }
}

/// In-place enumeration cursor over the `3^cores` combination space in
/// [`ModeCombination::enumerate`] order (core 0 is the most significant
/// base-3 digit; Turbo < Eff1 < Eff2 per digit).
///
/// Unlike [`Enumerate`], advancing the odometer performs no heap
/// allocation: the exhaustive policy scans walk the space with
/// [`advance`](Self::advance) and clone [`current`](Self::current) only
/// when a candidate becomes the new best. Chunked scans seed mid-space
/// cursors with [`from_rank`](Self::from_rank).
///
/// ```
/// use gpm_types::{ModeCombination, ModeOdometer};
///
/// let mut odo = ModeOdometer::new(2);
/// let mut seen = Vec::new();
/// loop {
///     seen.push(odo.current().clone());
///     if !odo.advance() {
///         break;
///     }
/// }
/// let all: Vec<ModeCombination> = ModeCombination::enumerate(2).collect();
/// assert_eq!(seen, all);
/// ```
#[derive(Debug, Clone)]
pub struct ModeOdometer {
    combo: ModeCombination,
}

impl ModeOdometer {
    /// Positions the cursor at rank 0 (all-Turbo).
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            combo: ModeCombination::uniform(cores, PowerMode::Turbo),
        }
    }

    /// Positions the cursor at `rank` in enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= 3^cores`.
    #[must_use]
    pub fn from_rank(cores: usize, rank: usize) -> Self {
        Self {
            combo: ModeCombination::from_rank(cores, rank),
        }
    }

    /// The combination the cursor currently points at.
    #[must_use]
    pub fn current(&self) -> &ModeCombination {
        &self.combo
    }

    /// Steps to the next combination in enumeration order.
    ///
    /// Returns `false` once the cursor wraps past the last combination
    /// (all-Eff2) back to all-Turbo, i.e. when the space is exhausted.
    pub fn advance(&mut self) -> bool {
        for digit in self.combo.modes.iter_mut().rev() {
            match digit.slower() {
                Some(next) => {
                    *digit = next;
                    return true;
                }
                None => *digit = PowerMode::Turbo,
            }
        }
        false
    }
}

/// Iterator over all mode combinations; see [`ModeCombination::enumerate`].
#[derive(Debug, Clone)]
pub struct Enumerate {
    odometer: ModeOdometer,
    remaining: usize,
}

impl Iterator for Enumerate {
    type Item = ModeCombination;

    fn next(&mut self) -> Option<ModeCombination> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let combo = self.odometer.current().clone();
        self.odometer.advance();
        Some(combo)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Enumerate {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreId;

    #[test]
    fn mode_ordering_is_by_performance() {
        assert!(PowerMode::Eff2 < PowerMode::Eff1);
        assert!(PowerMode::Eff1 < PowerMode::Turbo);
    }

    #[test]
    fn index_roundtrip() {
        for m in PowerMode::ALL {
            assert_eq!(PowerMode::from_index(m.index()), Some(m));
        }
        assert_eq!(PowerMode::from_index(3), None);
    }

    #[test]
    fn scales_match_paper_table4() {
        // Table 4: Eff1 ~14.3% dynamic power saving, Eff2 ~38.6%.
        assert!((PowerMode::Eff1.power_scale() - 0.857_375).abs() < 1e-6);
        assert!((PowerMode::Eff2.power_scale() - 0.614_125).abs() < 1e-6);
        assert_eq!(PowerMode::Turbo.power_scale(), 1.0);
        assert_eq!(PowerMode::Eff1.bips_scale_bound(), 0.95);
    }

    #[test]
    fn faster_slower_chain() {
        assert_eq!(PowerMode::Turbo.faster(), None);
        assert_eq!(PowerMode::Eff2.slower(), None);
        assert_eq!(PowerMode::Eff1.faster(), Some(PowerMode::Turbo));
        assert_eq!(PowerMode::Eff1.slower(), Some(PowerMode::Eff2));
    }

    #[test]
    fn voltage_distance_matches_table5() {
        // Table 5 at Vdd = 1.3 V: 65 mV, 130 mV, 195 mV.
        let vdd = 1.3;
        let d1 = PowerMode::Turbo.voltage_distance(PowerMode::Eff1) * vdd;
        let d2 = PowerMode::Eff1.voltage_distance(PowerMode::Eff2) * vdd;
        let d3 = PowerMode::Turbo.voltage_distance(PowerMode::Eff2) * vdd;
        assert!((d1 - 0.065).abs() < 1e-9);
        assert!((d2 - 0.130).abs() < 1e-9);
        assert!((d3 - 0.195).abs() < 1e-9);
    }

    #[test]
    fn enumerate_counts_and_order() {
        let combos: Vec<_> = ModeCombination::enumerate(2).collect();
        assert_eq!(combos.len(), 9);
        // First is all-Turbo, last is all-Eff2.
        assert!(combos[0].as_slice().iter().all(|&m| m == PowerMode::Turbo));
        assert!(combos[8].as_slice().iter().all(|&m| m == PowerMode::Eff2));
        // Core 1 varies fastest.
        assert_eq!(combos[1].as_slice(), &[PowerMode::Turbo, PowerMode::Eff1]);
        // All distinct.
        let mut unique = combos.clone();
        unique.sort_by_key(|c| c.as_slice().iter().map(|m| m.index()).collect::<Vec<_>>());
        unique.dedup();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn enumerate_size_hint() {
        let mut it = ModeCombination::enumerate(3);
        assert_eq!(it.len(), 27);
        it.next();
        assert_eq!(it.len(), 26);
    }

    #[test]
    fn odometer_matches_enumerate_order() {
        for cores in 0..=4 {
            let expected: Vec<_> = ModeCombination::enumerate(cores).collect();
            let mut odo = ModeOdometer::new(cores);
            let mut seen = Vec::new();
            loop {
                seen.push(odo.current().clone());
                if !odo.advance() {
                    break;
                }
            }
            // A zero-core odometer holds the single empty combination.
            assert_eq!(seen.len(), expected.len().max(1));
            assert_eq!(&seen[..expected.len()], &expected[..]);
        }
    }

    #[test]
    fn odometer_seeds_from_rank() {
        let total = 3usize.pow(3);
        for start in [0, 1, 13, total - 1] {
            let mut odo = ModeOdometer::from_rank(3, start);
            for rank in start..total {
                assert_eq!(odo.current(), &ModeCombination::from_rank(3, rank));
                let advanced = odo.advance();
                assert_eq!(advanced, rank + 1 < total);
            }
        }
    }

    #[test]
    fn odometer_exhaustion_wraps_to_all_turbo() {
        let mut odo = ModeOdometer::from_rank(2, 8);
        assert!(!odo.advance());
        assert!(odo
            .current()
            .as_slice()
            .iter()
            .all(|&m| m == PowerMode::Turbo));
    }

    #[test]
    fn uniform_detection() {
        let mut c = ModeCombination::uniform(4, PowerMode::Eff1);
        assert!(c.is_uniform());
        c.set(CoreId::new(3), PowerMode::Turbo);
        assert!(!c.is_uniform());
        assert_eq!(c.mode(CoreId::new(3)), PowerMode::Turbo);
    }

    #[test]
    fn from_rank_matches_enumerate() {
        for (rank, combo) in ModeCombination::enumerate(3).enumerate() {
            assert_eq!(ModeCombination::from_rank(3, rank), combo);
        }
    }

    #[test]
    fn display_formats() {
        let c = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff2]);
        assert_eq!(c.to_string(), "[Turbo, Eff2]");
        assert_eq!(PowerMode::Eff1.to_string(), "Eff1");
    }

    #[test]
    fn collect_from_iterator() {
        let c: ModeCombination = [PowerMode::Eff1, PowerMode::Eff1].into_iter().collect();
        assert!(c.is_uniform());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_combination() {
        let c = ModeCombination::new(vec![]);
        assert!(c.is_empty());
        assert!(c.is_uniform());
    }
}
