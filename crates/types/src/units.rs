//! Numeric newtypes for physical and architectural quantities.
//!
//! All wrappers are thin `f64`/`u64` newtypes with the arithmetic that is
//! physically meaningful for them (adding watts to watts, scaling watts by a
//! dimensionless factor, multiplying power by time to get energy, …).
//! Nonsensical combinations (adding volts to watts) simply do not compile.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! f64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("let x = gpm_types::", stringify!($name), "::new(1.5);")]
            /// assert_eq!(x.value(), 1.5);
            /// ```
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// NaN handling follows [`f64::max`].
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            ///
            /// NaN handling follows [`f64::min`].
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `self / other` as a dimensionless ratio.
            ///
            /// Useful for normalisation, e.g. power as a fraction of a
            /// budget, or slowdown relative to a baseline.
            #[must_use]
            pub fn ratio_of(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

f64_unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
f64_unit!(
    /// Supply voltage in volts.
    Volts,
    "V"
);
f64_unit!(
    /// Clock frequency in hertz.
    Hertz,
    "Hz"
);
f64_unit!(
    /// Energy in joules.
    Joules,
    "J"
);
f64_unit!(
    /// A duration expressed in microseconds — the natural granularity of the
    /// paper's simulation loop (`delta_sim_time` = 50 µs, `explore_time` =
    /// 500 µs).
    Micros,
    "µs"
);
f64_unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);
f64_unit!(
    /// Throughput in billions of instructions per second — the quantity the
    /// MaxBIPS policy maximises.
    Bips,
    "BIPS"
);

impl Hertz {
    /// Constructs a frequency from a gigahertz value.
    ///
    /// # Examples
    ///
    /// ```
    /// let f = gpm_types::Hertz::from_ghz(1.0);
    /// assert_eq!(f.value(), 1.0e9);
    /// ```
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// Returns the frequency in gigahertz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.value() / 1.0e9
    }

    /// Number of clock cycles elapsed in `duration` at this frequency,
    /// rounded down.
    #[must_use]
    pub fn cycles_in(self, duration: Micros) -> Cycles {
        // Epsilon absorbs floating-point noise (100 µs at 1 GHz is exactly
        // 100 000 cycles, not 99 999.999…).
        let exact = self.value() * duration.to_seconds().value();
        Cycles::new((exact + 1.0e-6).floor() as u64)
    }

    /// Converts a latency given in nanoseconds to (rounded-up) clock cycles
    /// at this frequency.
    ///
    /// This conversion is the key DVFS effect in the paper: L2 and memory
    /// latencies are fixed in nanoseconds, so a slower core sees *fewer*
    /// stall cycles, which is why memory-bound workloads degrade less.
    #[must_use]
    pub fn cycles_for_ns(self, nanoseconds: f64) -> u64 {
        // The epsilon absorbs floating-point noise so that an exact cycle
        // count (e.g. 77 ns at 1 GHz) does not ceil up to 78.
        let exact = nanoseconds * 1.0e-9 * self.value();
        (exact - 1.0e-6).ceil().max(0.0) as u64
    }
}

impl Micros {
    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.value() * 1.0e-6)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1.0e3)
    }
}

impl Seconds {
    /// Converts to microseconds.
    #[must_use]
    pub fn to_micros(self) -> Micros {
        Micros::new(self.value() * 1.0e6)
    }
}

/// Energy = power × time.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

/// Energy = power × time (microsecond flavour).
impl Mul<Micros> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Micros) -> Joules {
        self * rhs.to_seconds()
    }
}

/// Average power = energy / time.
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

/// Average power = energy / time (microsecond flavour).
impl Div<Micros> for Joules {
    type Output = Watts;
    fn div(self, rhs: Micros) -> Watts {
        self / rhs.to_seconds()
    }
}

impl Bips {
    /// Computes a throughput from an instruction count over a duration.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_types::{Bips, Instructions, Micros};
    ///
    /// // 1000 instructions in 1 µs = 1 BIPS.
    /// let b = Bips::from_instructions(Instructions::new(1000), Micros::new(1.0));
    /// assert!((b.value() - 1.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_instructions(instructions: Instructions, over: Micros) -> Self {
        Self::new(instructions.value() as f64 / over.to_seconds().value() / 1.0e9)
    }
}

macro_rules! u64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Zero value of this unit.
            pub const ZERO: Self = Self(0);

            /// Wraps a raw count.
            #[must_use]
            pub const fn new(value: u64) -> Self {
                Self(value)
            }

            /// Returns the raw count.
            #[must_use]
            pub const fn value(self) -> u64 {
                self.0
            }

            /// Saturating subtraction.
            #[must_use]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

u64_unit!(
    /// A count of clock cycles.
    Cycles,
    "cycles"
);
u64_unit!(
    /// A count of committed instructions.
    Instructions,
    "instr"
);

impl Cycles {
    /// Duration of this many cycles at frequency `f`.
    #[must_use]
    pub fn at(self, f: Hertz) -> Seconds {
        Seconds::new(self.0 as f64 / f.value())
    }
}

impl Instructions {
    /// Throughput achieved when committing this many instructions over
    /// `duration`.
    #[must_use]
    pub fn bips_over(self, duration: Micros) -> Bips {
        Bips::from_instructions(self, duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        let a = Watts::new(10.0);
        let b = Watts::new(4.0);
        assert_eq!((a + b).value(), 14.0);
        assert_eq!((a - b).value(), 6.0);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((2.0 * a).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!(-a, Watts::new(-10.0));
    }

    #[test]
    fn watts_sum_and_compare() {
        let v = vec![Watts::new(1.0), Watts::new(2.5), Watts::new(3.5)];
        let total: Watts = v.iter().sum();
        assert_eq!(total.value(), 7.0);
        let total2: Watts = v.into_iter().sum();
        assert_eq!(total2, total);
        assert!(Watts::new(1.0) < Watts::new(2.0));
        assert_eq!(Watts::new(3.0).max(Watts::new(1.0)).value(), 3.0);
        assert_eq!(Watts::new(3.0).min(Watts::new(1.0)).value(), 1.0);
    }

    #[test]
    fn energy_power_time_roundtrip() {
        let p = Watts::new(20.0);
        let t = Micros::new(500.0);
        let e = p * t;
        assert!((e.value() - 20.0 * 500.0e-6).abs() < 1e-12);
        let back = e / t;
        assert!((back.value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_ghz(1.0);
        assert_eq!(f.as_ghz(), 1.0);
        // 100 µs at 1 GHz = 100_000 cycles: the paper's DVFS granularity claim.
        assert_eq!(f.cycles_in(Micros::new(100.0)).value(), 100_000);
        // 77 ns memory latency at 1 GHz = 77 cycles (Table 1).
        assert_eq!(f.cycles_for_ns(77.0), 77);
        // At 0.85 GHz the same 77 ns is fewer core cycles.
        assert_eq!(Hertz::from_ghz(0.85).cycles_for_ns(77.0), 66);
    }

    #[test]
    fn bips_from_instructions() {
        let b = Instructions::new(50_000).bips_over(Micros::new(50.0));
        assert!((b.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micros_seconds_roundtrip() {
        let us = Micros::new(1500.0);
        assert!((us.to_seconds().to_micros().value() - 1500.0).abs() < 1e-9);
        assert_eq!(Micros::from_millis(1.5).value(), 1500.0);
    }

    #[test]
    fn cycles_duration() {
        let d = Cycles::new(1_000_000).at(Hertz::from_ghz(1.0));
        assert!((d.value() - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn u64_units() {
        let a = Instructions::new(10);
        let b = Instructions::new(3);
        assert_eq!((a + b).value(), 13);
        assert_eq!((a - b).value(), 7);
        assert_eq!(b.saturating_sub(a), Instructions::ZERO);
        let total: Instructions = [a, b].into_iter().sum();
        assert_eq!(total.value(), 13);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.1}", Watts::new(12.34)), "12.3 W");
        assert_eq!(format!("{}", Cycles::new(5)), "5 cycles");
        assert_eq!(format!("{:.2}", Volts::new(1.235)), "1.24 V");
    }

    #[test]
    fn ratio_of() {
        assert_eq!(Watts::new(83.0).ratio_of(Watts::new(100.0)), 0.83);
    }

    #[test]
    fn from_impls() {
        assert_eq!(f64::from(Watts::new(2.0)), 2.0);
        assert_eq!(u64::from(Cycles::new(9)), 9);
    }
}
