//! Scoped worker-pool primitives for the gpm workspace.
//!
//! Every experiment layer — trace capture, policy sweeps, figure grids —
//! consists of independent, deterministic units of work. This crate provides
//! the one abstraction they all share: [`parallel_map`], an order-preserving
//! parallel map over a slice built on [`std::thread::scope`] (no runtime
//! dependencies, no long-lived pool).
//!
//! # Determinism
//!
//! Workers claim indices from an atomic counter but write each result into
//! its **pre-indexed output slot**; the caller receives results in input
//! order regardless of scheduling, so a parallel map is bit-identical to the
//! serial loop it replaces. [`try_parallel_map`] likewise reports the error
//! of the *lowest-indexed* failing item, matching what a serial
//! short-circuiting loop would surface.
//!
//! # Thread-count policy
//!
//! The pool width comes from, in priority order:
//! 1. the programmatic override ([`set_max_threads`]),
//! 2. the `GPM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallel regions are serialised: a `parallel_map` called from
//! inside a worker runs inline on that worker thread ([`in_parallel_region`]
//! is thread-local), so fan-out is bounded by the outermost region and inner
//! layers cannot oversubscribe the machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rounds;

pub use rounds::{run_rounds, RoundView};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override: 0 = unset (fall back to env/HW).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets (or with `None` clears) the process-wide thread-count override.
///
/// Takes precedence over `GPM_THREADS` and the detected hardware
/// parallelism. `Some(1)` forces every parallel region to run serially —
/// the determinism tests use exactly this.
pub fn set_max_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The number of worker threads a new top-level parallel region will use.
///
/// Resolution order: [`set_max_threads`] override, then the `GPM_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
/// Always at least 1.
#[must_use]
pub fn max_threads() -> usize {
    let override_n = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if override_n > 0 {
        return override_n;
    }
    if let Ok(raw) = std::env::var("GPM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Whether the current thread is already inside a parallel region.
///
/// Inner `parallel_map` calls consult this and run inline, so nesting never
/// multiplies thread counts.
#[must_use]
pub fn in_parallel_region() -> bool {
    IN_POOL.with(std::cell::Cell::get)
}

/// Marks the current thread as (not) being a pool worker; used by every
/// pool implementation in this crate so nesting checks agree.
pub(crate) fn set_region_flag(value: bool) {
    IN_POOL.with(|flag| flag.set(value));
}

/// Serialises tests (across this crate's test modules) that touch the
/// process-wide thread-count override.
#[cfg(test)]
pub(crate) static TEST_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Spawns up to `max_threads()` scoped workers that claim items from an
/// atomic cursor and write results into pre-indexed slots; the output is
/// identical to `items.iter().map(f).collect()` for any thread count.
/// Runs inline when the pool width is 1, there is at most one item, or the
/// caller is itself inside a parallel region.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 || in_parallel_region() {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                set_region_flag(true);
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let result = f(item);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Fallible [`parallel_map`]: collects `Ok` results in input order, or
/// returns the error of the lowest-indexed failing item.
///
/// Unlike a serial short-circuiting loop, items after a failure may still be
/// evaluated (workers run concurrently), but the *reported* error is always
/// the one the serial loop would have hit first, keeping error behaviour
/// deterministic.
///
/// # Errors
///
/// Returns the lowest-indexed `Err` produced by `f`.
pub fn try_parallel_map<T: Sync, R: Send, E: Send, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let results = parallel_map(items, f);
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    use crate::TEST_OVERRIDE_LOCK as OVERRIDE_LOCK;

    #[test]
    fn preserves_order_for_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 5] {
            set_max_threads(Some(threads));
            let mapped = parallel_map(&items, |&x| x * 3);
            assert_eq!(mapped, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
        set_max_threads(None);
    }

    #[test]
    fn reports_lowest_index_error() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let items: Vec<usize> = (0..64).collect();
        let result: Result<Vec<usize>, usize> =
            try_parallel_map(&items, |&x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        assert_eq!(result.unwrap_err(), 3);
        set_max_threads(None);
    }

    #[test]
    fn nested_regions_run_inline() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let saw_nested_pool = AtomicBool::new(false);
        let outer: Vec<usize> = (0..8).collect();
        let results = parallel_map(&outer, |&x| {
            assert!(in_parallel_region());
            let inner: Vec<usize> = (0..4).collect();
            // An inner map must not spawn; it runs on this worker thread.
            let inner_sum: usize = parallel_map(&inner, |&y| {
                if !in_parallel_region() {
                    saw_nested_pool.store(true, Ordering::SeqCst);
                }
                x * y
            })
            .into_iter()
            .sum();
            inner_sum
        });
        assert!(!saw_nested_pool.load(Ordering::SeqCst));
        assert_eq!(results.len(), 8);
        set_max_threads(None);
    }

    #[test]
    fn thread_count_override_wins() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
    }
}
