//! Persistent-worker round execution for quantum-synchronised simulations.
//!
//! [`parallel_map`](crate::parallel_map) spawns a fresh scoped pool per
//! call, which is fine for coarse work units (policy sweeps, captures) but
//! not for the full-CMP simulator: one synchronisation quantum is a few
//! microseconds of simulated time — far too little work to amortise thread
//! spawns every round. [`run_rounds`] keeps one set of workers alive for
//! the whole run and drives them through *rounds* with a barrier: each
//! round, every per-item state is stepped in parallel, then a serial
//! `between` callback runs on the calling thread with exclusive access to
//! all states (the merge/replay phase), and decides whether to continue.
//!
//! # Determinism
//!
//! Item `i` is only ever stepped by the worker that owns residue class
//! `i % threads`, with no shared mutable state between workers, and the
//! serial phase always observes all items after the barrier in index
//! order. Results are therefore bit-identical for every thread count,
//! including the inline serial path used when the pool width is 1 or the
//! caller is already inside a parallel region.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use crate::{in_parallel_region, max_threads, set_region_flag};

/// Exclusive access to every round state during the serial phase of
/// [`run_rounds`].
///
/// While the `between` callback runs, all workers are parked at the round
/// barrier, so the locks taken here are uncontended.
pub struct RoundView<'cells, 'state, T> {
    cells: &'cells [Mutex<&'state mut T>],
}

impl<T> RoundView<'_, '_, T> {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs `f` with mutable access to one state.
    pub fn with<R>(&self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.cells[index].lock().expect("round state poisoned");
        f(&mut guard)
    }

    /// Runs `f` with simultaneous mutable access to all states in index
    /// order — the merge phase of a two-phase protocol needs every
    /// per-item log at once.
    pub fn with_all<R>(&self, f: impl FnOnce(&mut [&mut T]) -> R) -> R {
        let mut guards: Vec<_> = self
            .cells
            .iter()
            .map(|cell| cell.lock().expect("round state poisoned"))
            .collect();
        let mut refs: Vec<&mut T> = guards.iter_mut().map(|guard| &mut ***guard).collect();
        f(&mut refs)
    }
}

/// Steps `states` through repeated parallel rounds on a persistent worker
/// pool.
///
/// Each round, `step(i, &mut states[i])` runs for every state on up to
/// [`max_threads`](crate::max_threads) scoped workers that stay alive
/// across rounds (one barrier synchronisation per round, no per-round
/// spawns). After the barrier, `between` runs serially on the calling
/// thread with a [`RoundView`] over all states; returning `false` ends the
/// run. At least one round is always executed.
///
/// Runs inline (no pool) when the width is 1, there is at most one state,
/// or the caller is already inside a parallel region.
///
/// # Panics
///
/// Propagates the first panic from `step` or `between`. Workers that
/// panic mid-round still join the barrier, so no round deadlocks.
pub fn run_rounds<T, F, G>(states: &mut [T], step: F, mut between: G)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
    G: FnMut(&RoundView<'_, '_, T>) -> bool,
{
    let threads = max_threads().min(states.len());
    let cells: Vec<Mutex<&mut T>> = states.iter_mut().map(Mutex::new).collect();
    let view = RoundView { cells: &cells };

    if threads <= 1 || in_parallel_region() {
        loop {
            for (i, cell) in cells.iter().enumerate() {
                let mut guard = cell.lock().expect("round state poisoned");
                step(i, &mut guard);
            }
            if !between(&view) {
                return;
            }
        }
    }

    let barrier = Barrier::new(threads + 1);
    let done = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (barrier, done, cells, step, first_panic) =
                (&barrier, &done, &cells, &step, &first_panic);
            scope.spawn(move || {
                set_region_flag(true);
                loop {
                    barrier.wait();
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut index = worker;
                        while index < cells.len() {
                            let mut guard = cells[index].lock().expect("round state poisoned");
                            step(index, &mut guard);
                            index += threads;
                        }
                    }));
                    if let Err(panic) = result {
                        let mut slot = first_panic.lock().expect("panic slot poisoned");
                        slot.get_or_insert(panic);
                    }
                    barrier.wait();
                }
            });
        }

        loop {
            barrier.wait(); // release the round
            barrier.wait(); // join the round
            if first_panic.lock().expect("panic slot poisoned").is_some() {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| between(&view))) {
                Ok(true) => {}
                Ok(false) => break,
                Err(panic) => {
                    let mut slot = first_panic.lock().expect("panic slot poisoned");
                    slot.get_or_insert(panic);
                    break;
                }
            }
        }
        done.store(true, Ordering::SeqCst);
        barrier.wait(); // wake workers so they observe `done` and exit
    });

    if let Some(panic) = first_panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_max_threads, TEST_OVERRIDE_LOCK};

    #[test]
    fn rounds_are_bit_identical_across_thread_counts() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        let reference: Option<Vec<u64>> = None;
        let mut golden = reference;
        for threads in [1usize, 2, 3, 8] {
            set_max_threads(Some(threads));
            let mut states: Vec<u64> = (0..7).collect();
            let mut rounds = 0usize;
            run_rounds(
                &mut states,
                |i, s| *s = s.wrapping_mul(6364136223846793005).wrapping_add(i as u64),
                |view| {
                    rounds += 1;
                    // The serial phase mixes neighbouring states — order
                    // dependence that any nondeterminism would expose.
                    view.with_all(|all| {
                        for i in 1..all.len() {
                            *all[i] ^= *all[i - 1] >> 7;
                        }
                    });
                    rounds < 50
                },
            );
            assert_eq!(rounds, 50);
            match &golden {
                None => golden = Some(states),
                Some(expected) => assert_eq!(&states, expected, "threads={threads}"),
            }
        }
        set_max_threads(None);
    }

    #[test]
    fn at_least_one_round_runs() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let mut states = vec![0u32; 5];
        run_rounds(&mut states, |_, s| *s += 1, |_| false);
        assert_eq!(states, vec![1; 5]);
        set_max_threads(None);
    }

    #[test]
    fn nested_calls_run_inline() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let outer: Vec<usize> = (0..4).collect();
        let sums = crate::parallel_map(&outer, |&x| {
            let mut inner = vec![x; 3];
            run_rounds(&mut inner, |i, s| *s += i, |_| false);
            inner.iter().sum::<usize>()
        });
        assert_eq!(sums, vec![3, 6, 9, 12]);
        set_max_threads(None);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(2));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut states = vec![0u32; 4];
            run_rounds(
                &mut states,
                |i, _| assert!(i != 2, "boom"),
                |_| panic!("between must not run after a worker panic"),
            );
        }));
        assert!(result.is_err());
        set_max_threads(None);
    }

    #[test]
    fn serial_view_accessors_agree() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(1));
        let mut states = vec![10u32, 20, 30];
        run_rounds(
            &mut states,
            |_, s| *s += 1,
            |view| {
                assert_eq!(view.len(), 3);
                assert!(!view.is_empty());
                let via_with = view.with(1, |s| *s);
                let via_all = view.with_all(|all| *all[1]);
                assert_eq!(via_with, via_all);
                false
            },
        );
        set_max_threads(None);
    }
}
