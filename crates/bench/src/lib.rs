//! Support library for the benchmark harness: every paper table and figure
//! is a `cargo bench` target (see `benches/`), each of which calls
//! [`run_experiment`] with the driver from `gpm-experiments`.
//!
//! `cargo bench --workspace` therefore *regenerates the paper*: each target
//! prints its table/figure in the paper's row/series format and archives a
//! copy under `target/gpm-results/`.
//!
//! Set `GPM_FAST=1` to run against truncated (~6 ms) benchmark regions —
//! useful for smoke-testing the harness; the shipped `EXPERIMENTS.md`
//! numbers come from full regions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::Instant;

use gpm_experiments::ExperimentContext;
use gpm_types::Result;

/// Builds the context the harness runs with: full-fidelity captures unless
/// `GPM_FAST=1`.
#[must_use]
pub fn harness_context() -> ExperimentContext {
    if std::env::var("GPM_FAST").is_ok_and(|v| v == "1") {
        ExperimentContext::fast()
    } else {
        ExperimentContext::full()
    }
}

/// Runs one experiment: builds the context, invokes the driver, prints the
/// rendered result, archives it under `target/gpm-results/<name>.txt`, and
/// reports wall time.
///
/// # Panics
///
/// Panics (failing the bench target) if the experiment errors.
pub fn run_experiment(name: &str, f: impl FnOnce(&ExperimentContext) -> Result<String>) {
    let ctx = harness_context();
    let start = Instant::now();
    let rendered = f(&ctx).unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
    let elapsed = start.elapsed();

    println!("=== {name} ({elapsed:.1?}) ===");
    println!("{rendered}");

    let dir = std::path::Path::new("target").join("gpm-results");
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut file) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = writeln!(file, "{rendered}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_context_honours_fast_env() {
        // Just exercise the constructor paths; the env var may or may not
        // be set in the test environment.
        let _ = harness_context();
    }

    #[test]
    fn run_experiment_prints_and_archives() {
        run_experiment("selftest", |_ctx| Ok("hello".to_owned()));
        let path = std::path::Path::new("target/gpm-results/selftest.txt");
        // Written relative to the invoking directory; tolerate either.
        if path.exists() {
            let content = std::fs::read_to_string(path).unwrap();
            assert!(content.contains("hello"));
        }
    }
}
