//! Regenerates Figure 2: measured ΔPower/ΔPerf per mode across the suite.
fn main() {
    gpm_bench::run_experiment("fig2_dvfs_tradeoffs", |ctx| {
        Ok(gpm_experiments::fig2::run(ctx)?.render())
    });
}
