//! Section 5.5 audit: Power/BIPS matrix prediction accuracy.
use gpm_workloads::combos;
fn main() {
    gpm_bench::run_experiment("val_prediction_error", |ctx| {
        let err = gpm_experiments::validation::prediction_error(
            ctx,
            &combos::ammp_mcf_crafty_art(),
            0.8,
        )?;
        Ok(err.render())
    });
}
