//! Ablation: conservative stall-all transitions vs overlapped execution.
fn main() {
    gpm_bench::run_experiment("ablation_transition_overlap", |ctx| {
        Ok(gpm_experiments::ablation::transition_overlap(ctx)?.render())
    });
}
