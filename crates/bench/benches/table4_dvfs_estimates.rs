//! Regenerates Table 4: analytic DVFS power/performance estimates.
use gpm_power::DvfsParams;
fn main() {
    gpm_bench::run_experiment("table4_dvfs_estimates", |_ctx| {
        Ok(gpm_experiments::tables::table4(&DvfsParams::paper()).render())
    });
}
