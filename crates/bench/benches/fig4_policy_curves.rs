//! Regenerates Figure 4: policy, budget and weighted-slowdown curves.
fn main() {
    gpm_bench::run_experiment("fig4_policy_curves", |ctx| {
        Ok(gpm_experiments::fig4::run(ctx)?.render())
    });
}
