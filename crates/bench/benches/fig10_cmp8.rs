//! Regenerates Figure 10: 8-way CMP policy curves.
fn main() {
    gpm_bench::run_experiment("fig10_cmp8", |ctx| {
        Ok(gpm_experiments::scaling::fig10(ctx)?.render())
    });
}
