//! Section 3.1 validation: trace-based tool vs full-CMP shared-L2 runs.
use gpm_types::Micros;
fn main() {
    gpm_bench::run_experiment("val_trace_vs_full", |ctx| {
        let results =
            gpm_experiments::validation::run_trace_vs_full(ctx, Micros::from_millis(2.0))?;
        Ok(gpm_experiments::validation::render_trace_vs_full(&results))
    });
}
