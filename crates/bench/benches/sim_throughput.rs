//! Simulator-throughput baseline: simulated MIPS of the single-core hot
//! loop on a CPU-bound (sixtrack-like) and a memory-bound (mcf-like)
//! stream, plus end-to-end trace-capture throughput.
//!
//! Unlike the figure/table targets this bench measures the *simulator*, not
//! the simulated system: its unit is millions of simulated instructions per
//! wall-clock second. Run it before and after touching the
//! `CoreModel::run_cycles` hot path and record the numbers in
//! `BENCH_sim_throughput.json` at the repo root (see DESIGN.md, "Hot path &
//! performance") so the perf trajectory stays visible across PRs.
//!
//! Set `GPM_BENCH_QUICK=1` for a bounded smoke run (used by `scripts/ci.sh`
//! to keep this target from bit-rotting; it fails on panic, not on
//! regression).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gpm_cmp::{ClusterTopology, FullCmpSim, InterconnectConfig, SimParams, TraceCmpSim};
use gpm_core::fleet_load::{PhaseTables, PHASES};
use gpm_core::{
    solver, BudgetSchedule, CacheConfig, DecisionCache, GlobalManager, GreedyMaxBips, HierMaxBips,
    MaxBips, Policy, PolicyContext, PowerBipsMatrices, RunOptions,
};
use gpm_core::{FleetConfig, FleetEngine};
use gpm_microarch::{CoreConfig, CoreModel};
use gpm_net::{Endpoint, LoadgenOptions, ServeOptions, Server, ShardedEngine};
use gpm_power::{DvfsParams, PowerModel};
use gpm_trace::{
    capture_benchmark, BenchmarkTraces, CaptureConfig, CaptureEngine, ModeTrace, TraceSample,
};
use gpm_types::{Hertz, Micros, ModeCombination, PowerMode, Watts};
use gpm_workloads::{combos, SpecBenchmark, WorkloadCombo};

/// One measured throughput figure.
struct Measurement {
    name: &'static str,
    instructions: u64,
    seconds: f64,
}

impl Measurement {
    fn mips(&self) -> f64 {
        self.instructions as f64 / self.seconds / 1.0e6
    }
}

/// Simulates `bench` through a fresh 1 GHz core until at least
/// `min_instructions` have committed, returning the wall time spent inside
/// the simulator.
fn core_stream_mips(bench: SpecBenchmark, min_instructions: u64) -> Measurement {
    let config = CoreConfig::power4();
    let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
    let mut stream = bench.stream();
    // Warm caches and predictors outside the timed region.
    let _ = core.run_cycles(&mut stream, 200_000);

    let mut simulated = 0u64;
    let start = Instant::now();
    while simulated < min_instructions {
        simulated += core.run_cycles(&mut stream, 100_000).instructions;
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        name: match bench {
            SpecBenchmark::Sixtrack => "core_cpu_bound_sixtrack",
            SpecBenchmark::Mcf => "core_mem_bound_mcf",
            _ => "core_other",
        },
        instructions: simulated,
        seconds,
    }
}

/// Full `capture_benchmark` throughput (all three power modes, warm-up and
/// sampling included) — the end-to-end number every experiment depends on.
///
/// Measured at steady state: one untimed capture first, so the recording
/// tape's storage pool is mapped and faulted in. Experiments capture all
/// 12 benchmarks in one process, so steady state is the representative
/// regime; the first capture in a process pays roughly one extra page
/// fault per 4 KiB of tape.
fn capture_mips(bench: SpecBenchmark, limit: u64) -> Measurement {
    let name = match bench {
        SpecBenchmark::Sixtrack => "capture_cpu_bound_sixtrack",
        SpecBenchmark::Mcf => "capture_mem_bound_mcf",
        _ => "capture_other",
    };
    capture_engine_mips(name, bench, limit, CaptureEngine::default())
}

/// `capture_mips` with an explicit stepping engine. The scalar-engine rows
/// give the lane-batching speedup an in-process denominator: both engines
/// run in the same binary and process, so the ratio is immune to
/// cross-binary and cross-invocation noise.
fn capture_engine_mips(
    name: &'static str,
    bench: SpecBenchmark,
    limit: u64,
    engine: CaptureEngine,
) -> Measurement {
    let mut config = CaptureConfig::fast(limit);
    config.engine = engine;
    let _ = capture_benchmark(bench, &config).expect("warm capture");
    let start = Instant::now();
    let traces = capture_benchmark(bench, &config).expect("capture");
    let seconds = start.elapsed().as_secs_f64();
    let instructions: u64 = gpm_types::PowerMode::ALL
        .iter()
        .map(|&m| traces.trace(m).total_instructions())
        .sum();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

/// Full-CMP throughput: all-Turbo quantum-synchronised run of `combo`
/// against the shared L2 for `sim_us` of simulated wall time, reporting
/// total simulated instructions (all cores) per wall-clock second.
///
/// On a multi-core host the per-quantum core stepping overlaps on the
/// `gpm_par` pool; on a 1-core host this measures the serial protocol.
fn cmp_full_mips(name: &'static str, combo: &WorkloadCombo, sim_us: f64) -> Measurement {
    let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
    let mut sim = FullCmpSim::new(
        combo,
        &modes,
        &CoreConfig::power4(),
        PowerModel::power4_calibrated(),
        DvfsParams::paper(),
    )
    .expect("combo and modes agree");
    // Warm caches, predictors and the per-core scratch outside the timed
    // region.
    let _ = sim.run(Micros::new(sim_us * 0.1));

    let start = Instant::now();
    let outcome = sim.run(Micros::new(sim_us));
    let seconds = start.elapsed().as_secs_f64();
    let instructions = outcome.per_core.iter().map(|c| c.instructions).sum();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

/// `cmp_full_mips` on the cluster-sharded drive: `combo` partitioned into
/// clusters of `cluster_cores` private L2s behind the default bounded
/// interconnect. Pairs with the flat row at the same width so the recorded
/// speedup isolates the sharding (per-cluster replay scans `cluster_cores`
/// lanes instead of the whole chip even on one worker; on a multi-core
/// host both phases additionally overlap per cluster).
fn cmp_sharded_mips(
    name: &'static str,
    combo: &WorkloadCombo,
    cluster_cores: usize,
    sim_us: f64,
) -> Measurement {
    let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
    let mut sim = FullCmpSim::with_topology(
        combo,
        &modes,
        &CoreConfig::power4(),
        PowerModel::power4_calibrated(),
        DvfsParams::paper(),
        ClusterTopology::for_cores(combo.cores(), cluster_cores).expect("combo divides"),
        InterconnectConfig::default(),
    )
    .expect("combo and topology agree");
    let _ = sim.run(Micros::new(sim_us * 0.1));

    let start = Instant::now();
    let outcome = sim.run(Micros::new(sim_us));
    let seconds = start.elapsed().as_secs_f64();
    let instructions = outcome.per_core.iter().map(|c| c.instructions).sum();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

/// Synthetic constant-rate traces so the manager-loop measurement has no
/// capture dependency and a deterministic interval count.
fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=4000)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64) as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

/// Manager control-loop throughput over a 4-core synthetic trace sim
/// (~190 explore intervals per run), with or without the guard rails.
/// The two variants bound the guard-rail overhead on the fault-free path:
/// the frame conversion + guard bookkeeping per interval must stay within
/// ~2% of the legacy loop.
fn manager_loop_mips(name: &'static str, guarded: bool, repeats: usize) -> Measurement {
    let traces = || {
        vec![
            constant_traces("a", 180_000_000, 2.0, 20.0),
            constant_traces("b", 45_000_000, 0.5, 12.0),
            constant_traces("c", 135_000_000, 1.5, 17.0),
            constant_traces("d", 90_000_000, 1.0, 14.0),
        ]
    };
    let options = if guarded {
        RunOptions::guarded()
    } else {
        RunOptions::default()
    };
    let schedule = BudgetSchedule::constant(0.8);
    // One untimed run to warm allocator pools and fault the traces in.
    let sim = TraceCmpSim::new(traces(), SimParams::default()).unwrap();
    let _ = GlobalManager::new()
        .run_with(sim, &mut MaxBips::new(), &schedule, &options)
        .unwrap();

    let mut instructions = 0u64;
    let start = Instant::now();
    for _ in 0..repeats {
        let sim = TraceCmpSim::new(traces(), SimParams::default()).unwrap();
        let run = GlobalManager::new()
            .run_with(sim, &mut MaxBips::new(), &schedule, &options)
            .unwrap();
        instructions += run.per_core_instructions.iter().sum::<u64>();
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

/// Serve-path throughput rows: the single-engine drive, the in-process
/// [`ShardedEngine`] at 1 and 4 shards, and the full wire path (loadgen
/// against a loopback TCP server). All in-process variants run
/// interleaved round-robin, best-of-`rounds`, so ambient load biases
/// none of them; the sharded1/direct ratio is the service layer's
/// single-shard neutrality floor (`scripts/bench_check.py` gates it at
/// 0.95 via the recorded `speedup` key). `crates/bench/examples/
/// serve_probe.rs` is the standalone version for longer recording runs.
struct ServeRates {
    direct: f64,
    sharded1: f64,
    sharded4: f64,
    tcp1: f64,
    tcp4: f64,
    p50_tick_ms: f64,
    p99_tick_ms: f64,
}

fn serve_fleet_config(nodes: usize) -> FleetConfig {
    FleetConfig {
        queue_capacity: nodes,
        ..FleetConfig::default()
    }
}

/// Sustained decisions/s of the plain single-engine drive (the
/// `fleet_decisions_10k_nodes` path), measured after a warm rotation.
fn serve_direct_rate(tables: &PhaseTables, nodes: usize, ticks: u64) -> f64 {
    let mut engine = FleetEngine::new(serve_fleet_config(nodes)).expect("config valid");
    for tick in 0..PHASES as u64 {
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, tick));
        }
        engine.run_tick(tick);
    }
    let start = Instant::now();
    let mut measured = 0u64;
    for tick in 0..ticks {
        let now = PHASES as u64 + tick;
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, now));
        }
        measured += engine.run_tick(now).len() as u64;
    }
    measured as f64 / start.elapsed().as_secs_f64()
}

/// Sustained decisions/s of the in-process sharded engine at `shards`.
fn serve_sharded_rate(tables: &PhaseTables, shards: usize, nodes: usize, ticks: u64) -> f64 {
    let mut engine =
        ShardedEngine::homogeneous(&serve_fleet_config(nodes), shards).expect("config valid");
    for tick in 0..PHASES as u64 {
        for node in 0..nodes as u64 {
            engine.try_submit(tables.telemetry(node, tick));
        }
        engine.run_tick(tick);
    }
    let start = Instant::now();
    let mut measured = 0u64;
    for tick in 0..ticks {
        let now = PHASES as u64 + tick;
        for node in 0..nodes as u64 {
            engine.try_submit(tables.telemetry(node, now));
        }
        measured += engine.run_tick(now).len() as u64;
    }
    measured as f64 / start.elapsed().as_secs_f64()
}

/// Full wire path: loadgen against a loopback TCP server.
fn serve_loopback_rate(shards: usize, nodes: usize, ticks: u64) -> (f64, f64, f64) {
    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        ServeOptions {
            shards,
            config: serve_fleet_config(nodes),
            once: true,
        },
    )
    .expect("server binds");
    let endpoint = server.local_endpoint();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    let report = gpm_net::loadgen::run(
        &endpoint,
        &LoadgenOptions {
            nodes,
            ticks: ticks as usize,
            shutdown: false,
        },
    )
    .expect("loadgen runs");
    handle.join().expect("server thread joins");
    (
        report.decisions_per_sec,
        report.p50_tick_ms,
        report.p99_tick_ms,
    )
}

fn serve_rates(rounds: usize, nodes: usize, ticks: u64) -> ServeRates {
    let tables = PhaseTables::build();
    let mut best = ServeRates {
        direct: 0.0,
        sharded1: 0.0,
        sharded4: 0.0,
        tcp1: 0.0,
        tcp4: 0.0,
        p50_tick_ms: f64::INFINITY,
        p99_tick_ms: f64::INFINITY,
    };
    for _ in 0..rounds {
        best.direct = best.direct.max(serve_direct_rate(&tables, nodes, ticks));
        best.sharded1 = best
            .sharded1
            .max(serve_sharded_rate(&tables, 1, nodes, ticks));
        best.sharded4 = best
            .sharded4
            .max(serve_sharded_rate(&tables, 4, nodes, ticks));
        let (tcp1, p50, p99) = serve_loopback_rate(1, nodes, ticks);
        let (tcp4, _, _) = serve_loopback_rate(4, nodes, ticks);
        best.tcp1 = best.tcp1.max(tcp1);
        best.tcp4 = best.tcp4.max(tcp4);
        if p50 < best.p50_tick_ms {
            best.p50_tick_ms = p50;
            best.p99_tick_ms = p99;
        }
    }
    best
}

/// One policy-decision latency figure: best-of-N wall time per `decide`.
struct DecideMeasurement {
    name: &'static str,
    micros_per_decide: f64,
}

/// Deterministic heterogeneous prediction matrices for the decide
/// benchmarks (the same construction as the solver's pruning test):
/// per-core Turbo rows at 12.0 + (i·7 mod 11)·1.3 W and
/// 0.4 + (i·5 mod 9)·0.35 BIPS, scaled to Eff1/Eff2 by the usual
/// cubic/linear factors, current modes cycling Turbo/Eff1/Eff2 and the
/// budget at 80% of the all-Turbo chip power.
fn decide_fixture(cores: usize) -> (PowerBipsMatrices, ModeCombination, Watts) {
    let power: Vec<[f64; PowerMode::COUNT]> = (0..cores)
        .map(|i| {
            let p = 12.0 + (i * 7 % 11) as f64 * 1.3;
            PowerMode::ALL.map(|m| p * m.power_scale())
        })
        .collect();
    let bips: Vec<[f64; PowerMode::COUNT]> = (0..cores)
        .map(|i| {
            let b = 0.4 + (i * 5 % 9) as f64 * 0.35;
            PowerMode::ALL.map(|m| b * m.bips_scale_bound())
        })
        .collect();
    let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
    let current = (0..cores).map(|i| PowerMode::ALL[i % 3]).collect();
    (PowerBipsMatrices::from_rows(power, bips), current, budget)
}

/// Measures the MaxBIPS decision latency at 8/16/32 cores — the paper's
/// exhaustive 3^N scan (8-way only — 3^16 is already intractable), the
/// exact branch-and-bound that replaced it, and the approximate
/// `GreedyMaxBips` baseline at the wide widths — plus the two-level
/// `HierMaxBips` (water-filling arbiter + per-cluster exact solves) at
/// 256 cores, where the flat exact solver no longer runs at all. All
/// cases run interleaved (round-robin, best-of-`rounds`) so ambient load
/// biases none of them.
fn policy_decides(rounds: usize, inner: usize) -> Vec<DecideMeasurement> {
    let (dvfs, explore) = (DvfsParams::paper(), Micros::new(500.0));
    let fixtures: Vec<_> = [8usize, 16, 32, 256]
        .iter()
        .map(|&n| decide_fixture(n))
        .collect();

    type Case<'a> = (&'static str, Box<dyn FnMut() -> ModeCombination + 'a>);
    let mut cases: Vec<Case<'_>> = Vec::new();
    {
        let (m, cur, budget) = &fixtures[0];
        cases.push((
            "policy_decide_8way_exhaustive",
            Box::new(move || solver::exhaustive(m, cur, *budget, &dvfs, explore)),
        ));
    }
    for (i, label) in [
        (0, "policy_decide_8way_exact"),
        (1, "policy_decide_16way_exact"),
        (2, "policy_decide_32way_exact"),
    ] {
        let (m, cur, budget) = &fixtures[i];
        cases.push((
            label,
            Box::new(move || solver::solve(m, cur, *budget, &dvfs, explore)),
        ));
    }
    for (i, label) in [
        (1, "policy_decide_16way_greedy"),
        (2, "policy_decide_32way_greedy"),
    ] {
        let (m, cur, budget) = &fixtures[i];
        let mut greedy = GreedyMaxBips::new();
        cases.push((
            label,
            Box::new(move || {
                greedy.decide(&PolicyContext {
                    current_modes: cur,
                    matrices: m,
                    future: None,
                    budget: *budget,
                    dvfs: &dvfs,
                    explore,
                })
            }),
        ));
    }
    {
        let (m, cur, budget) = &fixtures[3];
        let mut hier = HierMaxBips::new();
        cases.push((
            "policy_decide_256way_hier",
            Box::new(move || {
                hier.decide(&PolicyContext {
                    current_modes: cur,
                    matrices: m,
                    future: None,
                    budget: *budget,
                    dvfs: &dvfs,
                    explore,
                })
            }),
        ));
    }
    {
        // The memoized hit path on the same 8-way problem the exact row
        // solves: the first (warm-up round) call misses and populates the
        // cache, every timed call is key construction + LRU lookup.
        let (m, cur, budget) = &fixtures[0];
        let mut cache = DecisionCache::new(CacheConfig::default()).expect("default config valid");
        cases.push((
            "policy_decide_8way_cached",
            Box::new(move || cache.solve(m, cur, *budget, &dvfs, explore)),
        ));
    }

    let mut best = vec![f64::INFINITY; cases.len()];
    for round in 0..=rounds {
        for (slot, (_, run)) in cases.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(run());
            }
            let per_call = start.elapsed().as_secs_f64() / inner as f64;
            // Round 0 is the warm-up pass; it primes caches and is discarded.
            if round > 0 {
                best[slot] = best[slot].min(per_call);
            }
        }
    }
    cases
        .iter()
        .zip(best)
        .map(|(&(name, _), s)| DecideMeasurement {
            name,
            micros_per_decide: s * 1.0e6,
        })
        .collect()
}

fn main() {
    let quick = std::env::var("GPM_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (core_target, capture_limit, cmp_us, manager_repeats) = if quick {
        (2_000_000, 300_000, 200.0, 2)
    } else {
        (40_000_000, 8_000_000, 2_000.0, 40)
    };

    let measurements = [
        core_stream_mips(SpecBenchmark::Sixtrack, core_target),
        core_stream_mips(SpecBenchmark::Mcf, core_target),
        capture_mips(SpecBenchmark::Sixtrack, capture_limit),
        capture_mips(SpecBenchmark::Mcf, capture_limit),
        capture_engine_mips(
            "capture_scalar_sixtrack",
            SpecBenchmark::Sixtrack,
            capture_limit,
            CaptureEngine::Scalar,
        ),
        capture_engine_mips(
            "capture_scalar_mcf",
            SpecBenchmark::Mcf,
            capture_limit,
            CaptureEngine::Scalar,
        ),
        cmp_full_mips("cmp_full_2way_gcc_mesa", &combos::gcc_mesa(), 4.0 * cmp_us),
        cmp_full_mips(
            "cmp_full_4way_ammp_mcf_crafty_art",
            &combos::ammp_mcf_crafty_art(),
            2.0 * cmp_us,
        ),
        cmp_full_mips("cmp_full_8way_mixed", &combos::eight_way_mixed(), cmp_us),
        cmp_full_mips(
            "cmp_full_64way_flat",
            &combos::sixty_four_way_mixed(),
            cmp_us / 8.0,
        ),
        cmp_sharded_mips(
            "cmp_full_64way_sharded",
            &combos::sixty_four_way_mixed(),
            8,
            cmp_us / 8.0,
        ),
        manager_loop_mips("manager_fault_free", false, manager_repeats),
        manager_loop_mips("manager_guarded", true, manager_repeats),
    ];

    let (decide_rounds, decide_inner) = if quick { (2, 20) } else { (5, 200) };
    let decides = policy_decides(decide_rounds, decide_inner);

    // Fleet saturating load: phase-replaying nodes against one engine,
    // measured at steady state (warm epoch excluded inside `run`). The
    // armed variant runs the identical load with the chaos layer compiled
    // in and armed but never firing (fault session probes, freshness
    // triage, rack accounting all execute); the armed/disarmed throughput
    // ratio is the fault-free overhead of the fleet hardening.
    let (fleet_nodes, fleet_ticks) = if quick { (1_000, 4) } else { (10_000, 12) };
    let fleet = gpm_experiments::fleet::run(fleet_nodes, fleet_ticks).expect("fleet run");
    let fleet_armed =
        gpm_experiments::fleet::run_armed(fleet_nodes, fleet_ticks).expect("armed fleet run");

    // Serve path: the same saturating load through the sharded service
    // layer (in-process at 1 and 4 shards) and over loopback TCP.
    let serve_rounds = if quick { 1 } else { 3 };
    let serve = serve_rates(serve_rounds, fleet_nodes, fleet_ticks as u64);

    let by_name = |name: &str| {
        measurements
            .iter()
            .find(|m| m.name == name)
            .expect("measured above")
    };

    // Wall-clock equivalent of one 500 µs explore interval: what the
    // full-CMP simulator spends advancing 500 µs of simulated time (8-way
    // figure; a 32-way chip costs ~4× more wall per simulated µs, so this
    // is the conservative bound). A decide latency below it means the
    // policy search is never the simulation bottleneck.
    let cmp8 = by_name("cmp_full_8way_mixed");
    let explore_equiv_us = 500.0 * cmp8.seconds * 1.0e6 / cmp_us;

    let mut json = String::from("{\n");
    for m in &measurements {
        println!("{:<28} {:>9.2} simulated MIPS", m.name, m.mips());
        let _ = writeln!(json, "  \"{}\": {:.2},", m.name, m.mips());
    }
    for d in &decides {
        println!("{:<28} {:>9.2} us/decide", d.name, d.micros_per_decide);
        let _ = writeln!(json, "  \"{}_us\": {:.2},", d.name, d.micros_per_decide);
    }
    // In-process lane-batching speedup: default (lane-batched) capture vs
    // the scalar reference engine on the same streams in the same process.
    for (batched, scalar) in [
        ("capture_cpu_bound_sixtrack", "capture_scalar_sixtrack"),
        ("capture_mem_bound_mcf", "capture_scalar_mcf"),
    ] {
        let ratio = by_name(batched).mips() / by_name(scalar).mips();
        println!("lane-batched capture speedup over scalar ({batched}): {ratio:.2}x");
        let _ = writeln!(json, "  \"{batched}_engine_speedup\": {ratio:.2},");
    }

    let cached = decides
        .iter()
        .find(|d| d.name == "policy_decide_8way_cached")
        .expect("measured above");
    let cached_speedup = decides[1].micros_per_decide / cached.micros_per_decide;
    println!(
        "8-way cached hit path {:.3} us = {cached_speedup:.1}x over the exact solve",
        cached.micros_per_decide
    );
    let _ = writeln!(
        json,
        "  \"decide_8way_cached_speedup\": {cached_speedup:.2},"
    );
    println!(
        "fleet_decisions_{}k_nodes      {:>9.0} decisions/s  hit rate {:.1}%",
        fleet_nodes / 1000,
        fleet.decisions_per_sec,
        100.0 * fleet.hit_rate()
    );
    let _ = writeln!(
        json,
        "  \"fleet_decisions_per_sec\": {:.0},\n  \"fleet_hit_rate\": {:.4},",
        fleet.decisions_per_sec,
        fleet.hit_rate()
    );
    let chaos_ratio = fleet_armed.decisions_per_sec / fleet.decisions_per_sec;
    println!(
        "fleet_chaos_armed_{}k_nodes   {:>9.0} decisions/s  armed/disarmed {:.3}x",
        fleet_nodes / 1000,
        fleet_armed.decisions_per_sec,
        chaos_ratio
    );
    let _ = writeln!(
        json,
        "  \"fleet_chaos_armed_decisions_per_sec\": {:.0},\n  \
         \"fleet_chaos_armed_vs_disarmed_ratio\": {chaos_ratio:.3},",
        fleet_armed.decisions_per_sec
    );

    println!(
        "serve_decisions_{}k_nodes     direct {:.0}  sharded1 {:.0} ({:.3}x)  \
         sharded4 {:.0} ({:.3}x)  tcp1 {:.0}  tcp4 {:.0}  p50 {:.3} ms  p99 {:.3} ms",
        fleet_nodes / 1000,
        serve.direct,
        serve.sharded1,
        serve.sharded1 / serve.direct,
        serve.sharded4,
        serve.sharded4 / serve.direct,
        serve.tcp1,
        serve.tcp4,
        serve.p50_tick_ms,
        serve.p99_tick_ms
    );
    let _ = writeln!(
        json,
        "  \"serve_engine_direct_decisions_per_sec\": {:.0},\n  \
         \"serve_sharded_1_decisions_per_sec\": {:.0},\n  \
         \"serve_sharded_1_vs_engine_speedup\": {:.3},\n  \
         \"serve_sharded_4_decisions_per_sec\": {:.0},\n  \
         \"serve_sharded_4_vs_engine_ratio\": {:.3},\n  \
         \"serve_loopback_tcp_1shard_decisions_per_sec\": {:.0},\n  \
         \"serve_loopback_tcp_4shard_decisions_per_sec\": {:.0},\n  \
         \"serve_loopback_p50_tick_ms\": {:.3},\n  \
         \"serve_loopback_p99_tick_ms\": {:.3},",
        serve.direct,
        serve.sharded1,
        serve.sharded1 / serve.direct,
        serve.sharded4,
        serve.sharded4 / serve.direct,
        serve.tcp1,
        serve.tcp4,
        serve.p50_tick_ms,
        serve.p99_tick_ms
    );

    let speedup = decides[0].micros_per_decide / decides[1].micros_per_decide;
    println!("8-way exact solver speedup over the exhaustive scan: {speedup:.1}x");
    println!(
        "32-way exact decide {:.2} us vs 500 us-explore wall equivalent {:.2} us",
        decides[3].micros_per_decide, explore_equiv_us
    );
    let hier256 = decides
        .iter()
        .find(|d| d.name == "policy_decide_256way_hier")
        .expect("measured above");
    println!(
        "256-way hierarchical decide {:.2} us against the 500 us explore interval",
        hier256.micros_per_decide
    );
    let shard_speedup =
        by_name("cmp_full_64way_sharded").mips() / by_name("cmp_full_64way_flat").mips();
    println!("64-way sharded-vs-flat simulator speedup: {shard_speedup:.2}x");
    let _ = writeln!(
        json,
        "  \"cmp_full_64way_sharding_speedup\": {shard_speedup:.2},"
    );
    let _ = writeln!(json, "  \"decide_8way_exact_speedup\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"explore_500us_wall_equivalent_us\": {explore_equiv_us:.2}"
    );
    json.push('}');

    let (ff, guarded) = (
        measurements[measurements.len() - 2].mips(),
        measurements[measurements.len() - 1].mips(),
    );
    println!(
        "guard-rail overhead on the fault-free path: {:+.2}%",
        (ff / guarded - 1.0) * 100.0
    );

    let dir = std::path::Path::new("target").join("gpm-results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("sim_throughput.json"), &json);
    }
    println!("{json}");
}
