//! Simulator-throughput baseline: simulated MIPS of the single-core hot
//! loop on a CPU-bound (sixtrack-like) and a memory-bound (mcf-like)
//! stream, plus end-to-end trace-capture throughput.
//!
//! Unlike the figure/table targets this bench measures the *simulator*, not
//! the simulated system: its unit is millions of simulated instructions per
//! wall-clock second. Run it before and after touching the
//! `CoreModel::run_cycles` hot path and record the numbers in
//! `BENCH_sim_throughput.json` at the repo root (see DESIGN.md, "Hot path &
//! performance") so the perf trajectory stays visible across PRs.
//!
//! Set `GPM_BENCH_QUICK=1` for a bounded smoke run (used by `scripts/ci.sh`
//! to keep this target from bit-rotting; it fails on panic, not on
//! regression).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gpm_cmp::{FullCmpSim, SimParams, TraceCmpSim};
use gpm_core::{BudgetSchedule, GlobalManager, MaxBips, RunOptions};
use gpm_microarch::{CoreConfig, CoreModel};
use gpm_power::{DvfsParams, PowerModel};
use gpm_trace::{capture_benchmark, BenchmarkTraces, CaptureConfig, ModeTrace, TraceSample};
use gpm_types::{Hertz, Micros, ModeCombination, PowerMode};
use gpm_workloads::{combos, SpecBenchmark, WorkloadCombo};

/// One measured throughput figure.
struct Measurement {
    name: &'static str,
    instructions: u64,
    seconds: f64,
}

impl Measurement {
    fn mips(&self) -> f64 {
        self.instructions as f64 / self.seconds / 1.0e6
    }
}

/// Simulates `bench` through a fresh 1 GHz core until at least
/// `min_instructions` have committed, returning the wall time spent inside
/// the simulator.
fn core_stream_mips(bench: SpecBenchmark, min_instructions: u64) -> Measurement {
    let config = CoreConfig::power4();
    let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
    let mut stream = bench.stream();
    // Warm caches and predictors outside the timed region.
    let _ = core.run_cycles(&mut stream, 200_000);

    let mut simulated = 0u64;
    let start = Instant::now();
    while simulated < min_instructions {
        simulated += core.run_cycles(&mut stream, 100_000).instructions;
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        name: match bench {
            SpecBenchmark::Sixtrack => "core_cpu_bound_sixtrack",
            SpecBenchmark::Mcf => "core_mem_bound_mcf",
            _ => "core_other",
        },
        instructions: simulated,
        seconds,
    }
}

/// Full `capture_benchmark` throughput (all three power modes, warm-up and
/// sampling included) — the end-to-end number every experiment depends on.
///
/// Measured at steady state: one untimed capture first, so the recording
/// tape's storage pool is mapped and faulted in. Experiments capture all
/// 12 benchmarks in one process, so steady state is the representative
/// regime; the first capture in a process pays roughly one extra page
/// fault per 4 KiB of tape.
fn capture_mips(bench: SpecBenchmark, limit: u64) -> Measurement {
    let config = CaptureConfig::fast(limit);
    let _ = capture_benchmark(bench, &config).expect("warm capture");
    let start = Instant::now();
    let traces = capture_benchmark(bench, &config).expect("capture");
    let seconds = start.elapsed().as_secs_f64();
    let instructions: u64 = gpm_types::PowerMode::ALL
        .iter()
        .map(|&m| traces.trace(m).total_instructions())
        .sum();
    Measurement {
        name: match bench {
            SpecBenchmark::Sixtrack => "capture_cpu_bound_sixtrack",
            SpecBenchmark::Mcf => "capture_mem_bound_mcf",
            _ => "capture_other",
        },
        instructions,
        seconds,
    }
}

/// Full-CMP throughput: all-Turbo quantum-synchronised run of `combo`
/// against the shared L2 for `sim_us` of simulated wall time, reporting
/// total simulated instructions (all cores) per wall-clock second.
///
/// On a multi-core host the per-quantum core stepping overlaps on the
/// `gpm_par` pool; on a 1-core host this measures the serial protocol.
fn cmp_full_mips(name: &'static str, combo: &WorkloadCombo, sim_us: f64) -> Measurement {
    let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
    let mut sim = FullCmpSim::new(
        combo,
        &modes,
        &CoreConfig::power4(),
        PowerModel::power4_calibrated(),
        DvfsParams::paper(),
    )
    .expect("combo and modes agree");
    // Warm caches, predictors and the per-core scratch outside the timed
    // region.
    let _ = sim.run(Micros::new(sim_us * 0.1));

    let start = Instant::now();
    let outcome = sim.run(Micros::new(sim_us));
    let seconds = start.elapsed().as_secs_f64();
    let instructions = outcome.per_core.iter().map(|c| c.instructions).sum();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

/// Synthetic constant-rate traces so the manager-loop measurement has no
/// capture dependency and a deterministic interval count.
fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=4000)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64) as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

/// Manager control-loop throughput over a 4-core synthetic trace sim
/// (~190 explore intervals per run), with or without the guard rails.
/// The two variants bound the guard-rail overhead on the fault-free path:
/// the frame conversion + guard bookkeeping per interval must stay within
/// ~2% of the legacy loop.
fn manager_loop_mips(name: &'static str, guarded: bool, repeats: usize) -> Measurement {
    let traces = || {
        vec![
            constant_traces("a", 180_000_000, 2.0, 20.0),
            constant_traces("b", 45_000_000, 0.5, 12.0),
            constant_traces("c", 135_000_000, 1.5, 17.0),
            constant_traces("d", 90_000_000, 1.0, 14.0),
        ]
    };
    let options = if guarded {
        RunOptions::guarded()
    } else {
        RunOptions::default()
    };
    let schedule = BudgetSchedule::constant(0.8);
    // One untimed run to warm allocator pools and fault the traces in.
    let sim = TraceCmpSim::new(traces(), SimParams::default()).unwrap();
    let _ = GlobalManager::new()
        .run_with(sim, &mut MaxBips::new(), &schedule, &options)
        .unwrap();

    let mut instructions = 0u64;
    let start = Instant::now();
    for _ in 0..repeats {
        let sim = TraceCmpSim::new(traces(), SimParams::default()).unwrap();
        let run = GlobalManager::new()
            .run_with(sim, &mut MaxBips::new(), &schedule, &options)
            .unwrap();
        instructions += run.per_core_instructions.iter().sum::<u64>();
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        name,
        instructions,
        seconds,
    }
}

fn main() {
    let quick = std::env::var("GPM_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (core_target, capture_limit, cmp_us, manager_repeats) = if quick {
        (2_000_000, 300_000, 200.0, 2)
    } else {
        (40_000_000, 8_000_000, 2_000.0, 40)
    };

    let measurements = [
        core_stream_mips(SpecBenchmark::Sixtrack, core_target),
        core_stream_mips(SpecBenchmark::Mcf, core_target),
        capture_mips(SpecBenchmark::Sixtrack, capture_limit),
        capture_mips(SpecBenchmark::Mcf, capture_limit),
        cmp_full_mips("cmp_full_2way_gcc_mesa", &combos::gcc_mesa(), 4.0 * cmp_us),
        cmp_full_mips(
            "cmp_full_4way_ammp_mcf_crafty_art",
            &combos::ammp_mcf_crafty_art(),
            2.0 * cmp_us,
        ),
        cmp_full_mips("cmp_full_8way_mixed", &combos::eight_way_mixed(), cmp_us),
        manager_loop_mips("manager_fault_free", false, manager_repeats),
        manager_loop_mips("manager_guarded", true, manager_repeats),
    ];

    let mut json = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        println!("{:<28} {:>9.2} simulated MIPS", m.name, m.mips());
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(json, "  \"{}\": {:.2}{}", m.name, m.mips(), comma);
    }
    json.push('}');

    let (ff, guarded) = (
        measurements[measurements.len() - 2].mips(),
        measurements[measurements.len() - 1].mips(),
    );
    println!(
        "guard-rail overhead on the fault-free path: {:+.2}%",
        (ff / guarded - 1.0) * 100.0
    );

    let dir = std::path::Path::new("target").join("gpm-results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("sim_throughput.json"), &json);
    }
    println!("{json}");
}
