//! Ablation: POWER4-style 8-stream hardware prefetcher (disabled in Table 1).
fn main() {
    gpm_bench::run_experiment("ablation_prefetch", |_ctx| {
        Ok(gpm_experiments::ablation::prefetch(3_000_000).render())
    });
}
