//! Regenerates Figure 7: oracle/static bounds vs MaxBIPS and chip-wide.
fn main() {
    gpm_bench::run_experiment("fig7_bounds", |ctx| {
        Ok(gpm_experiments::fig7::run(ctx)?.render())
    });
}
