//! Extension: the dual problem — minimise power for a performance target.
fn main() {
    gpm_bench::run_experiment("ext_min_power", |ctx| {
        Ok(gpm_experiments::ablation::dual_problem(ctx)?.render())
    });
}
