//! Regenerates Figure 5: power saving vs perf degradation (3:1 target).
fn main() {
    gpm_bench::run_experiment("fig5_savings_ratio", |ctx| {
        Ok(gpm_experiments::fig5::run(ctx)?.render())
    });
}
