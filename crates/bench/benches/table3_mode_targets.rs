//! Regenerates Table 3: target ΔPower:ΔPerformance ratios per mode.
fn main() {
    gpm_bench::run_experiment("table3_mode_targets", |_ctx| {
        Ok(gpm_experiments::tables::table3().render())
    });
}
