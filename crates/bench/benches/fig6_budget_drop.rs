//! Regenerates Figure 6: MaxBIPS timeline under a 90%→70% budget drop.
fn main() {
    gpm_bench::run_experiment("fig6_budget_drop", |ctx| {
        Ok(gpm_experiments::fig6::run(ctx)?.render())
    });
}
