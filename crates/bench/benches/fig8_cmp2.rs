//! Regenerates Figure 8: 2-way CMP policy curves for the Table 2 combos.
fn main() {
    gpm_bench::run_experiment("fig8_cmp2", |ctx| {
        Ok(gpm_experiments::scaling::fig8(ctx)?.render())
    });
}
