//! Regenerates Figure 9: 4-way CMP policy curves for the Table 2 combos.
fn main() {
    gpm_bench::run_experiment("fig9_cmp4", |ctx| {
        Ok(gpm_experiments::scaling::fig9(ctx)?.render())
    });
}
