//! Ablation: explore-interval length vs degradation and stall overhead.
fn main() {
    gpm_bench::run_experiment("ablation_explore_interval", |ctx| {
        Ok(gpm_experiments::ablation::explore_interval(ctx, 0.8)?.render())
    });
}
