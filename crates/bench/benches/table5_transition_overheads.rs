//! Regenerates Table 5: DVFS transition overheads at 10 mV/µs.
use gpm_power::DvfsParams;
fn main() {
    gpm_bench::run_experiment("table5_transition_overheads", |_ctx| {
        Ok(gpm_experiments::tables::table5(&DvfsParams::paper()).render())
    });
}
