//! Extension: per-core thermal throttling over an RC junction model.
fn main() {
    gpm_bench::run_experiment("ext_thermal", |ctx| {
        Ok(gpm_experiments::ablation::thermal(ctx, 72.0)?.render())
    });
}
