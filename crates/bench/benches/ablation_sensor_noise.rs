//! Ablation: power-sensor noise vs MaxBIPS budget adherence.
fn main() {
    gpm_bench::run_experiment("ablation_sensor_noise", |ctx| {
        Ok(gpm_experiments::ablation::sensor_noise(ctx, 0.8)?.render())
    });
}
