//! Ablation: exhaustive 3^N vs greedy MaxBIPS search quality.
use gpm_workloads::combos;
fn main() {
    gpm_bench::run_experiment("ablation_search", |ctx| {
        let four = gpm_experiments::ablation::search(ctx, &combos::ammp_mcf_crafty_art())?;
        let eight = gpm_experiments::ablation::search(ctx, &combos::eight_way_mixed())?;
        Ok(format!("{}\n{}", four.render(), eight.render()))
    });
}
