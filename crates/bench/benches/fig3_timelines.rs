//! Regenerates Figure 3: chip-wide DVFS vs MaxBIPS power timelines at 83%.
fn main() {
    gpm_bench::run_experiment("fig3_timelines", |ctx| {
        Ok(gpm_experiments::fig3::run(ctx)?.render())
    });
}
