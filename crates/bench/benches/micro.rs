//! Criterion microbenchmarks: controller decision latency (exhaustive vs
//! greedy search across core counts), trace-simulator throughput, and core
//! timing-model throughput.
//!
//! These quantify the engineering claims DESIGN.md makes: the 3^N search is
//! practical at the paper's 2–8-core scales, the greedy extension is O(N)
//! and enables the paper's projected 16–64-core chips, and the simulators
//! are fast enough to regenerate every figure from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpm_cmp::CoreObservation;
use gpm_core::{GreedyMaxBips, MaxBips, Policy, PolicyContext, PowerBipsMatrices};
use gpm_microarch::{CoreConfig, CoreModel};
use gpm_power::DvfsParams;
use gpm_types::{Bips, CoreId, Hertz, Micros, ModeCombination, PowerMode, Watts};
use gpm_workloads::SpecBenchmark;

fn observations(cores: usize) -> Vec<CoreObservation> {
    (0..cores)
        .map(|i| CoreObservation {
            core: CoreId::new(i),
            mode: PowerMode::Turbo,
            power: Watts::new(12.0 + (i % 5) as f64 * 2.0),
            bips: Bips::new(0.4 + (i % 4) as f64 * 0.6),
            instructions: 0,
        })
        .collect()
}

fn decision_latency(c: &mut Criterion) {
    let dvfs = DvfsParams::paper();
    let mut group = c.benchmark_group("decision_latency");
    for &cores in &[2usize, 4, 8] {
        let obs = observations(cores);
        let matrices = PowerBipsMatrices::predict(&obs);
        let current = ModeCombination::uniform(cores, PowerMode::Turbo);
        let budget = Watts::new(matrices.chip_power(&current).value() * 0.8);
        let ctx = PolicyContext {
            current_modes: &current,
            matrices: &matrices,
            future: None,
            budget,
            dvfs: &dvfs,
            explore: Micros::new(500.0),
        };
        group.bench_with_input(BenchmarkId::new("exhaustive", cores), &cores, |b, _| {
            let mut policy = MaxBips::new();
            b.iter(|| black_box(policy.decide(&ctx)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", cores), &cores, |b, _| {
            let mut policy = GreedyMaxBips::new();
            b.iter(|| black_box(policy.decide(&ctx)));
        });
    }
    // Greedy only at scales where exhaustive is impractical.
    for &cores in &[16usize, 32, 64] {
        let obs = observations(cores);
        let matrices = PowerBipsMatrices::predict(&obs);
        let current = ModeCombination::uniform(cores, PowerMode::Turbo);
        let budget = Watts::new(matrices.chip_power(&current).value() * 0.8);
        let ctx = PolicyContext {
            current_modes: &current,
            matrices: &matrices,
            future: None,
            budget,
            dvfs: &dvfs,
            explore: Micros::new(500.0),
        };
        group.bench_with_input(BenchmarkId::new("greedy", cores), &cores, |b, _| {
            let mut policy = GreedyMaxBips::new();
            b.iter(|| black_box(policy.decide(&ctx)));
        });
    }
    group.finish();
}

fn core_model_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_model");
    group.sample_size(10);
    for bench in [SpecBenchmark::Gcc, SpecBenchmark::Mcf] {
        group.bench_function(bench.name(), |b| {
            let config = CoreConfig::power4();
            let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
            let mut stream = bench.stream();
            b.iter(|| black_box(core.run_cycles(&mut stream, 100_000)));
        });
    }
    group.finish();
}

fn trace_sim_throughput(c: &mut Criterion) {
    use gpm_cmp::{SimParams, TraceCmpSim};
    use gpm_trace::{CaptureConfig, TraceStore};

    let store = TraceStore::new(CaptureConfig::fast(500_000));
    let traces = store
        .combo(&gpm_workloads::combos::ammp_mcf_crafty_art())
        .expect("capture");
    let mut group = c.benchmark_group("trace_sim");
    group.bench_function("explore_interval_4core", |b| {
        let turbo = ModeCombination::uniform(4, PowerMode::Turbo);
        let mut sim = TraceCmpSim::new(traces.clone(), SimParams::default()).expect("sim");
        b.iter(|| {
            if sim.finished() {
                sim = TraceCmpSim::new(traces.clone(), SimParams::default()).expect("sim");
            }
            black_box(sim.advance_explore(&turbo).expect("advance"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    decision_latency,
    core_model_throughput,
    trace_sim_throughput
);
criterion_main!(benches);
