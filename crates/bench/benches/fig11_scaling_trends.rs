//! Regenerates Figure 11: policy trends with respect to CMP scaling.
fn main() {
    gpm_bench::run_experiment("fig11_scaling_trends", |ctx| {
        Ok(gpm_experiments::scaling::fig11(ctx)?.render())
    });
}
