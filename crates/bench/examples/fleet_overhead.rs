//! Isolation probe: the fault-free overhead of the fleet chaos layer,
//! with nothing else having run in the process. Runs the saturating
//! fleet load disarmed and armed-but-never-firing in interleaved rounds
//! and prints per-round throughputs plus the best-of ratio — the number
//! `BENCH_sim_throughput.json` records as the `fleet_chaos_overhead`
//! speedup row. Not part of the recorded suite.

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let (nodes, ticks) = (10_000, 12);
    let (mut best_plain, mut best_armed) = (0.0f64, 0.0f64);
    for round in 0..rounds {
        // Alternate the order so within-round drift (thermal, background
        // load ramping) biases neither variant.
        let (plain, armed) = if round % 2 == 0 {
            let plain = gpm_experiments::fleet::run(nodes, ticks).expect("fleet run");
            let armed = gpm_experiments::fleet::run_armed(nodes, ticks).expect("armed run");
            (plain, armed)
        } else {
            let armed = gpm_experiments::fleet::run_armed(nodes, ticks).expect("armed run");
            let plain = gpm_experiments::fleet::run(nodes, ticks).expect("fleet run");
            (plain, armed)
        };
        println!(
            "round {round}: disarmed {:>9.0} dec/s, armed {:>9.0} dec/s, ratio {:.3}",
            plain.decisions_per_sec,
            armed.decisions_per_sec,
            armed.decisions_per_sec / plain.decisions_per_sec
        );
        best_plain = best_plain.max(plain.decisions_per_sec);
        best_armed = best_armed.max(armed.decisions_per_sec);
    }
    println!(
        "best-of-{rounds}: disarmed {best_plain:.0} dec/s, armed {best_armed:.0} dec/s, \
         armed/disarmed {:.3}",
        best_armed / best_plain
    );
}
