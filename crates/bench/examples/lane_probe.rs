//! Isolation probe: decompose lane-kernel overhead — scalar engine vs a
//! 1-lane batch vs an 8-lane batch on independent streams. Not part of
//! the recorded suite.

use std::time::Instant;

use gpm_microarch::{CoreConfig, CoreModel, IntervalStats, LaneBatch, PrivateMemory};
use gpm_types::Hertz;
use gpm_workloads::SpecBenchmark;

const WARM: u64 = 3_000_000;
const RUN: u64 = 60_000_000;

fn main() {
    let config = CoreConfig::power4();
    let freq = Hertz::from_ghz(1.0);
    let benches = [
        SpecBenchmark::Sixtrack,
        SpecBenchmark::Mcf,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mesa,
        SpecBenchmark::Ammp,
        SpecBenchmark::Crafty,
        SpecBenchmark::Art,
        SpecBenchmark::Gap,
    ];

    // Scalar reference: one core, one stream.
    let mut core = CoreModel::new(&config, freq).unwrap();
    let mut stream = benches[0].stream();
    let _ = core.run_cycles(&mut stream, WARM);
    let start = Instant::now();
    let stats = core.run_cycles(&mut stream, RUN);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "scalar_1core:   {:.2} simulated MIPS",
        stats.instructions as f64 / secs / 1.0e6
    );

    // 1-lane batch, same stream.
    for (label, lanes) in [("batch_1lane: ", 1usize), ("batch_8lane: ", 8)] {
        let freqs = vec![freq; lanes];
        let mut batch = LaneBatch::new(&config, &freqs).unwrap();
        batch.set_chunk_ops(usize::MAX);
        let mut sources: Vec<_> = benches[..lanes].iter().map(|b| b.stream()).collect();
        let mut memories: Vec<_> = (0..lanes)
            .map(|_| PrivateMemory::new(&config).unwrap())
            .collect();
        let mut total = vec![IntervalStats::default(); lanes];
        batch.step_lanes(&mut sources, &mut memories, &vec![WARM; lanes], |_, _| None);
        let start = Instant::now();
        batch.step_lanes(&mut sources, &mut memories, &vec![RUN; lanes], |lane, s| {
            total[lane] = *s;
            None
        });
        let secs = start.elapsed().as_secs_f64();
        let instructions: u64 = total.iter().map(|s| s.instructions).sum();
        println!(
            "  {label} {:.2} simulated MIPS",
            instructions as f64 / secs / 1.0e6
        );
    }
}
