//! Isolation probe for the serve-path throughput rows: the single
//! [`FleetEngine`] drive, the in-process [`ShardedEngine`] at 1 and 4
//! shards, and the full wire path (`loadgen` against a loopback TCP
//! server), all interleaved round-robin in one process so ambient load
//! biases none of them.
//!
//! Usage: `cargo run --release -p gpm-bench --example serve_probe
//! [rounds] [nodes] [ticks]` (defaults 4, 10_000, 12).

use std::time::Instant;

use gpm_core::fleet_load::{PhaseTables, PHASES};
use gpm_core::{FleetConfig, FleetEngine};
use gpm_net::{LoadgenOptions, ServeOptions, Server, ShardedEngine};

fn fleet_config(nodes: usize) -> FleetConfig {
    FleetConfig {
        queue_capacity: nodes,
        ..FleetConfig::default()
    }
}

/// Sustained decisions/s of the plain single-engine drive (the
/// `fleet_decisions_10k_nodes` path), measured after a warm rotation.
fn direct_rate(tables: &PhaseTables, nodes: usize, ticks: u64) -> f64 {
    let mut engine = FleetEngine::new(fleet_config(nodes)).expect("config valid");
    for tick in 0..PHASES as u64 {
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, tick));
        }
        engine.run_tick(tick);
    }
    let start = Instant::now();
    let mut measured = 0u64;
    for tick in 0..ticks {
        let now = PHASES as u64 + tick;
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, now));
        }
        measured += engine.run_tick(now).len() as u64;
    }
    measured as f64 / start.elapsed().as_secs_f64()
}

/// Sustained decisions/s of the in-process sharded engine at `shards`.
fn sharded_rate(tables: &PhaseTables, shards: usize, nodes: usize, ticks: u64) -> f64 {
    let mut engine =
        ShardedEngine::homogeneous(&fleet_config(nodes), shards).expect("config valid");
    for tick in 0..PHASES as u64 {
        for node in 0..nodes as u64 {
            engine.try_submit(tables.telemetry(node, tick));
        }
        engine.run_tick(tick);
    }
    let start = Instant::now();
    let mut measured = 0u64;
    for tick in 0..ticks {
        let now = PHASES as u64 + tick;
        for node in 0..nodes as u64 {
            engine.try_submit(tables.telemetry(node, now));
        }
        measured += engine.run_tick(now).len() as u64;
    }
    measured as f64 / start.elapsed().as_secs_f64()
}

/// Full wire path: loadgen against a loopback TCP server.
fn loopback_rate(shards: usize, nodes: usize, ticks: u64) -> (f64, f64, f64) {
    let server = Server::bind(
        &gpm_net::Endpoint::Tcp("127.0.0.1:0".into()),
        ServeOptions {
            shards,
            config: fleet_config(nodes),
            once: true,
        },
    )
    .expect("server binds");
    let endpoint = server.local_endpoint();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    let report = gpm_net::loadgen::run(
        &endpoint,
        &LoadgenOptions {
            nodes,
            ticks: ticks as usize,
            shutdown: false,
        },
    )
    .expect("loadgen runs");
    handle.join().expect("server thread joins");
    (
        report.decisions_per_sec,
        report.p50_tick_ms,
        report.p99_tick_ms,
    )
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let rounds: usize = argv.next().and_then(|v| v.parse().ok()).unwrap_or(4);
    let nodes: usize = argv.next().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let ticks: u64 = argv.next().and_then(|v| v.parse().ok()).unwrap_or(12);
    let tables = PhaseTables::build();

    let mut best = [0.0f64; 5];
    let mut best_lat = (f64::INFINITY, f64::INFINITY);
    for round in 0..rounds {
        let direct = direct_rate(&tables, nodes, ticks);
        let sharded1 = sharded_rate(&tables, 1, nodes, ticks);
        let sharded4 = sharded_rate(&tables, 4, nodes, ticks);
        let (tcp1, p50, p99) = loopback_rate(1, nodes, ticks);
        let (tcp4, _, _) = loopback_rate(4, nodes, ticks);
        println!(
            "round {round}: direct {direct:.0}  sharded1 {sharded1:.0}  sharded4 {sharded4:.0}  \
             tcp1 {tcp1:.0}  tcp4 {tcp4:.0}  p50 {p50:.3} ms  p99 {p99:.3} ms"
        );
        for (slot, rate) in [direct, sharded1, sharded4, tcp1, tcp4]
            .into_iter()
            .enumerate()
        {
            if rate > best[slot] {
                best[slot] = rate;
            }
        }
        if p50 < best_lat.0 {
            best_lat = (p50, p99);
        }
    }
    println!(
        "best-of-{rounds}: direct {:.0}  sharded1 {:.0} ({:.3}x)  sharded4 {:.0} ({:.3}x)  \
         tcp1 {:.0} ({:.3}x)  tcp4 {:.0}  p50 {:.3} ms  p99 {:.3} ms",
        best[0],
        best[1],
        best[1] / best[0],
        best[2],
        best[2] / best[0],
        best[3],
        best[3] / best[0],
        best[4],
        best_lat.0,
        best_lat.1,
    );
}
