//! Isolation probe: time the full-CMP simulator with nothing else having
//! run in the process, to separate kernel-loop cost from cross-benchmark
//! pollution in the main throughput bench. Not part of the recorded suite.

use std::time::Instant;

use gpm_cmp::FullCmpSim;
use gpm_microarch::CoreConfig;
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Micros, ModeCombination, PowerMode};
use gpm_workloads::combos;

fn main() {
    for (name, combo, us) in [
        ("cmp_full_2way_gcc_mesa", combos::gcc_mesa(), 8_000.0),
        ("cmp_full_8way_mixed", combos::eight_way_mixed(), 2_000.0),
    ] {
        let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("combo and modes agree");
        let _ = sim.run(Micros::new(us * 0.1));
        let start = Instant::now();
        let outcome = sim.run(Micros::new(us));
        let seconds = start.elapsed().as_secs_f64();
        let instructions: u64 = outcome.per_core.iter().map(|c| c.instructions).sum();
        println!(
            "{name}: {:.2} simulated MIPS",
            instructions as f64 / seconds / 1.0e6
        );
    }
}
