//! Policy and budget curves — the paper's primary result format
//! (Section 5.4, Figures 4, 7, 8, 9, 10).

use std::sync::Arc;

use gpm_cmp::{SimParams, TraceCmpSim};
use gpm_trace::BenchmarkTraces;
use gpm_types::Result;

use crate::{metrics, BudgetSchedule, Constant, GlobalManager, Policy, RunResult};

/// The nine budget points the paper sweeps: 60% to 100% of maximum chip
/// power in 5% steps.
pub const DEFAULT_BUDGETS: [f64; 9] = [0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00];

/// One budget point of a policy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Budget as a fraction of maximum chip power.
    pub budget: f64,
    /// Throughput degradation vs all-Turbo (policy-curve y-axis).
    pub perf_degradation: f64,
    /// Weighted slowdown vs all-Turbo (fairness metric).
    pub weighted_slowdown: f64,
    /// Average chip power / budget (budget-curve y-axis).
    pub budget_utilization: f64,
    /// Power saving vs all-Turbo (Figure 5 x-axis).
    pub power_saving: f64,
}

/// A policy's curve across the budget sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCurve {
    /// Policy name.
    pub policy: String,
    /// One point per budget, in sweep order.
    pub points: Vec<CurvePoint>,
}

impl PolicyCurve {
    /// Mean performance degradation over all budget points — the quantity
    /// Figure 11 averages "over the active range of power budgets".
    #[must_use]
    pub fn mean_degradation(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.perf_degradation).sum::<f64>() / self.points.len() as f64
    }
}

/// Runs the all-Turbo baseline for a trace set.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn turbo_baseline(traces: &[Arc<BenchmarkTraces>], params: &SimParams) -> Result<RunResult> {
    let sim = TraceCmpSim::new(traces.to_vec(), params.clone())?;
    let mut policy = Constant::all_turbo(traces.len());
    GlobalManager::new().run(sim, &mut policy, &BudgetSchedule::constant(1.0))
}

/// Runs one policy at one budget point and condenses the run into a
/// [`CurvePoint`]. This is the unit of work [`sweep_policy`] fans out.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn evaluate_policy_point(
    traces: &[Arc<BenchmarkTraces>],
    params: &SimParams,
    budget: f64,
    baseline: &RunResult,
    make_policy: &(dyn Fn() -> Box<dyn Policy> + Sync),
) -> Result<CurvePoint> {
    let sim = TraceCmpSim::new(traces.to_vec(), params.clone())?;
    let mut policy = make_policy();
    let run = GlobalManager::new().run(sim, &mut policy, &BudgetSchedule::constant(budget))?;
    Ok(CurvePoint {
        budget,
        perf_degradation: metrics::throughput_degradation(&run, baseline),
        weighted_slowdown: metrics::weighted_slowdown(&run, baseline),
        budget_utilization: run.budget_utilization(),
        power_saving: metrics::power_saving(&run, baseline),
    })
}

/// Sweeps one policy across `budgets`, producing its policy curve. A fresh
/// policy instance is created per budget via `make_policy`; the all-Turbo
/// baseline is supplied by the caller so it can be shared across policies.
///
/// Budget points are independent runs, so they are evaluated across the
/// [`gpm_par`] worker pool. Results land in sweep order and each point is
/// bit-identical to the serial loop's (see the `gpm-par` crate docs).
///
/// # Errors
///
/// Propagates simulation errors; with multiple failing budgets, the error
/// reported is the lowest-budget-index one, as in the serial sweep.
pub fn sweep_policy(
    traces: &[Arc<BenchmarkTraces>],
    params: &SimParams,
    budgets: &[f64],
    baseline: &RunResult,
    make_policy: &(dyn Fn() -> Box<dyn Policy> + Sync),
) -> Result<PolicyCurve> {
    let name = make_policy().name().to_owned();
    let points = gpm_par::try_parallel_map(budgets, |&budget| {
        evaluate_policy_point(traces, params, budget, baseline, make_policy)
    })?;
    Ok(PolicyCurve {
        policy: name,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipWide, MaxBips};
    use gpm_trace::{ModeTrace, TraceSample};
    use gpm_types::{Micros, PowerMode};

    /// A two-phase synthetic benchmark: alternates between a high-power
    /// CPU-ish phase and a low-power memory-ish phase, so dynamic policies
    /// have real temporal variation to exploit.
    fn phased_traces(
        name: &str,
        total: u64,
        bips_hi: f64,
        bips_lo: f64,
        power_hi: f64,
        power_lo: f64,
        mem_boundedness: f64,
    ) -> Arc<BenchmarkTraces> {
        let delta = Micros::new(50.0);
        let delta_s = delta.to_seconds().value();
        let traces = PowerMode::ALL
            .map(|mode| {
                // Memory-bound work degrades less than linearly.
                let perf_scale = 1.0 - (1.0 - mode.bips_scale_bound()) * (1.0 - mem_boundedness);
                let mut cum = 0.0f64;
                let samples: Vec<TraceSample> = (0..3000)
                    .map(|k| {
                        let hi = (k / 20) % 2 == 0; // 1 ms phases
                        let bips = if hi { bips_hi } else { bips_lo } * perf_scale;
                        let power = if hi { power_hi } else { power_lo } * mode.power_scale();
                        cum += bips * 1.0e9 * delta_s;
                        TraceSample {
                            instructions_end: cum as u64,
                            power_w: power,
                            bips,
                        }
                    })
                    .collect();
                ModeTrace::new(mode, delta, samples)
            })
            .to_vec();
        Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
    }

    fn quad() -> Vec<Arc<BenchmarkTraces>> {
        vec![
            phased_traces("cpu1", 40_000_000, 2.2, 1.8, 21.0, 18.0, 0.05),
            phased_traces("cpu2", 40_000_000, 1.9, 1.5, 19.0, 16.0, 0.1),
            phased_traces("mem1", 12_000_000, 0.9, 0.4, 14.0, 11.0, 0.8),
            phased_traces("mem2", 12_000_000, 0.6, 0.3, 12.0, 10.0, 0.9),
        ]
    }

    #[test]
    fn maxbips_beats_chipwide_across_budgets() {
        let traces = quad();
        let params = SimParams::default();
        let baseline = turbo_baseline(&traces, &params).unwrap();
        let budgets = [0.7, 0.8, 0.9];
        let maxbips = sweep_policy(&traces, &params, &budgets, &baseline, &|| {
            Box::new(MaxBips::new())
        })
        .unwrap();
        let chipwide = sweep_policy(&traces, &params, &budgets, &baseline, &|| {
            Box::new(ChipWide::new())
        })
        .unwrap();
        assert_eq!(maxbips.policy, "MaxBIPS");
        for (m, c) in maxbips.points.iter().zip(&chipwide.points) {
            assert!(
                m.perf_degradation <= c.perf_degradation + 1e-9,
                "budget {}: MaxBIPS {} vs ChipWide {}",
                m.budget,
                m.perf_degradation,
                c.perf_degradation
            );
        }
        assert!(maxbips.mean_degradation() <= chipwide.mean_degradation());
    }

    #[test]
    fn degradation_shrinks_with_budget() {
        let traces = quad();
        let params = SimParams::default();
        let baseline = turbo_baseline(&traces, &params).unwrap();
        let curve = sweep_policy(&traces, &params, &[0.65, 0.80, 1.00], &baseline, &|| {
            Box::new(MaxBips::new())
        })
        .unwrap();
        let d = &curve.points;
        assert!(d[0].perf_degradation >= d[1].perf_degradation - 0.005);
        assert!(d[1].perf_degradation >= d[2].perf_degradation - 0.005);
        // At 100% budget the policy should be near-free.
        assert!(
            d[2].perf_degradation.abs() < 0.01,
            "100% budget degradation {}",
            d[2].perf_degradation
        );
    }

    #[test]
    fn budgets_are_respected_on_average() {
        let traces = quad();
        let params = SimParams::default();
        let baseline = turbo_baseline(&traces, &params).unwrap();
        let curve = sweep_policy(&traces, &params, &[0.7, 0.8, 0.9], &baseline, &|| {
            Box::new(MaxBips::new())
        })
        .unwrap();
        for p in &curve.points {
            assert!(
                p.budget_utilization <= 1.02,
                "budget {} exceeded: {}",
                p.budget,
                p.budget_utilization
            );
            assert!(p.budget_utilization > 0.5, "far too much slack");
        }
    }
}
