//! Performance and fairness metrics (Section 5.4).

use gpm_types::SummaryStats;

use crate::RunResult;

/// Overall system performance degradation of `run` with respect to the
/// all-Turbo `baseline`: `1 − BIPS / BIPS_turbo` — the y-axis of every
/// policy curve in the paper.
#[must_use]
pub fn throughput_degradation(run: &RunResult, baseline: &RunResult) -> f64 {
    1.0 - run.average_chip_bips().value() / baseline.average_chip_bips().value()
}

/// Per-thread speedups of `run` relative to `baseline` (each ≤ ~1).
///
/// # Panics
///
/// Panics if the two runs cover different core counts.
#[must_use]
pub fn per_thread_speedups(run: &RunResult, baseline: &RunResult) -> Vec<f64> {
    let a = run.per_core_ips();
    let b = baseline.per_core_ips();
    assert_eq!(a.len(), b.len(), "core count mismatch between runs");
    a.iter().zip(&b).map(|(x, y)| x / y).collect()
}

/// Weighted slowdown (Section 5.4): `100% −` the harmonic mean of
/// per-thread speedups with respect to all-Turbo execution — the
/// fairness-aware companion to [`throughput_degradation`].
#[must_use]
pub fn weighted_slowdown(run: &RunResult, baseline: &RunResult) -> f64 {
    1.0 - SummaryStats::harmonic_mean(per_thread_speedups(run, baseline))
}

/// The weighted-speedup variant using the arithmetic mean; the paper
/// reports "negligible differences" between the two.
#[must_use]
pub fn weighted_speedup_slowdown(run: &RunResult, baseline: &RunResult) -> f64 {
    1.0 - SummaryStats::arithmetic_mean(per_thread_speedups(run, baseline))
}

/// Power saving of `run` relative to `baseline` (x-axis of Figure 5).
#[must_use]
pub fn power_saving(run: &RunResult, baseline: &RunResult) -> f64 {
    1.0 - run.average_chip_power().value() / baseline.average_chip_power().value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_cmp::SimHistory;
    use gpm_types::{Micros, Watts};

    fn result(instr: &[u64], duration_us: f64, power: f64) -> RunResult {
        RunResult {
            policy: "test".into(),
            benchmarks: instr.iter().map(|_| "b".to_owned()).collect(),
            envelope: Watts::new(100.0),
            records: vec![crate::ExploreRecord {
                start: Micros::ZERO,
                budget: Watts::new(80.0),
                modes: gpm_types::ModeCombination::uniform(
                    instr.len(),
                    gpm_types::PowerMode::Turbo,
                ),
                chip_power: Watts::new(power),
                chip_bips: gpm_types::Bips::ZERO,
                stall: Micros::ZERO,
                duration: Micros::new(duration_us),
                bootstrap: false,
            }],
            history: SimHistory::default(),
            per_core_instructions: instr.to_vec(),
            duration: Micros::new(duration_us),
            fault_events: vec![],
            guard_actions: vec![],
            cache_counters: crate::CacheCounters::default(),
        }
    }

    #[test]
    fn degradation_against_baseline() {
        let base = result(&[1000, 1000], 1.0, 40.0);
        let run = result(&[900, 900], 1.0, 30.0);
        assert!((throughput_degradation(&run, &base) - 0.1).abs() < 1e-12);
        assert!((power_saving(&run, &base) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_slowdown_harmonic_vs_arithmetic() {
        let base = result(&[1000, 1000], 1.0, 40.0);
        // Unbalanced slowdown: one thread at 50%, one untouched.
        let run = result(&[500, 1000], 1.0, 40.0);
        let hm = weighted_slowdown(&run, &base);
        let am = weighted_speedup_slowdown(&run, &base);
        assert!((am - 0.25).abs() < 1e-12);
        assert!((hm - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
        assert!(hm > am, "harmonic mean punishes unfairness harder");
    }

    #[test]
    fn balanced_slowdowns_agree() {
        let base = result(&[1000, 1000], 1.0, 40.0);
        let run = result(&[900, 900], 1.0, 40.0);
        let hm = weighted_slowdown(&run, &base);
        let am = weighted_speedup_slowdown(&run, &base);
        assert!((hm - am).abs() < 1e-12);
        assert!((hm - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn mismatched_runs_panic() {
        let base = result(&[1000], 1.0, 40.0);
        let run = result(&[900, 900], 1.0, 40.0);
        let _ = weighted_slowdown(&run, &base);
    }

    #[test]
    fn run_result_aggregates() {
        let r = result(&[2_000_000], 1000.0, 25.0);
        assert!((r.average_chip_power().value() - 25.0).abs() < 1e-12);
        // 2M instructions in 1 ms = 2 BIPS.
        assert!((r.average_chip_bips().value() - 2.0).abs() < 1e-12);
        assert!((r.budget_utilization() - 25.0 / 80.0).abs() < 1e-12);
        assert_eq!(r.overshoot_intervals(), 0);
        assert_eq!(r.total_stall(), Micros::ZERO);
    }
}
