//! The fleet-mode decision engine: batched, memoized mode decisions for
//! thousands of simulated CMP nodes per tick.
//!
//! A rack-scale deployment runs one global manager *service* instead of one
//! controller per chip: every tick, each node reports its predictive
//! Power/BIPS matrices and the service returns next-interval mode vectors
//! for all of them. [`FleetEngine`] is that service's decision core:
//!
//! 1. **Ingest + guard rails.** Telemetry enters through a bounded tick
//!    queue ([`FleetEngine::submit`]; overflow is rejected and counted as
//!    backpressure). At tick processing, each report's age is classified
//!    with the `gpm-faults` freshness vocabulary ([`SensorStatus`]): fresh
//!    and tolerably-stale reports are decided, anything older is dropped —
//!    a stale mode vector applied to a drifted phase is worse than letting
//!    the node hold its current modes.
//! 2. **Within-tick dedup.** Reports are canonicalized to
//!    [`QuantizedKey`]s; identical problems collapse onto one leader per
//!    tick (first occurrence wins), so a phase-aligned fleet costs one
//!    solve for thousands of nodes.
//! 3. **Memoized solve.** Leaders probe the cross-tick [`DecisionCache`];
//!    residual misses fan out over the `gpm_par` pool — the flat exact
//!    branch-and-bound up to [`FleetConfig::flat_core_limit`] cores,
//!    [`HierMaxBips`] above — and are inserted back serially in miss
//!    order, which keeps the cache's LRU state (and therefore every later
//!    decision) independent of the pool width.
//!
//! With exact keying (the default quanta) the emitted decisions are
//! bit-identical to solving every accepted report individually.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use gpm_faults::SensorStatus;
use gpm_power::DvfsParams;
use gpm_types::{GpmError, Micros, ModeCombination, QuantizedKey, Result, Watts};

use crate::policy::{solver, CacheConfig, HierMaxBips, Policy, PolicyContext};
use crate::{DecisionCache, PowerBipsMatrices};

/// Configuration for a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Cross-tick decision cache settings (capacity, quanta, verify mode).
    pub cache: CacheConfig,
    /// Bound on telemetry queued between ticks; submissions beyond it are
    /// rejected (backpressure). Must be at least 1.
    pub queue_capacity: usize,
    /// Maximum telemetry age, in ticks, still decided rather than dropped
    /// (0 = fresh-only).
    pub stale_tolerance: usize,
    /// Largest core count solved by the flat exact branch-and-bound;
    /// wider nodes use [`HierMaxBips`]. Must be at least 1.
    pub flat_core_limit: usize,
    /// Cluster width for the hierarchical solver on wide nodes.
    pub cluster_cores: usize,
    /// DVFS operating points assumed for every node (homogeneous fleet).
    pub dvfs: DvfsParams,
    /// Explore-interval length assumed for transition de-rating.
    pub explore: Micros,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            queue_capacity: 16_384,
            stale_tolerance: 1,
            flat_core_limit: 32,
            cluster_cores: 8,
            dvfs: DvfsParams::paper(),
            explore: Micros::new(500.0),
        }
    }
}

/// One node's per-tick report to the fleet engine.
#[derive(Debug, Clone)]
pub struct NodeTelemetry {
    /// Stable node identifier, echoed on the decision.
    pub node: u64,
    /// Tick the enclosed observations were taken at.
    pub tick: u64,
    /// The node's predictive Power/BIPS matrices for the next interval.
    pub matrices: PowerBipsMatrices,
    /// Modes the node's cores currently run in.
    pub current: ModeCombination,
    /// The node's chip power budget.
    pub budget: Watts,
}

/// The engine's answer for one accepted report.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecision {
    /// Node the decision is for.
    pub node: u64,
    /// Tick the decision was made at.
    pub tick: u64,
    /// Mode assignment for the node's next interval.
    pub modes: ModeCombination,
}

/// Cumulative fleet-engine accounting.
///
/// Invariant: `decisions_total == cache_hits + dedup_hits + unique_solves`
/// (dropped and rejected reports never become decisions).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetStats {
    /// Decisions emitted in total.
    pub decisions_total: u64,
    /// Tick-group leaders answered by the cross-tick cache.
    pub cache_hits: u64,
    /// Decisions answered by within-tick deduplication (group followers).
    pub dedup_hits: u64,
    /// Decisions that ran the solver.
    pub unique_solves: u64,
    /// Reports dropped for exceeding the staleness tolerance.
    pub dropped_stale: u64,
    /// Submissions rejected by the bounded tick queue.
    pub rejected_backpressure: u64,
    /// Measured microseconds spent in the solver.
    pub solver_us_spent: f64,
    /// Estimated solver microseconds avoided (hits × mean solve time).
    pub solver_us_saved: f64,
}

impl FleetStats {
    /// Fraction of decisions answered without running the solver.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.decisions_total == 0 {
            0.0
        } else {
            (self.cache_hits + self.dedup_hits) as f64 / self.decisions_total as f64
        }
    }
}

/// The batched, memoized decision engine (see the module docs for the
/// tick protocol).
///
/// # Examples
///
/// ```
/// use gpm_core::{FleetConfig, FleetEngine, NodeTelemetry, PowerBipsMatrices};
/// use gpm_types::{ModeCombination, PowerMode, Watts};
///
/// let mut engine = FleetEngine::new(FleetConfig::default())?;
/// for node in 0..4 {
///     engine.submit(NodeTelemetry {
///         node,
///         tick: 0,
///         matrices: PowerBipsMatrices::from_rows(
///             vec![[20.0, 12.0, 7.0], [18.0, 11.0, 6.5]],
///             vec![[2.0, 1.7, 1.4], [1.5, 1.3, 1.1]],
///         ),
///         current: ModeCombination::uniform(2, PowerMode::Turbo),
///         budget: Watts::new(30.0),
///     });
/// }
/// let decisions = engine.run_tick(0);
/// assert_eq!(decisions.len(), 4);
/// // Four identical problems cost one solve.
/// assert_eq!(engine.stats().unique_solves, 1);
/// assert_eq!(engine.stats().dedup_hits, 3);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    cache: DecisionCache,
    queue: Vec<NodeTelemetry>,
    stats: FleetStats,
}

impl FleetEngine {
    /// Creates an engine, validating every config bound.
    pub fn new(config: FleetConfig) -> Result<Self> {
        if config.queue_capacity == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.queue_capacity",
                reason: "tick queue must hold at least one report".into(),
            });
        }
        if config.flat_core_limit == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.flat_core_limit",
                reason: "flat solver limit must be at least 1".into(),
            });
        }
        // Validates cluster_cores (and pre-flights the wide-node path).
        HierMaxBips::with_cluster_cores(config.cluster_cores)?;
        let cache = DecisionCache::new(config.cache.clone())?;
        Ok(Self {
            cache,
            queue: Vec::new(),
            stats: FleetStats::default(),
            config,
        })
    }

    /// The configuration the engine was built with.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Cumulative accounting across all ticks so far.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// The cross-tick decision cache (length, counters).
    #[must_use]
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    /// Reports currently queued for the next tick.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues one report for the next [`run_tick`](Self::run_tick).
    /// Returns `false` (and counts backpressure) when the tick queue is
    /// full — the caller should retry next tick.
    pub fn submit(&mut self, telemetry: NodeTelemetry) -> bool {
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.rejected_backpressure += 1;
            return false;
        }
        self.queue.push(telemetry);
        true
    }

    /// Classifies a report's age against the staleness tolerance, in the
    /// `gpm-faults` freshness vocabulary: beyond-tolerance telemetry is
    /// treated like a dark sensor for this tick.
    fn freshness(&self, now: u64, report_tick: u64) -> SensorStatus {
        let age = now.saturating_sub(report_tick) as usize;
        if age == 0 {
            SensorStatus::Fresh
        } else if age <= self.config.stale_tolerance {
            SensorStatus::Stale { age }
        } else {
            SensorStatus::Dark
        }
    }

    /// Drains the tick queue and decides every accepted report, in
    /// submission order. `now` is the current tick, used for stale-drop.
    pub fn run_tick(&mut self, now: u64) -> Vec<NodeDecision> {
        let batch = std::mem::take(&mut self.queue);
        let mut accepted = Vec::with_capacity(batch.len());
        for report in batch {
            match self.freshness(now, report.tick) {
                SensorStatus::Fresh | SensorStatus::Stale { .. } => accepted.push(report),
                SensorStatus::Dark => self.stats.dropped_stale += 1,
            }
        }
        self.stats.decisions_total += accepted.len() as u64;

        // Within-tick dedup: group by canonical key, first occurrence
        // leads. Group order (= first-occurrence order) drives every
        // later cache access, so nothing depends on hash iteration order.
        let mut index: HashMap<QuantizedKey, usize> = HashMap::new();
        let mut groups: Vec<(QuantizedKey, Vec<usize>)> = Vec::new();
        for (i, report) in accepted.iter().enumerate() {
            let key = self.cache.key(
                &report.matrices,
                &report.current,
                report.budget,
                &self.config.dvfs,
                self.config.explore,
            );
            match index.entry(key.clone()) {
                Entry::Occupied(entry) => groups[*entry.get()].1.push(i),
                Entry::Vacant(entry) => {
                    entry.insert(groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }

        // Leaders probe the cross-tick cache serially, in group order.
        let mut results: Vec<Option<ModeCombination>> = vec![None; accepted.len()];
        let mut avoided_this_tick: u64 = 0;
        let mut misses: Vec<usize> = Vec::new();
        for (g, (key, members)) in groups.iter().enumerate() {
            self.stats.dedup_hits += members.len() as u64 - 1;
            if let Some(combo) = self.cache.get(key) {
                self.stats.cache_hits += 1;
                avoided_this_tick += members.len() as u64;
                if self.config.cache.verify_hits {
                    let leader = &accepted[members[0]];
                    let fresh = self.solve_one(leader);
                    assert_eq!(
                        combo, fresh,
                        "fleet cache hit diverged from a fresh solve; \
                         quantization is too coarse for this workload"
                    );
                }
                for &i in members {
                    results[i] = Some(combo.clone());
                }
            } else {
                avoided_this_tick += members.len() as u64 - 1;
                misses.push(g);
            }
        }

        // Residual misses fan out over the pool (order-preserving map),
        // then insert serially in miss order: cache state — and with it
        // every later eviction — is identical for any pool width.
        let miss_leaders: Vec<&NodeTelemetry> =
            misses.iter().map(|&g| &accepted[groups[g].1[0]]).collect();
        let config = &self.config;
        let solved: Vec<(ModeCombination, f64)> = gpm_par::parallel_map(&miss_leaders, |report| {
            let start = Instant::now();
            let combo = solve_report(config, report);
            (combo, start.elapsed().as_secs_f64() * 1e6)
        });
        for (&g, (combo, micros)) in misses.iter().zip(solved) {
            self.stats.unique_solves += 1;
            self.stats.solver_us_spent += micros;
            self.cache.insert(groups[g].0.clone(), combo.clone());
            for &i in &groups[g].1 {
                results[i] = Some(combo.clone());
            }
        }
        if self.stats.unique_solves > 0 {
            let mean = self.stats.solver_us_spent / self.stats.unique_solves as f64;
            self.stats.solver_us_saved += avoided_this_tick as f64 * mean;
        }

        accepted
            .into_iter()
            .zip(results)
            .map(|(report, modes)| NodeDecision {
                node: report.node,
                tick: now,
                modes: modes.expect("every accepted report was decided"),
            })
            .collect()
    }

    /// Solves one report without the cache (verify-hits audit path).
    fn solve_one(&self, report: &NodeTelemetry) -> ModeCombination {
        solve_report(&self.config, report)
    }
}

/// The fleet's solver dispatch: flat exact branch-and-bound up to the
/// configured width, the two-level hierarchical policy above it.
fn solve_report(config: &FleetConfig, report: &NodeTelemetry) -> ModeCombination {
    if report.matrices.cores() <= config.flat_core_limit {
        solver::solve(
            &report.matrices,
            &report.current,
            report.budget,
            &config.dvfs,
            config.explore,
        )
    } else {
        let mut hier = HierMaxBips::with_cluster_cores(config.cluster_cores)
            .expect("cluster width validated at engine construction");
        hier.decide(&PolicyContext {
            current_modes: &report.current,
            matrices: &report.matrices,
            future: None,
            budget: report.budget,
            dvfs: &config.dvfs,
            explore: config.explore,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_types::PowerMode;

    /// Telemetry for a `cores`-way node whose matrix rows vary with
    /// `phase`, so distinct phases are distinct cache keys.
    fn telemetry(node: u64, tick: u64, cores: usize, phase: u64) -> NodeTelemetry {
        let power: Vec<[f64; 3]> = (0..cores)
            .map(|i| {
                let t = 12.0 + ((i as u64 * 7 + phase * 5) % 11) as f64 * 1.3;
                [t, t * 0.55, t * 0.3]
            })
            .collect();
        let bips: Vec<[f64; 3]> = (0..cores)
            .map(|i| {
                let t = 0.4 + ((i as u64 * 5 + phase * 3) % 9) as f64 * 0.35;
                [t, t * 0.85, t * 0.7]
            })
            .collect();
        let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
        NodeTelemetry {
            node,
            tick,
            matrices: PowerBipsMatrices::from_rows(power, bips),
            current: ModeCombination::uniform(cores, PowerMode::Turbo),
            budget,
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for (mutate, _) in [
            (
                Box::new(|c: &mut FleetConfig| c.queue_capacity = 0) as Box<dyn Fn(&mut _)>,
                "queue",
            ),
            (Box::new(|c: &mut FleetConfig| c.cluster_cores = 0), "hier"),
            (
                Box::new(|c: &mut FleetConfig| c.flat_core_limit = 0),
                "flat",
            ),
            (
                Box::new(|c: &mut FleetConfig| c.cache.capacity = 0),
                "cache",
            ),
        ] {
            let mut config = FleetConfig::default();
            mutate(&mut config);
            assert!(matches!(
                FleetEngine::new(config),
                Err(GpmError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn dedup_collapses_identical_reports_preserving_order() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for node in 0..6 {
            // Nodes 0,2,4 share phase 0; nodes 1,3,5 share phase 1.
            assert!(engine.submit(telemetry(node, 0, 4, node % 2)));
        }
        let decisions = engine.run_tick(0);
        assert_eq!(
            decisions.iter().map(|d| d.node).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5],
            "decisions come back in submission order"
        );
        // Same phase ⇒ same modes; and the followers' answers equal their
        // leader's, which equals an uncached solve.
        for d in &decisions {
            let fresh = solve_report(engine.config(), &telemetry(d.node, 0, 4, d.node % 2));
            assert_eq!(d.modes, fresh, "node {}", d.node);
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions_total, 6);
        assert_eq!(stats.unique_solves, 2);
        assert_eq!(stats.dedup_hits, 4);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn repeated_phases_hit_across_ticks() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for tick in 0..3 {
            for node in 0..4 {
                assert!(engine.submit(telemetry(node, tick, 4, node % 2)));
            }
            let decisions = engine.run_tick(tick);
            assert_eq!(decisions.len(), 4);
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions_total, 12);
        assert_eq!(stats.unique_solves, 2, "only tick 0's two phases solve");
        assert_eq!(stats.cache_hits, 4, "two leaders hit on each later tick");
        assert_eq!(stats.dedup_hits, 6);
        assert!(stats.hit_rate() > 0.8);
        assert!(stats.solver_us_saved > 0.0);
        assert_eq!(engine.cache().len(), 2);
    }

    #[test]
    fn stale_reports_are_dropped_fresh_ones_decided() {
        let mut engine = FleetEngine::new(FleetConfig {
            stale_tolerance: 1,
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 5, 4, 0))); // fresh
        assert!(engine.submit(telemetry(1, 4, 4, 0))); // stale, in tolerance
        assert!(engine.submit(telemetry(2, 3, 4, 0))); // too old
        let decisions = engine.run_tick(5);
        assert_eq!(
            decisions.iter().map(|d| d.node).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(engine.stats().dropped_stale, 1);
        assert_eq!(engine.stats().decisions_total, 2);
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let mut engine = FleetEngine::new(FleetConfig {
            queue_capacity: 2,
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 0, 4, 0)));
        assert!(engine.submit(telemetry(1, 0, 4, 1)));
        assert!(!engine.submit(telemetry(2, 0, 4, 2)));
        assert_eq!(engine.stats().rejected_backpressure, 1);
        assert_eq!(engine.queued(), 2);
        // The queue drains on the tick and accepts again.
        assert_eq!(engine.run_tick(0).len(), 2);
        assert!(engine.submit(telemetry(2, 1, 4, 2)));
    }

    #[test]
    fn wide_nodes_take_the_hierarchical_path() {
        let config = FleetConfig {
            flat_core_limit: 8,
            cluster_cores: 8,
            ..FleetConfig::default()
        };
        let mut engine = FleetEngine::new(config.clone()).expect("valid config");
        let report = telemetry(0, 0, 16, 0);
        assert!(engine.submit(report.clone()));
        let decisions = engine.run_tick(0);
        let mut hier = HierMaxBips::with_cluster_cores(8).expect("valid width");
        let expected = hier.decide(&PolicyContext {
            current_modes: &report.current,
            matrices: &report.matrices,
            future: None,
            budget: report.budget,
            dvfs: &config.dvfs,
            explore: config.explore,
        });
        assert_eq!(decisions[0].modes, expected);
    }

    #[test]
    fn verify_hits_audits_cached_fleet_decisions() {
        let mut engine = FleetEngine::new(FleetConfig {
            cache: CacheConfig {
                verify_hits: true,
                ..CacheConfig::default()
            },
            ..FleetConfig::default()
        })
        .expect("valid config");
        for tick in 0..2 {
            for node in 0..3 {
                assert!(engine.submit(telemetry(node, tick, 4, 0)));
            }
            engine.run_tick(tick);
        }
        assert_eq!(engine.stats().cache_hits, 1);
    }
}
