//! The fleet-mode decision engine: batched, memoized mode decisions for
//! thousands of simulated CMP nodes per tick, hardened for degraded
//! operation.
//!
//! A rack-scale deployment runs one global manager *service* instead of one
//! controller per chip: every tick, each node reports its predictive
//! Power/BIPS matrices and the service returns next-interval mode vectors
//! for all of them. [`FleetEngine`] is that service's decision core:
//!
//! 1. **Ingest + guard rails.** Telemetry enters through a bounded tick
//!    queue ([`FleetEngine::submit`] / [`FleetEngine::try_submit`]).
//!    Reports with non-finite or negative power cells, mismatched matrix
//!    shapes or degenerate budgets are rejected up front (counted in
//!    [`FleetStats::rejected_invalid`]) so they can never poison the cache
//!    key space; queue overflow is rejected and counted as backpressure,
//!    with an exponential per-node retry hint when degraded mode is on. At
//!    tick processing, each report's age is classified with the
//!    `gpm-faults` freshness vocabulary ([`SensorStatus`]): fresh and
//!    tolerably-stale reports are decided, older ones are dropped as stale,
//!    and reports at or beyond [`FleetConfig::dark_after`] ticks are
//!    dropped as *dark* — each with its own counter, so the two failure
//!    classes (late node vs. presumed-dead node) stay distinguishable.
//! 2. **Chaos seam.** With [`FleetConfig::faults`] armed, a stateless
//!    seeded [`FleetFaultSession`] perturbs delivery on the serial intake
//!    path: flapping nodes lose their reports, skewed reports age in
//!    transit, corrupted reports fail validation, and solver invocations
//!    time out — all pure functions of `(seed, tick, node)`, so the fault
//!    schedule is bit-identical for any pool width and across restores.
//! 3. **Within-tick dedup.** Accepted reports are canonicalized to
//!    [`QuantizedKey`]s; identical problems collapse onto one leader per
//!    tick (first occurrence wins), so a phase-aligned fleet costs one
//!    solve for thousands of nodes.
//! 4. **Memoized solve.** Leaders probe the cross-tick [`DecisionCache`];
//!    residual misses fan out over the `gpm_par` pool — the flat exact
//!    branch-and-bound up to [`FleetConfig::flat_core_limit`] cores,
//!    [`HierMaxBips`] above — and are inserted back serially in miss
//!    order, which keeps the cache's LRU state (and therefore every later
//!    decision) independent of the pool width.
//! 5. **Degraded-mode fallback.** With [`FleetConfig::degraded`] set, a
//!    node whose report was dropped, invalidated or timed out still gets a
//!    decision: its last successfully-issued assignment stepped down
//!    [`DegradedConfig::clamp_steps`] modes (power-safe: staleness only
//!    ever lowers power), or all-Eff2 when no last-good assignment exists.
//!    Fallback decisions are flagged [`NodeDecision::degraded`] and counted
//!    separately — they never enter the cache-accounting identity.
//! 6. **Rack budget + watchdog.** With [`FleetConfig::rack`] set, the
//!    engine estimates total rack power each tick; when the estimate
//!    exceeds the rack budget (e.g. after [`FleetEngine::set_rack_budget`]
//!    steps it down mid-run), emergency shedding clamps nodes to all-Eff2
//!    in deterministic priority order (highest estimated power first, node
//!    id as tie-break) until the estimate fits. A rack-level violation
//!    watchdog mirrors the per-chip one in `manager.rs`: K consecutive
//!    violation ticks force a whole-rack Eff2 clamp whose hold time backs
//!    off exponentially.
//!
//! With exact keying (the default quanta) and no chaos/degraded/rack
//! configuration, the emitted decisions are bit-identical to solving every
//! accepted report individually — and bit-identical to the engine before
//! the fault-tolerance layer existed.
//!
//! [`FleetFaultSession`]: gpm_faults::FleetFaultSession

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use gpm_faults::{CorruptField, FleetFaultPlan, FleetFaultSession, SensorStatus};
use gpm_power::DvfsParams;
use gpm_types::{
    CoreId, GpmError, Micros, ModeCombination, PowerMode, QuantizedKey, Result, Watts,
};

use crate::policy::{solver, CacheConfig, CacheSnapshot, HierMaxBips, Policy, PolicyContext};
use crate::{DecisionCache, PowerBipsMatrices};

/// Version tag stamped on every [`FleetCheckpoint`]; bumped whenever the
/// snapshot layout changes incompatibly.
pub const FLEET_CHECKPOINT_VERSION: u32 = 1;

/// Degraded-operation knobs: what the engine does for nodes whose reports
/// were dropped, invalidated or timed out, and how rejected submitters
/// should back off.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedConfig {
    /// How many modes a fallback decision steps each core down from the
    /// node's last-good assignment (power-safe clamp; saturates at Eff2).
    pub clamp_steps: usize,
    /// Base retry delay, in ticks, after a node's first backpressure
    /// rejection.
    pub retry_base: u64,
    /// Cap on the backoff exponent: the n-th consecutive rejection yields
    /// a `retry_base << min(n - 1, retry_max_exp)` tick delay.
    pub retry_max_exp: u32,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        Self {
            clamp_steps: 1,
            retry_base: 1,
            retry_max_exp: 6,
        }
    }
}

/// Rack-level power-budget enforcement: emergency shedding plus a
/// violation watchdog mirroring the per-chip guard rails.
#[derive(Debug, Clone, PartialEq)]
pub struct RackConfig {
    /// Total rack power budget the per-tick estimate must fit under.
    pub budget: Watts,
    /// Consecutive estimated-violation ticks tolerated before the
    /// watchdog clamps the whole rack to Eff2.
    pub watchdog_k: usize,
    /// How many ticks the first whole-rack clamp holds.
    pub clamp_hold: u64,
    /// Ceiling on the exponential clamp-hold backoff.
    pub max_backoff: u64,
}

impl RackConfig {
    /// A rack config with the default watchdog parameters (K = 3, first
    /// hold 2 ticks, backoff ceiling 32 — matching the per-chip guard
    /// rails).
    #[must_use]
    pub fn new(budget: Watts) -> Self {
        Self {
            budget,
            watchdog_k: 3,
            clamp_hold: 2,
            max_backoff: 32,
        }
    }
}

/// Configuration for a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Cross-tick decision cache settings (capacity, quanta, verify mode).
    pub cache: CacheConfig,
    /// Bound on telemetry queued between ticks; submissions beyond it are
    /// rejected (backpressure). Must be at least 1.
    pub queue_capacity: usize,
    /// Maximum telemetry age, in ticks, still decided rather than dropped
    /// (0 = fresh-only).
    pub stale_tolerance: usize,
    /// Age, in ticks, at which a report counts as *dark* (node presumed
    /// unreachable) rather than merely stale. Must exceed
    /// `stale_tolerance`.
    pub dark_after: usize,
    /// Largest core count solved by the flat exact branch-and-bound;
    /// wider nodes use [`HierMaxBips`]. Must be at least 1.
    pub flat_core_limit: usize,
    /// Cluster width for the hierarchical solver on wide nodes.
    pub cluster_cores: usize,
    /// DVFS operating points assumed for every node (homogeneous fleet).
    pub dvfs: DvfsParams,
    /// Explore-interval length assumed for transition de-rating.
    pub explore: Micros,
    /// Fleet chaos plan; `None` (the default) disables the fault seam
    /// entirely.
    pub faults: Option<FleetFaultPlan>,
    /// Degraded-mode fallback behaviour; `None` (the default) reproduces
    /// the pre-hardening engine exactly — dropped reports yield no
    /// decision.
    pub degraded: Option<DegradedConfig>,
    /// Rack-level budget enforcement; `None` (the default) disables
    /// shedding and the rack watchdog.
    pub rack: Option<RackConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            queue_capacity: 16_384,
            stale_tolerance: 1,
            dark_after: 8,
            flat_core_limit: 32,
            cluster_cores: 8,
            dvfs: DvfsParams::paper(),
            explore: Micros::new(500.0),
            faults: None,
            degraded: None,
            rack: None,
        }
    }
}

/// One node's per-tick report to the fleet engine.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTelemetry {
    /// Stable node identifier, echoed on the decision.
    pub node: u64,
    /// Tick the enclosed observations were taken at.
    pub tick: u64,
    /// The node's predictive Power/BIPS matrices for the next interval.
    pub matrices: PowerBipsMatrices,
    /// Modes the node's cores currently run in.
    pub current: ModeCombination,
    /// The node's chip power budget.
    pub budget: Watts,
}

/// The engine's answer for one report (or, in degraded mode, for a node
/// whose report failed).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecision {
    /// Node the decision is for.
    pub node: u64,
    /// Tick the decision was made at.
    pub tick: u64,
    /// Mode assignment for the node's next interval.
    pub modes: ModeCombination,
    /// Whether this decision came from the degraded path (last-good
    /// fallback, emergency shed or watchdog clamp) rather than straight
    /// from a solver- or cache-backed answer.
    pub degraded: bool,
}

/// Outcome of one [`FleetEngine::try_submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The report is queued for the next tick.
    Accepted,
    /// The tick queue is full; the node should retry no earlier than
    /// `retry_at` (exponential per-node backoff when degraded mode is on,
    /// the next tick otherwise).
    Rejected {
        /// Earliest tick at which a retry is advised.
        retry_at: u64,
    },
    /// The report failed numeric/shape validation and was discarded.
    Invalid,
}

/// Cumulative fleet-engine accounting.
///
/// Invariant: `decisions_total == cache_hits + dedup_hits + unique_solves`
/// — dropped, rejected and timed-out reports never become solver-path
/// decisions. Degraded-path decisions are counted separately in
/// `fallback_decisions` and do not participate in the identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetStats {
    /// Solver-path decisions emitted in total.
    pub decisions_total: u64,
    /// Tick-group leaders answered by the cross-tick cache.
    pub cache_hits: u64,
    /// Decisions answered by within-tick deduplication (group followers).
    pub dedup_hits: u64,
    /// Decisions that ran the solver.
    pub unique_solves: u64,
    /// Reports dropped as stale (older than the tolerance, younger than
    /// `dark_after`).
    pub dropped_stale: u64,
    /// Reports dropped as dark (age at or beyond `dark_after`, or lost to
    /// a node-flap outage).
    pub dropped_dark: u64,
    /// Submissions rejected by the bounded tick queue.
    pub rejected_backpressure: u64,
    /// Reports rejected by numeric/shape validation (at submit or after
    /// in-flight corruption).
    pub rejected_invalid: u64,
    /// Degraded-path decisions emitted (last-good fallback or all-Eff2).
    pub fallback_decisions: u64,
    /// Solver invocations lost to injected timeouts (one per dedup group).
    pub solver_timeouts: u64,
    /// Reports lost to node-flap outages (also counted in `dropped_dark`).
    pub flap_drops: u64,
    /// Reports whose delivery was delayed by tick skew.
    pub skew_delayed: u64,
    /// Reports mangled by corruption injection (also counted in
    /// `rejected_invalid` when the mangling failed validation).
    pub corrupted_reports: u64,
    /// Node decisions clamped to all-Eff2 by emergency budget shedding.
    pub shed_clamps: u64,
    /// Ticks whose estimated rack power exceeded the rack budget.
    pub rack_violation_ticks: u64,
    /// Ticks spent under an active whole-rack watchdog clamp.
    pub watchdog_clamp_ticks: u64,
    /// Longest run of consecutive rack-violation ticks seen so far.
    pub longest_rack_violation_run: u64,
    /// Worst single-tick estimated rack overshoot, in watts.
    pub worst_rack_overshoot_watts: f64,
    /// Measured microseconds spent in the solver.
    pub solver_us_spent: f64,
    /// Estimated solver microseconds avoided (hits × mean solve time).
    pub solver_us_saved: f64,
}

impl FleetStats {
    /// Fraction of solver-path decisions answered without running the
    /// solver.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.decisions_total == 0 {
            0.0
        } else {
            (self.cache_hits + self.dedup_hits) as f64 / self.decisions_total as f64
        }
    }

    /// Folds another engine's accounting into this one: counters add,
    /// running maxima (`longest_rack_violation_run`,
    /// `worst_rack_overshoot_watts`) take the max. This is how the sharded
    /// service aggregates per-shard engine stats into one fleet-wide view;
    /// the accounting identity (`decisions_total = cache_hits + dedup_hits
    /// + unique_solves`) survives because it holds per shard.
    pub fn merge(&mut self, other: &FleetStats) {
        self.decisions_total += other.decisions_total;
        self.cache_hits += other.cache_hits;
        self.dedup_hits += other.dedup_hits;
        self.unique_solves += other.unique_solves;
        self.dropped_stale += other.dropped_stale;
        self.dropped_dark += other.dropped_dark;
        self.rejected_backpressure += other.rejected_backpressure;
        self.rejected_invalid += other.rejected_invalid;
        self.fallback_decisions += other.fallback_decisions;
        self.solver_timeouts += other.solver_timeouts;
        self.flap_drops += other.flap_drops;
        self.skew_delayed += other.skew_delayed;
        self.corrupted_reports += other.corrupted_reports;
        self.shed_clamps += other.shed_clamps;
        self.rack_violation_ticks += other.rack_violation_ticks;
        self.watchdog_clamp_ticks += other.watchdog_clamp_ticks;
        self.longest_rack_violation_run = self
            .longest_rack_violation_run
            .max(other.longest_rack_violation_run);
        self.worst_rack_overshoot_watts = self
            .worst_rack_overshoot_watts
            .max(other.worst_rack_overshoot_watts);
        self.solver_us_spent += other.solver_us_spent;
        self.solver_us_saved += other.solver_us_saved;
    }
}

/// A node's last successfully-issued assignment, kept for degraded-mode
/// fallback.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct LastGood {
    modes: ModeCombination,
    /// Estimated chip power of that assignment, for rack accounting.
    watts: f64,
}

/// Per-node degraded-operation state.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
struct NodeState {
    last_good: Option<LastGood>,
    /// Consecutive backpressure rejections (drives the retry backoff).
    rejections: u32,
    /// Earliest tick a retry is advised after the last rejection.
    retry_at: u64,
}

/// Live rack-watchdog state.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
struct RackState {
    /// Consecutive violation ticks counted toward the watchdog trigger.
    violation_streak: usize,
    /// Length of the current violation run (for the longest-run metric).
    current_run: u64,
    /// Remaining ticks of an active whole-rack clamp.
    clamp_remaining: u64,
    /// Hold length the next clamp will use (doubles up to the ceiling).
    backoff: u64,
}

/// Hashes `u64` node ids with one splitmix64 finalizer round. The node
/// map is only ever *probed* by key — iteration never reaches decisions
/// (the checkpoint sorts by node id) — so a fast deterministic finalizer
/// is safe, and it removes the default hasher's cost from the
/// one-lookup-per-report hot path of the armed engine.
///
/// The same finalizer round is the fleet *shard* function (see
/// [`node_shard`]): the service layer routes node ids to shard-pinned
/// engines with exactly this mixing, so node placement is a pure,
/// documented function of the id alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeIdHasher(u64);

impl std::hash::Hasher for NodeIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.write_u64(u64::from(byte));
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = (self.0 ^ x).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type NodeMap = HashMap<u64, NodeState, std::hash::BuildHasherDefault<NodeIdHasher>>;

/// The fleet shard function: which of `shards` shard-pinned engines owns
/// `node`. One splitmix64 finalizer round (the [`NodeIdHasher`] mixing)
/// reduced modulo the shard count — a pure function of the node id, so a
/// node's shard assignment is stable across runs, transports and pool
/// widths, and sequential node ids spread uniformly instead of clumping
/// onto shard `id % shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn node_shard(node: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    use std::hash::Hasher as _;
    let mut hasher = NodeIdHasher::default();
    hasher.write_u64(node);
    (hasher.finish() % shards as u64) as usize
}

/// One per-node entry in a [`FleetCheckpoint`], ordered by node id.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct NodeSnapshot {
    node: u64,
    state: NodeState,
}

/// A versioned, serializable image of a [`FleetEngine`]'s inter-tick
/// state: the decision cache (entries in recency order), every node's
/// degraded-operation state, the rack-watchdog state, the cumulative
/// stats and the tick cursor.
///
/// Produced by [`FleetEngine::checkpoint`]; an engine rebuilt with
/// [`FleetEngine::restore`] under the same configuration continues
/// bit-identically to one that never stopped. Queued (not yet processed)
/// telemetry is *not* captured — checkpoint between ticks, and nodes
/// re-submit as usual after a restart. The fault session needs no state
/// here: fleet fault draws are pure functions of `(seed, tick, node)`,
/// so a restored engine observes the same fault schedule by
/// construction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetCheckpoint {
    version: u32,
    /// Fingerprint of the decision-relevant configuration; restore
    /// refuses a checkpoint taken under a different configuration.
    config_fingerprint: u64,
    next_tick: u64,
    stats: FleetStats,
    cache: CacheSnapshot,
    nodes: Vec<NodeSnapshot>,
    rack: RackState,
}

impl FleetCheckpoint {
    /// The layout version this checkpoint was written with.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Serializes the checkpoint to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint state always serializes")
    }

    /// Deserializes a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| GpmError::InvalidConfig {
            parameter: "fleet.checkpoint",
            reason: format!("unparseable checkpoint: {e}"),
        })
    }
}

/// The batched, memoized decision engine (see the module docs for the
/// tick protocol).
///
/// # Examples
///
/// ```
/// use gpm_core::{FleetConfig, FleetEngine, NodeTelemetry, PowerBipsMatrices};
/// use gpm_types::{ModeCombination, PowerMode, Watts};
///
/// let mut engine = FleetEngine::new(FleetConfig::default())?;
/// for node in 0..4 {
///     engine.submit(NodeTelemetry {
///         node,
///         tick: 0,
///         matrices: PowerBipsMatrices::from_rows(
///             vec![[20.0, 12.0, 7.0], [18.0, 11.0, 6.5]],
///             vec![[2.0, 1.7, 1.4], [1.5, 1.3, 1.1]],
///         ),
///         current: ModeCombination::uniform(2, PowerMode::Turbo),
///         budget: Watts::new(30.0),
///     });
/// }
/// let decisions = engine.run_tick(0);
/// assert_eq!(decisions.len(), 4);
/// // Four identical problems cost one solve.
/// assert_eq!(engine.stats().unique_solves, 1);
/// assert_eq!(engine.stats().dedup_hits, 3);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    cache: DecisionCache,
    queue: Vec<NodeTelemetry>,
    stats: FleetStats,
    session: Option<FleetFaultSession>,
    nodes: NodeMap,
    /// Nodes currently holding a nonzero rejection streak. Zero at steady
    /// state, letting the accept path skip its node-map lookup entirely.
    backoff_nodes: usize,
    rack_state: RackState,
    /// The tick after the last processed one (backoff hints count from
    /// here between ticks).
    next_tick: u64,
}

impl FleetEngine {
    /// Creates an engine, validating every config bound.
    pub fn new(config: FleetConfig) -> Result<Self> {
        if config.queue_capacity == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.queue_capacity",
                reason: "tick queue must hold at least one report".into(),
            });
        }
        if config.flat_core_limit == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.flat_core_limit",
                reason: "flat solver limit must be at least 1".into(),
            });
        }
        if config.dark_after <= config.stale_tolerance {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.dark_after",
                reason: format!(
                    "dark_after ({}) must exceed stale_tolerance ({})",
                    config.dark_after, config.stale_tolerance
                ),
            });
        }
        if let Some(degraded) = &config.degraded {
            if degraded.retry_base == 0 {
                return Err(GpmError::InvalidConfig {
                    parameter: "fleet.degraded.retry_base",
                    reason: "retry backoff base must be at least one tick".into(),
                });
            }
            if degraded.retry_max_exp >= 32 {
                return Err(GpmError::InvalidConfig {
                    parameter: "fleet.degraded.retry_max_exp",
                    reason: "retry backoff exponent cap must be below 32".into(),
                });
            }
        }
        if let Some(rack) = &config.rack {
            if !(rack.budget.value().is_finite() && rack.budget.value() > 0.0) {
                return Err(GpmError::InvalidConfig {
                    parameter: "fleet.rack.budget",
                    reason: "rack budget must be finite and positive".into(),
                });
            }
            if rack.watchdog_k == 0 || rack.clamp_hold == 0 {
                return Err(GpmError::InvalidConfig {
                    parameter: "fleet.rack.watchdog",
                    reason: "watchdog K and clamp hold must be at least 1".into(),
                });
            }
        }
        // Validates cluster_cores (and pre-flights the wide-node path).
        HierMaxBips::with_cluster_cores(config.cluster_cores)?;
        let cache = DecisionCache::new(config.cache.clone())?;
        let session = match &config.faults {
            Some(plan) => Some(FleetFaultSession::new(plan)?),
            None => None,
        };
        let rack_state = RackState {
            backoff: config.rack.as_ref().map_or(0, |r| r.clamp_hold),
            ..RackState::default()
        };
        Ok(Self {
            cache,
            queue: Vec::new(),
            stats: FleetStats::default(),
            session,
            nodes: NodeMap::default(),
            backoff_nodes: 0,
            rack_state,
            next_tick: 0,
            config,
        })
    }

    /// The configuration the engine was built with.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Cumulative accounting across all ticks so far.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// The cross-tick decision cache (length, counters).
    #[must_use]
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    /// Reports currently queued for the next tick.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The earliest tick `node` is advised to retry at after backpressure
    /// rejections, if it is currently backing off.
    #[must_use]
    pub fn retry_at(&self, node: u64) -> Option<u64> {
        let state = self.nodes.get(&node)?;
        (state.rejections > 0).then_some(state.retry_at)
    }

    /// Replaces the rack budget (or disables rack enforcement with
    /// `None`) mid-run — the emergency-shedding trigger. Watchdog
    /// parameters are retained from the existing rack config when only
    /// the budget steps; enabling rack enforcement for the first time
    /// uses [`RackConfig::new`] defaults.
    pub fn set_rack_budget(&mut self, budget: Option<Watts>) {
        match budget {
            Some(b) => {
                let rack = match self.config.rack.take() {
                    Some(mut rack) => {
                        rack.budget = b;
                        rack
                    }
                    None => RackConfig::new(b),
                };
                if self.rack_state.backoff == 0 {
                    self.rack_state.backoff = rack.clamp_hold;
                }
                self.config.rack = Some(rack);
            }
            None => {
                self.config.rack = None;
                self.rack_state = RackState::default();
            }
        }
    }

    /// Enqueues one report for the next [`run_tick`](Self::run_tick).
    /// Returns `true` only when the report was accepted; rejections
    /// (backpressure or validation) are counted. See
    /// [`try_submit`](Self::try_submit) for the distinguishing outcome.
    pub fn submit(&mut self, telemetry: NodeTelemetry) -> bool {
        matches!(self.try_submit(telemetry), SubmitOutcome::Accepted)
    }

    /// Enqueues one report, reporting exactly why it was not queued:
    /// validation failure (non-finite/negative power or BIPS cells,
    /// mismatched matrix shapes, degenerate budget) or queue
    /// backpressure, the latter with a per-node exponential-backoff retry
    /// hint when degraded mode is configured.
    pub fn try_submit(&mut self, telemetry: NodeTelemetry) -> SubmitOutcome {
        if !telemetry_valid(&telemetry) {
            self.stats.rejected_invalid += 1;
            return SubmitOutcome::Invalid;
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.rejected_backpressure += 1;
            let retry_at = match &self.config.degraded {
                Some(degraded) => {
                    let state = self.nodes.entry(telemetry.node).or_default();
                    if state.rejections == 0 {
                        self.backoff_nodes += 1;
                    }
                    let exp = state.rejections.min(degraded.retry_max_exp);
                    state.rejections = state.rejections.saturating_add(1);
                    state.retry_at = self.next_tick + (degraded.retry_base << exp);
                    state.retry_at
                }
                None => self.next_tick,
            };
            return SubmitOutcome::Rejected { retry_at };
        }
        if self.backoff_nodes > 0 {
            if let Some(state) = self.nodes.get_mut(&telemetry.node) {
                if state.rejections != 0 {
                    state.rejections = 0;
                    state.retry_at = 0;
                    self.backoff_nodes -= 1;
                }
            }
        }
        self.queue.push(telemetry);
        SubmitOutcome::Accepted
    }

    /// Classifies a report's effective age in the `gpm-faults` freshness
    /// vocabulary: within `dark_after` the report is merely stale; at or
    /// beyond it the node is presumed unreachable.
    fn freshness(&self, age: usize) -> SensorStatus {
        if age == 0 {
            SensorStatus::Fresh
        } else if age < self.config.dark_after {
            SensorStatus::Stale { age }
        } else {
            SensorStatus::Dark
        }
    }

    /// Drains the tick queue and decides every accepted report, in
    /// submission order. `now` is the current tick, used for stale-drop.
    /// With degraded mode configured, nodes whose reports failed still
    /// receive (flagged) fallback decisions, interleaved at their
    /// submission positions.
    pub fn run_tick(&mut self, now: u64) -> Vec<NodeDecision> {
        let mut batch = std::mem::take(&mut self.queue);
        let degraded_on = self.config.degraded.is_some();
        let track_power = degraded_on || self.config.rack.is_some();

        // Phase A — serial intake: chaos seam, validation, freshness.
        // `Accept` entries index into `accepted`; fallback entries carry
        // whether the (untrusted) report is still usable for its shape.
        enum Triage {
            Accept(usize),
            FallbackShaped,
            FallbackBlind,
            Drop,
        }
        let mut triage: Vec<Triage> = Vec::with_capacity(batch.len());
        let mut accepted: Vec<usize> = Vec::new();
        for (i, report) in batch.iter_mut().enumerate() {
            let failed = |on: bool, shaped: bool| {
                if !on {
                    Triage::Drop
                } else if shaped {
                    Triage::FallbackShaped
                } else {
                    Triage::FallbackBlind
                }
            };
            let mut skew = 0u64;
            if let Some(session) = &self.session {
                if session.node_down(now, report.node) {
                    self.stats.flap_drops += 1;
                    self.stats.dropped_dark += 1;
                    triage.push(failed(degraded_on, false));
                    continue;
                }
                skew = session.tick_skew(report.tick, report.node);
                if skew > 0 {
                    self.stats.skew_delayed += 1;
                }
                if let Some(field) = session.corrupt(report.tick, report.node) {
                    corrupt_report(report, field);
                    self.stats.corrupted_reports += 1;
                    if !telemetry_valid(report) {
                        self.stats.rejected_invalid += 1;
                        triage.push(failed(degraded_on, true));
                        continue;
                    }
                }
            }
            let age = now.saturating_sub(report.tick).saturating_add(skew) as usize;
            match self.freshness(age) {
                SensorStatus::Fresh => {
                    triage.push(Triage::Accept(accepted.len()));
                    accepted.push(i);
                }
                SensorStatus::Stale { age } if age <= self.config.stale_tolerance => {
                    triage.push(Triage::Accept(accepted.len()));
                    accepted.push(i);
                }
                SensorStatus::Stale { .. } => {
                    self.stats.dropped_stale += 1;
                    triage.push(failed(degraded_on, true));
                }
                SensorStatus::Dark => {
                    self.stats.dropped_dark += 1;
                    triage.push(failed(degraded_on, true));
                }
            }
        }

        // Phase B — within-tick dedup: group by canonical key, first
        // occurrence leads. Group order (= first-occurrence order) drives
        // every later cache access, so nothing depends on hash iteration
        // order.
        let mut index: HashMap<QuantizedKey, usize> = HashMap::new();
        let mut groups: Vec<(QuantizedKey, Vec<usize>)> = Vec::new();
        let mut group_of: Vec<usize> = Vec::with_capacity(accepted.len());
        for &i in accepted.iter() {
            let report = &batch[i];
            let key = self.cache.key(
                &report.matrices,
                &report.current,
                report.budget,
                &self.config.dvfs,
                self.config.explore,
            );
            let a = group_of.len();
            match index.entry(key.clone()) {
                Entry::Occupied(entry) => {
                    group_of.push(*entry.get());
                    groups[*entry.get()].1.push(a);
                }
                Entry::Vacant(entry) => {
                    entry.insert(groups.len());
                    group_of.push(groups.len());
                    groups.push((key, vec![a]));
                }
            }
        }

        // Phase C — leaders probe the cross-tick cache serially, in group
        // order; solver-timeout injection diverts residual-miss groups to
        // the degraded path before they can touch the accounting identity.
        let mut results: Vec<Option<ModeCombination>> = vec![None; accepted.len()];
        let mut timed_out: Vec<bool> = vec![false; accepted.len()];
        let mut timed_out_members: u64 = 0;
        let mut avoided_this_tick: u64 = 0;
        let mut misses: Vec<usize> = Vec::new();
        // Power estimate per group, computed once from the leader's
        // matrices: members of a dedup group share one quantization
        // bucket, so at the exact default their matrices are bit-identical
        // and the leader's estimate IS every member's estimate. (Coarse
        // quanta make this the bucket representative's estimate, same as
        // the served decision itself.) Keeps rack accounting O(groups),
        // not O(nodes), per tick.
        let mut group_watts: Vec<f64> = vec![0.0; if track_power { groups.len() } else { 0 }];
        for (g, (key, members)) in groups.iter().enumerate() {
            if let Some(combo) = self.cache.get(key) {
                self.stats.cache_hits += 1;
                self.stats.dedup_hits += members.len() as u64 - 1;
                avoided_this_tick += members.len() as u64;
                if self.config.cache.verify_hits {
                    let leader = &batch[accepted[members[0]]];
                    let fresh = self.solve_one(leader);
                    assert_eq!(
                        combo, fresh,
                        "fleet cache hit diverged from a fresh solve; \
                         quantization is too coarse for this workload"
                    );
                }
                if track_power {
                    let leader = &batch[accepted[members[0]]];
                    group_watts[g] = leader.matrices.chip_power(&combo).value();
                }
                for &a in members {
                    results[a] = Some(combo.clone());
                }
            } else {
                let leader = &batch[accepted[members[0]]];
                let timeout = self
                    .session
                    .as_ref()
                    .is_some_and(|s| s.solver_timeout(now, leader.node));
                if timeout {
                    self.stats.solver_timeouts += 1;
                    timed_out_members += members.len() as u64;
                    for &a in members {
                        timed_out[a] = true;
                    }
                } else {
                    self.stats.dedup_hits += members.len() as u64 - 1;
                    avoided_this_tick += members.len() as u64 - 1;
                    misses.push(g);
                }
            }
        }
        self.stats.decisions_total += accepted.len() as u64 - timed_out_members;

        // Phase D — residual misses fan out over the pool
        // (order-preserving map), then insert serially in miss order:
        // cache state — and with it every later eviction — is identical
        // for any pool width.
        let miss_leaders: Vec<&NodeTelemetry> = misses
            .iter()
            .map(|&g| &batch[accepted[groups[g].1[0]]])
            .collect();
        let config = &self.config;
        let solved: Vec<(ModeCombination, f64)> = gpm_par::parallel_map(&miss_leaders, |report| {
            let start = Instant::now();
            let combo = solve_report(config, report);
            (combo, start.elapsed().as_secs_f64() * 1e6)
        });
        for (&g, (combo, micros)) in misses.iter().zip(solved) {
            self.stats.unique_solves += 1;
            self.stats.solver_us_spent += micros;
            self.cache.insert(groups[g].0.clone(), combo.clone());
            if track_power {
                let leader = &batch[accepted[groups[g].1[0]]];
                group_watts[g] = leader.matrices.chip_power(&combo).value();
            }
            for &a in &groups[g].1 {
                results[a] = Some(combo.clone());
            }
        }
        if self.stats.unique_solves > 0 {
            let mean = self.stats.solver_us_spent / self.stats.unique_solves as f64;
            self.stats.solver_us_saved += avoided_this_tick as f64 * mean;
        }

        // Phase E — assemble the output in submission order: solver-path
        // decisions at their positions, degraded-path fallbacks (flagged)
        // where reports failed. `sources[j]` remembers the backing report
        // of each solver-path decision for rack re-estimation and
        // last-good bookkeeping.
        let mut out: Vec<NodeDecision> = Vec::with_capacity(batch.len());
        let capacity = if track_power { batch.len() } else { 0 };
        let mut estimates: Vec<f64> = Vec::with_capacity(capacity);
        let mut sources: Vec<Option<usize>> = Vec::with_capacity(capacity);
        for (i, disposition) in triage.iter().enumerate() {
            let report = &batch[i];
            match disposition {
                Triage::Accept(a) if !timed_out[*a] => {
                    let modes = results[*a].clone().expect("every live group was decided");
                    if track_power {
                        estimates.push(group_watts[group_of[*a]]);
                        sources.push(Some(i));
                    }
                    out.push(NodeDecision {
                        node: report.node,
                        tick: now,
                        modes,
                        degraded: false,
                    });
                }
                Triage::Accept(_) | Triage::FallbackShaped => {
                    let shape = Some(report);
                    if let Some((modes, watts)) = self.make_fallback(report.node, shape) {
                        self.stats.fallback_decisions += 1;
                        if track_power {
                            estimates.push(watts);
                            sources.push(None);
                        }
                        out.push(NodeDecision {
                            node: report.node,
                            tick: now,
                            modes,
                            degraded: true,
                        });
                    }
                }
                Triage::FallbackBlind => {
                    if let Some((modes, watts)) = self.make_fallback(report.node, None) {
                        self.stats.fallback_decisions += 1;
                        if track_power {
                            estimates.push(watts);
                            sources.push(None);
                        }
                        out.push(NodeDecision {
                            node: report.node,
                            tick: now,
                            modes,
                            degraded: true,
                        });
                    }
                }
                Triage::Drop => {}
            }
        }

        // Phase F — rack budget enforcement: emergency shedding in
        // deterministic priority order, plus the violation watchdog.
        if self.config.rack.is_some() {
            self.enforce_rack(&mut out, &mut estimates, &sources, &batch);
        }

        // Phase G — remember what was actually issued (post-shed) for
        // every solver-backed node, so the next fallback clamps down from
        // reality rather than from a pre-clamp intent.
        if degraded_on {
            for (j, decision) in out.iter().enumerate() {
                if sources[j].is_some() {
                    let state = self.nodes.entry(decision.node).or_default();
                    match &mut state.last_good {
                        // Reuse the standing allocation: at steady state
                        // this is a same-width copy, not an alloc.
                        Some(last) => {
                            last.modes.clone_from(&decision.modes);
                            last.watts = estimates[j];
                        }
                        None => {
                            state.last_good = Some(LastGood {
                                modes: decision.modes.clone(),
                                watts: estimates[j],
                            });
                        }
                    }
                }
            }
        }

        self.next_tick = now + 1;
        out
    }

    /// Builds a degraded-mode fallback decision for `node`: its last-good
    /// assignment stepped down `clamp_steps` modes, or all-Eff2 when no
    /// last-good assignment exists and the failed report still shows the
    /// node's shape. Returns `None` when the node's width is unknowable
    /// (no history, no report) or degraded mode is off.
    fn make_fallback(
        &self,
        node: u64,
        shape: Option<&NodeTelemetry>,
    ) -> Option<(ModeCombination, f64)> {
        let degraded = self.config.degraded.as_ref()?;
        if let Some(last_good) = self.nodes.get(&node).and_then(|s| s.last_good.as_ref()) {
            let modes = step_down(&last_good.modes, degraded.clamp_steps);
            let watts = last_good.watts * scale_ratio(&modes, &last_good.modes);
            return Some((modes, watts));
        }
        let report = shape?;
        let cores = report.matrices.cores();
        if cores == 0 {
            return None;
        }
        let modes = ModeCombination::uniform(cores, PowerMode::Eff2);
        // A corrupted matrix cannot be trusted for the estimate; the node
        // is already at the floor, so it sheds nothing either way.
        let watts = if report.matrices.cells_valid() {
            report.matrices.chip_power(&modes).value()
        } else {
            0.0
        };
        Some((modes, watts))
    }

    /// Rack budget enforcement for one tick: watchdog clamp when active
    /// or triggered, emergency shedding otherwise.
    fn enforce_rack(
        &mut self,
        out: &mut [NodeDecision],
        estimates: &mut [f64],
        sources: &[Option<usize>],
        batch: &[NodeTelemetry],
    ) {
        let rack = self.config.rack.clone().expect("caller checked rack");
        let budget = rack.budget.value();
        // All-Eff2 floor estimate for output position `j`: solver-backed
        // decisions re-estimate from the node's own matrices; fallback
        // decisions (no trusted matrices) rescale their watts figure by
        // the cubic power-scale ratio.
        let eff2_estimate = |j: usize, modes: &ModeCombination, estimate: f64| -> f64 {
            match sources[j] {
                Some(i) => {
                    let cores = batch[i].matrices.cores();
                    batch[i]
                        .matrices
                        .chip_power(&ModeCombination::uniform(cores, PowerMode::Eff2))
                        .value()
                }
                None => {
                    let floor = ModeCombination::uniform(modes.len(), PowerMode::Eff2);
                    estimate * scale_ratio(&floor, modes)
                }
            }
        };
        let clamp_all = |out: &mut [NodeDecision], estimates: &mut [f64]| {
            for (j, decision) in out.iter_mut().enumerate() {
                let floor = ModeCombination::uniform(decision.modes.len(), PowerMode::Eff2);
                if decision.modes != floor {
                    estimates[j] = eff2_estimate(j, &decision.modes, estimates[j]);
                    decision.modes = floor;
                    decision.degraded = true;
                }
            }
        };

        if self.rack_state.clamp_remaining > 0 {
            // An active whole-rack clamp overrides everything; violation
            // accounting is suspended (the watchdog is already doing all
            // it can), mirroring the per-chip guard rails.
            clamp_all(out, estimates);
            self.stats.watchdog_clamp_ticks += 1;
            self.rack_state.clamp_remaining -= 1;
            return;
        }

        let intent: f64 = estimates.iter().sum();
        let violation = intent > budget;
        if violation {
            self.stats.rack_violation_ticks += 1;
            self.rack_state.current_run += 1;
            self.stats.longest_rack_violation_run = self
                .stats
                .longest_rack_violation_run
                .max(self.rack_state.current_run);
            self.stats.worst_rack_overshoot_watts =
                self.stats.worst_rack_overshoot_watts.max(intent - budget);
            self.rack_state.violation_streak += 1;
        } else {
            self.rack_state.current_run = 0;
            self.rack_state.violation_streak = 0;
        }

        if self.rack_state.violation_streak >= rack.watchdog_k {
            // Trigger: clamp the whole rack now and hold with exponential
            // backoff, exactly like the per-chip watchdog.
            self.rack_state.clamp_remaining = self.rack_state.backoff;
            self.rack_state.backoff = (self.rack_state.backoff * 2).min(rack.max_backoff);
            self.rack_state.violation_streak = 0;
            clamp_all(out, estimates);
            self.stats.watchdog_clamp_ticks += 1;
            self.rack_state.clamp_remaining -= 1;
            return;
        }

        if violation {
            // Emergency shedding: clamp the highest-estimated-power nodes
            // to the all-Eff2 floor, node id (then output position) as
            // tie-break, until the estimate fits the budget. The order is
            // a pure function of the estimates, so it is pool-width
            // independent.
            let mut order: Vec<usize> = (0..out.len()).collect();
            order.sort_by(|&a, &b| {
                estimates[b]
                    .total_cmp(&estimates[a])
                    .then(out[a].node.cmp(&out[b].node))
            });
            let mut total = intent;
            for j in order {
                if total <= budget {
                    break;
                }
                let cores = out[j].modes.len();
                let floor = ModeCombination::uniform(cores, PowerMode::Eff2);
                if out[j].modes == floor {
                    continue;
                }
                let new_estimate = eff2_estimate(j, &out[j].modes, estimates[j]);
                total -= estimates[j] - new_estimate;
                estimates[j] = new_estimate;
                out[j].modes = floor;
                out[j].degraded = true;
                self.stats.shed_clamps += 1;
            }
        }
    }

    /// Exports the engine's inter-tick state as a versioned checkpoint.
    /// Queued telemetry is not captured; checkpoint between ticks.
    #[must_use]
    pub fn checkpoint(&self) -> FleetCheckpoint {
        let mut nodes: Vec<NodeSnapshot> = self
            .nodes
            .iter()
            .map(|(&node, state)| NodeSnapshot {
                node,
                state: state.clone(),
            })
            .collect();
        nodes.sort_by_key(|snap| snap.node);
        FleetCheckpoint {
            version: FLEET_CHECKPOINT_VERSION,
            config_fingerprint: config_fingerprint(&self.config),
            next_tick: self.next_tick,
            stats: self.stats,
            cache: self.cache.snapshot(),
            nodes,
            rack: self.rack_state.clone(),
        }
    }

    /// Rebuilds an engine from a checkpoint taken under the same
    /// configuration. The restored engine continues bit-identically to
    /// one that never stopped: the cache holds the same entries in the
    /// same recency order, every node's last-good state and backoff is
    /// back, and the rack watchdog resumes mid-hold.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if the checkpoint's version or
    /// configuration fingerprint does not match, or if `config` itself is
    /// invalid.
    pub fn restore(config: FleetConfig, checkpoint: &FleetCheckpoint) -> Result<Self> {
        if checkpoint.version != FLEET_CHECKPOINT_VERSION {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.checkpoint",
                reason: format!(
                    "checkpoint version {} does not match engine version {}",
                    checkpoint.version, FLEET_CHECKPOINT_VERSION
                ),
            });
        }
        if checkpoint.config_fingerprint != config_fingerprint(&config) {
            return Err(GpmError::InvalidConfig {
                parameter: "fleet.checkpoint",
                reason: "checkpoint was taken under a different configuration".into(),
            });
        }
        let mut engine = Self::new(config)?;
        engine.cache = DecisionCache::restore(engine.config.cache.clone(), &checkpoint.cache)?;
        engine.nodes = checkpoint
            .nodes
            .iter()
            .map(|snap| (snap.node, snap.state.clone()))
            .collect();
        engine.backoff_nodes = engine
            .nodes
            .values()
            .filter(|state| state.rejections != 0)
            .count();
        engine.stats = checkpoint.stats;
        engine.rack_state = checkpoint.rack.clone();
        engine.next_tick = checkpoint.next_tick;
        Ok(engine)
    }

    /// Solves one report without the cache (verify-hits audit path).
    fn solve_one(&self, report: &NodeTelemetry) -> ModeCombination {
        solve_report(&self.config, report)
    }
}

/// Whether a report is numerically sound: positive core count, matching
/// mode-vector shape, finite non-negative matrix cells, finite positive
/// budget.
fn telemetry_valid(telemetry: &NodeTelemetry) -> bool {
    telemetry.matrices.cores() > 0
        && telemetry.current.len() == telemetry.matrices.cores()
        && telemetry.budget.value().is_finite()
        && telemetry.budget.value() > 0.0
        && telemetry.matrices.cells_valid()
}

/// Applies one injected corruption to a report in place, modelling
/// in-flight mangling between the node and the service.
fn corrupt_report(report: &mut NodeTelemetry, field: CorruptField) {
    match field {
        CorruptField::Nan | CorruptField::Negative => {
            let cores = report.matrices.cores();
            let mut power: Vec<[f64; PowerMode::COUNT]> = Vec::with_capacity(cores);
            let mut bips: Vec<[f64; PowerMode::COUNT]> = Vec::with_capacity(cores);
            for core in 0..cores {
                let id = CoreId::new(core);
                power.push(PowerMode::ALL.map(|m| report.matrices.power(id, m).value()));
                bips.push(PowerMode::ALL.map(|m| report.matrices.bips(id, m).value()));
            }
            if let Some(row) = power.first_mut() {
                row[0] = match field {
                    CorruptField::Nan => f64::NAN,
                    _ => -row[0].abs() - 1.0,
                };
            }
            report.matrices = PowerBipsMatrices::from_rows(power, bips);
        }
        CorruptField::Shape => {
            let mut modes = report.current.as_slice().to_vec();
            modes.push(PowerMode::Turbo);
            report.current = ModeCombination::new(modes);
        }
    }
}

/// Steps every core's mode down (toward Eff2) `steps` times, saturating
/// at the floor.
fn step_down(modes: &ModeCombination, steps: usize) -> ModeCombination {
    modes
        .as_slice()
        .iter()
        .map(|&mode| {
            let mut m = mode;
            for _ in 0..steps {
                match m.slower() {
                    Some(next) => m = next,
                    None => break,
                }
            }
            m
        })
        .collect()
}

/// Ratio of summed cubic power scales between two mode vectors — the
/// matrix-free power-estimate rescaling used when only a last-good watts
/// figure is available.
fn scale_ratio(new: &ModeCombination, old: &ModeCombination) -> f64 {
    let sum = |c: &ModeCombination| c.as_slice().iter().map(|m| m.power_scale()).sum::<f64>();
    let denominator = sum(old);
    if denominator > 0.0 {
        sum(new) / denominator
    } else {
        1.0
    }
}

/// FNV-1a over the decision-relevant configuration, used to refuse
/// restoring a checkpoint under a different configuration.
fn config_fingerprint(config: &FleetConfig) -> u64 {
    fn eat_byte(hash: &mut u64, byte: u8) {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    fn eat(hash: &mut u64, word: u64) {
        for byte in word.to_le_bytes() {
            eat_byte(hash, byte);
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    eat(&mut hash, config.cache.capacity as u64);
    eat(&mut hash, config.cache.watt_quantum.to_bits());
    eat(&mut hash, config.cache.bips_quantum.to_bits());
    eat(&mut hash, config.cache.budget_quantum.to_bits());
    eat(&mut hash, u64::from(config.cache.verify_hits));
    eat(&mut hash, config.queue_capacity as u64);
    eat(&mut hash, config.stale_tolerance as u64);
    eat(&mut hash, config.dark_after as u64);
    eat(&mut hash, config.flat_core_limit as u64);
    eat(&mut hash, config.cluster_cores as u64);
    eat(&mut hash, config.dvfs.nominal_vdd.value().to_bits());
    eat(&mut hash, config.dvfs.nominal_frequency.value().to_bits());
    eat(&mut hash, config.dvfs.slew_rate_v_per_us.to_bits());
    eat(&mut hash, config.explore.value().to_bits());
    match &config.faults {
        Some(plan) => {
            let json = serde_json::to_string(plan).expect("fault plans serialize");
            eat(&mut hash, json.len() as u64);
            for &byte in json.as_bytes() {
                eat_byte(&mut hash, byte);
            }
        }
        None => eat(&mut hash, u64::MAX),
    }
    match &config.degraded {
        Some(d) => {
            eat(&mut hash, d.clamp_steps as u64);
            eat(&mut hash, d.retry_base);
            eat(&mut hash, u64::from(d.retry_max_exp));
        }
        None => eat(&mut hash, u64::MAX - 1),
    }
    match &config.rack {
        Some(r) => {
            eat(&mut hash, r.budget.value().to_bits());
            eat(&mut hash, r.watchdog_k as u64);
            eat(&mut hash, r.clamp_hold);
            eat(&mut hash, r.max_backoff);
        }
        None => eat(&mut hash, u64::MAX - 2),
    }
    hash
}

/// The fleet's solver dispatch: flat exact branch-and-bound up to the
/// configured width, the two-level hierarchical policy above it.
fn solve_report(config: &FleetConfig, report: &NodeTelemetry) -> ModeCombination {
    if report.matrices.cores() <= config.flat_core_limit {
        solver::solve(
            &report.matrices,
            &report.current,
            report.budget,
            &config.dvfs,
            config.explore,
        )
    } else {
        let mut hier = HierMaxBips::with_cluster_cores(config.cluster_cores)
            .expect("cluster width validated at engine construction");
        hier.decide(&PolicyContext {
            current_modes: &report.current,
            matrices: &report.matrices,
            future: None,
            budget: report.budget,
            dvfs: &config.dvfs,
            explore: config.explore,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_types::PowerMode;

    /// Telemetry for a `cores`-way node whose matrix rows vary with
    /// `phase`, so distinct phases are distinct cache keys.
    fn telemetry(node: u64, tick: u64, cores: usize, phase: u64) -> NodeTelemetry {
        let power: Vec<[f64; 3]> = (0..cores)
            .map(|i| {
                let t = 12.0 + ((i as u64 * 7 + phase * 5) % 11) as f64 * 1.3;
                [t, t * 0.55, t * 0.3]
            })
            .collect();
        let bips: Vec<[f64; 3]> = (0..cores)
            .map(|i| {
                let t = 0.4 + ((i as u64 * 5 + phase * 3) % 9) as f64 * 0.35;
                [t, t * 0.85, t * 0.7]
            })
            .collect();
        let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
        NodeTelemetry {
            node,
            tick,
            matrices: PowerBipsMatrices::from_rows(power, bips),
            current: ModeCombination::uniform(cores, PowerMode::Turbo),
            budget,
        }
    }

    fn degraded_config() -> FleetConfig {
        FleetConfig {
            degraded: Some(DegradedConfig::default()),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for (mutate, _) in [
            (
                Box::new(|c: &mut FleetConfig| c.queue_capacity = 0) as Box<dyn Fn(&mut _)>,
                "queue",
            ),
            (Box::new(|c: &mut FleetConfig| c.cluster_cores = 0), "hier"),
            (
                Box::new(|c: &mut FleetConfig| c.flat_core_limit = 0),
                "flat",
            ),
            (
                Box::new(|c: &mut FleetConfig| c.cache.capacity = 0),
                "cache",
            ),
            (
                Box::new(|c: &mut FleetConfig| c.dark_after = 1),
                "dark_after <= stale_tolerance",
            ),
            (
                Box::new(|c: &mut FleetConfig| {
                    c.degraded = Some(DegradedConfig {
                        retry_base: 0,
                        ..DegradedConfig::default()
                    });
                }),
                "retry base",
            ),
            (
                Box::new(|c: &mut FleetConfig| {
                    c.rack = Some(RackConfig::new(Watts::new(f64::NAN)));
                }),
                "rack budget",
            ),
        ] {
            let mut config = FleetConfig::default();
            mutate(&mut config);
            assert!(matches!(
                FleetEngine::new(config),
                Err(GpmError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn dedup_collapses_identical_reports_preserving_order() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for node in 0..6 {
            // Nodes 0,2,4 share phase 0; nodes 1,3,5 share phase 1.
            assert!(engine.submit(telemetry(node, 0, 4, node % 2)));
        }
        let decisions = engine.run_tick(0);
        assert_eq!(
            decisions.iter().map(|d| d.node).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5],
            "decisions come back in submission order"
        );
        // Same phase ⇒ same modes; and the followers' answers equal their
        // leader's, which equals an uncached solve.
        for d in &decisions {
            let fresh = solve_report(engine.config(), &telemetry(d.node, 0, 4, d.node % 2));
            assert_eq!(d.modes, fresh, "node {}", d.node);
            assert!(!d.degraded);
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions_total, 6);
        assert_eq!(stats.unique_solves, 2);
        assert_eq!(stats.dedup_hits, 4);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn repeated_phases_hit_across_ticks() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for tick in 0..3 {
            for node in 0..4 {
                assert!(engine.submit(telemetry(node, tick, 4, node % 2)));
            }
            let decisions = engine.run_tick(tick);
            assert_eq!(decisions.len(), 4);
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions_total, 12);
        assert_eq!(stats.unique_solves, 2, "only tick 0's two phases solve");
        assert_eq!(stats.cache_hits, 4, "two leaders hit on each later tick");
        assert_eq!(stats.dedup_hits, 6);
        assert!(stats.hit_rate() > 0.8);
        assert!(stats.solver_us_saved > 0.0);
        assert_eq!(engine.cache().len(), 2);
    }

    #[test]
    fn stale_reports_are_dropped_fresh_ones_decided() {
        let mut engine = FleetEngine::new(FleetConfig {
            stale_tolerance: 1,
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 5, 4, 0))); // fresh
        assert!(engine.submit(telemetry(1, 4, 4, 0))); // stale, in tolerance
        assert!(engine.submit(telemetry(2, 3, 4, 0))); // too old
        let decisions = engine.run_tick(5);
        assert_eq!(
            decisions.iter().map(|d| d.node).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(engine.stats().dropped_stale, 1);
        assert_eq!(engine.stats().dropped_dark, 0);
        assert_eq!(engine.stats().decisions_total, 2);
    }

    #[test]
    fn dark_reports_are_counted_separately_from_stale() {
        let mut engine = FleetEngine::new(FleetConfig {
            stale_tolerance: 1,
            dark_after: 4,
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 10, 4, 0))); // fresh
        assert!(engine.submit(telemetry(1, 8, 4, 0))); // age 2: stale-dropped
        assert!(engine.submit(telemetry(2, 7, 4, 0))); // age 3: stale-dropped
        assert!(engine.submit(telemetry(3, 6, 4, 0))); // age 4: dark
        assert!(engine.submit(telemetry(4, 1, 4, 0))); // age 9: dark
        let decisions = engine.run_tick(10);
        assert_eq!(decisions.len(), 1);
        let stats = engine.stats();
        assert_eq!(stats.dropped_stale, 2);
        assert_eq!(stats.dropped_dark, 2);
        assert_eq!(stats.decisions_total, 1);
        assert_eq!(
            stats.decisions_total,
            stats.cache_hits + stats.dedup_hits + stats.unique_solves
        );
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let mut engine = FleetEngine::new(FleetConfig {
            queue_capacity: 2,
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 0, 4, 0)));
        assert!(engine.submit(telemetry(1, 0, 4, 1)));
        assert!(!engine.submit(telemetry(2, 0, 4, 2)));
        assert_eq!(engine.stats().rejected_backpressure, 1);
        assert_eq!(engine.queued(), 2);
        // The queue drains on the tick and accepts again.
        assert_eq!(engine.run_tick(0).len(), 2);
        assert!(engine.submit(telemetry(2, 1, 4, 2)));
    }

    #[test]
    fn backpressure_backoff_grows_exponentially_and_resets() {
        let mut engine = FleetEngine::new(FleetConfig {
            queue_capacity: 1,
            ..degraded_config()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 0, 4, 0)));
        // Node 7 keeps getting rejected: 1, 2, 4 tick hints.
        for expected in [1u64, 2, 4] {
            match engine.try_submit(telemetry(7, 0, 4, 0)) {
                SubmitOutcome::Rejected { retry_at } => assert_eq!(retry_at, expected),
                other => panic!("expected backpressure, got {other:?}"),
            }
        }
        assert_eq!(engine.retry_at(7), Some(4));
        engine.run_tick(0);
        // Queue has room again: acceptance resets the backoff.
        assert_eq!(
            engine.try_submit(telemetry(7, 1, 4, 0)),
            SubmitOutcome::Accepted
        );
        assert_eq!(engine.retry_at(7), None);
        assert_eq!(engine.stats().rejected_backpressure, 3);
    }

    #[test]
    fn invalid_telemetry_is_rejected_on_submit() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        let mut nan = telemetry(0, 0, 2, 0);
        corrupt_report(&mut nan, CorruptField::Nan);
        let mut neg = telemetry(1, 0, 2, 0);
        corrupt_report(&mut neg, CorruptField::Negative);
        let mut shape = telemetry(2, 0, 2, 0);
        corrupt_report(&mut shape, CorruptField::Shape);
        let mut bad_budget = telemetry(3, 0, 2, 0);
        bad_budget.budget = Watts::new(-5.0);
        for bad in [nan, neg, shape, bad_budget] {
            assert_eq!(engine.try_submit(bad), SubmitOutcome::Invalid);
        }
        assert_eq!(engine.stats().rejected_invalid, 4);
        assert_eq!(engine.queued(), 0);
        // A valid report still goes through; the key space is unpoisoned.
        assert!(engine.submit(telemetry(4, 0, 2, 0)));
        assert_eq!(engine.run_tick(0).len(), 1);
    }

    #[test]
    fn wide_nodes_take_the_hierarchical_path() {
        let config = FleetConfig {
            flat_core_limit: 8,
            cluster_cores: 8,
            ..FleetConfig::default()
        };
        let mut engine = FleetEngine::new(config.clone()).expect("valid config");
        let report = telemetry(0, 0, 16, 0);
        assert!(engine.submit(report.clone()));
        let decisions = engine.run_tick(0);
        let mut hier = HierMaxBips::with_cluster_cores(8).expect("valid width");
        let expected = hier.decide(&PolicyContext {
            current_modes: &report.current,
            matrices: &report.matrices,
            future: None,
            budget: report.budget,
            dvfs: &config.dvfs,
            explore: config.explore,
        });
        assert_eq!(decisions[0].modes, expected);
    }

    #[test]
    fn verify_hits_audits_cached_fleet_decisions() {
        let mut engine = FleetEngine::new(FleetConfig {
            cache: CacheConfig {
                verify_hits: true,
                ..CacheConfig::default()
            },
            ..FleetConfig::default()
        })
        .expect("valid config");
        for tick in 0..2 {
            for node in 0..3 {
                assert!(engine.submit(telemetry(node, tick, 4, 0)));
            }
            engine.run_tick(tick);
        }
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn flap_yields_last_good_fallback_stepped_down() {
        let plan = FleetFaultPlan::parse("flap@1:period=4,down=1,from=1,to=2")
            .expect("flap@1:period=4,down=1,from=1,to=2 spec parses");
        let mut engine = FleetEngine::new(FleetConfig {
            faults: Some(plan),
            ..degraded_config()
        })
        .expect("valid config");
        // Tick 0: both nodes decided normally; node 1's assignment is
        // remembered as last-good.
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 0, 4, node)));
        }
        let first = engine.run_tick(0);
        assert_eq!(first.len(), 2);
        let good = first[1].modes.clone();
        // Tick 1: node 1 flaps; it still gets a decision — last-good
        // stepped one mode down — flagged degraded.
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 1, 4, node)));
        }
        let second = engine.run_tick(1);
        assert_eq!(second.len(), 2);
        assert!(!second[0].degraded);
        assert!(second[1].degraded);
        assert_eq!(second[1].modes, step_down(&good, 1));
        let stats = engine.stats();
        assert_eq!(stats.flap_drops, 1);
        assert_eq!(stats.dropped_dark, 1);
        assert_eq!(stats.fallback_decisions, 1);
        assert_eq!(stats.decisions_total, 3);
        assert_eq!(
            stats.decisions_total,
            stats.cache_hits + stats.dedup_hits + stats.unique_solves
        );
        // Tick 2: the window closed; node 1 is decided normally again.
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 2, 4, node)));
        }
        let third = engine.run_tick(2);
        assert!(!third[1].degraded);
        assert_eq!(third[1].modes, good);
    }

    #[test]
    fn flap_without_history_emits_no_decision() {
        let plan = FleetFaultPlan::parse("flap@0:period=2,down=2")
            .expect("flap@0:period=2,down=2 spec parses");
        let mut engine = FleetEngine::new(FleetConfig {
            faults: Some(plan),
            ..degraded_config()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 0, 4, 0)));
        // Node 0 is down and has never been decided: the engine cannot
        // even know its width, so no fallback is possible.
        assert!(engine.run_tick(0).is_empty());
        assert_eq!(engine.stats().fallback_decisions, 0);
        assert_eq!(engine.stats().flap_drops, 1);
    }

    #[test]
    fn corrupt_report_falls_back_to_floor_without_history() {
        let plan = FleetFaultPlan::parse("corrupt@0:field=nan,rate=1.0")
            .expect("corrupt@0:field=nan,rate=1.0 spec parses");
        let mut engine = FleetEngine::new(FleetConfig {
            faults: Some(plan),
            ..degraded_config()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 0, 4, 0)));
        let decisions = engine.run_tick(0);
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].degraded);
        assert_eq!(
            decisions[0].modes,
            ModeCombination::uniform(4, PowerMode::Eff2),
            "no last-good assignment: the fallback is the all-Eff2 floor"
        );
        let stats = engine.stats();
        assert_eq!(stats.corrupted_reports, 1);
        assert_eq!(stats.rejected_invalid, 1);
        assert_eq!(stats.fallback_decisions, 1);
        assert_eq!(stats.decisions_total, 0);
    }

    #[test]
    fn skew_ages_reports_into_the_stale_drop() {
        let plan = FleetFaultPlan::parse("skew@0:ticks=3").expect("skew@0:ticks=3 spec parses");
        let mut engine = FleetEngine::new(FleetConfig {
            stale_tolerance: 1,
            faults: Some(plan),
            ..FleetConfig::default()
        })
        .expect("valid config");
        assert!(engine.submit(telemetry(0, 5, 4, 0))); // fresh, but skewed to age 3
        assert!(engine.submit(telemetry(1, 5, 4, 0))); // untouched
        let decisions = engine.run_tick(5);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].node, 1);
        let stats = engine.stats();
        assert_eq!(stats.skew_delayed, 1);
        assert_eq!(stats.dropped_stale, 1);
    }

    #[test]
    fn solver_timeout_diverts_group_to_fallback() {
        let plan = FleetFaultPlan::parse("timeout:rate=1.0,from=0,to=1")
            .expect("timeout:rate=1.0,from=0,to=1 spec parses");
        let mut engine = FleetEngine::new(FleetConfig {
            faults: Some(plan),
            ..degraded_config()
        })
        .expect("valid config");
        // Two identical reports: one group, one (timed-out) solve.
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 0, 4, 0)));
        }
        let decisions = engine.run_tick(0);
        assert_eq!(decisions.len(), 2);
        assert!(decisions.iter().all(|d| d.degraded));
        let stats = engine.stats();
        assert_eq!(stats.solver_timeouts, 1);
        assert_eq!(stats.fallback_decisions, 2);
        assert_eq!(stats.decisions_total, 0);
        assert_eq!(stats.unique_solves, 0);
        assert_eq!(engine.cache().len(), 0, "timed-out groups never insert");
        // Tick 1 (window closed): the same problem now solves and the
        // accounting identity holds.
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 1, 4, 0)));
        }
        let decisions = engine.run_tick(1);
        assert!(decisions.iter().all(|d| !d.degraded));
        let stats = engine.stats();
        assert_eq!(stats.decisions_total, 2);
        assert_eq!(stats.unique_solves, 1);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn rack_shedding_clamps_highest_power_first() {
        // Three 2-core nodes; phase 0 draws the most power.
        let mut engine = FleetEngine::new(FleetConfig {
            rack: Some(RackConfig::new(Watts::new(1e9))),
            ..FleetConfig::default()
        })
        .expect("valid config");
        for node in 0..3 {
            assert!(engine.submit(telemetry(node, 0, 2, node)));
        }
        let unshedded = engine.run_tick(0);
        let full_power: f64 = unshedded
            .iter()
            .enumerate()
            .map(|(i, d)| {
                telemetry(i as u64, 0, 2, i as u64)
                    .matrices
                    .chip_power(&d.modes)
                    .value()
            })
            .sum();

        // Re-run with a budget that forces exactly the hungriest node out.
        let per_node: Vec<f64> = unshedded
            .iter()
            .enumerate()
            .map(|(i, d)| {
                telemetry(i as u64, 0, 2, i as u64)
                    .matrices
                    .chip_power(&d.modes)
                    .value()
            })
            .collect();
        let hungriest = per_node
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let budget = full_power - 0.1;
        let mut engine = FleetEngine::new(FleetConfig {
            rack: Some(RackConfig::new(Watts::new(budget))),
            ..FleetConfig::default()
        })
        .expect("valid config");
        for node in 0..3 {
            assert!(engine.submit(telemetry(node, 0, 2, node)));
        }
        let shed = engine.run_tick(0);
        assert_eq!(
            shed[hungriest].modes,
            ModeCombination::uniform(2, PowerMode::Eff2)
        );
        assert!(shed[hungriest].degraded);
        let others: Vec<_> = (0..3).filter(|&i| i != hungriest).collect();
        for &i in &others {
            assert_eq!(shed[i].modes, unshedded[i].modes, "node {i} untouched");
            assert!(!shed[i].degraded);
        }
        let stats = engine.stats();
        assert_eq!(stats.shed_clamps, 1);
        assert_eq!(stats.rack_violation_ticks, 1);
        assert!(stats.worst_rack_overshoot_watts > 0.0);
    }

    #[test]
    fn rack_watchdog_clamps_whole_rack_after_k_violations() {
        // An absurdly small budget violates every tick even after full
        // shedding-to-floor, so the watchdog must fire on tick K-1.
        let rack = RackConfig {
            budget: Watts::new(0.001),
            watchdog_k: 3,
            clamp_hold: 2,
            max_backoff: 8,
        };
        let mut engine = FleetEngine::new(FleetConfig {
            rack: Some(rack),
            ..FleetConfig::default()
        })
        .expect("valid config");
        let floor = ModeCombination::uniform(2, PowerMode::Eff2);
        for tick in 0..6u64 {
            for node in 0..2 {
                assert!(engine.submit(telemetry(node, tick, 2, node)));
            }
            let decisions = engine.run_tick(tick);
            // Every tick sheds (or clamps) everything to the floor.
            assert!(decisions.iter().all(|d| d.modes == floor), "tick {tick}");
        }
        let stats = engine.stats();
        // Ticks 0-1 shed; tick 2 trips the watchdog (streak of 3) and is
        // clamped; tick 3 rides the hold; tick 4-5 rebuild the streak.
        assert_eq!(stats.watchdog_clamp_ticks, 2);
        assert!(stats.rack_violation_ticks >= 3);
        assert!(stats.longest_rack_violation_run >= 3);
        assert_eq!(
            stats.shed_clamps,
            2 * 4,
            "two nodes shed on non-clamp ticks"
        );
    }

    #[test]
    fn mid_run_budget_step_triggers_shedding() {
        let mut engine = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 0, 2, node)));
        }
        let before = engine.run_tick(0);
        assert!(before.iter().all(|d| !d.degraded));
        assert_eq!(engine.stats().shed_clamps, 0);
        // The rack budget steps down mid-run: next tick must shed.
        engine.set_rack_budget(Some(Watts::new(1.0)));
        for node in 0..2 {
            assert!(engine.submit(telemetry(node, 1, 2, node)));
        }
        let after = engine.run_tick(1);
        assert!(after
            .iter()
            .all(|d| d.modes == ModeCombination::uniform(2, PowerMode::Eff2)));
        assert_eq!(engine.stats().shed_clamps, 2);
        assert_eq!(engine.stats().rack_violation_ticks, 1);
    }

    #[test]
    fn fault_free_chaos_armed_engine_matches_disarmed() {
        // A plan whose only clause targets a node that never reports,
        // plus degraded mode and a generous rack budget: the full
        // machinery runs but every decision must be bit-identical to the
        // plain engine's.
        let plan = FleetFaultPlan::parse("flap@999983:period=2")
            .expect("flap@999983:period=2 spec parses");
        let armed_config = FleetConfig {
            faults: Some(plan),
            degraded: Some(DegradedConfig::default()),
            rack: Some(RackConfig::new(Watts::new(1e12))),
            ..FleetConfig::default()
        };
        let mut armed = FleetEngine::new(armed_config).expect("valid config");
        let mut plain = FleetEngine::new(FleetConfig::default()).expect("valid config");
        for tick in 0..4u64 {
            for node in 0..12 {
                assert!(armed.submit(telemetry(node, tick, 4, node % 3)));
                assert!(plain.submit(telemetry(node, tick, 4, node % 3)));
            }
            assert_eq!(armed.run_tick(tick), plain.run_tick(tick), "tick {tick}");
        }
        let (a, p) = (armed.stats(), plain.stats());
        assert_eq!(a.decisions_total, p.decisions_total);
        assert_eq!(a.cache_hits, p.cache_hits);
        assert_eq!(a.dedup_hits, p.dedup_hits);
        assert_eq!(a.unique_solves, p.unique_solves);
        assert_eq!(a.fallback_decisions, 0);
        assert_eq!(a.shed_clamps, 0);
    }

    #[test]
    fn checkpoint_restore_continues_bit_identically() {
        let plan = FleetFaultPlan::parse("flap@2:period=3,down=1,from=2,to=8;corrupt@5:rate=0.7")
            .expect("flap@2:period=3,down=1,from=2,to=8;corrupt@5:rate=0.7 spec parses");
        let config = FleetConfig {
            faults: Some(plan),
            degraded: Some(DegradedConfig::default()),
            rack: Some(RackConfig::new(Watts::new(220.0))),
            ..FleetConfig::default()
        };
        let drive = |engine: &mut FleetEngine, tick: u64| -> Vec<NodeDecision> {
            for node in 0..8 {
                engine.submit(telemetry(node, tick, 4, node % 3));
            }
            engine.run_tick(tick)
        };

        // Reference: run 8 ticks uninterrupted.
        let mut reference = FleetEngine::new(config.clone()).expect("valid config");
        let mut expected = Vec::new();
        for tick in 0..8u64 {
            expected.push(drive(&mut reference, tick));
        }

        // Candidate: run 4 ticks, checkpoint through JSON, restore,
        // run the rest.
        let mut first_half = FleetEngine::new(config.clone()).expect("valid config");
        let mut got = Vec::new();
        for tick in 0..4u64 {
            got.push(drive(&mut first_half, tick));
        }
        let json = first_half.checkpoint().to_json();
        let checkpoint = FleetCheckpoint::from_json(&json).expect("roundtrips");
        let mut restored = FleetEngine::restore(config.clone(), &checkpoint).expect("restores");
        for tick in 4..8u64 {
            got.push(drive(&mut restored, tick));
        }

        assert_eq!(got, expected, "decision stream diverged across restore");
        // Cache entries (keys, values, recency order) and counters must
        // match exactly; solve timing is wall-clock and excluded.
        let (rs, es) = (restored.cache().snapshot(), reference.cache().snapshot());
        assert_eq!(
            rs.entries, es.entries,
            "cache state diverged across restore"
        );
        assert_eq!(rs.counters, es.counters);
        assert_eq!(rs.solve_count, es.solve_count);
        let (r, e) = (restored.stats(), reference.stats());
        assert_eq!(r.decisions_total, e.decisions_total);
        assert_eq!(r.fallback_decisions, e.fallback_decisions);
        assert_eq!(r.shed_clamps, e.shed_clamps);
        assert_eq!(r.dropped_dark, e.dropped_dark);
        assert_eq!(r.rejected_invalid, e.rejected_invalid);
    }

    #[test]
    fn restore_rejects_mismatched_config_and_version() {
        let config = FleetConfig::default();
        let mut engine = FleetEngine::new(config.clone()).expect("valid config");
        for node in 0..4 {
            engine.submit(telemetry(node, 0, 4, node));
        }
        engine.run_tick(0);
        let checkpoint = engine.checkpoint();
        // Same config restores.
        assert!(FleetEngine::restore(config.clone(), &checkpoint).is_ok());
        // A different stale tolerance is a different decision function.
        let other = FleetConfig {
            stale_tolerance: 3,
            ..config
        };
        assert!(matches!(
            FleetEngine::restore(other, &checkpoint),
            Err(GpmError::InvalidConfig { .. })
        ));
        // A future version is refused.
        let mut doctored = checkpoint;
        doctored.version = FLEET_CHECKPOINT_VERSION + 1;
        assert!(matches!(
            FleetEngine::restore(FleetConfig::default(), &doctored),
            Err(GpmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn step_down_saturates_at_the_floor() {
        let mixed = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2]);
        assert_eq!(
            step_down(&mixed, 1).as_slice(),
            &[PowerMode::Eff1, PowerMode::Eff2, PowerMode::Eff2]
        );
        assert_eq!(
            step_down(&mixed, 5),
            ModeCombination::uniform(3, PowerMode::Eff2)
        );
        assert_eq!(step_down(&mixed, 0), mixed);
    }
}
