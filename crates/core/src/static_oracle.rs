//! Optimistic static mode assignment — the lower bound of Section 5.7.
//!
//! For each target budget, pick one fixed mode per core and never change it.
//! The paper makes the static case *optimistic*: the assignment is chosen
//! with oracle knowledge of each benchmark's whole native execution at each
//! mode (so it is the best achievable static configuration for that
//! budget), yet it still loses to dynamic management because a fixed
//! configuration cannot follow temporal phase variation.
//!
//! The evaluation is analytic over the native per-mode traces — no
//! simulation, no transition costs (a static chip never transitions):
//! termination is when the first benchmark completes, each core's progress
//! is read off its mode's trace, and power is averaged over the run window.
//!
//! The paper does not say whether an assignment "satisfies budget
//! requirements" by average or by worst-case power; [`BudgetCriterion`]
//! exposes both. The default is the windowed peak: the chip's worst
//! 500 µs-window average power must fit, which is exactly the granularity
//! at which the dynamic policies enforce the budget (one explore interval).
//! The pure whole-run average is available as the laxer alternative.

use std::sync::Arc;

use gpm_trace::BenchmarkTraces;
use gpm_types::{
    Bips, CoreId, GpmError, Micros, ModeCombination, ModeOdometer, PowerMode, Result, Watts,
};

/// How a static assignment must satisfy the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetCriterion {
    /// Whole-run average chip power must fit — laxer than what the dynamic
    /// policies are held to.
    AveragePower,
    /// The worst explore-window (500 µs) average chip power must fit —
    /// the same granularity the dynamic policies enforce (default).
    #[default]
    PeakPower,
}

/// The budget-enforcement window for [`BudgetCriterion::PeakPower`],
/// matching the paper's explore interval.
const ENFORCEMENT_WINDOW: Micros = Micros::new(500.0);

/// The evaluated outcome of one static mode assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticAssignment {
    /// The fixed per-core modes.
    pub modes: ModeCombination,
    /// Run duration (first benchmark's completion).
    pub duration: Micros,
    /// Whole-run average chip power.
    pub average_power: Watts,
    /// Worst 500 µs-window average chip power (time-aligned across cores).
    pub peak_power: Watts,
    /// Chip throughput over the run.
    pub chip_bips: Bips,
    /// Per-core average instruction rates (instructions per second).
    pub per_core_ips: Vec<f64>,
}

/// Evaluates one fixed assignment analytically from the native traces.
///
/// # Errors
///
/// Returns [`GpmError::CoreCountMismatch`] if `modes` does not cover
/// `traces`.
pub fn evaluate(
    traces: &[Arc<BenchmarkTraces>],
    modes: &ModeCombination,
) -> Result<StaticAssignment> {
    if modes.len() != traces.len() {
        return Err(GpmError::CoreCountMismatch {
            expected: traces.len(),
            actual: modes.len(),
        });
    }

    // Termination: the first core to finish its region, natively in its
    // assigned mode.
    let duration = traces
        .iter()
        .zip(modes.iter())
        .map(|(t, (_, mode))| {
            t.completion_time(mode)
                .unwrap_or_else(|| t.trace(mode).duration())
        })
        .fold(Micros::new(f64::INFINITY), Micros::min);

    let secs = duration.to_seconds().value();
    let mut total_instr = 0.0f64;
    let mut avg_power = 0.0f64;
    let mut per_core_ips = Vec::with_capacity(traces.len());
    for (t, (_, mode)) in traces.iter().zip(modes.iter()) {
        let trace = t.trace(mode);
        let instr = trace.instructions_by(duration).min(t.total_instructions()) as f64;
        total_instr += instr;
        per_core_ips.push(instr / secs);
        avg_power += trace.average_power_until(duration).value();
    }

    // Time-aligned chip power series (all cores start at t = 0 and never
    // switch), reduced to the worst explore-window average.
    let delta = traces[0].trace(PowerMode::Turbo).delta();
    let steps = ((duration.value() / delta.value()).ceil() as usize).max(1);
    let chip_series: Vec<f64> = (0..steps)
        .map(|k| {
            traces
                .iter()
                .zip(modes.iter())
                .map(|(t, (_, mode))| {
                    let samples = t.trace(mode).samples();
                    samples[k.min(samples.len() - 1)].power_w
                })
                .sum()
        })
        .collect();
    let window = ((ENFORCEMENT_WINDOW.value() / delta.value()).round() as usize).max(1);
    let peak_power = chip_series
        .windows(window.min(chip_series.len()))
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .fold(f64::NEG_INFINITY, f64::max);

    Ok(StaticAssignment {
        modes: modes.clone(),
        duration,
        average_power: Watts::new(avg_power),
        peak_power: Watts::new(peak_power),
        chip_bips: Bips::new(total_instr / secs / 1.0e9),
        per_core_ips,
    })
}

/// Exhaustively searches the 3^N static assignments for the
/// highest-throughput one that satisfies `budget` under `criterion` — the
/// "optimistic static management" bound.
///
/// Returns `None` when no assignment fits (not even all-Eff2).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn best(
    traces: &[Arc<BenchmarkTraces>],
    budget: Watts,
    criterion: BudgetCriterion,
) -> Result<Option<StaticAssignment>> {
    // The 3^N assignments are evaluated in enumeration-order rank ranges
    // across the worker pool — each range walked by an in-place
    // [`ModeOdometer`], so the space is never materialised. Each range
    // keeps its first strict maximum, and the ordered merge below then
    // selects the same assignment the serial scan would (ties resolve to
    // the earliest-enumerated candidate).
    //
    // Unlike the matrix-driven MaxBIPS argmax (see `gpm_core::solver`),
    // this objective is *not* separable per core — the run terminates when
    // the first benchmark completes, coupling every core's contribution to
    // the chip-wide duration — so the branch-and-bound does not apply and
    // the scan stays exhaustive.
    let cores = traces.len();
    let total = 3usize.checked_pow(cores as u32).expect("3^cores overflow");
    let chunk_size = total
        .div_ceil(gpm_par::max_threads().saturating_mul(4))
        .max(1);
    let ranges: Vec<(usize, usize)> = (0..total)
        .step_by(chunk_size)
        .map(|start| (start, (start + chunk_size).min(total)))
        .collect();
    let local_bests = gpm_par::try_parallel_map(&ranges, |&(start, end)| {
        let mut odometer = ModeOdometer::from_rank(cores, start);
        let mut best: Option<StaticAssignment> = None;
        for _ in start..end {
            let modes = odometer.current();
            let candidate = evaluate(traces, modes)?;
            odometer.advance();
            let power = match criterion {
                BudgetCriterion::AveragePower => candidate.average_power,
                BudgetCriterion::PeakPower => candidate.peak_power,
            };
            if power > budget {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| candidate.chip_bips > b.chip_bips)
            {
                best = Some(candidate);
            }
        }
        Ok(best)
    })?;
    let mut best: Option<StaticAssignment> = None;
    for local in local_bests.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| local.chip_bips > b.chip_bips) {
            best = Some(local);
        }
    }
    Ok(best)
}

/// Like [`best`], but falling back to the all-Eff2 floor when nothing
/// fits — convenient for sweeps where every budget needs *some* point.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn best_or_floor(
    traces: &[Arc<BenchmarkTraces>],
    budget: Watts,
    criterion: BudgetCriterion,
) -> Result<StaticAssignment> {
    match best(traces, budget, criterion)? {
        Some(a) => Ok(a),
        None => evaluate(
            traces,
            &ModeCombination::uniform(traces.len(), PowerMode::Eff2),
        ),
    }
}

/// The all-Turbo reference point used to express static results as
/// degradations.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn all_turbo(traces: &[Arc<BenchmarkTraces>]) -> Result<StaticAssignment> {
    evaluate(
        traces,
        &ModeCombination::uniform(traces.len(), PowerMode::Turbo),
    )
}

impl StaticAssignment {
    /// Throughput degradation relative to a baseline assignment
    /// (typically [`all_turbo`]).
    #[must_use]
    pub fn degradation_vs(&self, baseline: &StaticAssignment) -> f64 {
        1.0 - self.chip_bips.value() / baseline.chip_bips.value()
    }

    /// Weighted slowdown (harmonic mean of per-thread speedups) relative
    /// to a baseline assignment.
    ///
    /// # Panics
    ///
    /// Panics if the baseline covers a different core count.
    #[must_use]
    pub fn weighted_slowdown_vs(&self, baseline: &StaticAssignment) -> f64 {
        assert_eq!(self.per_core_ips.len(), baseline.per_core_ips.len());
        let speedups = self
            .per_core_ips
            .iter()
            .zip(&baseline.per_core_ips)
            .map(|(a, b)| a / b);
        1.0 - gpm_types::SummaryStats::harmonic_mean(speedups)
    }

    /// `CoreId`-indexed access to the fixed mode of one core.
    #[must_use]
    pub fn mode(&self, core: CoreId) -> PowerMode {
        self.modes.mode(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_trace::{ModeTrace, TraceSample};

    /// Constant-rate synthetic trace set (same helper shape as gpm-cmp's
    /// tests): linear BIPS scaling, cubic power scaling across modes.
    fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
        let delta = Micros::new(50.0);
        let delta_s = delta.to_seconds().value();
        let traces = PowerMode::ALL
            .map(|mode| {
                let b = bips * mode.bips_scale_bound();
                let p = power * mode.power_scale();
                let per_delta = b * 1.0e9 * delta_s;
                let samples: Vec<TraceSample> = (1..=2000)
                    .map(|k| TraceSample {
                        instructions_end: (per_delta * k as f64).round() as u64,
                        power_w: p,
                        bips: b,
                    })
                    .collect();
                ModeTrace::new(mode, delta, samples)
            })
            .to_vec();
        Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
    }

    fn pair() -> Vec<Arc<BenchmarkTraces>> {
        vec![
            constant_traces("fast", 10_000_000, 2.0, 20.0),
            constant_traces("slow", 10_000_000, 0.5, 12.0),
        ]
    }

    #[test]
    fn evaluate_all_turbo() {
        let traces = pair();
        let a = all_turbo(&traces).unwrap();
        assert!((a.average_power.value() - 32.0).abs() < 1e-9);
        assert!((a.chip_bips.value() - 2.5).abs() < 0.01);
        // "fast" finishes first: 10M instr at 2 BIPS = 5000 µs.
        assert!((a.duration.value() - 5000.0).abs() < 50.0);
        assert_eq!(a.per_core_ips.len(), 2);
    }

    #[test]
    fn best_obeys_budget_and_maximises_bips() {
        let traces = pair();
        // All-Turbo needs 32 W. At 30 W the best static point demotes the
        // slow core (cheap in BIPS).
        let a = best(&traces, Watts::new(30.0), BudgetCriterion::AveragePower)
            .unwrap()
            .unwrap();
        assert!(a.average_power.value() <= 30.0);
        assert_eq!(a.mode(CoreId::new(0)), PowerMode::Turbo);
        assert!(a.mode(CoreId::new(1)) < PowerMode::Turbo);
    }

    #[test]
    fn nothing_fits_returns_none_and_floor_works() {
        let traces = pair();
        assert!(
            best(&traces, Watts::new(5.0), BudgetCriterion::AveragePower)
                .unwrap()
                .is_none()
        );
        let floor = best_or_floor(&traces, Watts::new(5.0), BudgetCriterion::AveragePower).unwrap();
        assert!(floor.modes.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }

    #[test]
    fn peak_criterion_is_stricter() {
        // With a peaky core the windowed-peak criterion must reject more
        // than the whole-run average.
        let delta = Micros::new(50.0);
        // 500 µs-long bursts (10 samples) alternating 22 W and 10 W: the
        // whole-run average is 16 W but the worst explore window sees 22 W.
        let spiky: Vec<TraceSample> = (1..=2000)
            .map(|k| TraceSample {
                instructions_end: k * 100_000,
                power_w: if (k / 10) % 2 == 0 { 22.0 } else { 10.0 },
                bips: 2.0,
            })
            .collect();
        let traces = vec![Arc::new(
            BenchmarkTraces::new(
                "spiky",
                10_000_000,
                PowerMode::ALL
                    .map(|m| {
                        ModeTrace::new(
                            m,
                            delta,
                            spiky
                                .iter()
                                .map(|s| TraceSample {
                                    power_w: s.power_w * m.power_scale(),
                                    bips: s.bips * m.bips_scale_bound(),
                                    ..*s
                                })
                                .collect(),
                        )
                    })
                    .to_vec(),
            )
            .unwrap(),
        )];
        let avg_ok = best(&traces, Watts::new(18.0), BudgetCriterion::AveragePower)
            .unwrap()
            .unwrap();
        assert_eq!(avg_ok.mode(CoreId::new(0)), PowerMode::Turbo);
        let peak = best(&traces, Watts::new(18.0), BudgetCriterion::PeakPower)
            .unwrap()
            .unwrap();
        assert!(peak.mode(CoreId::new(0)) < PowerMode::Turbo);
    }

    #[test]
    fn degradation_and_slowdown_metrics() {
        let traces = pair();
        let base = all_turbo(&traces).unwrap();
        let a = best(&traces, Watts::new(28.0), BudgetCriterion::AveragePower)
            .unwrap()
            .unwrap();
        let deg = a.degradation_vs(&base);
        assert!((0.0..0.2).contains(&deg), "degradation {deg}");
        let ws = a.weighted_slowdown_vs(&base);
        assert!(
            ws >= deg - 1e-9,
            "weighted slowdown at least as harsh: {ws} vs {deg}"
        );
    }

    #[test]
    fn mismatched_modes_rejected() {
        let traces = pair();
        let err = evaluate(&traces, &ModeCombination::uniform(3, PowerMode::Turbo));
        assert!(matches!(err, Err(GpmError::CoreCountMismatch { .. })));
    }
}
