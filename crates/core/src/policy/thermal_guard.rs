//! Temperature-aware policy wrapper — an extension beyond the paper.
//!
//! The paper manages a chip *power* budget; its motivation (and its
//! Figure 6 cooling-failure scenario) is thermal. `ThermalGuard` closes
//! that loop: it wraps any inner policy, tracks per-core junction
//! temperatures with the [`ThermalModel`] RC node driven by the observed
//! core powers, and overrides the inner decision for cores that approach a
//! junction limit.

use gpm_power::{ThermalModel, ThermalParams};
use gpm_types::{CoreId, Micros, ModeCombination, PowerMode, Watts};

use super::{Policy, PolicyContext};

/// Wraps an inner policy with per-core thermal throttling.
///
/// At each explore boundary the guard advances its thermal model by one
/// explore interval using the powers the sensors just reported (recovered
/// from the context's matrices at the cores' current modes), then clamps
/// the inner policy's decision:
///
/// * a core at or above `limit_c` is forced to Eff2 (deep throttle);
/// * a core within `margin_c` of the limit is capped at Eff1.
///
/// The override is per-core — exactly the kind of localised response the
/// paper's global manager coordinates with.
///
/// # Examples
///
/// ```
/// use gpm_core::{MaxBips, Policy, ThermalGuard};
/// use gpm_power::ThermalParams;
///
/// let guard = ThermalGuard::new(MaxBips::new(), 4, ThermalParams::default(), 85.0, 4.0).unwrap();
/// assert_eq!(guard.name(), "Thermal(MaxBIPS)");
/// ```
#[derive(Debug, Clone)]
pub struct ThermalGuard<P> {
    inner: P,
    model: ThermalModel,
    limit_c: f64,
    margin_c: f64,
    name: String,
    throttle_events: u64,
}

impl<P: Policy> ThermalGuard<P> {
    /// Wraps `inner` for a `cores`-way chip with junction limit `limit_c`
    /// (°C) and a soft margin `margin_c` below it.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the thermal
    /// parameters are invalid (see [`ThermalModel::new`]) or `margin_c` is
    /// negative or non-finite.
    pub fn new(
        inner: P,
        cores: usize,
        params: ThermalParams,
        limit_c: f64,
        margin_c: f64,
    ) -> gpm_types::Result<Self> {
        if margin_c < 0.0 || margin_c.is_nan() {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "thermal_margin",
                reason: format!("margin must be non-negative, got {margin_c}"),
            });
        }
        let name = format!("Thermal({})", inner.name());
        Ok(Self {
            inner,
            model: ThermalModel::new(cores, params)?,
            limit_c,
            margin_c,
            name,
            throttle_events: 0,
        })
    }

    /// Current per-core junction temperatures, °C.
    #[must_use]
    pub fn temperatures(&self) -> &[f64] {
        self.model.temperatures()
    }

    /// The hottest core's temperature, °C.
    #[must_use]
    pub fn hottest(&self) -> f64 {
        self.model.hottest()
    }

    /// How many per-core throttle overrides the guard has applied.
    #[must_use]
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for ThermalGuard<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_future(&self) -> bool {
        self.inner.needs_future()
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        // The matrices carry each core's observed power at its current
        // mode; advance the RC nodes by the interval that just elapsed.
        let powers: Vec<Watts> = ctx
            .current_modes
            .iter()
            .map(|(core, mode)| ctx.matrices.power(core, mode))
            .collect();
        let dt: Micros = ctx.explore;
        self.model.step(&powers, dt);

        let mut modes = self.inner.decide(ctx);
        for (i, &temp) in self.model.temperatures().iter().enumerate() {
            let id = CoreId::new(i);
            let cap = if temp >= self.limit_c {
                Some(PowerMode::Eff2)
            } else if temp >= self.limit_c - self.margin_c {
                Some(PowerMode::Eff1)
            } else {
                None
            };
            if let Some(cap) = cap {
                if modes.mode(id) > cap {
                    modes.set(id, cap);
                    self.throttle_events += 1;
                }
            }
        }
        modes
    }

    fn cache_counters(&self) -> Option<super::CacheCounters> {
        self.inner.cache_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use crate::MaxBips;

    fn guard(limit: f64) -> ThermalGuard<MaxBips> {
        ThermalGuard::new(MaxBips::new(), 2, ThermalParams::default(), limit, 3.0).unwrap()
    }

    #[test]
    fn cool_chip_passes_inner_decision_through() {
        // Limit far above any reachable temperature.
        let f = Fixture::new(&[(20.0, 2.0), (12.0, 0.5)]);
        let mut g = guard(150.0);
        let combo = g.decide(&f.ctx(100.0));
        let inner = MaxBips::new().decide(&f.ctx(100.0));
        assert_eq!(combo, inner);
        assert_eq!(g.throttle_events(), 0);
    }

    #[test]
    fn hot_core_is_throttled() {
        // 20 W core settles at 45 + 36 = 81 °C; a 75 °C limit must throttle
        // it while leaving the 12 W core (66.6 °C steady) alone.
        let f = Fixture::new(&[(20.0, 2.0), (12.0, 0.5)]);
        let mut g = guard(75.0);
        let mut last = ModeCombination::uniform(2, PowerMode::Turbo);
        for _ in 0..100 {
            last = g.decide(&f.ctx(100.0));
        }
        assert_eq!(last.mode(CoreId::new(0)), PowerMode::Eff2, "{last}");
        assert_eq!(last.mode(CoreId::new(1)), PowerMode::Turbo, "{last}");
        assert!(g.throttle_events() > 0);
        assert!(g.hottest() >= g.temperatures()[1]);
    }

    #[test]
    fn soft_margin_caps_at_eff1() {
        // Limit such that the hot core sits inside the margin band but
        // below the hard limit: 20 W → 81 °C steady; limit 83, margin 4 →
        // band starts at 79 °C.
        let f = Fixture::new(&[(20.0, 2.0), (12.0, 0.5)]);
        let mut g =
            ThermalGuard::new(MaxBips::new(), 2, ThermalParams::default(), 83.0, 4.0).unwrap();
        let mut last = ModeCombination::uniform(2, PowerMode::Turbo);
        for _ in 0..200 {
            last = g.decide(&f.ctx(100.0));
        }
        // In the soft band the core oscillates between Turbo and Eff1 but
        // never needs the deep throttle.
        assert!(last.mode(CoreId::new(0)) >= PowerMode::Eff1, "{last}");
        assert!(g.hottest() < 83.5, "temperature {}", g.hottest());
    }

    #[test]
    fn temperatures_fall_after_throttling() {
        let f = Fixture::new(&[(24.0, 2.0), (10.0, 0.5)]);
        let mut g = guard(70.0);
        for _ in 0..50 {
            let _ = g.decide(&f.ctx(100.0));
        }
        let throttled_temp = g.temperatures()[0];
        // The fixture always reports Turbo-mode observations, so the model
        // heats toward the Turbo steady state; verify the guard keeps
        // demanding Eff2 as long as that persists.
        let combo = g.decide(&f.ctx(100.0));
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Eff2);
        assert!(throttled_temp > 70.0);
    }

    #[test]
    fn negative_margin_rejected() {
        assert!(matches!(
            ThermalGuard::new(MaxBips::new(), 2, ThermalParams::default(), 85.0, -1.0),
            Err(gpm_types::GpmError::InvalidConfig {
                parameter: "thermal_margin",
                ..
            })
        ));
    }

    #[test]
    fn name_and_passthrough() {
        let g = guard(85.0);
        assert_eq!(g.name(), "Thermal(MaxBIPS)");
        assert!(!g.needs_future());
        assert_eq!(g.inner().name(), "MaxBIPS");
    }
}
