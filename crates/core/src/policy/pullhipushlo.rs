//! The pullHipushLo policy (Section 5.2.2).

use gpm_types::{CoreId, ModeCombination, Watts};

use super::{Policy, PolicyContext};

/// PullHiPushLo: balance power across cores.
///
/// On a budget overshoot the core with the **highest** predicted power is
/// slowed one step; with available slack the **lowest**-power core is sped
/// up (when the promotion still fits the budget). Because memory-bound
/// benchmarks draw the least power, the push side effectively prefers
/// benchmarks "in their memory-boundedness order", exactly the
/// prioritisation the paper attributes to this policy — and the inverse of
/// MaxBIPS's CPU-boundedness preference. The resulting assignments can be
/// non-monotonic in the budget, which the paper also observes.
///
/// # Examples
///
/// ```
/// use gpm_core::{Policy, PullHiPushLo};
///
/// assert_eq!(PullHiPushLo::new().name(), "pullHipushLo");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PullHiPushLo {
    _priv: (),
}

impl PullHiPushLo {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for PullHiPushLo {
    fn name(&self) -> &str {
        "pullHipushLo"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let m = ctx.matrices;
        let n = m.cores();
        let mut modes = ctx.current_modes.clone();

        // Pull high: demote the hottest demotable core until the budget
        // fits (or everything is at Eff2).
        while m.chip_power(&modes) > ctx.budget {
            let hottest = CoreId::all(n)
                .filter(|&id| modes.mode(id).slower().is_some())
                .max_by(|&a, &b| {
                    let pa = m.power(a, modes.mode(a));
                    let pb = m.power(b, modes.mode(b));
                    pa.value().total_cmp(&pb.value())
                });
            let Some(id) = hottest else { break };
            let slower = modes.mode(id).slower().expect("filtered above");
            modes.set(id, slower);
        }

        // Push low: promote the coolest promotable core whose promotion
        // still fits; repeat until nothing fits.
        'push: loop {
            let mut candidates: Vec<CoreId> = CoreId::all(n)
                .filter(|&id| modes.mode(id).faster().is_some())
                .collect();
            candidates.sort_by(|&a, &b| {
                let pa: Watts = m.power(a, modes.mode(a));
                let pb: Watts = m.power(b, modes.mode(b));
                pa.value().total_cmp(&pb.value())
            });
            for id in candidates {
                let mut trial = modes.clone();
                trial.set(id, trial.mode(id).faster().expect("filtered above"));
                if m.chip_power(&trial) <= ctx.budget {
                    modes = trial;
                    continue 'push;
                }
            }
            break;
        }

        modes
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::PowerMode;

    #[test]
    fn slows_the_hottest_core_first() {
        // Core 1 is the hottest.
        let f = Fixture::new(&[(12.0, 1.2), (24.0, 2.4), (16.0, 1.6)]);
        // All-Turbo = 52 W; force one demotion's worth of savings.
        let combo = PullHiPushLo::new().decide(&f.ctx(49.0));
        assert!(combo.mode(CoreId::new(1)) < PowerMode::Turbo, "{combo}");
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert_eq!(combo.mode(CoreId::new(2)), PowerMode::Turbo);
    }

    #[test]
    fn balances_power_under_tight_budget() {
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0), (20.0, 2.0)]);
        // 60 W at Turbo; 47 W forces several demotions, spread across cores
        // rather than stacked on one.
        let combo = PullHiPushLo::new().decide(&f.ctx(47.0));
        assert!(f.matrices.chip_power(&combo).value() <= 47.0);
        let eff2_count = combo
            .as_slice()
            .iter()
            .filter(|&&m| m == PowerMode::Eff2)
            .count();
        assert!(eff2_count <= 1, "demotions spread out: {combo}");
    }

    #[test]
    fn promotes_coolest_core_with_slack() {
        let f = Fixture::new(&[(8.0, 0.4), (22.0, 2.2)]);
        // Turbo total 30 W. Budget 26: demote hot core → (T .. no wait) —
        // policy slows core 1 (hottest): (8 + 18.9) = 26.9 > 26; again →
        // (8 + 13.5) = 21.5 ≤ 26. Then push: coolest promotable is core 0
        // at Turbo already? No: core 0 never demoted, it's Turbo; core 1 at
        // Eff2. Promote core 1 → Eff1 = 26.9 > 26 fails. Stable.
        let combo = PullHiPushLo::new().decide(&f.ctx(26.0));
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert_eq!(combo.mode(CoreId::new(1)), PowerMode::Eff2);
        assert!(f.matrices.chip_power(&combo).value() <= 26.0);
    }

    #[test]
    fn all_eff2_when_infeasible() {
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0)]);
        let combo = PullHiPushLo::new().decide(&f.ctx(3.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }

    #[test]
    fn fits_budget_across_sweep() {
        let f = Fixture::new(&[(18.0, 1.8), (14.0, 1.0), (11.0, 0.5)]);
        for budget in [27.0, 30.0, 33.0, 36.0, 39.0, 43.0] {
            let combo = PullHiPushLo::new().decide(&f.ctx(budget));
            assert!(
                f.matrices.chip_power(&combo).value() <= budget,
                "budget {budget}: {combo}"
            );
        }
    }
}
