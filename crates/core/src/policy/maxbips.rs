//! The MaxBIPS policy (Section 5.2.3) — the paper's best performer.

use gpm_types::ModeCombination;

use super::{best_under_budget, Policy, PolicyContext};

/// MaxBIPS: predict the power and BIPS of **every** mode combination and
/// pick the highest-throughput one that satisfies the budget.
///
/// Predictions come from the Power/BIPS matrices (cubic power, linear BIPS
/// scaling of the last interval's observations) with the
/// `explore/(explore+t)` transition de-rating factors applied. The search
/// is the exhaustive 3^N enumeration the paper describes; use
/// [`GreedyMaxBips`](crate::GreedyMaxBips) for large core counts.
///
/// MaxBIPS implicitly prioritises CPU-bound benchmarks (slowing them costs
/// the most BIPS), the inverse of
/// [`PullHiPushLo`](crate::PullHiPushLo)'s preference.
///
/// # Examples
///
/// ```
/// use gpm_core::{MaxBips, Policy};
///
/// let policy = MaxBips::new();
/// assert_eq!(policy.name(), "MaxBIPS");
/// assert!(!policy.needs_future());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxBips {
    _priv: (),
}

impl MaxBips {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for MaxBips {
    fn name(&self) -> &str {
        "MaxBIPS"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        best_under_budget(
            ctx.matrices,
            ctx.current_modes,
            ctx.budget,
            ctx.dvfs,
            ctx.explore,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::{CoreId, PowerMode, Watts};

    #[test]
    fn picks_all_turbo_under_loose_budget() {
        let f = Fixture::new(&[(20.0, 2.0), (15.0, 1.5), (12.0, 0.5)]);
        let combo = MaxBips::new().decide(&f.ctx(60.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Turbo));
    }

    #[test]
    fn sacrifices_memory_bound_core_first() {
        // Tightening the budget should demote the low-BIPS (memory-bound)
        // core before the high-BIPS ones: MaxBIPS's implicit
        // CPU-boundedness priority.
        let f = Fixture::new(&[(20.0, 2.2), (20.0, 2.0), (16.0, 0.3)]);
        let all_turbo: f64 = 56.0;
        let combo = MaxBips::new().decide(&f.ctx(all_turbo - 2.2));
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert_eq!(combo.mode(CoreId::new(1)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(2)) < PowerMode::Turbo);
    }

    #[test]
    fn transition_costs_shape_the_choice() {
        // With a slightly tighter budget the single-Eff1 options no longer
        // fit; the search weighs a deep Eff2 transition (500/519.5 BIPS
        // de-rate) against two shallow Eff1 transitions (500/506.5) and may
        // legitimately prefer the latter.
        let f = Fixture::new(&[(20.0, 2.2), (20.0, 2.0), (16.0, 0.3)]);
        let combo = MaxBips::new().decide(&f.ctx(53.0));
        assert!(f.matrices.chip_power(&combo).value() <= 53.0);
        // Whatever it picked must beat the naive (T, T, Eff2) point after
        // de-rating.
        let naive = gpm_types::ModeCombination::new(vec![
            PowerMode::Turbo,
            PowerMode::Turbo,
            PowerMode::Eff2,
        ]);
        let explore = gpm_types::Micros::new(500.0);
        let picked = f
            .matrices
            .chip_bips_with_transition(&f.current, &combo, &f.dvfs, explore);
        let naive_bips = f
            .matrices
            .chip_bips_with_transition(&f.current, &naive, &f.dvfs, explore);
        assert!(picked.value() >= naive_bips.value() - 1e-12);
    }

    #[test]
    fn respects_budget_whenever_feasible() {
        let f = Fixture::new(&[(20.0, 2.0), (18.0, 1.8)]);
        for budget in [38.0, 36.0, 33.0, 30.0, 26.0, 24.0] {
            let combo = MaxBips::new().decide(&f.ctx(budget));
            let predicted = f.matrices.chip_power(&combo);
            let feasible = f
                .matrices
                .chip_power(&gpm_types::ModeCombination::uniform(2, PowerMode::Eff2));
            if feasible.value() <= budget {
                assert!(
                    predicted <= Watts::new(budget),
                    "budget {budget}: predicted {predicted}"
                );
            }
        }
    }

    #[test]
    fn throughput_is_monotone_in_budget() {
        let f = Fixture::new(&[(20.0, 2.0), (16.0, 1.2), (12.0, 0.4)]);
        let mut last = 0.0;
        for budget in [30.0, 34.0, 38.0, 42.0, 46.0, 50.0] {
            let combo = MaxBips::new().decide(&f.ctx(budget));
            let bips = f.matrices.chip_bips(&combo).value();
            assert!(bips + 1e-12 >= last, "budget {budget}: {bips} < {last}");
            last = bips;
        }
    }
}
