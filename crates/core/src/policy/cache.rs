//! Memoized MaxBIPS decisions: a bounded LRU over quantized problem keys.
//!
//! The global manager re-solves the mode-assignment argmax every explore
//! interval, but phase behaviour makes most intervals repeats: the same
//! (power, BIPS) prediction matrix recurs whenever a workload revisits a
//! phase. [`DecisionCache`] canonicalizes each decision problem into a
//! [`QuantizedKey`] (every solver input, quantized per [`CacheConfig`]) and
//! memoizes the solved [`ModeCombination`] in a bounded LRU.
//!
//! # Exactness
//!
//! With all quanta at the default `0.0`, keys are the raw bit patterns of
//! the inputs, so a hit can only occur for inputs bit-identical to a
//! previous solve — and the branch-and-bound solver is a pure function of
//! those inputs, so the cached answer equals what a fresh solve would
//! return, bit for bit. Misses always run the real solver. Positive quanta
//! trade this exactness for hit rate (see `DESIGN.md` §13 for the error
//! bound); [`CacheConfig::verify_hits`] re-solves every hit and asserts
//! equality, as a debug mode for auditing a quantization choice.
//!
//! # Determinism
//!
//! Lookup order is the only input to the LRU state: the recency list is an
//! intrusive doubly-linked list over a slot arena, and eviction picks the
//! list tail — never anything derived from `HashMap` iteration order. Two
//! runs issuing the same key sequence hold identical cache contents.

use std::collections::HashMap;
use std::time::Instant;

use gpm_power::DvfsParams;
use gpm_types::{
    GpmError, Micros, ModeCombination, QuantizedKey, QuantizedKeyBuilder, Result, Watts,
};

use crate::PowerBipsMatrices;

use super::{solver, Policy, PolicyContext};

/// Sentinel slot index for the intrusive LRU list ends.
const NIL: usize = usize::MAX;

/// Tuning knobs for a [`DecisionCache`].
///
/// The defaults (capacity 4096, all quanta `0.0`, verification off) give
/// exact keying: hits are guaranteed bit-identical to fresh solves.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of memoized decisions; the least-recently-used entry
    /// is evicted beyond this. Must be at least 1.
    pub capacity: usize,
    /// Quantum (watts) for the power matrix cells and `0.0` = exact bits.
    pub watt_quantum: f64,
    /// Quantum (BIPS) for the BIPS matrix cells; `0.0` = exact bits.
    pub bips_quantum: f64,
    /// Quantum (watts) for the budget; `0.0` = exact bits.
    pub budget_quantum: f64,
    /// Debug mode: re-solve every hit and assert the cached combination
    /// matches. Costs a full solve per hit — for tests and audits only.
    pub verify_hits: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            watt_quantum: 0.0,
            bips_quantum: 0.0,
            budget_quantum: 0.0,
            verify_hits: false,
        }
    }
}

/// Counters describing how much solver work a cache (or fleet engine)
/// avoided. Carried on `RunResult` and printed by the CLI summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheCounters {
    /// Mode decisions requested in total.
    pub decisions_total: u64,
    /// Decisions answered from the memoized store.
    pub cache_hits: u64,
    /// Decisions answered by within-tick deduplication (fleet engine only).
    pub dedup_hits: u64,
    /// Estimated solver microseconds avoided (avoided solves × the mean
    /// measured solve time). Wall-clock derived, so informational — it
    /// never feeds back into any decision.
    pub solver_us_saved: f64,
}

impl CacheCounters {
    /// Fraction of decisions answered without running the solver.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.decisions_total == 0 {
            0.0
        } else {
            (self.cache_hits + self.dedup_hits) as f64 / self.decisions_total as f64
        }
    }
}

/// A serializable image of a [`DecisionCache`]: every memoized entry in
/// recency order plus the accumulated counters and solve-time statistics.
/// Produced by [`DecisionCache::snapshot`]; replayed by
/// [`DecisionCache::restore`]. The entry order is oldest (least recently
/// used) first, so re-inserting in order reproduces the LRU state — and
/// with it every future eviction — exactly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheSnapshot {
    /// Memoized `(key, decision)` pairs, least-recently-used first.
    pub entries: Vec<(QuantizedKey, ModeCombination)>,
    /// Accumulated hit/savings counters at snapshot time.
    pub counters: CacheCounters,
    /// Total measured microseconds across fresh solves.
    pub solve_us_total: f64,
    /// Number of fresh solves measured.
    pub solve_count: u64,
}

/// One memoized decision in the slot arena.
#[derive(Debug)]
struct Slot {
    key: QuantizedKey,
    combo: ModeCombination,
    prev: usize,
    next: usize,
}

/// A bounded LRU memo of solved mode-assignment problems, keyed on the
/// quantized canonical form of every solver input.
///
/// # Examples
///
/// ```
/// use gpm_core::{DecisionCache, CacheConfig, PowerBipsMatrices};
/// use gpm_power::DvfsParams;
/// use gpm_types::{Micros, ModeCombination, PowerMode, Watts};
///
/// let mut cache = DecisionCache::new(CacheConfig::default())?;
/// let matrices = PowerBipsMatrices::from_rows(
///     vec![[20.0, 12.0, 7.0], [18.0, 11.0, 6.5]],
///     vec![[2.0, 1.7, 1.4], [1.5, 1.3, 1.1]],
/// );
/// let current = ModeCombination::uniform(2, PowerMode::Turbo);
/// let dvfs = DvfsParams::paper();
/// let first = cache.solve(&matrices, &current, Watts::new(30.0), &dvfs, Micros::new(500.0));
/// let again = cache.solve(&matrices, &current, Watts::new(30.0), &dvfs, Micros::new(500.0));
/// assert_eq!(first, again);
/// assert_eq!(cache.counters().cache_hits, 1);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug)]
pub struct DecisionCache {
    config: CacheConfig,
    map: HashMap<QuantizedKey, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    counters: CacheCounters,
    solve_us_total: f64,
    solve_count: u64,
}

impl DecisionCache {
    /// Creates an empty cache. Rejects a zero capacity.
    pub fn new(config: CacheConfig) -> Result<Self> {
        if config.capacity == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "cache.capacity",
                reason: "decision cache capacity must be at least 1".into(),
            });
        }
        Ok(Self {
            map: HashMap::with_capacity(config.capacity.min(1 << 16)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            counters: CacheCounters::default(),
            solve_us_total: 0.0,
            solve_count: 0,
            config,
        })
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of memoized decisions currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no decisions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The accumulated hit/savings counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Mean measured microseconds per fresh solve (0 before the first one).
    #[must_use]
    pub fn mean_solve_micros(&self) -> f64 {
        if self.solve_count == 0 {
            0.0
        } else {
            self.solve_us_total / self.solve_count as f64
        }
    }

    /// Canonicalizes one decision problem into its cache key: shape, the
    /// full quantized power and BIPS matrices, the current mode vector,
    /// the quantized budget, the explore length and the DVFS fingerprint.
    #[must_use]
    pub fn key(
        &self,
        matrices: &PowerBipsMatrices,
        current: &ModeCombination,
        budget: Watts,
        dvfs: &DvfsParams,
        explore: Micros,
    ) -> QuantizedKey {
        let cores = matrices.cores();
        let mut b = QuantizedKeyBuilder::with_capacity(7 * cores + 6);
        b.push_word(cores as u64);
        for core in 0..cores {
            let id = gpm_types::CoreId::new(core);
            for mode in gpm_types::PowerMode::ALL {
                b.push_value(matrices.power(id, mode).value(), self.config.watt_quantum);
            }
            for mode in gpm_types::PowerMode::ALL {
                b.push_value(matrices.bips(id, mode).value(), self.config.bips_quantum);
            }
        }
        for &mode in current.as_slice() {
            b.push_word(mode.index() as u64);
        }
        b.push_value(budget.value(), self.config.budget_quantum);
        b.push_word(explore.value().to_bits());
        b.push_word(dvfs.nominal_vdd.value().to_bits());
        b.push_word(dvfs.nominal_frequency.value().to_bits());
        b.push_word(dvfs.slew_rate_v_per_us.to_bits());
        b.finish()
    }

    /// Raw lookup: returns the memoized combination for `key` (promoting
    /// it to most-recently-used) without touching the counters. The fleet
    /// engine uses this and accounts for hits itself.
    pub fn get(&mut self, key: &QuantizedKey) -> Option<ModeCombination> {
        let slot = *self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(self.slots[slot].combo.clone())
    }

    /// Raw insert: memoizes `combo` under `key`, evicting the
    /// least-recently-used entry at capacity. Inserting an existing key
    /// refreshes its value and recency.
    pub fn insert(&mut self, key: QuantizedKey, combo: ModeCombination) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].combo = combo;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        let slot = if self.map.len() == self.config.capacity {
            // Reuse the evicted tail's slot.
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slots[victim].key);
            self.slots[victim].key = key.clone();
            self.slots[victim].combo = combo;
            victim
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                combo,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// The memoizing equivalent of [`solver::solve`]: answers from the
    /// cache when the canonicalized problem was seen before, otherwise
    /// runs the exact branch-and-bound and memoizes the result.
    pub fn solve(
        &mut self,
        matrices: &PowerBipsMatrices,
        current: &ModeCombination,
        budget: Watts,
        dvfs: &DvfsParams,
        explore: Micros,
    ) -> ModeCombination {
        self.counters.decisions_total += 1;
        let key = self.key(matrices, current, budget, dvfs, explore);
        if let Some(combo) = self.get(&key) {
            self.counters.cache_hits += 1;
            self.counters.solver_us_saved += self.mean_solve_micros();
            if self.config.verify_hits {
                let fresh = solver::solve(matrices, current, budget, dvfs, explore);
                assert_eq!(
                    combo, fresh,
                    "decision cache hit diverged from a fresh solve; \
                     quantization is too coarse for this workload"
                );
            }
            return combo;
        }
        let start = Instant::now();
        let combo = solver::solve(matrices, current, budget, dvfs, explore);
        self.solve_us_total += start.elapsed().as_secs_f64() * 1e6;
        self.solve_count += 1;
        self.insert(key, combo.clone());
        combo
    }

    /// Exports the cache's full state: entries in recency order (oldest
    /// first) plus counters and solve-time statistics. The walk follows
    /// the intrusive list from the LRU tail, never `HashMap` iteration
    /// order, so the snapshot is deterministic.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries = Vec::with_capacity(self.map.len());
        let mut slot = self.tail;
        while slot != NIL {
            entries.push((self.slots[slot].key.clone(), self.slots[slot].combo.clone()));
            slot = self.slots[slot].prev;
        }
        CacheSnapshot {
            entries,
            counters: self.counters,
            solve_us_total: self.solve_us_total,
            solve_count: self.solve_count,
        }
    }

    /// Rebuilds a cache from a [`snapshot`](Self::snapshot): entries are
    /// re-inserted oldest-first, reproducing the exact LRU recency order,
    /// and the counters and solve statistics are restored verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if `config` is invalid.
    pub fn restore(config: CacheConfig, snapshot: &CacheSnapshot) -> Result<Self> {
        let mut cache = Self::new(config)?;
        for (key, combo) in &snapshot.entries {
            cache.insert(key.clone(), combo.clone());
        }
        cache.counters = snapshot.counters;
        cache.solve_us_total = snapshot.solve_us_total;
        cache.solve_count = snapshot.solve_count;
        Ok(cache)
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            if self.head == slot {
                self.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            if self.tail == slot {
                self.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as most-recently-used.
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// [`MaxBips`](crate::MaxBips) behind a [`DecisionCache`]: identical
/// decisions (exact keying by default), amortized cost on phase repeats.
///
/// # Examples
///
/// ```
/// use gpm_core::{CachedMaxBips, Policy};
///
/// let policy = CachedMaxBips::new();
/// assert_eq!(policy.name(), "CachedMaxBIPS");
/// assert_eq!(policy.cache_counters().unwrap().decisions_total, 0);
/// ```
#[derive(Debug)]
pub struct CachedMaxBips {
    cache: DecisionCache,
}

impl CachedMaxBips {
    /// The policy with the default (exact-keying) cache configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            cache: DecisionCache::new(CacheConfig::default())
                .expect("default cache config is valid"),
        }
    }

    /// The policy over a custom cache configuration.
    pub fn with_config(config: CacheConfig) -> Result<Self> {
        Ok(Self {
            cache: DecisionCache::new(config)?,
        })
    }

    /// The underlying cache (counters, length).
    #[must_use]
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }
}

impl Default for CachedMaxBips {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for CachedMaxBips {
    fn name(&self) -> &str {
        "CachedMaxBIPS"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        self.cache.solve(
            ctx.matrices,
            ctx.current_modes,
            ctx.budget,
            ctx.dvfs,
            ctx.explore,
        )
    }

    fn cache_counters(&self) -> Option<CacheCounters> {
        Some(self.cache.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::PowerMode;

    fn key_of(cache: &DecisionCache, f: &Fixture, budget: f64) -> QuantizedKey {
        cache.key(
            &f.matrices,
            &f.current,
            Watts::new(budget),
            &f.dvfs,
            Micros::new(500.0),
        )
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let err = DecisionCache::new(CacheConfig {
            capacity: 0,
            ..CacheConfig::default()
        })
        .expect_err("capacity 0 must be rejected");
        assert!(matches!(err, GpmError::InvalidConfig { .. }));
    }

    #[test]
    fn hit_returns_the_memoized_solve_bit_identically() {
        let f = Fixture::new(&[(20.0, 2.0), (15.0, 1.5), (12.0, 0.5)]);
        let mut cache = DecisionCache::new(CacheConfig {
            verify_hits: true,
            ..CacheConfig::default()
        })
        .expect("valid config");
        let fresh = solver::solve(
            &f.matrices,
            &f.current,
            Watts::new(40.0),
            &f.dvfs,
            Micros::new(500.0),
        );
        for round in 0..3 {
            let got = cache.solve(
                &f.matrices,
                &f.current,
                Watts::new(40.0),
                &f.dvfs,
                Micros::new(500.0),
            );
            assert_eq!(got, fresh, "round {round}");
        }
        let c = cache.counters();
        assert_eq!(c.decisions_total, 3);
        assert_eq!(c.cache_hits, 2);
        assert_eq!(c.dedup_hits, 0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_budgets_are_distinct_keys() {
        let f = Fixture::new(&[(20.0, 2.0), (15.0, 1.5)]);
        let mut cache = DecisionCache::new(CacheConfig::default()).expect("valid config");
        for budget in [30.0, 33.0, 36.0, 30.0, 33.0] {
            cache.solve(
                &f.matrices,
                &f.current,
                Watts::new(budget),
                &f.dvfs,
                Micros::new(500.0),
            );
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.counters().cache_hits, 2);
    }

    #[test]
    fn lru_eviction_order_is_deterministic() {
        let f = Fixture::new(&[(20.0, 2.0)]);
        let mut cache = DecisionCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::default()
        })
        .expect("valid config");
        let combo = ModeCombination::uniform(1, PowerMode::Turbo);
        let (a, b, c) = (
            key_of(&cache, &f, 10.0),
            key_of(&cache, &f, 20.0),
            key_of(&cache, &f, 30.0),
        );
        cache.insert(a.clone(), combo.clone());
        cache.insert(b.clone(), combo.clone());
        // Touch `a` so `b` becomes least-recently-used; inserting `c` must
        // evict `b`, on every run, regardless of hasher seed.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), combo.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none(), "LRU entry must be the evictee");
        assert!(cache.get(&c).is_some());
        // And the evicted key is insertable again (slot reuse is clean).
        cache.insert(b.clone(), combo);
        assert!(cache.get(&b).is_some());
        assert!(cache.get(&a).is_none(), "a was LRU after c's insert");
    }

    #[test]
    fn reinserting_a_key_refreshes_recency_without_growth() {
        let f = Fixture::new(&[(20.0, 2.0)]);
        let mut cache = DecisionCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::default()
        })
        .expect("valid config");
        let turbo = ModeCombination::uniform(1, PowerMode::Turbo);
        let eff2 = ModeCombination::uniform(1, PowerMode::Eff2);
        let (a, b, c) = (
            key_of(&cache, &f, 10.0),
            key_of(&cache, &f, 20.0),
            key_of(&cache, &f, 30.0),
        );
        cache.insert(a.clone(), turbo.clone());
        cache.insert(b.clone(), turbo.clone());
        cache.insert(a.clone(), eff2.clone());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&a), Some(eff2));
        cache.insert(c, turbo);
        assert!(cache.get(&b).is_none(), "b was LRU after a's refresh");
    }

    #[test]
    fn coarse_quanta_merge_near_identical_matrices() {
        // Cells sit mid-bucket (multiples of the quantum), so the ±0.004
        // perturbations below stay inside the same buckets per cell.
        let base = |eps: f64| {
            PowerBipsMatrices::from_rows(
                vec![[20.0 + eps, 12.0 + eps, 7.0 + eps], [18.0, 11.0, 6.5]],
                vec![[2.0 + eps, 1.7, 1.4], [1.5, 1.3 + eps, 1.1]],
            )
        };
        let (m1, m2) = (base(0.0), base(0.004));
        let current = ModeCombination::uniform(2, PowerMode::Turbo);
        let dvfs = gpm_power::DvfsParams::paper();
        let mut cache = DecisionCache::new(CacheConfig {
            watt_quantum: 0.1,
            bips_quantum: 0.05,
            budget_quantum: 0.5,
            ..CacheConfig::default()
        })
        .expect("valid config");
        let k1 = cache.key(&m1, &current, Watts::new(30.0), &dvfs, Micros::new(500.0));
        let k2 = cache.key(&m2, &current, Watts::new(30.1), &dvfs, Micros::new(500.0));
        assert_eq!(k1, k2);
        cache.solve(&m1, &current, Watts::new(30.0), &dvfs, Micros::new(500.0));
        cache.solve(&m2, &current, Watts::new(30.1), &dvfs, Micros::new(500.0));
        assert_eq!(cache.counters().cache_hits, 1);
        // Exact keying keeps them distinct.
        let exact = DecisionCache::new(CacheConfig::default()).expect("valid config");
        assert_ne!(
            exact.key(&m1, &current, Watts::new(30.0), &dvfs, Micros::new(500.0)),
            exact.key(&m2, &current, Watts::new(30.1), &dvfs, Micros::new(500.0))
        );
    }

    #[test]
    fn cached_policy_reports_counters() {
        let f = Fixture::new(&[(20.0, 2.0), (15.0, 1.5)]);
        let mut policy = CachedMaxBips::new();
        let first = policy.decide(&f.ctx(30.0));
        let second = policy.decide(&f.ctx(30.0));
        assert_eq!(first, second);
        let counters = policy.cache_counters().expect("cached policy has counters");
        assert_eq!(counters.decisions_total, 2);
        assert_eq!(counters.cache_hits, 1);
    }
}
