//! Chip-wide DVFS (Section 5.3) — the monolithic baseline.

use gpm_types::{ModeCombination, PowerMode};

use super::{Policy, PolicyContext};

/// Chip-wide DVFS: every core transitions together into the fastest
/// uniform mode whose predicted chip power satisfies the budget.
///
/// Attractive for its implementation simplicity (no cross-core
/// synchronisation), but the paper's Figure 3 shows the cost: one
/// memory-bound benchmark swapped for a CPU-bound one can force the whole
/// chip from Eff1 to Eff2, "paying a huge penalty for small budget
/// overshoots" — and the inefficiency grows linearly with core count.
///
/// # Examples
///
/// ```
/// use gpm_core::{ChipWide, Policy};
///
/// assert_eq!(ChipWide::new().name(), "ChipWideDVFS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ChipWide {
    _priv: (),
}

impl ChipWide {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for ChipWide {
    fn name(&self) -> &str {
        "ChipWideDVFS"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let n = ctx.matrices.cores();
        for mode in PowerMode::ALL {
            let combo = ModeCombination::uniform(n, mode);
            if ctx.matrices.chip_power(&combo) <= ctx.budget {
                return combo;
            }
        }
        ModeCombination::uniform(n, PowerMode::Eff2)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;

    #[test]
    fn steps_through_uniform_modes() {
        let f = Fixture::new(&[(10.0, 1.0); 4]); // 40 W at Turbo
        let cases = [
            (45.0, PowerMode::Turbo),
            (40.0, PowerMode::Turbo),
            (36.0, PowerMode::Eff1), // Eff1 = 34.3 W
            (30.0, PowerMode::Eff2), // Eff2 = 24.6 W
            (10.0, PowerMode::Eff2), // infeasible → floor
        ];
        for (budget, expected) in cases {
            let combo = ChipWide::new().decide(&f.ctx(budget));
            assert!(combo.is_uniform());
            assert_eq!(combo.as_slice()[0], expected, "budget {budget}");
        }
    }

    #[test]
    fn huge_penalty_for_small_overshoot() {
        // The Figure 3 effect: all-Eff1 power just above the budget forces
        // the whole chip to Eff2 — a big slack is left unused.
        let f = Fixture::new(&[(10.0, 1.0); 4]);
        let eff1_power = 40.0 * 0.857375; // 34.295
        let combo = ChipWide::new().decide(&f.ctx(eff1_power - 0.1));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
        let used = f.matrices.chip_power(&combo).value();
        assert!(
            used < (eff1_power - 0.1) * 0.75,
            "large power slack left on the table: {used}"
        );
    }
}
