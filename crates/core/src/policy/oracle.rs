//! The oracle upper bound (Section 5.6).

use gpm_types::ModeCombination;

use super::{best_under_budget, Policy, PolicyContext};

/// Oracle mode selection: MaxBIPS search over matrices built from **future
/// knowledge** — each core's actual power/BIPS over the next explore
/// interval in every mode, read from the traces.
///
/// This is the conservative oracle the paper compares against: it still
/// pays transition costs and still decides only at explore boundaries, but
/// its matrices have zero prediction error. MaxBIPS lands within 1% of it.
///
/// # Examples
///
/// ```
/// use gpm_core::{Oracle, Policy};
///
/// let oracle = Oracle::new();
/// assert!(oracle.needs_future());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle {
    _priv: (),
}

impl Oracle {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Oracle {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn needs_future(&self) -> bool {
        true
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let matrices = ctx
            .future
            .expect("the manager supplies future matrices when needs_future() is true");
        best_under_budget(
            matrices,
            ctx.current_modes,
            ctx.budget,
            ctx.dvfs,
            ctx.explore,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::{Micros, PowerMode, Watts};

    #[test]
    fn uses_future_matrices() {
        let f = Fixture::new(&[(20.0, 2.0), (10.0, 0.4)]);
        let ctx = PolicyContext {
            current_modes: &f.current,
            matrices: &f.matrices,
            future: Some(&f.matrices),
            budget: Watts::new(27.0),
            dvfs: &f.dvfs,
            explore: Micros::new(500.0),
        };
        let combo = Oracle::new().decide(&ctx);
        // Same decision as MaxBIPS when prediction is perfect.
        let max_bips = super::super::MaxBips::new().decide(&f.ctx(27.0));
        assert_eq!(combo, max_bips);
        assert!(combo.as_slice().contains(&PowerMode::Turbo));
    }

    #[test]
    #[should_panic(expected = "future matrices")]
    fn panics_without_future() {
        let f = Fixture::new(&[(20.0, 2.0)]);
        let _ = Oracle::new().decide(&f.ctx(25.0));
    }
}
