//! The policy interface and the paper's global management policies.

use gpm_power::DvfsParams;
use gpm_types::{Micros, ModeCombination, Watts};

use crate::PowerBipsMatrices;

mod cache;
mod chipwide;
mod constant;
mod greedy;
mod hier;
mod maxbips;
mod minpower;
mod oracle;
mod priority;
mod pullhipushlo;
pub mod solver;
mod thermal_guard;

pub use cache::{CacheConfig, CacheCounters, CacheSnapshot, CachedMaxBips, DecisionCache};
pub use chipwide::ChipWide;
pub use constant::Constant;
pub use greedy::GreedyMaxBips;
pub use hier::{cluster_budgets, HierMaxBips};
pub use maxbips::MaxBips;
pub use minpower::MinPower;
pub use oracle::Oracle;
pub use priority::Priority;
pub use pullhipushlo::PullHiPushLo;
pub use thermal_guard::ThermalGuard;

/// Everything a policy sees when making a mode decision at an explore
/// boundary.
///
/// `matrices` is the *predictive* Power/BIPS matrix built from the last
/// interval's sensor observations (Section 5.5). `future` is populated only
/// for policies that declare [`Policy::needs_future`] — the oracle's
/// forward-looking matrices.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Modes the cores ran in during the last interval.
    pub current_modes: &'a ModeCombination,
    /// Predictive per-core Power/BIPS matrices.
    pub matrices: &'a PowerBipsMatrices,
    /// Oracle matrices (actual next-interval behaviour), if requested.
    pub future: Option<&'a PowerBipsMatrices>,
    /// The chip power budget in force for the next interval.
    pub budget: Watts,
    /// DVFS operating points (for transition-cost reasoning).
    pub dvfs: &'a DvfsParams,
    /// Length of the next explore interval.
    pub explore: Micros,
}

/// A global CMP power-management policy: decides the per-core mode
/// assignment for the next explore interval.
///
/// Implementations must be deterministic functions of the context (plus any
/// internal state they carry); the [`GlobalManager`](crate::GlobalManager)
/// invokes them once per explore boundary.
pub trait Policy {
    /// Short name used in reports ("MaxBIPS", "Priority", …).
    fn name(&self) -> &str;

    /// Whether the manager should supply oracle (future-knowledge)
    /// matrices. Only the upper-bound [`Oracle`] policy returns `true`.
    fn needs_future(&self) -> bool {
        false
    }

    /// Picks the mode combination for the next interval.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination;

    /// Decision-cache counters, for policies that memoize
    /// ([`CachedMaxBips`]); `None` for plain policies. The manager copies
    /// these onto `RunResult` at the end of a run.
    fn cache_counters(&self) -> Option<CacheCounters> {
        None
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn needs_future(&self) -> bool {
        (**self).needs_future()
    }
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        (**self).decide(ctx)
    }
    fn cache_counters(&self) -> Option<CacheCounters> {
        (**self).cache_counters()
    }
}

/// The MaxBIPS argmax: the highest-throughput combination (with transition
/// de-rating) whose predicted chip power fits the budget; falls back to
/// all-Eff2 (minimum power) when nothing fits.
///
/// Semantically this is the paper's exhaustive 3^N search, but it is
/// answered by the exact branch-and-bound in [`solver`] — bit-identical to
/// the scan (same combination, same tie-breaking) at a small fraction of
/// the candidates, which is what makes 16- and 32-way decisions tractable.
/// The literal scan survives as [`solver::exhaustive`] /
/// [`solver::exhaustive_chunked`] for equivalence tests and baselines.
pub(crate) fn best_under_budget(
    matrices: &PowerBipsMatrices,
    current: &ModeCombination,
    budget: Watts,
    dvfs: &DvfsParams,
    explore: Micros,
) -> ModeCombination {
    solver::solve(matrices, current, budget, dvfs, explore)
}

#[cfg(test)]
pub(crate) mod testutil {
    use gpm_cmp::CoreObservation;
    use gpm_types::{Bips, CoreId, PowerMode, Watts};

    use super::*;

    /// Context pieces with 'static lifetimes for policy unit tests.
    pub struct Fixture {
        pub matrices: PowerBipsMatrices,
        pub current: ModeCombination,
        pub dvfs: DvfsParams,
    }

    impl Fixture {
        /// Builds a fixture from per-core Turbo (power, bips) pairs, all
        /// cores currently at Turbo, with exact cubic/linear scaling.
        pub fn new(turbo: &[(f64, f64)]) -> Self {
            let observed: Vec<CoreObservation> = turbo
                .iter()
                .enumerate()
                .map(|(i, &(p, b))| CoreObservation {
                    core: CoreId::new(i),
                    mode: PowerMode::Turbo,
                    power: Watts::new(p),
                    bips: Bips::new(b),
                    instructions: 0,
                })
                .collect();
            Self {
                matrices: PowerBipsMatrices::predict(&observed),
                current: ModeCombination::uniform(turbo.len(), PowerMode::Turbo),
                dvfs: DvfsParams::paper(),
            }
        }

        pub fn ctx(&self, budget: f64) -> PolicyContext<'_> {
            PolicyContext {
                current_modes: &self.current,
                matrices: &self.matrices,
                future: None,
                budget: Watts::new(budget),
                dvfs: &self.dvfs,
                explore: Micros::new(500.0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Fixture;
    use super::*;
    use gpm_types::{CoreId, PowerMode};

    #[test]
    fn best_under_budget_prefers_throughput() {
        // Core 0: hot and fast; core 1: cool and slow.
        let f = Fixture::new(&[(20.0, 2.0), (10.0, 0.4)]);
        // Generous budget: all Turbo.
        let combo = best_under_budget(
            &f.matrices,
            &f.current,
            Watts::new(30.0),
            &f.dvfs,
            Micros::new(500.0),
        );
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Turbo));

        // Tight budget: slowing the *slow* core saves power at almost no
        // BIPS cost, so core 1 is demoted first.
        let combo = best_under_budget(
            &f.matrices,
            &f.current,
            Watts::new(27.0),
            &f.dvfs,
            Micros::new(500.0),
        );
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(1)) < PowerMode::Turbo);
    }

    #[test]
    fn best_under_budget_falls_back_to_all_eff2() {
        let f = Fixture::new(&[(20.0, 2.0)]);
        let combo = best_under_budget(
            &f.matrices,
            &f.current,
            Watts::new(1.0),
            &f.dvfs,
            Micros::new(500.0),
        );
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }

    #[test]
    fn box_forwards_policy() {
        let mut boxed: Box<dyn Policy> = Box::new(MaxBips::new());
        assert_eq!(boxed.name(), "MaxBIPS");
        let f = Fixture::new(&[(20.0, 2.0)]);
        let combo = boxed.decide(&f.ctx(100.0));
        assert_eq!(combo.len(), 1);
    }
}
