//! The dual problem: minimise power for a given performance target.
//!
//! The paper's introduction singles this out as the open companion problem
//! ("the other, related problem of minimizing the power for a given
//! multi-core performance target has similarly not been analyzed in
//! detail") — this policy is our extension covering it with the same
//! matrix-prediction machinery.

use gpm_types::{Bips, ModeCombination, PowerMode};

use super::{Policy, PolicyContext};

/// MinPower: pick the **lowest-power** mode combination whose predicted
/// chip throughput (with transition de-rating) still meets a performance
/// target, expressed as a fraction of the chip's predicted all-Turbo
/// throughput.
///
/// The budget in the [`PolicyContext`] is treated as a hard safety net: a
/// combination must also fit the budget, so MinPower composes with the
/// chip's power envelope (set the budget to 100% to study the pure dual
/// problem).
///
/// # Examples
///
/// ```
/// use gpm_core::{MinPower, Policy};
///
/// let p = MinPower::new(0.95); // allow at most 5% throughput loss
/// assert_eq!(p.name(), "MinPower");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MinPower {
    target_fraction: f64,
}

impl MinPower {
    /// Creates the policy with a throughput target of
    /// `target_fraction × predicted all-Turbo BIPS`.
    ///
    /// # Panics
    ///
    /// Panics unless `target_fraction` is within `(0, 1]`.
    #[must_use]
    pub fn new(target_fraction: f64) -> Self {
        assert!(
            target_fraction > 0.0 && target_fraction <= 1.0,
            "target fraction {target_fraction} outside (0, 1]"
        );
        Self { target_fraction }
    }

    /// The configured throughput target fraction.
    #[must_use]
    pub fn target_fraction(&self) -> f64 {
        self.target_fraction
    }
}

impl Policy for MinPower {
    fn name(&self) -> &str {
        "MinPower"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let m = ctx.matrices;
        let cores = m.cores();
        let all_turbo = ModeCombination::uniform(cores, PowerMode::Turbo);
        let target: Bips = m.chip_bips(&all_turbo) * self.target_fraction;

        let mut best: Option<(f64, ModeCombination)> = None;
        let mut fastest_feasible: Option<(f64, ModeCombination)> = None;
        for combo in ModeCombination::enumerate(cores) {
            let power = m.chip_power(&combo);
            if power > ctx.budget {
                continue;
            }
            let bips =
                m.chip_bips_with_transition(ctx.current_modes, &combo, ctx.dvfs, ctx.explore);
            if fastest_feasible
                .as_ref()
                .is_none_or(|(b, _)| bips.value() > *b)
            {
                fastest_feasible = Some((bips.value(), combo.clone()));
            }
            if bips < target {
                continue;
            }
            if best.as_ref().is_none_or(|(p, _)| power.value() < *p) {
                best = Some((power.value(), combo));
            }
        }
        // If no combination meets the target (e.g. right after a deep mode
        // switch whose transition de-rating eats the slack), deliver as
        // much performance as the budget allows.
        best.or(fastest_feasible).map_or_else(
            || ModeCombination::uniform(cores, PowerMode::Eff2),
            |(_, combo)| combo,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::CoreId;

    #[test]
    fn loose_target_drops_everything_to_eff2() {
        let f = Fixture::new(&[(20.0, 2.0), (12.0, 0.5)]);
        // Eff2 costs 15% of each core's BIPS → chip keeps 85% ≥ 80% target.
        let combo = MinPower::new(0.80).decide(&f.ctx(100.0));
        assert!(
            combo.as_slice().iter().all(|&m| m == PowerMode::Eff2),
            "{combo}"
        );
    }

    #[test]
    fn tight_target_keeps_turbo() {
        let f = Fixture::new(&[(20.0, 2.0), (12.0, 0.5)]);
        // 99.9% target cannot be met by any demotion (and the all-Turbo
        // self-transition costs nothing).
        let combo = MinPower::new(0.999).decide(&f.ctx(100.0));
        assert!(
            combo.as_slice().iter().all(|&m| m == PowerMode::Turbo),
            "{combo}"
        );
    }

    #[test]
    fn sacrifices_low_bips_core_first() {
        // Meeting a 95% chip target is cheapest by slowing the slow core.
        let f = Fixture::new(&[(20.0, 2.2), (12.0, 0.3)]);
        let combo = MinPower::new(0.95).decide(&f.ctx(100.0));
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(1)) < PowerMode::Turbo, "{combo}");
    }

    #[test]
    fn target_monotonicity() {
        let f = Fixture::new(&[(20.0, 2.0), (16.0, 1.4), (12.0, 0.6)]);
        let mut last_power = f64::INFINITY;
        for target in [0.99, 0.95, 0.90, 0.85] {
            let combo = MinPower::new(target).decide(&f.ctx(100.0));
            let power = f.matrices.chip_power(&combo).value();
            assert!(
                power <= last_power + 1e-9,
                "looser target {target} must not cost more power"
            );
            last_power = power;
        }
    }

    #[test]
    fn budget_still_binds() {
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0)]);
        // Target wants all-Turbo (40 W) but the budget only allows 36 W:
        // the policy must fall back to the fastest feasible combination.
        let combo = MinPower::new(0.999).decide(&f.ctx(36.0));
        assert!(f.matrices.chip_power(&combo).value() <= 36.0);
        assert!(combo.as_slice().iter().any(|&m| m < PowerMode::Turbo));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_bad_target() {
        let _ = MinPower::new(1.5);
    }
}
