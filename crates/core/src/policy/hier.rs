//! The two-level (hierarchical) MaxBIPS controller for wide CMPs.
//!
//! The exact branch-and-bound solver answers the flat MaxBIPS argmax
//! bit-identically up to its 80-core rank-bookkeeping limit, but a single
//! flat solve over hundreds of cores is the wrong shape anyway: "Scaling
//! Turbo Boost to a 1000 cores" argues a flat global manager's decision
//! latency breaks the control loop long before that, and the cluster-
//! sharded simulator gives the chip a natural partition to manage along.
//! [`HierMaxBips`] therefore splits the decision:
//!
//! 1. **Global budget arbiter** — [`cluster_budgets`] water-fills the chip
//!    budget across clusters on the per-core marginal-BIPS-per-watt curves
//!    derived from the Power/BIPS matrices. Every cluster is first floored
//!    at its minimum feasible power (all cores in their cheapest mode);
//!    the remaining watts then pour over the globally ratio-sorted concave
//!    upgrade segments, so the watts go wherever they buy the most
//!    predicted throughput.
//! 2. **Local managers** — each cluster runs the existing exact solver
//!    over its own cores under its allocated budget. The local solves are
//!    independent and parallelise on the `gpm-par` pool.
//! 3. **Promote pass** — per-cluster floors and integer mode steps leave
//!    slack watts behind; a deterministic greedy pass promotes cores
//!    (largest predicted BIPS gain first, lowest core index on ties) while
//!    the chip still fits the budget, recovering most of the partition
//!    loss.
//!
//! When the chip does not fit even the floors the arbiter allocates zero
//! everywhere and every local solve falls back to all-Eff2 — exactly the
//! flat MaxBIPS infeasibility behaviour. At or below one cluster's width
//! the policy *is* flat MaxBIPS (it delegates to the same solver).

use gpm_types::{CoreId, GpmError, ModeCombination, PowerMode, Result, Watts};

use super::{solver, Policy, PolicyContext};
use crate::PowerBipsMatrices;

/// Hierarchical MaxBIPS: a global water-filling budget arbiter over
/// per-cluster exact solves. See the module docs for the algorithm.
///
/// # Examples
///
/// ```
/// use gpm_core::{HierMaxBips, Policy};
///
/// let policy = HierMaxBips::with_cluster_cores(16)?;
/// assert_eq!(policy.name(), "HierMaxBIPS");
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HierMaxBips {
    cluster_cores: usize,
}

impl HierMaxBips {
    /// Builds the controller with the default cluster width of 8 cores —
    /// the sharded simulator's natural cluster size.
    #[must_use]
    pub fn new() -> Self {
        Self { cluster_cores: 8 }
    }

    /// Builds the controller with `cluster_cores` cores per local manager.
    /// A chip whose core count is not a multiple gets one narrower
    /// trailing cluster.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when `cluster_cores` is zero.
    pub fn with_cluster_cores(cluster_cores: usize) -> Result<Self> {
        if cluster_cores == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "cluster_cores",
                reason: "need at least one core per cluster".into(),
            });
        }
        Ok(Self { cluster_cores })
    }

    /// Cores per local manager.
    #[must_use]
    pub fn cluster_cores(&self) -> usize {
        self.cluster_cores
    }
}

impl Default for HierMaxBips {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for HierMaxBips {
    fn name(&self) -> &str {
        "HierMaxBIPS"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let n = ctx.matrices.cores();
        if n <= self.cluster_cores {
            // One cluster: the hierarchy degenerates to flat exact MaxBIPS.
            return solver::solve(
                ctx.matrices,
                ctx.current_modes,
                ctx.budget,
                ctx.dvfs,
                ctx.explore,
            );
        }

        let budgets = cluster_budgets(ctx.matrices, self.cluster_cores, ctx.budget);

        // Per-cluster sub-problems: (core range, sub-matrices, sub-modes).
        let clusters: Vec<(usize, usize)> = (0..n)
            .step_by(self.cluster_cores)
            .map(|start| (start, (start + self.cluster_cores).min(n)))
            .collect();
        let solves: Vec<ModeCombination> = gpm_par::parallel_map(&clusters, |&(start, end)| {
            let mut power = Vec::with_capacity(end - start);
            let mut bips = Vec::with_capacity(end - start);
            for core in start..end {
                let id = CoreId::new(core);
                let mut p_row = [0.0; PowerMode::COUNT];
                let mut b_row = [0.0; PowerMode::COUNT];
                for mode in PowerMode::ALL {
                    p_row[mode.index()] = ctx.matrices.power(id, mode).value();
                    b_row[mode.index()] = ctx.matrices.bips(id, mode).value();
                }
                power.push(p_row);
                bips.push(b_row);
            }
            let sub = PowerBipsMatrices::from_rows(power, bips);
            let current = ModeCombination::new(ctx.current_modes.as_slice()[start..end].to_vec());
            solver::solve(
                &sub,
                &current,
                budgets[start / self.cluster_cores],
                ctx.dvfs,
                ctx.explore,
            )
        });

        let mut combo = ModeCombination::new(
            solves
                .iter()
                .flat_map(|c| c.as_slice().iter().copied())
                .collect(),
        );

        // Promote pass: spend the slack the per-cluster floors and integer
        // mode steps stranded. Deterministic: strict-largest predicted
        // BIPS gain wins, lowest core index on ties.
        loop {
            let mut best: Option<(usize, PowerMode, f64)> = None;
            for core in 0..n {
                let id = CoreId::new(core);
                let Some(up) = combo.mode(id).faster() else {
                    continue;
                };
                let gain = ctx.matrices.bips(id, up).value()
                    - ctx.matrices.bips(id, combo.mode(id)).value();
                let mut trial = combo.clone();
                trial.set(id, up);
                if ctx.matrices.chip_power(&trial) > ctx.budget
                    || !best.is_none_or(|(_, _, g)| gain > g)
                {
                    continue;
                }
                best = Some((core, up, gain));
            }
            let Some((core, up, _)) = best else { break };
            combo.set(CoreId::new(core), up);
        }
        combo
    }
}

/// One linear piece of a core's concave power→BIPS upgrade curve.
#[derive(Debug, Clone, Copy)]
struct Segment {
    cluster: usize,
    core: usize,
    seg: usize,
    watts: f64,
    ratio: f64,
}

/// The global budget arbiter: water-fills `budget` across the clusters of
/// `cluster_cores` cores each (the last cluster may be narrower), returning
/// one budget per cluster.
///
/// Every cluster is floored at its minimum feasible power — each core in
/// its cheapest mode — and the remaining watts pour over the chip-wide
/// ratio-sorted concave upgrade segments, best marginal BIPS-per-watt
/// first (ties broken by cluster, then core, then segment index, so the
/// allocation is deterministic). When the budget cannot cover the floors
/// every cluster gets zero watts, which drives every local solve into the
/// all-Eff2 infeasibility fallback — the flat MaxBIPS behaviour.
///
/// The sum of the returned budgets never exceeds `budget` beyond f64
/// rounding; `tests/hier_equivalence.rs` propcheck-pins that invariant.
///
/// # Panics
///
/// Panics if `cluster_cores` is zero.
#[must_use]
pub fn cluster_budgets(
    matrices: &PowerBipsMatrices,
    cluster_cores: usize,
    budget: Watts,
) -> Vec<Watts> {
    assert!(cluster_cores > 0, "need at least one core per cluster");
    let n = matrices.cores();
    let cluster_count = n.div_ceil(cluster_cores);
    if cluster_count == 0 {
        return Vec::new();
    }

    let mut floors = vec![0.0f64; cluster_count];
    let mut segments: Vec<Segment> = Vec::new();
    for core in 0..n {
        let id = CoreId::new(core);
        let cluster = core / cluster_cores;
        // The core's (power, bips) frontier: sort by power, drop points
        // that cost more without predicting more BIPS.
        let mut points: Vec<(f64, f64)> = PowerMode::ALL
            .iter()
            .map(|&m| (matrices.power(id, m).value(), matrices.bips(id, m).value()))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut frontier: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for (p, b) in points {
            if frontier.last().is_none_or(|&(_, fb)| b > fb) {
                frontier.push((p, b));
            }
        }
        floors[cluster] += frontier[0].0;
        // Upper concave hull of the upgrade steps: merging any step whose
        // marginal ratio improves on its predecessor's keeps the poured
        // order greedy-optimal.
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(frontier.len() - 1);
        for w in frontier.windows(2) {
            let (dw, db) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            if dw <= 0.0 {
                continue;
            }
            hull.push((dw, db));
            while hull.len() >= 2 {
                let [a, b] = hull[hull.len() - 2..] else {
                    unreachable!()
                };
                if b.1 / b.0 > a.1 / a.0 {
                    hull.truncate(hull.len() - 2);
                    hull.push((a.0 + b.0, a.1 + b.1));
                } else {
                    break;
                }
            }
        }
        for (seg, (dw, db)) in hull.into_iter().enumerate() {
            segments.push(Segment {
                cluster,
                core,
                seg,
                watts: dw,
                ratio: db / dw,
            });
        }
    }

    let floor_sum: f64 = floors.iter().sum();
    if floor_sum > budget.value() {
        // Infeasible even at minimum power: allocate nothing, so every
        // local solve falls back to all-Eff2 exactly like flat MaxBIPS.
        return vec![Watts::new(0.0); cluster_count];
    }

    segments.sort_by(|a, b| {
        b.ratio
            .total_cmp(&a.ratio)
            .then(a.cluster.cmp(&b.cluster))
            .then(a.core.cmp(&b.core))
            .then(a.seg.cmp(&b.seg))
    });

    let mut allocations = floors;
    let mut remaining = budget.value() - floor_sum;
    for seg in &segments {
        if remaining <= 0.0 {
            break;
        }
        let poured = seg.watts.min(remaining);
        allocations[seg.cluster] += poured;
        remaining -= poured;
    }
    allocations.into_iter().map(Watts::new).collect()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;

    /// A 4-core fixture: two hot-and-fast cores, two cool-and-slow ones.
    fn mixed_fixture() -> Fixture {
        Fixture::new(&[(20.0, 2.0), (10.0, 0.4), (20.0, 2.0), (10.0, 0.4)])
    }

    #[test]
    fn degenerates_to_flat_solver_at_or_below_cluster_width() {
        let f = mixed_fixture();
        let mut hier = HierMaxBips::with_cluster_cores(4).expect("non-zero width");
        let mut flat = super::super::MaxBips::new();
        for budget in [30.0, 45.0, 52.0, 60.0, 200.0] {
            assert_eq!(
                hier.decide(&f.ctx(budget)),
                flat.decide(&f.ctx(budget)),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn matches_flat_exact_when_budget_is_generous() {
        let f = mixed_fixture();
        let mut hier = HierMaxBips::with_cluster_cores(2).expect("non-zero width");
        let combo = hier.decide(&f.ctx(200.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Turbo));
    }

    #[test]
    fn respects_budget_and_stays_near_flat_exact() {
        let f = mixed_fixture();
        let mut hier = HierMaxBips::with_cluster_cores(2).expect("non-zero width");
        let mut flat = super::super::MaxBips::new();
        for budget in [40.0, 45.0, 50.0, 55.0, 58.0] {
            let ctx = f.ctx(budget);
            let h = hier.decide(&ctx);
            assert!(
                f.matrices.chip_power(&h) <= Watts::new(budget),
                "budget {budget} violated: {}",
                f.matrices.chip_power(&h).value()
            );
            let fx = flat.decide(&ctx);
            let (hb, fb) = (f.matrices.chip_bips(&h), f.matrices.chip_bips(&fx));
            assert!(
                hb.value() >= 0.9 * fb.value(),
                "budget {budget}: hier {} too far below flat {}",
                hb.value(),
                fb.value()
            );
        }
    }

    #[test]
    fn infeasible_budget_falls_back_to_all_eff2() {
        let f = mixed_fixture();
        let mut hier = HierMaxBips::with_cluster_cores(2).expect("non-zero width");
        let combo = hier.decide(&f.ctx(1.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }

    #[test]
    fn arbiter_never_overallocates() {
        let f = mixed_fixture();
        for budget in [0.5, 37.0, 45.0, 52.0, 60.0, 1000.0] {
            let budgets = cluster_budgets(&f.matrices, 2, Watts::new(budget));
            assert_eq!(budgets.len(), 2);
            let total: f64 = budgets.iter().map(|b| b.value()).sum();
            assert!(
                total <= budget * (1.0 + 1e-9),
                "budget {budget} overallocated to {total}"
            );
        }
    }

    #[test]
    fn arbiter_handles_ragged_last_cluster() {
        // 4 cores in clusters of 3: the trailing cluster has one core.
        let f = mixed_fixture();
        let budgets = cluster_budgets(&f.matrices, 3, Watts::new(60.0));
        assert_eq!(budgets.len(), 2);
        assert!(budgets.iter().all(|b| b.value() > 0.0));
    }

    #[test]
    fn arbiter_prefers_the_better_marginal_cluster() {
        // Cluster 0 holds the fast cores, cluster 1 the slow ones; with
        // watts for roughly one cluster's upgrades, the fast cluster gets
        // the larger share above its floor.
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0), (10.0, 0.4), (10.0, 0.4)]);
        let floors: Vec<f64> = (0..2)
            .map(|k| {
                (0..2)
                    .map(|i| {
                        PowerMode::ALL
                            .iter()
                            .map(|&m| f.matrices.power(CoreId::new(2 * k + i), m).value())
                            .fold(f64::INFINITY, f64::min)
                    })
                    .sum()
            })
            .collect();
        let budgets = cluster_budgets(
            &f.matrices,
            2,
            Watts::new(floors.iter().sum::<f64>() + 10.0),
        );
        let surplus0 = budgets[0].value() - floors[0];
        let surplus1 = budgets[1].value() - floors[1];
        assert!(
            surplus0 > surplus1,
            "fast cluster should win the marginal watts: {surplus0} vs {surplus1}"
        );
    }

    #[test]
    fn zero_cluster_width_rejected() {
        assert!(HierMaxBips::with_cluster_cores(0).is_err());
        assert_eq!(HierMaxBips::default().cluster_cores(), 8);
    }
}
