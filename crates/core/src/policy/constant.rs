//! A fixed mode assignment — baselines and static-configuration studies.

use gpm_types::{ModeCombination, PowerMode};

use super::{Policy, PolicyContext};

/// Always returns the same mode combination, regardless of budget or
/// observations.
///
/// This is the building block for the all-Turbo baseline every metric is
/// normalised against, and for replaying the static assignments found by
/// [`static_oracle`](crate::static_oracle) through the full simulator.
///
/// # Examples
///
/// ```
/// use gpm_core::{Constant, Policy};
/// use gpm_types::{ModeCombination, PowerMode};
///
/// let p = Constant::all_turbo(4);
/// assert_eq!(p.name(), "Static[Turbo, Turbo, Turbo, Turbo]");
/// ```
#[derive(Debug, Clone)]
pub struct Constant {
    modes: ModeCombination,
    name: String,
}

impl Constant {
    /// Fixes the given assignment.
    #[must_use]
    pub fn new(modes: ModeCombination) -> Self {
        let name = format!("Static{modes}");
        Self { modes, name }
    }

    /// All cores at Turbo — the baseline configuration.
    #[must_use]
    pub fn all_turbo(cores: usize) -> Self {
        Self::new(ModeCombination::uniform(cores, PowerMode::Turbo))
    }

    /// The fixed assignment.
    #[must_use]
    pub fn modes(&self) -> &ModeCombination {
        &self.modes
    }
}

impl Policy for Constant {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> ModeCombination {
        self.modes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;

    #[test]
    fn ignores_budget() {
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0)]);
        let mut p = Constant::all_turbo(2);
        for budget in [1.0, 20.0, 100.0] {
            let combo = p.decide(&f.ctx(budget));
            assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Turbo));
        }
    }

    #[test]
    fn name_includes_assignment() {
        let p = Constant::new(ModeCombination::new(vec![
            PowerMode::Eff2,
            PowerMode::Turbo,
        ]));
        assert_eq!(p.name(), "Static[Eff2, Turbo]");
        assert_eq!(p.modes().len(), 2);
    }
}
