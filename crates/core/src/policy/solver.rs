//! Exact branch-and-bound replacement for the exhaustive MaxBIPS scan.
//!
//! The paper's MaxBIPS policy (Section 5.2.3) evaluates all 3^N mode
//! combinations per explore interval. That is fine at the paper's 4 cores
//! (81 candidates) and tolerable at 8 (6561), but 3^16 ≈ 43M and
//! 3^32 ≈ 1.8e15 rule the literal scan out for the wide-CMP tier. This
//! module solves the same discrete problem *exactly* — the returned
//! combination is bit-identical to the scan's, including its tie-breaking —
//! in three steps:
//!
//! 1. **Mode-major prediction tables.** Power, BIPS and per-core transition
//!    stall are read out of [`PowerBipsMatrices`] once per decision into
//!    dense `[mode][core]` arrays, so no candidate ever re-walks the
//!    matrices.
//! 2. **Stall-class decomposition.** The transition de-rate factor
//!    `explore / (explore + stall)` depends only on the *chip-wide maximum*
//!    stall, which takes at most a handful of distinct values (four under
//!    [`DvfsParams::paper`]: 0, 6.5, 13 and 19.5 µs). For each distinct
//!    value `S` the solver searches the subspace "every core's stall ≤ S and
//!    at least one core's stall = S", within which the objective is the
//!    *separable* sum of per-core BIPS times the constant factor for `S`.
//! 3. **Depth-first branch-and-bound.** Within a class, cores are assigned
//!    in descending BIPS-spread order (most impactful first) and candidates
//!    are pruned by (a) a min-residual-power feasibility bound and (b) a
//!    fractional-relaxation upper bound on the remaining BIPS — the LP bound
//!    of the multiple-choice knapsack built from each core's concave
//!    (power, BIPS) frontier.
//!
//! # Bit-identical tie-breaking
//!
//! The scan keeps the *first* strict maximum in enumeration order, i.e. the
//! argmax with the smallest enumeration rank (core 0 is the most
//! significant base-3 digit). The branch-and-bound does not visit leaves in
//! that order, so it carries each partial assignment's rank explicitly and
//! accepts a leaf only if its objective is strictly larger, or equal with a
//! strictly smaller rank. Every pruning bound is slackened by
//! [`BOUND_SLACK`] (absolute + relative), which covers the worst-case
//! floating-point discrepancy between the bound's summation order and the
//! leaf's — so a subtree is discarded only when no leaf in it can beat *or
//! tie* the incumbent. Surviving leaves are evaluated through the exact
//! same [`PowerBipsMatrices::chip_power`] /
//! [`PowerBipsMatrices::chip_bips_with_transition`] calls as the scan,
//! making the kept objective values bit-equal by construction.
//!
//! Degenerate inputs (non-finite or negative table entries, non-finite
//! budget, non-positive explore interval) fall back to the literal
//! [`exhaustive`] scan, which is also kept as the reference baseline for
//! the equivalence tests and benchmarks.

use gpm_power::DvfsParams;
use gpm_types::{CoreId, Micros, ModeCombination, ModeOdometer, PowerMode, Watts};

use crate::PowerBipsMatrices;

/// Relative pruning slack. Bounds are computed in a different summation
/// order than leaf objectives, so they disagree by at most a few ULPs per
/// term; 1e-9 is ~1e5× the worst case at 80 cores while still pruning
/// everything that is meaningfully worse than the incumbent.
const BOUND_SLACK: f64 = 1e-9;

/// Widest chip the rank bookkeeping supports (3^80 < 2^127).
const MAX_CORES: usize = 80;

/// Search-effort counters for one [`solve_with_stats`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Branch-and-bound tree nodes visited (including leaves).
    pub nodes: u64,
    /// Full assignments evaluated exactly.
    pub leaves: u64,
    /// Distinct stall classes searched.
    pub classes: usize,
}

/// Exact solve: the bit-identical result of [`exhaustive`] without the
/// 3^N scan. See the module docs for the algorithm.
///
/// # Panics
///
/// Panics if `matrices` covers more than 80 cores.
#[must_use]
pub fn solve(
    matrices: &PowerBipsMatrices,
    current: &ModeCombination,
    budget: Watts,
    dvfs: &DvfsParams,
    explore: Micros,
) -> ModeCombination {
    solve_with_stats(matrices, current, budget, dvfs, explore).0
}

/// [`solve`], plus counters for the complexity table in DESIGN.md §11.
///
/// # Panics
///
/// Panics if `matrices` covers more than 80 cores.
#[must_use]
pub fn solve_with_stats(
    matrices: &PowerBipsMatrices,
    current: &ModeCombination,
    budget: Watts,
    dvfs: &DvfsParams,
    explore: Micros,
) -> (ModeCombination, SolveStats) {
    let n = matrices.cores();
    assert!(n <= MAX_CORES, "solver supports at most {MAX_CORES} cores");
    let tables = Tables::build(matrices, current, dvfs);
    if n == 0 || current.len() != n || !tables.well_formed(budget, explore) {
        let combo = exhaustive(matrices, current, budget, dvfs, explore);
        return (combo, SolveStats::default());
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        tables
            .bips_spread(b)
            .total_cmp(&tables.bips_spread(a))
            .then(a.cmp(&b))
    });
    let mut pos = vec![0usize; n];
    for (depth, &core) in order.iter().enumerate() {
        pos[core] = depth;
    }
    let mut pow3 = vec![1u128; n];
    for core in (0..n.saturating_sub(1)).rev() {
        pow3[core] = pow3[core + 1] * 3;
    }

    let max_power_sum: f64 = (0..n).map(|c| tables.row_max(&tables.power, c)).sum();
    let max_bips_sum: f64 = (0..n).map(|c| tables.row_max(&tables.bips, c)).sum();

    let mut classes: Vec<f64> = tables
        .stall
        .iter()
        .flat_map(|row| row.iter().copied())
        .collect();
    classes.sort_by(f64::total_cmp);
    classes.dedup();

    let mut search = Search {
        matrices,
        current,
        dvfs,
        budget,
        explore,
        budget_w: budget.value(),
        power_slack: BOUND_SLACK * (1.0 + budget.value().abs() + max_power_sum),
        bips_slack: BOUND_SLACK * (1.0 + max_bips_sum),
        tables,
        order,
        pos,
        pow3,
        factor: 1.0,
        mode_ok: vec![[false; PowerMode::COUNT]; n],
        hits_class: vec![[false; PowerMode::COUNT]; n],
        base_p_suffix: vec![0.0; n + 1],
        base_b_suffix: vec![0.0; n + 1],
        reach_suffix: vec![false; n + 1],
        segs: Vec::with_capacity(2 * n),
        scratch: ModeCombination::uniform(n, PowerMode::Turbo),
        best: None,
        stats: SolveStats::default(),
    };

    // Warm start: a cheap demote-by-ratio heuristic seeds the incumbent so
    // the very first class already prunes against a realistic objective.
    let warm = search.greedy_feasible();
    search.offer(&warm);

    search.stats.classes = classes.len();
    for &stall in &classes {
        search.run_class(stall);
    }

    let combo = search.best.map_or_else(
        || ModeCombination::uniform(n, PowerMode::Eff2),
        |inc| inc.combo,
    );
    (combo, search.stats)
}

/// The literal exhaustive scan over an in-place [`ModeOdometer`]: the
/// reference baseline the solver must match bit-for-bit, and the fallback
/// for degenerate inputs. Allocates only when a candidate becomes the new
/// best.
#[must_use]
pub fn exhaustive(
    matrices: &PowerBipsMatrices,
    current: &ModeCombination,
    budget: Watts,
    dvfs: &DvfsParams,
    explore: Micros,
) -> ModeCombination {
    let cores = matrices.cores();
    let mut best: Option<(f64, ModeCombination)> = None;
    let mut odo = ModeOdometer::new(cores);
    loop {
        let combo = odo.current();
        if matrices.chip_power(combo) > budget {
            if !odo.advance() {
                break;
            }
            continue;
        }
        let bips = matrices
            .chip_bips_with_transition(current, combo, dvfs, explore)
            .value();
        if best.as_ref().is_none_or(|(b, _)| bips > *b) {
            best = Some((bips, combo.clone()));
        }
        if !odo.advance() {
            break;
        }
    }
    best.map_or_else(
        || ModeCombination::uniform(cores, PowerMode::Eff2),
        |(_, combo)| combo,
    )
}

/// The parallel arm of the exhaustive scan: rank-range chunks walked by
/// per-chunk odometers on the worker pool (no 3^N materialisation), merged
/// as chunk-local first-maxima in enumeration order — bit-identical to the
/// serial scan for any pool width.
#[must_use]
pub fn exhaustive_chunked(
    matrices: &PowerBipsMatrices,
    current: &ModeCombination,
    budget: Watts,
    dvfs: &DvfsParams,
    explore: Micros,
    threads: usize,
) -> ModeCombination {
    let cores = matrices.cores();
    let total = 3usize.checked_pow(cores as u32).expect("3^cores overflow");
    let chunk = total.div_ceil(threads.saturating_mul(4)).max(1);
    let ranges: Vec<(usize, usize)> = (0..total)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(total)))
        .collect();
    let locals = gpm_par::parallel_map(&ranges, |&(start, end)| {
        let mut odo = ModeOdometer::from_rank(cores, start);
        let mut best: Option<(f64, ModeCombination)> = None;
        for _ in start..end {
            let combo = odo.current();
            if matrices.chip_power(combo) > budget {
                odo.advance();
                continue;
            }
            let bips = matrices
                .chip_bips_with_transition(current, combo, dvfs, explore)
                .value();
            if best.as_ref().is_none_or(|(b, _)| bips > *b) {
                best = Some((bips, combo.clone()));
            }
            odo.advance();
        }
        best
    });
    let mut best: Option<(f64, ModeCombination)> = None;
    for (bips, combo) in locals.into_iter().flatten() {
        if best.as_ref().is_none_or(|(b, _)| bips > *b) {
            best = Some((bips, combo));
        }
    }
    best.map_or_else(
        || ModeCombination::uniform(cores, PowerMode::Eff2),
        |(_, combo)| combo,
    )
}

/// Mode-major decision tables: `power[mode][core]`, `bips[mode][core]` and
/// the stall each core pays to switch from its current mode, all read out
/// of the matrices once per decision.
struct Tables {
    n: usize,
    power: [Vec<f64>; PowerMode::COUNT],
    bips: [Vec<f64>; PowerMode::COUNT],
    stall: [Vec<f64>; PowerMode::COUNT],
}

impl Tables {
    fn build(matrices: &PowerBipsMatrices, current: &ModeCombination, dvfs: &DvfsParams) -> Self {
        let n = matrices.cores();
        let mut tables = Self {
            n,
            power: std::array::from_fn(|_| vec![0.0; n]),
            bips: std::array::from_fn(|_| vec![0.0; n]),
            stall: std::array::from_fn(|_| vec![0.0; n]),
        };
        let cur = current.as_slice();
        for (core, &from) in cur.iter().enumerate().take(n) {
            let id = CoreId::new(core);
            for mode in PowerMode::ALL {
                let m = mode.index();
                tables.power[m][core] = matrices.power(id, mode).value();
                tables.bips[m][core] = matrices.bips(id, mode).value();
                tables.stall[m][core] = dvfs.transition_time(from, mode).value();
            }
        }
        tables
    }

    /// All entries finite and non-negative, budget finite, explore positive
    /// — the preconditions the pruning bounds rely on.
    fn well_formed(&self, budget: Watts, explore: Micros) -> bool {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        budget.value().is_finite()
            && explore.value().is_finite()
            && explore.value() > 0.0
            && (0..self.n).all(|c| {
                (0..PowerMode::COUNT)
                    .all(|m| ok(self.power[m][c]) && ok(self.bips[m][c]) && ok(self.stall[m][c]))
            })
    }

    fn bips_spread(&self, core: usize) -> f64 {
        let row = [self.bips[0][core], self.bips[1][core], self.bips[2][core]];
        let hi = row[0].max(row[1]).max(row[2]);
        let lo = row[0].min(row[1]).min(row[2]);
        hi - lo
    }

    fn row_max(&self, table: &[Vec<f64>; PowerMode::COUNT], core: usize) -> f64 {
        table[0][core].max(table[1][core]).max(table[2][core])
    }
}

/// One segment of a core's concave (power, BIPS) frontier: spending
/// `dp` extra Watts on this core buys `db` extra BIPS at `ratio = db/dp`.
struct Seg {
    ratio: f64,
    core: usize,
    dp: f64,
    db: f64,
}

/// The incumbent best feasible assignment: exact objective, enumeration
/// rank (for scan-identical tie-breaking) and the combination itself.
struct Incumbent {
    obj: f64,
    rank: u128,
    combo: ModeCombination,
}

struct Search<'a> {
    matrices: &'a PowerBipsMatrices,
    current: &'a ModeCombination,
    dvfs: &'a DvfsParams,
    budget: Watts,
    explore: Micros,
    budget_w: f64,
    power_slack: f64,
    bips_slack: f64,
    tables: Tables,
    /// Cores in branching order (descending BIPS spread).
    order: Vec<usize>,
    /// Inverse of `order`: depth at which each core is assigned.
    pos: Vec<usize>,
    /// Enumeration-rank weight of core `c`'s digit: 3^(n-1-c).
    pow3: Vec<u128>,
    // --- per-class state, rebuilt by `run_class` ---
    factor: f64,
    mode_ok: Vec<[bool; PowerMode::COUNT]>,
    hits_class: Vec<[bool; PowerMode::COUNT]>,
    /// Σ over unassigned cores of their cheapest allowed power.
    base_p_suffix: Vec<f64>,
    /// Σ over unassigned cores of the BIPS at that cheapest point.
    base_b_suffix: Vec<f64>,
    /// Whether any unassigned core can still realise the class stall.
    reach_suffix: Vec<bool>,
    /// Frontier segments of all cores, sorted by descending ratio.
    segs: Vec<Seg>,
    scratch: ModeCombination,
    best: Option<Incumbent>,
    stats: SolveStats,
}

impl Search<'_> {
    /// Demote-by-ratio warm start (the `GreedyMaxBips` heuristic): from
    /// all-Turbo, repeatedly demote the core with the best power-saved per
    /// BIPS-lost ratio until the budget fits or no demotion is left.
    fn greedy_feasible(&self) -> ModeCombination {
        let n = self.tables.n;
        let mut combo = ModeCombination::uniform(n, PowerMode::Turbo);
        let mut steps = 2 * n;
        while self.matrices.chip_power(&combo) > self.budget && steps > 0 {
            steps -= 1;
            let mut pick: Option<(f64, usize, PowerMode)> = None;
            for core in 0..n {
                let cur = combo.mode(CoreId::new(core));
                let Some(next) = cur.slower() else { continue };
                let dp =
                    self.tables.power[cur.index()][core] - self.tables.power[next.index()][core];
                let db = self.tables.bips[cur.index()][core] - self.tables.bips[next.index()][core];
                let score = if db > 0.0 { dp / db } else { f64::INFINITY };
                if pick.as_ref().is_none_or(|&(s, _, _)| score > s) {
                    pick = Some((score, core, next));
                }
            }
            match pick {
                Some((_, core, next)) => combo.set(CoreId::new(core), next),
                None => break,
            }
        }
        combo
    }

    /// Evaluates `combo` exactly (the scan's arithmetic) and installs it as
    /// the incumbent if it is feasible and better under the scan's
    /// first-strict-max order.
    fn offer(&mut self, combo: &ModeCombination) {
        if self.matrices.chip_power(combo) > self.budget {
            return;
        }
        let obj = self
            .matrices
            .chip_bips_with_transition(self.current, combo, self.dvfs, self.explore)
            .value();
        let rank = combo
            .as_slice()
            .iter()
            .enumerate()
            .map(|(core, mode)| mode.index() as u128 * self.pow3[core])
            .sum();
        let better = match &self.best {
            None => true,
            Some(inc) => obj > inc.obj || (obj == inc.obj && rank < inc.rank),
        };
        if better {
            self.best = Some(Incumbent {
                obj,
                rank,
                combo: combo.clone(),
            });
        }
    }

    /// Searches the subspace whose chip-wide max stall is exactly `stall`.
    fn run_class(&mut self, stall: f64) {
        let n = self.tables.n;
        self.factor = self.explore.value() / (self.explore.value() + stall);
        for core in 0..n {
            for m in 0..PowerMode::COUNT {
                let s = self.tables.stall[m][core];
                self.mode_ok[core][m] = s <= stall;
                self.hits_class[core][m] = s == stall;
            }
        }

        self.base_p_suffix[n] = 0.0;
        self.base_b_suffix[n] = 0.0;
        self.reach_suffix[n] = false;
        self.segs.clear();
        for depth in (0..n).rev() {
            let core = self.order[depth];
            let (base_p, base_b) = self.push_frontier(core);
            self.base_p_suffix[depth] = base_p + self.base_p_suffix[depth + 1];
            self.base_b_suffix[depth] = base_b + self.base_b_suffix[depth + 1];
            self.reach_suffix[depth] = self.reach_suffix[depth + 1]
                || (0..PowerMode::COUNT).any(|m| self.hits_class[core][m]);
        }
        let pos = &self.pos;
        self.segs.sort_by(|a, b| {
            b.ratio
                .total_cmp(&a.ratio)
                .then(pos[a.core].cmp(&pos[b.core]))
        });

        if self.base_p_suffix[0] > self.budget_w + self.power_slack || !self.reach_suffix[0] {
            return;
        }
        self.dfs(0, 0.0, 0.0, false, 0);
    }

    /// Builds `core`'s dominance-filtered concave frontier over its allowed
    /// modes, pushes its segments and returns the (min-power, BIPS-there)
    /// base point.
    fn push_frontier(&mut self, core: usize) -> (f64, f64) {
        let mut pts: [(f64, f64); PowerMode::COUNT] = [(0.0, 0.0); PowerMode::COUNT];
        let mut len = 0;
        for m in 0..PowerMode::COUNT {
            if self.mode_ok[core][m] {
                pts[len] = (self.tables.power[m][core], self.tables.bips[m][core]);
                len += 1;
            }
        }
        debug_assert!(len > 0, "every class admits the zero-stall current mode");
        pts[..len].sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));

        // Dominance filter: keep points with strictly increasing BIPS.
        let mut front: [(f64, f64); PowerMode::COUNT] = [(0.0, 0.0); PowerMode::COUNT];
        let mut flen = 0;
        for &(p, b) in &pts[..len] {
            if flen == 0 || b > front[flen - 1].1 {
                front[flen] = (p, b);
                flen += 1;
            }
        }
        // Concavity: drop the middle point when it lies on or below the
        // chord (its left ratio does not exceed its right ratio).
        if flen == 3 {
            let r1 = (front[1].1 - front[0].1) / (front[1].0 - front[0].0);
            let r2 = (front[2].1 - front[1].1) / (front[2].0 - front[1].0);
            if r2 >= r1 {
                front[1] = front[2];
                flen = 2;
            }
        }
        for w in 1..flen {
            let dp = front[w].0 - front[w - 1].0;
            let db = front[w].1 - front[w - 1].1;
            self.segs.push(Seg {
                ratio: db / dp,
                core,
                dp,
                db,
            });
        }
        front[0]
    }

    /// Fractional-relaxation bonus: the most extra BIPS the cores still
    /// unassigned at `depth` can buy with `room` Watts above their base
    /// points, filling frontier segments best-ratio-first with the last one
    /// taken fractionally. An upper bound on every integer completion.
    fn frac_extra(&self, depth: usize, mut room: f64) -> f64 {
        if room <= 0.0 {
            return 0.0;
        }
        let mut extra = 0.0;
        for seg in &self.segs {
            if self.pos[seg.core] < depth {
                continue;
            }
            if seg.dp <= room {
                room -= seg.dp;
                extra += seg.db;
            } else {
                extra += seg.db * (room / seg.dp);
                break;
            }
        }
        extra
    }

    fn dfs(&mut self, depth: usize, power: f64, bips: f64, hit: bool, rank: u128) {
        self.stats.nodes += 1;
        let n = self.tables.n;
        if depth == n {
            self.stats.leaves += 1;
            // Exact leaf evaluation through the same matrix methods (and
            // hence the same core-order summations) as the scan. Leaves
            // whose true max stall is below this class are duplicates of an
            // earlier class; re-evaluating them is idempotent under the
            // (obj, rank) order because the objective uses the *actual*
            // stall, not the class constant.
            if self.matrices.chip_power(&self.scratch) > self.budget {
                return;
            }
            let obj = self
                .matrices
                .chip_bips_with_transition(self.current, &self.scratch, self.dvfs, self.explore)
                .value();
            let better = match &self.best {
                None => true,
                Some(inc) => obj > inc.obj || (obj == inc.obj && rank < inc.rank),
            };
            if better {
                self.best = Some(Incumbent {
                    obj,
                    rank,
                    combo: self.scratch.clone(),
                });
            }
            return;
        }
        let core = self.order[depth];
        for m in 0..PowerMode::COUNT {
            if !self.mode_ok[core][m] {
                continue;
            }
            let p2 = power + self.tables.power[m][core];
            let b2 = bips + self.tables.bips[m][core];
            let hit2 = hit || self.hits_class[core][m];
            let rank2 = rank + m as u128 * self.pow3[core];
            if p2 + self.base_p_suffix[depth + 1] > self.budget_w + self.power_slack {
                continue;
            }
            if !hit2 && !self.reach_suffix[depth + 1] {
                continue;
            }
            if let Some(inc) = &self.best {
                let (inc_obj, inc_rank) = (inc.obj, inc.rank);
                let room = self.budget_w - p2 - self.base_p_suffix[depth + 1] + self.power_slack;
                let ub_bips = b2 + self.base_b_suffix[depth + 1] + self.frac_extra(depth + 1, room);
                let ub = ub_bips * self.factor * (1.0 + BOUND_SLACK) + self.bips_slack;
                // `rank2` is the smallest rank in this subtree (unassigned
                // digits are Turbo = 0), so an equal-bound subtree with a
                // larger rank cannot supply the scan's winner either.
                if ub < inc_obj || (ub == inc_obj && rank2 > inc_rank) {
                    continue;
                }
            }
            self.scratch.set(CoreId::new(core), PowerMode::ALL[m]);
            self.dfs(depth + 1, p2, b2, hit2, rank2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_ctx() -> (DvfsParams, Micros) {
        (DvfsParams::paper(), Micros::new(500.0))
    }

    fn matrices(rows: &[(f64, f64)]) -> PowerBipsMatrices {
        let power = rows
            .iter()
            .map(|&(p, _)| PowerMode::ALL.map(|m| p * m.power_scale()))
            .collect();
        let bips = rows
            .iter()
            .map(|&(_, b)| PowerMode::ALL.map(|m| b * m.bips_scale_bound()))
            .collect();
        PowerBipsMatrices::from_rows(power, bips)
    }

    fn assert_matches_scan(m: &PowerBipsMatrices, current: &ModeCombination, budget: f64) {
        let (dvfs, explore) = paper_ctx();
        let budget = Watts::new(budget);
        let want = exhaustive(m, current, budget, &dvfs, explore);
        let got = solve(m, current, budget, &dvfs, explore);
        assert_eq!(got, want, "budget {budget:?}");
    }

    #[test]
    fn matches_scan_across_budget_sweep() {
        let m = matrices(&[(20.0, 2.0), (10.0, 0.4), (15.0, 1.1), (12.0, 1.7)]);
        let current = ModeCombination::uniform(4, PowerMode::Turbo);
        let all_turbo = 20.0 + 10.0 + 15.0 + 12.0;
        for pct in 0..=110 {
            assert_matches_scan(&m, &current, all_turbo * pct as f64 / 100.0);
        }
    }

    #[test]
    fn matches_scan_from_mixed_current_modes() {
        let m = matrices(&[(20.0, 2.0), (10.0, 0.4), (15.0, 1.1)]);
        for rank in 0..27 {
            let current = ModeCombination::from_rank(3, rank);
            for budget in [10.0, 30.0, 38.0, 45.0, 60.0] {
                assert_matches_scan(&m, &current, budget);
            }
        }
    }

    #[test]
    fn identical_cores_tie_resolves_to_scan_winner() {
        // Four identical cores: huge argmax plateaus at every budget step.
        let m = matrices(&[(10.0, 1.0); 4]);
        let current = ModeCombination::uniform(4, PowerMode::Turbo);
        for pct in 0..=100 {
            assert_matches_scan(&m, &current, 40.0 * pct as f64 / 100.0);
        }
    }

    #[test]
    fn zero_spread_bips_ties_resolve_to_scan_winner() {
        // BIPS identical across modes: the objective only moves through the
        // stall factor and feasibility.
        let power = vec![[20.0, 17.0, 12.0], [10.0, 8.0, 6.0]];
        let bips = vec![[1.5, 1.5, 1.5], [0.7, 0.7, 0.7]];
        let m = PowerBipsMatrices::from_rows(power, bips);
        for rank in 0..9 {
            let current = ModeCombination::from_rank(2, rank);
            for budget in [10.0, 18.0, 20.0, 25.0, 31.0] {
                assert_matches_scan(&m, &current, budget);
            }
        }
    }

    #[test]
    fn infeasible_budget_falls_back_to_all_eff2() {
        let m = matrices(&[(20.0, 2.0), (18.0, 1.0)]);
        let current = ModeCombination::uniform(2, PowerMode::Turbo);
        let (dvfs, explore) = paper_ctx();
        let combo = solve(&m, &current, Watts::new(1.0), &dvfs, explore);
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
        assert_matches_scan(&m, &current, 1.0);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_scan() {
        let m = PowerBipsMatrices::from_rows(vec![[f64::NAN, 1.0, 0.5]], vec![[1.0, 0.9, 0.8]]);
        let current = ModeCombination::uniform(1, PowerMode::Turbo);
        let (dvfs, explore) = paper_ctx();
        let want = exhaustive(&m, &current, Watts::new(2.0), &dvfs, explore);
        let got = solve(&m, &current, Watts::new(2.0), &dvfs, explore);
        assert_eq!(got, want);
    }

    #[test]
    fn prunes_most_of_the_space_on_hetero_chips() {
        let rows: Vec<(f64, f64)> = (0..16)
            .map(|i| {
                (
                    12.0 + (i * 7 % 11) as f64 * 1.3,
                    0.4 + (i * 5 % 9) as f64 * 0.35,
                )
            })
            .collect();
        let m = matrices(&rows);
        let current = (0..16)
            .map(|i| PowerMode::ALL[i % 3])
            .collect::<ModeCombination>();
        let budget = Watts::new(0.8 * rows.iter().map(|r| r.0).sum::<f64>());
        let (dvfs, explore) = paper_ctx();
        let (_, stats) = solve_with_stats(&m, &current, budget, &dvfs, explore);
        assert!(
            stats.nodes < 200_000,
            "16-way search visited {} nodes",
            stats.nodes
        );
    }

    #[test]
    fn chunked_exhaustive_matches_serial() {
        let m = matrices(&[(20.0, 2.0), (10.0, 0.4), (15.0, 1.1), (12.0, 1.7)]);
        let current = ModeCombination::uniform(4, PowerMode::Turbo);
        let (dvfs, explore) = paper_ctx();
        for budget in [20.0, 40.0, 57.0] {
            let budget = Watts::new(budget);
            let serial = exhaustive(&m, &current, budget, &dvfs, explore);
            for threads in [1, 2, 8] {
                let chunked = exhaustive_chunked(&m, &current, budget, &dvfs, explore, threads);
                assert_eq!(chunked, serial, "threads {threads}");
            }
        }
    }
}
