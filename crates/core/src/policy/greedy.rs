//! Greedy MaxBIPS — our scalability extension for large core counts.

use gpm_types::{CoreId, ModeCombination, PowerMode};

use super::{Policy, PolicyContext};

/// A greedy approximation of [`MaxBips`](crate::MaxBips) whose decision
/// cost is O(N·modes·steps) instead of the exhaustive 3^N enumeration.
///
/// The paper limits itself to three modes precisely because "the number of
/// required prediction or exploration steps has a superlinear dependence on
/// the number of modes" — and exhaustive MaxBIPS grows as 3^N in cores. For
/// the 16–64-core chips the paper's tool can model, enumeration is already
/// 4.3×10⁷…3.4×10³⁰ combinations per decision. This policy instead:
///
/// 1. starts from all-Turbo,
/// 2. while over budget, demotes one step the core with the best marginal
///    power-saved-per-BIPS-lost ratio,
/// 3. then promotes any cores that still fit (largest BIPS gain first).
///
/// The `ablation_search` bench quantifies the throughput it gives up
/// relative to exhaustive MaxBIPS (typically none-to-negligible, because
/// per-core contributions are additive and the marginal-ratio demotion is
/// near-optimal for additive budgets).
///
/// # Examples
///
/// ```
/// use gpm_core::{GreedyMaxBips, Policy};
///
/// assert_eq!(GreedyMaxBips::new().name(), "GreedyMaxBIPS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMaxBips {
    _priv: (),
}

impl GreedyMaxBips {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for GreedyMaxBips {
    fn name(&self) -> &str {
        "GreedyMaxBIPS"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let m = ctx.matrices;
        let n = m.cores();
        let mut modes = ModeCombination::uniform(n, PowerMode::Turbo);

        // Demote by best marginal ratio until the budget fits.
        while m.chip_power(&modes) > ctx.budget {
            let best = CoreId::all(n)
                .filter_map(|id| {
                    let cur = modes.mode(id);
                    let slower = cur.slower()?;
                    let d_power = (m.power(id, cur) - m.power(id, slower)).value();
                    let d_bips = (m.bips(id, cur) - m.bips(id, slower)).value();
                    // Higher saved-power-per-lost-BIPS is better; a zero
                    // BIPS loss is infinitely good.
                    let ratio = if d_bips <= 0.0 {
                        f64::INFINITY
                    } else {
                        d_power / d_bips
                    };
                    Some((ratio, id, slower))
                })
                .max_by(|a, b| a.0.total_cmp(&b.0));
            let Some((_, id, slower)) = best else { break };
            modes.set(id, slower);
        }

        // Promotion pass: reclaim slack with the biggest BIPS gains.
        'promote: loop {
            let mut gains: Vec<(f64, CoreId, PowerMode)> = CoreId::all(n)
                .filter_map(|id| {
                    let faster = modes.mode(id).faster()?;
                    let gain = (m.bips(id, faster) - m.bips(id, modes.mode(id))).value();
                    Some((gain, id, faster))
                })
                .collect();
            gains.sort_by(|a, b| b.0.total_cmp(&a.0));
            for (_, id, faster) in gains {
                let mut trial = modes.clone();
                trial.set(id, faster);
                if m.chip_power(&trial) <= ctx.budget {
                    modes = trial;
                    continue 'promote;
                }
            }
            break;
        }

        modes
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use crate::MaxBips;

    #[test]
    fn matches_exhaustive_on_small_chips() {
        let f = Fixture::new(&[(20.0, 2.2), (18.0, 1.6), (14.0, 0.9), (11.0, 0.3)]);
        for budget in [40.0, 45.0, 50.0, 55.0, 60.0, 63.0] {
            let greedy = GreedyMaxBips::new().decide(&f.ctx(budget));
            let exact = MaxBips::new().decide(&f.ctx(budget));
            let g = f.matrices.chip_bips(&greedy).value();
            let e = f.matrices.chip_bips(&exact).value();
            assert!(
                g >= e * 0.995,
                "budget {budget}: greedy {g} vs exhaustive {e} ({greedy} vs {exact})"
            );
            assert!(f.matrices.chip_power(&greedy).value() <= budget);
        }
    }

    #[test]
    fn scales_to_many_cores() {
        // 24 cores: exhaustive would need 3^24 ≈ 2.8×10¹¹ evaluations.
        let turbo: Vec<(f64, f64)> = (0..24)
            .map(|i| (10.0 + (i % 7) as f64, 0.5 + (i % 5) as f64 * 0.4))
            .collect();
        let f = Fixture::new(&turbo);
        let total: f64 = turbo.iter().map(|&(p, _)| p).sum();
        let combo = GreedyMaxBips::new().decide(&f.ctx(total * 0.8));
        assert_eq!(combo.len(), 24);
        assert!(f.matrices.chip_power(&combo).value() <= total * 0.8);
    }

    #[test]
    fn infeasible_budget_floors_at_eff2() {
        let f = Fixture::new(&[(20.0, 2.0), (20.0, 2.0)]);
        let combo = GreedyMaxBips::new().decide(&f.ctx(1.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }
}
