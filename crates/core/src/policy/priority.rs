//! The Priority policy (Section 5.2.1).

use gpm_types::{CoreId, ModeCombination};

use super::{Policy, PolicyContext};

/// Priority: fixed per-core priorities, highest core id first.
///
/// On a four-core CMP, core 4 (index 3) has the highest priority and core 1
/// (index 0) the lowest. The policy tries to run the highest-priority core
/// as fast as possible, preferring to slow down the lowest-priority core
/// first on a budget overshoot. As the budget increases, cores are released
/// toward Turbo in priority order — and, as the paper notes, promotion "can
/// operate out of order" in small budget steps: when the highest-priority
/// core's next mode does not fit, the first core in priority order whose
/// promotion *does* satisfy the budget is moved instead.
///
/// # Examples
///
/// ```
/// use gpm_core::{Policy, Priority};
///
/// assert_eq!(Priority::new().name(), "Priority");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Priority {
    /// Core ids from lowest to highest priority; empty = the paper's
    /// default (ascending core id).
    order: Vec<CoreId>,
}

impl Priority {
    /// Creates the policy with the paper's ordering: the highest core id
    /// has the highest priority.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the policy with an explicit priority ordering, lowest
    /// priority first — e.g. to protect a latency-critical thread pinned to
    /// core 0, pass an order that lists core 0 last.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation (contains duplicates).
    #[must_use]
    pub fn with_priorities(order: Vec<CoreId>) -> Self {
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            order.len(),
            "priority order contains duplicates"
        );
        Self { order }
    }

    /// The effective low-to-high priority order for an `n`-core chip.
    fn order_for(&self, n: usize) -> Vec<CoreId> {
        if self.order.len() == n {
            self.order.clone()
        } else {
            CoreId::all(n).collect()
        }
    }
}

impl Policy for Priority {
    fn name(&self) -> &str {
        "Priority"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let m = ctx.matrices;
        let n = m.cores();
        let order = self.order_for(n);
        let mut modes = ctx.current_modes.clone();

        // Overshoot: demote one step at a time, lowest priority first.
        'demote: while m.chip_power(&modes) > ctx.budget {
            for &id in &order {
                if let Some(slower) = modes.mode(id).slower() {
                    modes.set(id, slower);
                    continue 'demote;
                }
            }
            break; // everything already at Eff2
        }

        // Slack: promote, highest priority first, falling through to lower
        // priorities when the preferred promotion does not fit.
        'promote: loop {
            for &id in order.iter().rev() {
                if let Some(faster) = modes.mode(id).faster() {
                    let mut trial = modes.clone();
                    trial.set(id, faster);
                    if m.chip_power(&trial) <= ctx.budget {
                        modes = trial;
                        continue 'promote;
                    }
                }
            }
            break;
        }

        modes
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use gpm_types::PowerMode;

    fn uniform_cores() -> Fixture {
        // Four identical cores, 10 W / 1 BIPS each at Turbo.
        Fixture::new(&[(10.0, 1.0); 4])
    }

    #[test]
    fn generous_budget_all_turbo() {
        let f = uniform_cores();
        let combo = Priority::new().decide(&f.ctx(100.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Turbo));
    }

    #[test]
    fn highest_priority_core_protected() {
        let f = uniform_cores();
        // Budget forces roughly one core's worth of savings: the
        // lowest-priority core (index 0) is sacrificed; core 3 stays Turbo.
        let combo = Priority::new().decide(&f.ctx(37.0));
        assert_eq!(combo.mode(CoreId::new(3)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(0)) < PowerMode::Turbo);
        // Power fits.
        assert!(f.matrices.chip_power(&combo).value() <= 37.0);
    }

    #[test]
    fn priority_is_lexicographic_under_tight_budget() {
        let f = uniform_cores();
        // All-Eff2 chip power = 40 × 0.614 = 24.6 W. At 26 W only a little
        // headroom exists — it must go to core 3 first.
        let combo = Priority::new().decide(&f.ctx(26.0));
        let m3 = combo.mode(CoreId::new(3));
        for i in 0..3 {
            assert!(
                combo.mode(CoreId::new(i)) <= m3,
                "core {i} must not outrank core 3: {combo}"
            );
        }
        assert!(f.matrices.chip_power(&combo).value() <= 26.0);
    }

    #[test]
    fn infeasible_budget_goes_all_eff2() {
        let f = uniform_cores();
        let combo = Priority::new().decide(&f.ctx(5.0));
        assert!(combo.as_slice().iter().all(|&m| m == PowerMode::Eff2));
    }

    #[test]
    fn custom_priority_order_is_respected() {
        let f = uniform_cores();
        // Reverse of the default: core 0 highest priority, core 3 lowest.
        let order: Vec<CoreId> = (0..4).rev().map(CoreId::new).collect();
        let combo = Priority::with_priorities(order).decide(&f.ctx(37.0));
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(3)) < PowerMode::Turbo);
    }

    #[test]
    fn wrong_length_order_falls_back_to_default() {
        let f = uniform_cores();
        let combo = Priority::with_priorities(vec![CoreId::new(0)]).decide(&f.ctx(37.0));
        // Falls back to the paper's ordering on a 4-core chip.
        assert_eq!(combo.mode(CoreId::new(3)), PowerMode::Turbo);
        assert!(combo.mode(CoreId::new(0)) < PowerMode::Turbo);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_priorities_rejected() {
        let _ = Priority::with_priorities(vec![CoreId::new(1), CoreId::new(1)]);
    }

    #[test]
    fn out_of_order_promotion() {
        // Core 1 (high priority) is hot: promoting it from Eff1 to Turbo
        // costs more than the slack allows, but promoting cheap core 0
        // fits. The paper's "first core in priority order that satisfies
        // the budget" rule promotes core 0.
        let f = Fixture::new(&[(6.0, 0.6), (30.0, 3.0)]);
        // Chip Turbo power is 36 W. Budget 32 demotes core 0 to Eff2 then
        // core 1 to Eff1 (29.4 W). Promotion: core 1 → Turbo (33.7 W) never
        // fits, so the slack goes to core 0 instead — out of priority
        // order — stepping it Eff2 → Eff1 (30.9 W) → Turbo (31.7 W).
        let combo = Priority::new().decide(&f.ctx(32.0));
        assert_eq!(combo.mode(CoreId::new(1)), PowerMode::Eff1);
        assert_eq!(combo.mode(CoreId::new(0)), PowerMode::Turbo);
        assert!(f.matrices.chip_power(&combo).value() <= 32.0);
    }
}
