//! Chip power-budget schedules.

use gpm_types::Micros;
use serde::{Deserialize, Serialize};

/// A time-varying power budget, expressed as a fraction of the chip's
/// maximum power envelope.
///
/// Most experiments use a constant budget; Figure 6 of the paper uses a
/// step schedule (90% dropping to 70% mid-run — "part of the cooling
/// solution fails or the ambient environment changes").
///
/// # Examples
///
/// ```
/// use gpm_core::BudgetSchedule;
/// use gpm_types::Micros;
///
/// let s = BudgetSchedule::steps(vec![(Micros::ZERO, 0.9), (Micros::new(7000.0), 0.7)]);
/// assert_eq!(s.fraction_at(Micros::new(100.0)), 0.9);
/// assert_eq!(s.fraction_at(Micros::new(8000.0)), 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSchedule {
    /// `(start time, fraction)` steps, sorted by time; the first entry must
    /// start at 0.
    steps: Vec<(Micros, f64)>,
}

impl BudgetSchedule {
    /// A constant budget.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is within `(0, 1]`.
    #[must_use]
    pub fn constant(fraction: f64) -> Self {
        Self::steps(vec![(Micros::ZERO, fraction)])
    }

    /// A piecewise-constant schedule.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, does not start at time 0, is not sorted,
    /// or contains a fraction outside `(0, 1]`.
    #[must_use]
    pub fn steps(steps: Vec<(Micros, f64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        assert_eq!(steps[0].0, Micros::ZERO, "first step must start at t = 0");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "steps must be strictly increasing in time"
        );
        for &(_, f) in &steps {
            assert!(
                f > 0.0 && f <= 1.0 + 1e-9,
                "budget fraction {f} outside (0, 1]"
            );
        }
        Self { steps }
    }

    /// The budget fraction in force at time `t`.
    #[must_use]
    pub fn fraction_at(&self, t: Micros) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|(start, _)| *start <= t)
            .map(|&(_, f)| f)
            .unwrap_or(self.steps[0].1)
    }

    /// The schedule's steps.
    #[must_use]
    pub fn as_steps(&self) -> &[(Micros, f64)] {
        &self.steps
    }

    /// `true` when the schedule never changes.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.steps.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = BudgetSchedule::constant(0.83);
        assert!(s.is_constant());
        assert_eq!(s.fraction_at(Micros::ZERO), 0.83);
        assert_eq!(s.fraction_at(Micros::new(1e9)), 0.83);
    }

    #[test]
    fn step_schedule_figure6() {
        let s = BudgetSchedule::steps(vec![(Micros::ZERO, 0.9), (Micros::new(7000.0), 0.7)]);
        assert!(!s.is_constant());
        assert_eq!(s.fraction_at(Micros::new(6999.9)), 0.9);
        assert_eq!(s.fraction_at(Micros::new(7000.0)), 0.7);
        assert_eq!(s.as_steps().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_rejected() {
        let _ = BudgetSchedule::steps(vec![]);
    }

    #[test]
    #[should_panic(expected = "start at t = 0")]
    fn must_start_at_zero() {
        let _ = BudgetSchedule::steps(vec![(Micros::new(5.0), 0.9)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn must_be_sorted() {
        let _ = BudgetSchedule::steps(vec![
            (Micros::ZERO, 0.9),
            (Micros::new(10.0), 0.8),
            (Micros::new(10.0), 0.7),
        ]);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn fraction_range_checked() {
        let _ = BudgetSchedule::constant(1.5);
    }
}
