//! The global power manager's control loop.

use gpm_cmp::{SimHistory, TraceCmpSim};
use gpm_types::{Bips, Micros, ModeCombination, Result, Watts};

use crate::{BudgetSchedule, Policy, PolicyContext, PowerBipsMatrices};

/// One explore interval as the manager saw it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExploreRecord {
    /// Interval start time.
    pub start: Micros,
    /// Budget in force (absolute watts).
    pub budget: Watts,
    /// Mode assignment applied.
    pub modes: ModeCombination,
    /// Average chip power over the interval.
    pub chip_power: Watts,
    /// Average chip throughput over the interval.
    pub chip_bips: Bips,
    /// GALS transition stall paid at the interval start.
    pub stall: Micros,
    /// Wall time covered (shorter than `explore` only on termination).
    pub duration: Micros,
    /// `true` for the initial warm-up interval: the manager has no sensor
    /// history yet, so the chip runs in its reset state (all Turbo).
    /// Warm-up records are excluded from the aggregate metrics.
    pub bootstrap: bool,
}

/// Everything a managed run produced.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Name of the policy that drove the run.
    pub policy: String,
    /// Benchmark names, one per core.
    pub benchmarks: Vec<String>,
    /// The chip's maximum power envelope the budgets were quoted against.
    pub envelope: Watts,
    /// One record per explore interval.
    pub records: Vec<ExploreRecord>,
    /// Full delta-grained time series.
    pub history: SimHistory,
    /// Instructions each core completed by termination.
    pub per_core_instructions: Vec<u64>,
    /// Total wall time simulated.
    pub duration: Micros,
}

impl RunResult {
    /// The records the metrics aggregate over (warm-up excluded, unless the
    /// run never got past warm-up).
    fn measured(&self) -> &[ExploreRecord] {
        let measured = &self.records[self.records.iter().take_while(|r| r.bootstrap).count()..];
        if measured.is_empty() {
            &self.records
        } else {
            measured
        }
    }

    /// Duration-weighted average chip power (excluding warm-up).
    #[must_use]
    pub fn average_chip_power(&self) -> Watts {
        let (mut energy, mut time) = (0.0, 0.0);
        for r in self.measured() {
            energy += r.chip_power.value() * r.duration.value();
            time += r.duration.value();
        }
        if time == 0.0 {
            Watts::ZERO
        } else {
            Watts::new(energy / time)
        }
    }

    /// Average chip throughput over the measured (post-warm-up) window:
    /// instructions over time.
    #[must_use]
    pub fn average_chip_bips(&self) -> Bips {
        let instr: u64 = self.per_core_instructions.iter().sum();
        let secs = self.duration.to_seconds().value();
        if secs <= 0.0 {
            Bips::ZERO
        } else {
            Bips::new(instr as f64 / secs / 1.0e9)
        }
    }

    /// Per-core average instruction rates over the measured window
    /// (instructions per second).
    #[must_use]
    pub fn per_core_ips(&self) -> Vec<f64> {
        let secs = self.duration.to_seconds().value().max(f64::MIN_POSITIVE);
        self.per_core_instructions
            .iter()
            .map(|&i| i as f64 / secs)
            .collect()
    }

    /// Duration-weighted average budget over the measured window.
    #[must_use]
    pub fn average_budget(&self) -> Watts {
        let (mut acc, mut time) = (0.0, 0.0);
        for r in self.measured() {
            acc += r.budget.value() * r.duration.value();
            time += r.duration.value();
        }
        if time == 0.0 {
            Watts::ZERO
        } else {
            Watts::new(acc / time)
        }
    }

    /// Average chip power as a fraction of the average budget — the paper's
    /// budget-curve quantity ("percentage of power consumed under a policy
    /// with respect to the target budget").
    #[must_use]
    pub fn budget_utilization(&self) -> f64 {
        self.average_chip_power().value() / self.average_budget().value()
    }

    /// Number of explore intervals in which the *measured* average chip
    /// power exceeded the budget then in force (transient overshoots are
    /// corrected at the next explore time, per Section 5.4).
    #[must_use]
    pub fn overshoot_intervals(&self) -> usize {
        self.measured()
            .iter()
            .filter(|r| r.chip_power > r.budget)
            .count()
    }

    /// Total transition stall time paid over the run.
    #[must_use]
    pub fn total_stall(&self) -> Micros {
        self.records.iter().map(|r| r.stall).sum::<Micros>()
    }

    /// Serialises the whole run (records + time series) to JSON, for
    /// external plotting or archival.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::TraceFormat`] on encoding failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| gpm_types::GpmError::TraceFormat(e.to_string()))
    }

    /// Parses a run back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::TraceFormat`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| gpm_types::GpmError::TraceFormat(e.to_string()))
    }
}

/// The hierarchical global power manager (Section 2): collects per-core
/// sensor observations every explore interval, builds the predictive
/// Power/BIPS matrices, consults a [`Policy`], and applies the chosen mode
/// assignment to the chip.
///
/// The first interval runs in the simulator's initial state (all Turbo) to
/// gather the observations the first real decision needs — a cold
/// controller has no sensor history. That warm-up interval is recorded with
/// [`ExploreRecord::bootstrap`] set and excluded from aggregate metrics: it
/// is a measurement artifact of starting the observation window, not of the
/// policy under test (the paper's controller runs in steady state).
#[derive(Debug, Clone, Default)]
pub struct GlobalManager {
    _priv: (),
}

impl GlobalManager {
    /// Creates a manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drives `sim` to completion under `policy` and `schedule`, consuming
    /// the simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (core-count mismatches from a misbehaving
    /// policy, advancing past termination).
    pub fn run(
        &self,
        mut sim: TraceCmpSim,
        policy: &mut dyn Policy,
        schedule: &BudgetSchedule,
    ) -> Result<RunResult> {
        let envelope = sim.power_envelope();
        let explore = sim.params().explore;
        let dvfs = sim.params().dvfs;
        let mut records = Vec::new();

        // Interval 0 (warm-up): observe in the initial (all-Turbo) state.
        // One ExploreOutcome is reused across the whole loop so its per-delta
        // buffers are allocated once per run, not once per interval.
        let mut start = sim.now();
        let mut budget = Watts::new(envelope.value() * schedule.fraction_at(start));
        let mut outcome = gpm_cmp::ExploreOutcome::empty();
        sim.advance_explore_into(&sim.modes().clone(), &mut outcome)?;
        records.push(ExploreRecord {
            start,
            budget,
            modes: sim.modes().clone(),
            chip_power: outcome.average_chip_power(),
            chip_bips: outcome.total_bips(),
            stall: outcome.transition_stall,
            duration: outcome.duration,
            bootstrap: true,
        });
        let warmup_positions = sim.positions();
        let warmup_end = sim.now();

        while !sim.finished() {
            start = sim.now();
            budget = Watts::new(envelope.value() * schedule.fraction_at(start));
            let matrices = PowerBipsMatrices::predict(&outcome.observed);
            let future = policy
                .needs_future()
                .then(|| PowerBipsMatrices::from_future(&sim));
            let modes = {
                let ctx = PolicyContext {
                    current_modes: sim.modes(),
                    matrices: &matrices,
                    future: future.as_ref(),
                    budget,
                    dvfs: &dvfs,
                    explore,
                };
                policy.decide(&ctx)
            };
            sim.advance_explore_into(&modes, &mut outcome)?;
            records.push(ExploreRecord {
                start,
                budget,
                modes,
                chip_power: outcome.average_chip_power(),
                chip_bips: outcome.total_bips(),
                stall: outcome.transition_stall,
                duration: outcome.duration,
                bootstrap: false,
            });
        }

        // Aggregate metrics cover the measured (post-warm-up) window. If
        // the run terminated inside warm-up, fall back to the whole run.
        let (instructions, duration) = if sim.now() > warmup_end {
            (
                sim.positions()
                    .iter()
                    .zip(&warmup_positions)
                    .map(|(end, warm)| end - warm)
                    .collect(),
                sim.now() - warmup_end,
            )
        } else {
            (sim.positions(), sim.now())
        };

        Ok(RunResult {
            policy: policy.name().to_owned(),
            benchmarks: sim.traces().iter().map(|t| t.name().to_owned()).collect(),
            envelope,
            per_core_instructions: instructions,
            duration,
            history: sim.history().clone(),
            records,
        })
    }
}
