//! The global power manager's control loop.

use gpm_cmp::{CoreObservation, SimHistory, TraceCmpSim};
use gpm_faults::{FaultEvent, FaultPlan, FaultSession, SensorFrame, SensorStatus};
use gpm_types::{Bips, CoreId, Micros, ModeCombination, PowerMode, Result, Watts};

use crate::{BudgetSchedule, CacheCounters, Policy, PolicyContext, PowerBipsMatrices};

/// One explore interval as the manager saw it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExploreRecord {
    /// Interval start time.
    pub start: Micros,
    /// Budget in force (absolute watts).
    pub budget: Watts,
    /// Mode assignment applied.
    pub modes: ModeCombination,
    /// Average chip power over the interval.
    pub chip_power: Watts,
    /// Average chip throughput over the interval.
    pub chip_bips: Bips,
    /// GALS transition stall paid at the interval start.
    pub stall: Micros,
    /// Wall time covered (shorter than `explore` only on termination).
    pub duration: Micros,
    /// `true` for the initial warm-up interval: the manager has no sensor
    /// history yet, so the chip runs in its reset state (all Turbo).
    /// Warm-up records are excluded from the aggregate metrics.
    pub bootstrap: bool,
}

/// A guard rail firing: what the hardened control loop did and when.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GuardAction {
    /// Explore interval index at which the guard acted.
    pub interval: usize,
    /// What the guard did.
    pub kind: GuardActionKind,
}

/// The degraded-operation responses of the hardened manager.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GuardActionKind {
    /// A reading was stale but within tolerance: the manager used it with
    /// a safety margin on predicted power.
    StaleFallback {
        /// Affected core.
        core: usize,
        /// How many intervals behind the reading was.
        age: usize,
    },
    /// A sensor was dark (or stale beyond tolerance): the manager assumed
    /// the worst case — the core drawing its full Turbo peak.
    DarkWorstCase {
        /// Affected core.
        core: usize,
    },
    /// The overshoot watchdog clamped cores to Eff2 after K consecutive
    /// violated intervals.
    WatchdogClamp {
        /// The clamped cores.
        cores: Vec<usize>,
        /// How many intervals the clamp will hold.
        hold: usize,
    },
    /// A watchdog clamp expired; the cores may be re-promoted.
    WatchdogRepromote {
        /// The released cores.
        cores: Vec<usize>,
    },
}

/// Tuning for the hardened control loop's guard rails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardRails {
    /// Maximum reading age (intervals) the manager will still act on; older
    /// or dark readings fall back to the worst-case Turbo assumption.
    pub stale_tolerance: usize,
    /// Relative safety margin added to predicted power per interval of
    /// staleness (0.05 = 5% per interval of age).
    pub stale_margin: f64,
    /// Consecutive over-budget intervals tolerated before the watchdog
    /// clamps offending cores to Eff2 (the paper corrects single-interval
    /// overshoots at the next explore point; K > 1 means something is
    /// persistently wrong).
    pub watchdog_k: usize,
    /// How many intervals the first clamp holds.
    pub clamp_hold: usize,
    /// Ceiling on the exponential clamp-hold backoff.
    pub max_backoff: usize,
}

impl Default for GuardRails {
    fn default() -> Self {
        Self {
            stale_tolerance: 3,
            stale_margin: 0.05,
            watchdog_k: 3,
            clamp_hold: 2,
            max_backoff: 32,
        }
    }
}

/// Options for [`GlobalManager::run_with`]: fault injection and guard
/// rails. The default (no faults, no guards) is the exact legacy control
/// loop — bit-identical results, no extra work per interval.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Fault plan to inject at the sensor/actuator seam, if any.
    pub faults: Option<FaultPlan>,
    /// Guard rails hardening the control loop, if any. `None` reproduces
    /// the trusting controller of the paper (useful as the contrast case
    /// in fault experiments).
    pub guards: Option<GuardRails>,
}

impl RunOptions {
    /// Options injecting `plan` with default guard rails on.
    #[must_use]
    pub fn faulted(plan: FaultPlan) -> Self {
        Self {
            faults: Some(plan),
            guards: Some(GuardRails::default()),
        }
    }

    /// Options with guard rails on and no faults (overhead measurement).
    #[must_use]
    pub fn guarded() -> Self {
        Self {
            faults: None,
            guards: Some(GuardRails::default()),
        }
    }
}

/// Everything a managed run produced.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Name of the policy that drove the run.
    pub policy: String,
    /// Benchmark names, one per core.
    pub benchmarks: Vec<String>,
    /// The chip's maximum power envelope the budgets were quoted against.
    pub envelope: Watts,
    /// One record per explore interval.
    pub records: Vec<ExploreRecord>,
    /// Full delta-grained time series.
    pub history: SimHistory,
    /// Instructions each core completed by termination.
    pub per_core_instructions: Vec<u64>,
    /// Total wall time simulated.
    pub duration: Micros,
    /// Faults that fired during the run (empty on fault-free runs).
    pub fault_events: Vec<FaultEvent>,
    /// Guard rails that fired during the run (empty when guards are off).
    pub guard_actions: Vec<GuardAction>,
    /// Decision-cache accounting, when the policy memoizes (all zero for
    /// plain policies).
    pub cache_counters: CacheCounters,
}

impl RunResult {
    /// The records the metrics aggregate over (warm-up excluded, unless the
    /// run never got past warm-up).
    fn measured(&self) -> &[ExploreRecord] {
        let measured = &self.records[self.records.iter().take_while(|r| r.bootstrap).count()..];
        if measured.is_empty() {
            &self.records
        } else {
            measured
        }
    }

    /// Duration-weighted average chip power (excluding warm-up).
    #[must_use]
    pub fn average_chip_power(&self) -> Watts {
        let (mut energy, mut time) = (0.0, 0.0);
        for r in self.measured() {
            energy += r.chip_power.value() * r.duration.value();
            time += r.duration.value();
        }
        if time == 0.0 {
            Watts::ZERO
        } else {
            Watts::new(energy / time)
        }
    }

    /// Average chip throughput over the measured (post-warm-up) window:
    /// instructions over time.
    #[must_use]
    pub fn average_chip_bips(&self) -> Bips {
        let instr: u64 = self.per_core_instructions.iter().sum();
        let secs = self.duration.to_seconds().value();
        if secs <= 0.0 {
            Bips::ZERO
        } else {
            Bips::new(instr as f64 / secs / 1.0e9)
        }
    }

    /// Per-core average instruction rates over the measured window
    /// (instructions per second).
    #[must_use]
    pub fn per_core_ips(&self) -> Vec<f64> {
        let secs = self.duration.to_seconds().value().max(f64::MIN_POSITIVE);
        self.per_core_instructions
            .iter()
            .map(|&i| i as f64 / secs)
            .collect()
    }

    /// Duration-weighted average budget over the measured window.
    #[must_use]
    pub fn average_budget(&self) -> Watts {
        let (mut acc, mut time) = (0.0, 0.0);
        for r in self.measured() {
            acc += r.budget.value() * r.duration.value();
            time += r.duration.value();
        }
        if time == 0.0 {
            Watts::ZERO
        } else {
            Watts::new(acc / time)
        }
    }

    /// Average chip power as a fraction of the average budget — the paper's
    /// budget-curve quantity ("percentage of power consumed under a policy
    /// with respect to the target budget").
    #[must_use]
    pub fn budget_utilization(&self) -> f64 {
        self.average_chip_power().value() / self.average_budget().value()
    }

    /// Number of explore intervals in which the *measured* average chip
    /// power exceeded the budget then in force (transient overshoots are
    /// corrected at the next explore time, per Section 5.4).
    #[must_use]
    pub fn overshoot_intervals(&self) -> usize {
        self.measured()
            .iter()
            .filter(|r| r.chip_power > r.budget)
            .count()
    }

    /// Largest margin (watts) by which measured chip power exceeded the
    /// budget in any interval; zero if the budget was never violated.
    #[must_use]
    pub fn worst_overshoot_watts(&self) -> Watts {
        Watts::new(
            self.measured()
                .iter()
                .map(|r| (r.chip_power.value() - r.budget.value()).max(0.0))
                .fold(0.0, f64::max),
        )
    }

    /// Length of the longest run of consecutive over-budget intervals —
    /// the quantity the overshoot watchdog bounds.
    #[must_use]
    pub fn longest_violation_run(&self) -> usize {
        let (mut longest, mut current) = (0usize, 0usize);
        for r in self.measured() {
            if r.chip_power > r.budget {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }

    /// Total transition stall time paid over the run.
    #[must_use]
    pub fn total_stall(&self) -> Micros {
        self.records.iter().map(|r| r.stall).sum::<Micros>()
    }

    /// Serialises the whole run (records + time series) to JSON, for
    /// external plotting or archival.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::TraceFormat`] on encoding failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| gpm_types::GpmError::TraceFormat(e.to_string()))
    }

    /// Parses a run back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::TraceFormat`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| gpm_types::GpmError::TraceFormat(e.to_string()))
    }
}

/// Live guard-rail state for one hardened run.
struct GuardState {
    rails: GuardRails,
    /// Per-core Turbo peak power (worst-case assumption for dark sensors).
    peaks: Vec<f64>,
    envelope: f64,
    /// Last trustworthy (fresh) frame per core.
    last_good: Vec<Option<SensorFrame>>,
    violation_streak: usize,
    clean_streak: usize,
    clamp_remaining: usize,
    backoff: usize,
    clamped: Vec<usize>,
    pending_repromote: Option<Vec<usize>>,
    actions: Vec<GuardAction>,
}

impl GuardState {
    fn new(rails: GuardRails, sim: &TraceCmpSim) -> Self {
        let peaks: Vec<f64> = sim
            .traces()
            .iter()
            .map(|t| t.trace(PowerMode::Turbo).peak_power().value())
            .collect();
        let envelope = peaks.iter().sum();
        Self {
            rails,
            peaks,
            envelope,
            last_good: vec![None; sim.cores()],
            violation_streak: 0,
            clean_streak: 0,
            clamp_remaining: 0,
            backoff: rails.clamp_hold,
            clamped: Vec::new(),
            pending_repromote: None,
            actions: Vec::new(),
        }
    }

    /// Converts seam frames into the observations the predictor consumes,
    /// degrading gracefully: stale-within-tolerance readings are used with
    /// a power margin, stale-beyond-tolerance and dark sensors fall back to
    /// the worst case (core at full Turbo peak).
    fn process(&mut self, interval: usize, frames: &[SensorFrame]) -> Vec<CoreObservation> {
        frames
            .iter()
            .map(|f| match f.status {
                SensorStatus::Fresh => {
                    self.last_good[f.core] = Some(*f);
                    frame_to_observation(f)
                }
                SensorStatus::Stale { age } if age <= self.rails.stale_tolerance => {
                    self.actions.push(GuardAction {
                        interval,
                        kind: GuardActionKind::StaleFallback { core: f.core, age },
                    });
                    let margin = 1.0 + self.rails.stale_margin * age as f64;
                    CoreObservation {
                        core: CoreId::new(f.core),
                        mode: f.mode,
                        power: Watts::new(f.power.value() * margin),
                        bips: f.bips,
                        instructions: f.instructions,
                    }
                }
                _ => {
                    self.actions.push(GuardAction {
                        interval,
                        kind: GuardActionKind::DarkWorstCase { core: f.core },
                    });
                    // Assume the core draws its full Turbo peak; carry the
                    // last trustworthy throughput (rescaled to Turbo) so
                    // the policy still has a performance signal.
                    let bips = self.last_good[f.core]
                        .map(|g| g.bips.value() / g.mode.bips_scale_bound())
                        .unwrap_or(0.0);
                    CoreObservation {
                        core: CoreId::new(f.core),
                        mode: PowerMode::Turbo,
                        power: Watts::new(self.peaks[f.core]),
                        bips: Bips::new(bips),
                        instructions: 0,
                    }
                }
            })
            .collect()
    }

    /// Applies the overshoot watchdog to the policy's decision. Returns
    /// `true` if this interval runs under an active clamp.
    fn shape_decision(
        &mut self,
        interval: usize,
        modes: &mut ModeCombination,
        observations: &[CoreObservation],
        budget: Watts,
    ) -> bool {
        if let Some(cores) = self.pending_repromote.take() {
            self.actions.push(GuardAction {
                interval,
                kind: GuardActionKind::WatchdogRepromote { cores },
            });
        }
        if self.clamp_remaining == 0 && self.violation_streak >= self.rails.watchdog_k {
            // Offenders: cores whose observed power exceeds their
            // envelope-proportional share of the budget. If attribution
            // fails (e.g. every sensor is dark and reads the same), clamp
            // the whole chip.
            let mut offenders: Vec<usize> = observations
                .iter()
                .enumerate()
                .filter(|(i, o)| o.power.value() > budget.value() * self.peaks[*i] / self.envelope)
                .map(|(i, _)| i)
                .collect();
            if offenders.is_empty() {
                offenders = (0..observations.len()).collect();
            }
            self.clamped = offenders;
            self.clamp_remaining = self.backoff;
            self.actions.push(GuardAction {
                interval,
                kind: GuardActionKind::WatchdogClamp {
                    cores: self.clamped.clone(),
                    hold: self.clamp_remaining,
                },
            });
            self.backoff = (self.backoff * 2).min(self.rails.max_backoff);
            self.violation_streak = 0;
            self.clean_streak = 0;
        }
        if self.clamp_remaining > 0 {
            for &core in &self.clamped {
                modes.set(CoreId::new(core), PowerMode::Eff2);
            }
            self.clamp_remaining -= 1;
            if self.clamp_remaining == 0 {
                self.pending_repromote = Some(std::mem::take(&mut self.clamped));
            }
            true
        } else {
            false
        }
    }

    /// Books one completed interval's budget outcome. Clamped intervals are
    /// not counted: the watchdog is already doing all it can there.
    fn account(&mut self, was_clamped: bool, chip_power: Watts, budget: Watts) {
        if was_clamped {
            return;
        }
        if chip_power > budget {
            self.violation_streak += 1;
            self.clean_streak = 0;
        } else {
            self.violation_streak = 0;
            self.clean_streak += 1;
            if self.clean_streak >= self.rails.watchdog_k {
                self.backoff = self.rails.clamp_hold;
            }
        }
    }
}

fn observation_to_frame(o: &CoreObservation) -> SensorFrame {
    SensorFrame::fresh(o.core.value(), o.mode, o.power, o.bips, o.instructions)
}

fn frame_to_observation(f: &SensorFrame) -> CoreObservation {
    CoreObservation {
        core: CoreId::new(f.core),
        mode: f.mode,
        power: f.power,
        bips: f.bips,
        instructions: f.instructions,
    }
}

/// The hierarchical global power manager (Section 2): collects per-core
/// sensor observations every explore interval, builds the predictive
/// Power/BIPS matrices, consults a [`Policy`], and applies the chosen mode
/// assignment to the chip.
///
/// The first interval runs in the simulator's initial state (all Turbo) to
/// gather the observations the first real decision needs — a cold
/// controller has no sensor history. That warm-up interval is recorded with
/// [`ExploreRecord::bootstrap`] set and excluded from aggregate metrics: it
/// is a measurement artifact of starting the observation window, not of the
/// policy under test (the paper's controller runs in steady state).
///
/// [`run_with`](Self::run_with) additionally threads the telemetry and
/// actuation paths through a [`FaultSession`] seam and — when
/// [`RunOptions::guards`] is set — hardens the loop with stale-telemetry
/// fallback, worst-case assumptions for dark sensors, and an overshoot
/// watchdog. The default options reproduce [`run`](Self::run) exactly.
#[derive(Debug, Clone, Default)]
pub struct GlobalManager {
    _priv: (),
}

impl GlobalManager {
    /// Creates a manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drives `sim` to completion under `policy` and `schedule`, consuming
    /// the simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (core-count mismatches from a misbehaving
    /// policy, advancing past termination).
    pub fn run(
        &self,
        sim: TraceCmpSim,
        policy: &mut dyn Policy,
        schedule: &BudgetSchedule,
    ) -> Result<RunResult> {
        self.run_with(sim, policy, schedule, &RunOptions::default())
    }

    /// Like [`run`](Self::run), with fault injection and/or guard rails.
    ///
    /// Interval indexing at the fault seam: telemetry observed during
    /// interval `i` is perturbed by clauses covering `i` and feeds the
    /// decision for interval `i + 1`; actuation and budget clauses apply at
    /// the interval being decided. The watchdog monitors the *package-level*
    /// power meter (measured chip power) — per-core sensor faults corrupt
    /// attribution, not the chip-wide violation signal.
    ///
    /// # Errors
    ///
    /// Additionally returns [`gpm_types::GpmError::FaultSpec`] if the fault
    /// plan names a core the chip does not have.
    pub fn run_with(
        &self,
        mut sim: TraceCmpSim,
        policy: &mut dyn Policy,
        schedule: &BudgetSchedule,
        options: &RunOptions,
    ) -> Result<RunResult> {
        let envelope = sim.power_envelope();
        let explore = sim.params().explore;
        let dvfs = sim.params().dvfs;
        let mut records = Vec::new();

        let mut session = match &options.faults {
            Some(plan) => Some(FaultSession::new(plan, sim.cores())?),
            None => None,
        };
        let mut guard = options.guards.map(|rails| GuardState::new(rails, &sim));
        // Scratch buffers for the seam path, allocated once per run.
        let mut frames: Vec<SensorFrame> = Vec::new();
        let mut guarded_obs: Vec<CoreObservation> = Vec::new();

        // Interval 0 (warm-up): observe in the initial (all-Turbo) state.
        // One ExploreOutcome is reused across the whole loop so its per-delta
        // buffers are allocated once per run, not once per interval.
        let mut start = sim.now();
        let mut fraction = schedule.fraction_at(start);
        if let Some(s) = session.as_mut() {
            fraction = s.budget_fraction(0, fraction);
        }
        let mut budget = Watts::new(envelope.value() * fraction);
        let mut outcome = gpm_cmp::ExploreOutcome::empty();
        sim.advance_explore_into(&sim.modes().clone(), &mut outcome)?;
        records.push(ExploreRecord {
            start,
            budget,
            modes: sim.modes().clone(),
            chip_power: outcome.average_chip_power(),
            chip_bips: outcome.total_bips(),
            stall: outcome.transition_stall,
            duration: outcome.duration,
            bootstrap: true,
        });
        let warmup_positions = sim.positions();
        let warmup_end = sim.now();

        while !sim.finished() {
            let interval = records.len();
            start = sim.now();
            fraction = schedule.fraction_at(start);
            if let Some(s) = session.as_mut() {
                fraction = s.budget_fraction(interval, fraction);
            }
            budget = Watts::new(envelope.value() * fraction);

            // Telemetry seam: the just-completed interval's readings pass
            // through the fault plan, then through the guard rails. With
            // neither configured the predictor reads the raw observations —
            // the exact legacy path.
            let observations: &[CoreObservation] = if session.is_some() || guard.is_some() {
                frames.clear();
                frames.extend(outcome.observed.iter().map(observation_to_frame));
                if let Some(s) = session.as_mut() {
                    frames = s.observe(interval - 1, &frames);
                }
                match guard.as_mut() {
                    Some(g) => guarded_obs = g.process(interval - 1, &frames),
                    None => {
                        guarded_obs.clear();
                        guarded_obs.extend(frames.iter().map(frame_to_observation));
                    }
                }
                &guarded_obs
            } else {
                &outcome.observed
            };

            let matrices = PowerBipsMatrices::predict(observations);
            let future = policy
                .needs_future()
                .then(|| PowerBipsMatrices::from_future(&sim));
            let mut modes = {
                let ctx = PolicyContext {
                    current_modes: sim.modes(),
                    matrices: &matrices,
                    future: future.as_ref(),
                    budget,
                    dvfs: &dvfs,
                    explore,
                };
                policy.decide(&ctx)
            };
            let was_clamped = match guard.as_mut() {
                Some(g) => g.shape_decision(interval, &mut modes, observations, budget),
                None => false,
            };
            // Actuation seam: stuck DVFS lanes may ignore or defer requests.
            if let Some(s) = session.as_mut() {
                modes = s.actuate(interval, &modes, sim.modes());
            }
            sim.advance_explore_into(&modes, &mut outcome)?;
            let chip_power = outcome.average_chip_power();
            if let Some(g) = guard.as_mut() {
                g.account(was_clamped, chip_power, budget);
            }
            records.push(ExploreRecord {
                start,
                budget,
                modes,
                chip_power,
                chip_bips: outcome.total_bips(),
                stall: outcome.transition_stall,
                duration: outcome.duration,
                bootstrap: false,
            });
        }

        // Aggregate metrics cover the measured (post-warm-up) window. If
        // the run terminated inside warm-up, fall back to the whole run.
        let (instructions, duration) = if sim.now() > warmup_end {
            (
                sim.positions()
                    .iter()
                    .zip(&warmup_positions)
                    .map(|(end, warm)| end - warm)
                    .collect(),
                sim.now() - warmup_end,
            )
        } else {
            (sim.positions(), sim.now())
        };

        Ok(RunResult {
            policy: policy.name().to_owned(),
            benchmarks: sim.traces().iter().map(|t| t.name().to_owned()).collect(),
            envelope,
            per_core_instructions: instructions,
            duration,
            history: sim.history().clone(),
            records,
            fault_events: session.map(|mut s| s.drain_events()).unwrap_or_default(),
            guard_actions: guard.map(|g| g.actions).unwrap_or_default(),
            cache_counters: policy.cache_counters().unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(budget: f64, power: f64, bootstrap: bool) -> ExploreRecord {
        ExploreRecord {
            start: Micros::ZERO,
            budget: Watts::new(budget),
            modes: ModeCombination::uniform(1, PowerMode::Turbo),
            chip_power: Watts::new(power),
            chip_bips: Bips::ZERO,
            stall: Micros::ZERO,
            duration: Micros::new(500.0),
            bootstrap,
        }
    }

    fn result_with(records: Vec<ExploreRecord>) -> RunResult {
        RunResult {
            policy: "test".into(),
            benchmarks: vec!["b".into()],
            envelope: Watts::new(100.0),
            records,
            history: SimHistory::default(),
            per_core_instructions: vec![0],
            duration: Micros::new(500.0),
            fault_events: Vec::new(),
            guard_actions: Vec::new(),
            cache_counters: CacheCounters::default(),
        }
    }

    #[test]
    fn warmup_only_run_falls_back_to_bootstrap_records() {
        // A run that terminated inside warm-up has only bootstrap records;
        // measured() must fall back to them instead of an empty slice.
        let r = result_with(vec![record(80.0, 90.0, true)]);
        assert!((r.average_chip_power().value() - 90.0).abs() < 1e-12);
        assert!((r.average_budget().value() - 80.0).abs() < 1e-12);
        assert_eq!(r.overshoot_intervals(), 1);
        assert!((r.worst_overshoot_watts().value() - 10.0).abs() < 1e-12);
        assert_eq!(r.longest_violation_run(), 1);
    }

    #[test]
    fn violation_metrics_track_worst_and_longest() {
        let r = result_with(vec![
            record(80.0, 90.0, true), // warm-up: excluded
            record(80.0, 85.0, false),
            record(80.0, 95.0, false),
            record(80.0, 70.0, false),
            record(80.0, 81.0, false),
        ]);
        assert_eq!(r.overshoot_intervals(), 3);
        assert!((r.worst_overshoot_watts().value() - 15.0).abs() < 1e-12);
        assert_eq!(r.longest_violation_run(), 2);
    }

    #[test]
    fn no_violations_report_zero() {
        let r = result_with(vec![record(80.0, 90.0, true), record(80.0, 70.0, false)]);
        assert_eq!(r.overshoot_intervals(), 0);
        assert_eq!(r.worst_overshoot_watts(), Watts::ZERO);
        assert_eq!(r.longest_violation_run(), 0);
    }

    #[test]
    fn watchdog_clamps_after_k_violations_and_backs_off() {
        let rails = GuardRails {
            watchdog_k: 2,
            clamp_hold: 1,
            max_backoff: 4,
            ..GuardRails::default()
        };
        let mut state = GuardState {
            rails,
            peaks: vec![60.0, 40.0],
            envelope: 100.0,
            last_good: vec![None; 2],
            violation_streak: 0,
            clean_streak: 0,
            clamp_remaining: 0,
            backoff: rails.clamp_hold,
            clamped: Vec::new(),
            pending_repromote: None,
            actions: Vec::new(),
        };
        let budget = Watts::new(80.0);
        let obs = vec![
            CoreObservation {
                core: CoreId::new(0),
                mode: PowerMode::Turbo,
                power: Watts::new(60.0), // over its 48 W share → offender
                bips: Bips::new(1.0),
                instructions: 0,
            },
            CoreObservation {
                core: CoreId::new(1),
                mode: PowerMode::Turbo,
                power: Watts::new(25.0), // under its 32 W share
                bips: Bips::new(1.0),
                instructions: 0,
            },
        ];

        // Two violated intervals, then the watchdog engages.
        state.account(false, Watts::new(90.0), budget);
        state.account(false, Watts::new(90.0), budget);
        let mut modes = ModeCombination::uniform(2, PowerMode::Turbo);
        assert!(state.shape_decision(3, &mut modes, &obs, budget));
        assert_eq!(modes.as_slice()[0], PowerMode::Eff2);
        assert_eq!(modes.as_slice()[1], PowerMode::Turbo); // not an offender
        assert!(matches!(
            state.actions[0].kind,
            GuardActionKind::WatchdogClamp { ref cores, hold: 1 } if cores == &vec![0]
        ));

        // Hold of 1 expired: next decision records the re-promotion and the
        // backoff has doubled for the next engagement.
        let mut modes = ModeCombination::uniform(2, PowerMode::Turbo);
        assert!(!state.shape_decision(4, &mut modes, &obs, budget));
        assert_eq!(modes.as_slice()[0], PowerMode::Turbo);
        assert!(matches!(
            state.actions[1].kind,
            GuardActionKind::WatchdogRepromote { .. }
        ));
        assert_eq!(state.backoff, 2);

        // Two clean intervals reset the backoff to the base hold.
        state.account(false, Watts::new(70.0), budget);
        state.account(false, Watts::new(70.0), budget);
        assert_eq!(state.backoff, 1);
    }

    #[test]
    fn run_options_constructors() {
        let o = RunOptions::default();
        assert!(o.faults.is_none() && o.guards.is_none());
        let o = RunOptions::guarded();
        assert!(o.faults.is_none() && o.guards.is_some());
        let o = RunOptions::faulted(FaultPlan::parse("dropout@0").unwrap());
        assert!(o.faults.is_some() && o.guards.is_some());
    }
}
