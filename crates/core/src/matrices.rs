//! The Power and BIPS matrices of Section 5.5.

use gpm_cmp::{CoreObservation, TraceCmpSim};
use gpm_power::DvfsParams;
use gpm_types::{Bips, CoreId, Micros, ModeCombination, PowerMode, Watts};

/// N×3 predictions of each core's power and throughput in every mode.
///
/// The predictive construction exploits the useful DVFS property the paper
/// leans on: with linear (V, f) scaling, a core's power in another mode is
/// the observed power rescaled cubically, and its throughput rescaled
/// linearly. For example a core observed in Eff1 with power `P1E1` and
/// throughput `B1E1` is predicted at
///
/// ```text
/// P1T  = P1E1 / 0.95³      B1T  = B1E1 / 0.95
/// P1E2 = P1T  · 0.85³      B1E2 = B1T  · 0.85
/// ```
///
/// These relations are known at design time, so the paper's controller
/// evaluates them in parallel in hardware; here they are a small dense
/// matrix.
///
/// # Examples
///
/// ```
/// use gpm_cmp::CoreObservation;
/// use gpm_core::PowerBipsMatrices;
/// use gpm_types::{Bips, CoreId, PowerMode, Watts};
///
/// let observed = [CoreObservation {
///     core: CoreId::new(0),
///     mode: PowerMode::Eff1,
///     power: Watts::new(17.15),
///     bips: Bips::new(1.9),
///     instructions: 0,
/// }];
/// let m = PowerBipsMatrices::predict(&observed);
/// let p_turbo = m.power(CoreId::new(0), PowerMode::Turbo);
/// assert!((p_turbo.value() - 17.15 / 0.857375).abs() < 1e-9);
/// let b_eff2 = m.bips(CoreId::new(0), PowerMode::Eff2);
/// assert!((b_eff2.value() - 1.9 / 0.95 * 0.85).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBipsMatrices {
    power: Vec<[f64; PowerMode::COUNT]>,
    bips: Vec<[f64; PowerMode::COUNT]>,
}

impl PowerBipsMatrices {
    /// Builds the matrices by scaling per-core observations (the
    /// predictive controller of Section 5.5).
    #[must_use]
    pub fn predict(observed: &[CoreObservation]) -> Self {
        let mut power = Vec::with_capacity(observed.len());
        let mut bips = Vec::with_capacity(observed.len());
        for obs in observed {
            let p_turbo = obs.power.value() / obs.mode.power_scale();
            let b_turbo = obs.bips.value() / obs.mode.bips_scale_bound();
            power.push(PowerMode::ALL.map(|m| p_turbo * m.power_scale()));
            bips.push(PowerMode::ALL.map(|m| b_turbo * m.bips_scale_bound()));
        }
        Self { power, bips }
    }

    /// Builds *oracle* matrices by reading each core's actual per-mode
    /// behaviour over the next explore interval from the traces
    /// (Section 5.6's upper bound; not available to a real controller).
    #[must_use]
    pub fn from_future(sim: &TraceCmpSim) -> Self {
        let cores = sim.cores();
        let mut power = Vec::with_capacity(cores);
        let mut bips = Vec::with_capacity(cores);
        for core in CoreId::all(cores) {
            let mut p_row = [0.0; PowerMode::COUNT];
            let mut b_row = [0.0; PowerMode::COUNT];
            for mode in PowerMode::ALL {
                let (b, p) = sim.peek_future(core, mode);
                p_row[mode.index()] = p.value();
                b_row[mode.index()] = b.value();
            }
            power.push(p_row);
            bips.push(b_row);
        }
        Self { power, bips }
    }

    /// Builds matrices from explicit rows (tests, custom controllers).
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different core counts.
    #[must_use]
    pub fn from_rows(
        power: Vec<[f64; PowerMode::COUNT]>,
        bips: Vec<[f64; PowerMode::COUNT]>,
    ) -> Self {
        assert_eq!(power.len(), bips.len(), "row count mismatch");
        Self { power, bips }
    }

    /// Number of cores covered.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.power.len()
    }

    /// Predicted power of `core` in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn power(&self, core: CoreId, mode: PowerMode) -> Watts {
        Watts::new(self.power[core.value()][mode.index()])
    }

    /// Predicted throughput of `core` in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn bips(&self, core: CoreId, mode: PowerMode) -> Bips {
        Bips::new(self.bips[core.value()][mode.index()])
    }

    /// Whether every power and BIPS cell is finite and non-negative — the
    /// fleet engine's telemetry-validation fast path (one contiguous scan,
    /// no per-cell accessor indirection).
    #[must_use]
    pub fn cells_valid(&self) -> bool {
        let ok = |rows: &[[f64; PowerMode::COUNT]]| {
            rows.iter()
                .flatten()
                .all(|&cell| cell.is_finite() && cell >= 0.0)
        };
        ok(&self.power) && ok(&self.bips)
    }

    /// Predicted total chip power under a mode combination.
    #[must_use]
    pub fn chip_power(&self, combo: &ModeCombination) -> Watts {
        Watts::new(
            combo
                .iter()
                .map(|(core, mode)| self.power[core.value()][mode.index()])
                .sum(),
        )
    }

    /// Predicted total chip throughput under a mode combination, ignoring
    /// transition costs.
    #[must_use]
    pub fn chip_bips(&self, combo: &ModeCombination) -> Bips {
        Bips::new(
            combo
                .iter()
                .map(|(core, mode)| self.bips[core.value()][mode.index()])
                .sum(),
        )
    }

    /// Predicted chip throughput under `to`, de-rated by the GALS
    /// transition stall from `from` — the `500/507`-style scale factors of
    /// Section 5.5, generalised to the chip-wide worst-case transition the
    /// synchronised implementation pays.
    #[must_use]
    pub fn chip_bips_with_transition(
        &self,
        from: &ModeCombination,
        to: &ModeCombination,
        dvfs: &DvfsParams,
        explore: Micros,
    ) -> Bips {
        let stall = from
            .iter()
            .zip(to.iter())
            .map(|((_, a), (_, b))| dvfs.transition_time(a, b))
            .fold(Micros::ZERO, Micros::max);
        let factor = explore.value() / (explore.value() + stall.value());
        self.chip_bips(to) * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(mode: PowerMode, power: f64, bips: f64) -> CoreObservation {
        CoreObservation {
            core: CoreId::new(0),
            mode,
            power: Watts::new(power),
            bips: Bips::new(bips),
            instructions: 0,
        }
    }

    #[test]
    fn predict_from_turbo_observation() {
        let m = PowerBipsMatrices::predict(&[obs(PowerMode::Turbo, 20.0, 2.0)]);
        assert!((m.power(CoreId::new(0), PowerMode::Eff1).value() - 20.0 * 0.857375).abs() < 1e-9);
        assert!((m.power(CoreId::new(0), PowerMode::Eff2).value() - 20.0 * 0.614125).abs() < 1e-9);
        assert!((m.bips(CoreId::new(0), PowerMode::Eff2).value() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn predict_roundtrips_through_any_observed_mode() {
        // Observing the same core in different modes must yield the same
        // matrices (up to float noise) when behaviour is exactly cubic.
        let from_turbo = PowerBipsMatrices::predict(&[obs(PowerMode::Turbo, 20.0, 2.0)]);
        let from_eff2 =
            PowerBipsMatrices::predict(&[obs(PowerMode::Eff2, 20.0 * 0.614125, 2.0 * 0.85)]);
        for mode in PowerMode::ALL {
            let a = from_turbo.power(CoreId::new(0), mode).value();
            let b = from_eff2.power(CoreId::new(0), mode).value();
            assert!((a - b).abs() < 1e-9, "{mode}: {a} vs {b}");
        }
    }

    #[test]
    fn chip_aggregates() {
        let m = PowerBipsMatrices::from_rows(
            vec![[20.0, 17.0, 12.0], [10.0, 8.5, 6.0]],
            vec![[2.0, 1.9, 1.7], [0.5, 0.49, 0.47]],
        );
        let combo = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff2]);
        assert!((m.chip_power(&combo).value() - 26.0).abs() < 1e-12);
        assert!((m.chip_bips(&combo).value() - 2.47).abs() < 1e-12);
        assert_eq!(m.cores(), 2);
    }

    #[test]
    fn transition_derating_matches_paper_factors() {
        let m = PowerBipsMatrices::from_rows(vec![[1.0, 1.0, 1.0]], vec![[1.0, 0.95, 0.85]]);
        let dvfs = DvfsParams::paper();
        let explore = Micros::new(500.0);
        let turbo = ModeCombination::uniform(1, PowerMode::Turbo);
        let eff2 = ModeCombination::uniform(1, PowerMode::Eff2);
        let b = m.chip_bips_with_transition(&turbo, &eff2, &dvfs, explore);
        // B1E2 = B1T · 0.85 · 500/519.5 (the paper rounds to 500/520).
        assert!((b.value() - 0.85 * 500.0 / 519.5).abs() < 1e-9);
        // No transition → no derating.
        let same = m.chip_bips_with_transition(&eff2, &eff2, &dvfs, explore);
        assert!((same.value() - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn from_rows_validates() {
        let _ = PowerBipsMatrices::from_rows(vec![[0.0; 3]], vec![]);
    }
}
