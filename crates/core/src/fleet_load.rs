//! Shared synthetic fleet workload: phase-repeating telemetry for the
//! saturating-load tiers.
//!
//! Three consumers replay exactly the same traffic — the in-process
//! `gpm figure fleet` experiment, the `gpm loadgen` network client and
//! the throughput bench — so the decision streams they produce are
//! directly comparable. The load models a rack of heterogeneous nodes
//! running phase-repeating workloads: nodes belong to [`FAMILIES`]
//! workload families (8-, 16- and 32-way chips in rotation), each family
//! cycles through [`PHASES`] distinct prediction matrices, and nodes
//! within a family are offset in phase — so every tick presents the
//! engine with the full `FAMILIES × PHASES` key population, replicated
//! across the fleet.

use crate::fleet::NodeTelemetry;
use crate::matrices::PowerBipsMatrices;
use gpm_types::{ModeCombination, PowerMode, Watts};

/// Distinct workload families in the synthetic fleet.
pub const FAMILIES: usize = 64;
/// Phases each family cycles through.
pub const PHASES: usize = 4;

/// Precomputed per-(family, phase) decision problems.
pub struct PhaseTables {
    cells: Vec<(PowerBipsMatrices, ModeCombination, Watts)>,
}

impl PhaseTables {
    /// Builds the full `FAMILIES × PHASES` table of decision problems.
    #[must_use]
    pub fn build() -> Self {
        let mut cells = Vec::with_capacity(FAMILIES * PHASES);
        for family in 0..FAMILIES {
            // 8/16/32-way chips in rotation across families.
            let cores = 8usize << (family % 3);
            for phase in 0..PHASES {
                let power: Vec<[f64; 3]> = (0..cores)
                    .map(|i| {
                        let t = 12.0 + ((i * 7 + family * 3 + phase * 5) % 11) as f64 * 1.3;
                        [t, t * 0.55, t * 0.3]
                    })
                    .collect();
                let bips: Vec<[f64; 3]> = (0..cores)
                    .map(|i| {
                        let t = 0.4 + ((i * 5 + family * 2 + phase * 3) % 9) as f64 * 0.35;
                        [t, t * 0.85, t * 0.7]
                    })
                    .collect();
                let budget = Watts::new(0.8 * power.iter().map(|row| row[0]).sum::<f64>());
                cells.push((
                    PowerBipsMatrices::from_rows(power, bips),
                    ModeCombination::uniform(cores, PowerMode::Turbo),
                    budget,
                ));
            }
        }
        Self { cells }
    }

    /// Builds the telemetry for `node` at `tick`: its family's matrix for
    /// the phase the node is currently in. Pure in `(node, tick)`, so
    /// every consumer that replays the same node set over the same ticks
    /// presents the engine with bit-identical reports.
    #[must_use]
    pub fn telemetry(&self, node: u64, tick: u64) -> NodeTelemetry {
        let family = node as usize % FAMILIES;
        let offset = node as usize / FAMILIES;
        let phase = (tick as usize + offset) % PHASES;
        let (matrices, current, budget) = &self.cells[family * PHASES + phase];
        NodeTelemetry {
            node,
            tick,
            matrices: matrices.clone(),
            current: current.clone(),
            budget: *budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_offsets_cycle_within_families() {
        let tables = PhaseTables::build();
        // Same family, offsets a full rotation apart: identical problems.
        let a = tables.telemetry(0, 0);
        let b = tables.telemetry((FAMILIES * PHASES) as u64, 0);
        assert_eq!(a.budget, b.budget);
        // One offset apart = one phase ahead.
        let c = tables.telemetry(FAMILIES as u64, 0);
        let d = tables.telemetry(0, 1);
        assert_eq!(c.budget, d.budget);
    }

    #[test]
    fn families_rotate_chip_widths() {
        let tables = PhaseTables::build();
        assert_eq!(tables.telemetry(0, 0).matrices.cores(), 8);
        assert_eq!(tables.telemetry(1, 0).matrices.cores(), 16);
        assert_eq!(tables.telemetry(2, 0).matrices.cores(), 32);
        assert_eq!(tables.telemetry(3, 0).matrices.cores(), 8);
    }
}
