//! The global CMP power manager — the primary contribution of Isci et al.,
//! MICRO 2006: per-core DVFS mode selection under a chip-wide power budget.
//!
//! # Architecture
//!
//! The [`GlobalManager`] closes the paper's control loop: every
//! `explore_time` (500 µs) it collects per-core power/performance
//! observations from the local monitors (current sensors and performance
//! counters, modelled by `gpm-cmp`), builds the predictive **Power and BIPS
//! matrices** of Section 5.5 ([`PowerBipsMatrices`]) by cubic/linear
//! scaling, asks a [`Policy`] for the next mode assignment, and applies it —
//! paying DVFS transition and GALS synchronisation costs.
//!
//! # Policies
//!
//! * [`MaxBips`] — the paper's headline policy: picks the
//!   highest-throughput of all 3^N mode combinations (with transition
//!   de-rating) that fits the budget. The argmax is computed by the exact
//!   branch-and-bound in [`solver`], bit-identical to the paper's
//!   exhaustive scan but tractable at 16/32 cores.
//! * [`Priority`] — fixed core priorities; slows the lowest-priority core
//!   first, speeds the highest-priority core first.
//! * [`PullHiPushLo`] — power balancing: slows the hottest core, speeds the
//!   coolest.
//! * [`ChipWide`] — uniform chip-wide DVFS, the monolithic baseline.
//! * [`Oracle`] — MaxBIPS with *future* matrices read from the actual
//!   traces (Section 5.6's upper bound).
//! * [`GreedyMaxBips`] — an O(N·modes) incremental search for large core
//!   counts (our scalability extension; the paper notes the superlinear
//!   growth of exhaustive exploration).
//! * [`HierMaxBips`] — the two-level controller for 64–256-way CMPs: a
//!   global water-filling budget arbiter ([`cluster_budgets`]) over
//!   per-cluster exact solves that parallelise on the `gpm-par` pool (our
//!   scalability extension, after "Scaling Turbo Boost to a 1000 cores").
//! * [`MinPower`] — the paper's stated-but-unanalysed dual problem:
//!   minimise power subject to a throughput target (our extension).
//! * [`ThermalGuard`] — wraps any policy with per-core junction-temperature
//!   throttling over an RC thermal model (our extension; the paper's
//!   motivation is thermal but it manages power only).
//! * [`Constant`] — a fixed assignment (baselines and static studies).
//!
//! The optimistic-static lower bound of Section 5.7 is an offline analysis,
//! not a feedback policy: see [`static_oracle`].
//!
//! # Examples
//!
//! ```no_run
//! use gpm_core::{BudgetSchedule, GlobalManager, MaxBips};
//! use gpm_cmp::{SimParams, TraceCmpSim};
//! use gpm_trace::{CaptureConfig, TraceStore};
//! use gpm_workloads::combos;
//!
//! let store = TraceStore::new(CaptureConfig::default());
//! let traces = store.combo(&combos::ammp_mcf_crafty_art())?;
//! let sim = TraceCmpSim::new(traces, SimParams::default())?;
//!
//! let manager = GlobalManager::new();
//! let result = manager.run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.83))?;
//! println!("avg chip power: {:.1}", result.average_chip_power());
//! # Ok::<(), gpm_types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod curves;
mod fleet;
pub mod fleet_load;
mod manager;
mod matrices;
mod metrics;
mod policy;
pub mod static_oracle;

pub use budget::BudgetSchedule;
pub use curves::{
    evaluate_policy_point, sweep_policy, turbo_baseline, CurvePoint, PolicyCurve, DEFAULT_BUDGETS,
};
pub use fleet::{
    node_shard, DegradedConfig, FleetCheckpoint, FleetConfig, FleetEngine, FleetStats,
    NodeDecision, NodeIdHasher, NodeTelemetry, RackConfig, SubmitOutcome, FLEET_CHECKPOINT_VERSION,
};
pub use manager::{
    ExploreRecord, GlobalManager, GuardAction, GuardActionKind, GuardRails, RunOptions, RunResult,
};
pub use matrices::PowerBipsMatrices;
pub use metrics::{throughput_degradation, weighted_slowdown, weighted_speedup_slowdown};
pub use policy::solver;
pub use policy::{
    cluster_budgets, CacheConfig, CacheCounters, CacheSnapshot, CachedMaxBips, ChipWide, Constant,
    DecisionCache, GreedyMaxBips, HierMaxBips, MaxBips, MinPower, Oracle, Policy, PolicyContext,
    Priority, PullHiPushLo, ThermalGuard,
};
