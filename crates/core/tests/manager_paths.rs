//! Manager control-loop edge cases, driven through synthetic traces.

use std::sync::Arc;

use gpm_cmp::{SimParams, TraceCmpSim};
use gpm_core::{
    BudgetSchedule, Constant, GlobalManager, MaxBips, Policy, PolicyContext, RunResult,
};
use gpm_trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm_types::{GpmError, Micros, ModeCombination, PowerMode};

fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let traces = PowerMode::ALL
        .map(|mode| {
            let b = bips * mode.bips_scale_bound();
            let p = power * mode.power_scale();
            let per_delta = b * 1.0e9 * delta_s;
            let samples: Vec<TraceSample> = (1..=4000)
                .map(|k| TraceSample {
                    instructions_end: (per_delta * k as f64).round() as u64,
                    power_w: p,
                    bips: b,
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(name, total, traces).unwrap())
}

fn sim(totals: &[(f64, f64, u64)]) -> TraceCmpSim {
    let traces = totals
        .iter()
        .enumerate()
        .map(|(i, &(bips, power, total))| constant_traces(&format!("b{i}"), total, bips, power))
        .collect();
    TraceCmpSim::new(traces, SimParams::default()).unwrap()
}

#[test]
fn misbehaving_policy_is_surfaced_as_error() {
    struct WrongWidth;
    impl Policy for WrongWidth {
        fn name(&self) -> &str {
            "WrongWidth"
        }
        fn decide(&mut self, _ctx: &PolicyContext<'_>) -> ModeCombination {
            ModeCombination::uniform(7, PowerMode::Turbo) // wrong core count
        }
    }
    let err = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 50_000_000), (1.0, 12.0, 50_000_000)]),
            &mut WrongWidth,
            &BudgetSchedule::constant(0.8),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        GpmError::CoreCountMismatch {
            expected: 2,
            actual: 7
        }
    ));
}

#[test]
fn warmup_interval_is_flagged_and_excluded() {
    let run = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 4_000_000)]),
            &mut Constant::new(ModeCombination::uniform(1, PowerMode::Eff2)),
            &BudgetSchedule::constant(1.0),
        )
        .unwrap();
    assert!(run.records[0].bootstrap);
    assert!(run.records[1..].iter().all(|r| !r.bootstrap));
    // Warm-up ran at Turbo; measured power must reflect the Eff2 steady
    // state only.
    let expected = 20.0 * PowerMode::Eff2.power_scale();
    assert!(
        (run.average_chip_power().value() - expected).abs() < 0.2,
        "steady Eff2 power {} vs expected {expected}",
        run.average_chip_power()
    );
    // Throughput likewise excludes the fast warm-up interval.
    let expected_bips = 2.0 * 0.85;
    assert!((run.average_chip_bips().value() - expected_bips).abs() < 0.02);
}

#[test]
fn run_terminates_exactly_at_first_completion() {
    // Core 0 finishes its 2M instructions at 2 BIPS in 1 ms.
    let run = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 2_000_000), (0.5, 12.0, u64::MAX / 2)]),
            &mut Constant::all_turbo(2),
            &BudgetSchedule::constant(1.0),
        )
        .unwrap();
    let total_time: f64 = run.records.iter().map(|r| r.duration.value()).sum();
    assert!(
        (total_time - 1000.0).abs() < 50.0 + 1e-9,
        "run length {total_time}"
    );
    assert_eq!(run.per_core_instructions.len(), 2);
}

#[test]
fn stall_accounting_accumulates_only_on_changes() {
    // MaxBIPS at a generous budget never leaves Turbo: no stalls after the
    // initial (no-op) assignment.
    let run: RunResult = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 20_000_000), (1.0, 12.0, 20_000_000)]),
            &mut MaxBips::new(),
            &BudgetSchedule::constant(1.0),
        )
        .unwrap();
    assert_eq!(run.total_stall(), Micros::ZERO);
    // A tight budget forces at least one transition.
    let run = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 20_000_000), (1.0, 12.0, 20_000_000)]),
            &mut MaxBips::new(),
            &BudgetSchedule::constant(0.7),
        )
        .unwrap();
    assert!(run.total_stall() > Micros::ZERO);
}

#[test]
fn run_result_json_roundtrip() {
    let run = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 3_000_000), (0.8, 11.0, 3_000_000)]),
            &mut MaxBips::new(),
            &BudgetSchedule::constant(0.85),
        )
        .unwrap();
    let json = run.to_json().unwrap();
    let back = RunResult::from_json(&json).unwrap();
    assert_eq!(back.policy, run.policy);
    assert_eq!(back.per_core_instructions, run.per_core_instructions);
    assert_eq!(back.records.len(), run.records.len());
    assert_eq!(back.records[0].modes, run.records[0].modes);
    assert!(RunResult::from_json("nope").is_err());
}

#[test]
fn benchmarks_and_envelope_are_reported() {
    let run = GlobalManager::new()
        .run(
            sim(&[(2.0, 20.0, 5_000_000), (1.0, 10.0, 5_000_000)]),
            &mut Constant::all_turbo(2),
            &BudgetSchedule::constant(1.0),
        )
        .unwrap();
    assert_eq!(run.benchmarks, vec!["b0", "b1"]);
    assert!((run.envelope.value() - 30.0).abs() < 1e-9);
    assert_eq!(run.policy, "Static[Turbo, Turbo]");
}
