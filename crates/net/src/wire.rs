//! The fleet wire protocol: compact length-prefixed binary frames.
//!
//! Every frame on the wire is a little-endian `u32` payload length
//! followed by exactly that many payload bytes. The payload starts with a
//! version byte ([`WIRE_VERSION`]) and a kind byte, then the kind's body:
//!
//! ```text
//! +----------------+---------+------+------------------------+
//! | len: u32 LE    | version | kind | body (len - 2 bytes)   |
//! +----------------+---------+------+------------------------+
//! ```
//!
//! | kind | frame          | body (all integers/floats little-endian)    |
//! |------|----------------|---------------------------------------------|
//! | 1    | `Telemetry`    | node u64, tick u64, budget f64, cores u32, current modes cores×u8, power cores×3×f64 row-major, bips cores×3×f64 row-major |
//! | 2    | `Decision`     | node u64, tick u64, flags u8 (bit0 = degraded), cores u32, modes cores×u8 |
//! | 3    | `TickEnd`      | tick u64                                    |
//! | 4    | `TickDone`     | tick u64, decisions u64, rejected u64       |
//! | 5    | `StatsRequest` | (empty)                                     |
//! | 6    | `Stats`        | UTF-8 JSON bytes (a `ServeStats` document)  |
//! | 7    | `Shutdown`     | (empty)                                     |
//!
//! Decoding is a single pass over the borrowed receive buffer — scalars
//! are read in place and the owned [`NodeTelemetry`]/[`NodeDecision`]
//! vectors are built directly from the wire bytes with no intermediate
//! frame copy. Every malformed frame is an explicit
//! [`GpmError::Wire`]: truncated payloads, trailing garbage, length
//! prefixes beyond [`MAX_FRAME_BYTES`], foreign version bytes, unknown
//! kinds, out-of-range mode bytes and core counts beyond
//! [`MAX_WIRE_CORES`] are all rejected, never silently repaired.

use std::io::{Read, Write};

use gpm_core::{NodeDecision, NodeTelemetry, PowerBipsMatrices};
use gpm_types::{CoreId, GpmError, ModeCombination, PowerMode, Result, Watts};

/// Protocol version this build speaks; frames carrying any other version
/// byte are rejected.
pub const WIRE_VERSION: u8 = 1;

/// Hard upper bound on a frame payload. A 4096-core telemetry frame is
/// ~200 KiB; anything above 1 MiB is a corrupt or hostile length prefix.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Hard upper bound on per-node core counts accepted off the wire, far
/// above the 256-way nodes the hierarchical tier targets.
pub const MAX_WIRE_CORES: usize = 4096;

const KIND_TELEMETRY: u8 = 1;
const KIND_DECISION: u8 = 2;
const KIND_TICK_END: u8 = 3;
const KIND_TICK_DONE: u8 = 4;
const KIND_STATS_REQUEST: u8 = 5;
const KIND_STATS: u8 = 6;
const KIND_SHUTDOWN: u8 = 7;

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A node's per-tick report (client → server).
    Telemetry(NodeTelemetry),
    /// One node's mode assignment (server → client).
    Decision(NodeDecision),
    /// The client finished submitting tick `tick`; cut the batch.
    TickEnd {
        /// Tick the client finished submitting.
        tick: u64,
    },
    /// The server finished streaming tick `tick`'s decisions.
    TickDone {
        /// Tick the batch was cut for.
        tick: u64,
        /// Decisions streamed for the tick.
        decisions: u64,
        /// Submissions the shard router rejected for the tick
        /// (transport-level backpressure).
        rejected: u64,
    },
    /// Ask the server for its aggregated accounting.
    StatsRequest,
    /// The server's aggregated accounting as a JSON document.
    Stats(String),
    /// Ask the server to stop accepting connections and exit cleanly.
    Shutdown,
}

fn wire_err(msg: impl Into<String>) -> GpmError {
    GpmError::Wire(msg.into())
}

/// A little-endian cursor over a borrowed frame payload. All reads are
/// bounds-checked; running past the payload is a truncation error that
/// names the frame kind.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], kind: &'static str) -> Self {
        Self { buf, pos: 0, kind }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&end| end <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(wire_err(format!(
                "truncated {} frame: body ends at byte {} of {}",
                self.kind,
                self.buf.len(),
                self.pos + n
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// The frame must end exactly here: trailing bytes mean the sender
    /// and receiver disagree about the layout, which is as fatal as
    /// truncation.
    fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(wire_err(format!(
                "oversized {} frame: {} trailing bytes after the body",
                self.kind,
                self.buf.len() - self.pos
            )))
        }
    }

    fn cores(&mut self) -> Result<usize> {
        let cores = self.u32()? as usize;
        if cores == 0 || cores > MAX_WIRE_CORES {
            return Err(wire_err(format!(
                "{} frame core count {cores} outside 1..={MAX_WIRE_CORES}",
                self.kind
            )));
        }
        Ok(cores)
    }

    fn modes(&mut self, cores: usize) -> Result<ModeCombination> {
        let bytes = self.take(cores)?;
        let mut modes = Vec::with_capacity(cores);
        for (i, &byte) in bytes.iter().enumerate() {
            let mode = PowerMode::from_index(byte as usize).ok_or_else(|| {
                wire_err(format!(
                    "{} frame mode byte {byte} for core {i} is not a power mode",
                    self.kind
                ))
            })?;
            modes.push(mode);
        }
        Ok(ModeCombination::new(modes))
    }

    fn rows(&mut self, cores: usize) -> Result<Vec<[f64; 3]>> {
        let mut rows = Vec::with_capacity(cores);
        for _ in 0..cores {
            rows.push([self.f64()?, self.f64()?, self.f64()?]);
        }
        Ok(rows)
    }
}

fn push_modes(out: &mut Vec<u8>, modes: &ModeCombination) {
    out.extend(modes.as_slice().iter().map(|mode| mode.index() as u8));
}

/// Appends one encoded frame (length prefix included) for `payload_len`
/// body bytes produced by `body`.
fn push_frame(out: &mut Vec<u8>, kind: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(WIRE_VERSION);
    out.push(kind);
    body(out);
    let payload_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Appends one encoded `Telemetry` frame to `out`.
pub fn encode_telemetry(telemetry: &NodeTelemetry, out: &mut Vec<u8>) {
    push_frame(out, KIND_TELEMETRY, |out| {
        out.extend_from_slice(&telemetry.node.to_le_bytes());
        out.extend_from_slice(&telemetry.tick.to_le_bytes());
        out.extend_from_slice(&telemetry.budget.value().to_le_bytes());
        let cores = telemetry.matrices.cores();
        out.extend_from_slice(&(cores as u32).to_le_bytes());
        push_modes(out, &telemetry.current);
        for core in 0..cores {
            for mode in PowerMode::ALL {
                let watts = telemetry.matrices.power(CoreId::new(core), mode);
                out.extend_from_slice(&watts.value().to_le_bytes());
            }
        }
        for core in 0..cores {
            for mode in PowerMode::ALL {
                let bips = telemetry.matrices.bips(CoreId::new(core), mode);
                out.extend_from_slice(&bips.value().to_le_bytes());
            }
        }
    });
}

/// Appends one encoded `Decision` frame to `out`.
pub fn encode_decision(decision: &NodeDecision, out: &mut Vec<u8>) {
    push_frame(out, KIND_DECISION, |out| {
        out.extend_from_slice(&decision.node.to_le_bytes());
        out.extend_from_slice(&decision.tick.to_le_bytes());
        out.push(u8::from(decision.degraded));
        out.extend_from_slice(&(decision.modes.len() as u32).to_le_bytes());
        push_modes(out, &decision.modes);
    });
}

/// Appends one encoded `TickEnd` frame to `out`.
pub fn encode_tick_end(tick: u64, out: &mut Vec<u8>) {
    push_frame(out, KIND_TICK_END, |out| {
        out.extend_from_slice(&tick.to_le_bytes());
    });
}

/// Appends one encoded `TickDone` frame to `out`.
pub fn encode_tick_done(tick: u64, decisions: u64, rejected: u64, out: &mut Vec<u8>) {
    push_frame(out, KIND_TICK_DONE, |out| {
        out.extend_from_slice(&tick.to_le_bytes());
        out.extend_from_slice(&decisions.to_le_bytes());
        out.extend_from_slice(&rejected.to_le_bytes());
    });
}

/// Appends one encoded `StatsRequest` frame to `out`.
pub fn encode_stats_request(out: &mut Vec<u8>) {
    push_frame(out, KIND_STATS_REQUEST, |_| {});
}

/// Appends one encoded `Stats` frame to `out`.
pub fn encode_stats(json: &str, out: &mut Vec<u8>) {
    push_frame(out, KIND_STATS, |out| {
        out.extend_from_slice(json.as_bytes());
    });
}

/// Appends one encoded `Shutdown` frame to `out`.
pub fn encode_shutdown(out: &mut Vec<u8>) {
    push_frame(out, KIND_SHUTDOWN, |_| {});
}

/// Appends any [`Frame`] to `out` (the per-kind encoders composed).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Telemetry(telemetry) => encode_telemetry(telemetry, out),
        Frame::Decision(decision) => encode_decision(decision, out),
        Frame::TickEnd { tick } => encode_tick_end(*tick, out),
        Frame::TickDone {
            tick,
            decisions,
            rejected,
        } => encode_tick_done(*tick, *decisions, *rejected, out),
        Frame::StatsRequest => encode_stats_request(out),
        Frame::Stats(json) => encode_stats(json, out),
        Frame::Shutdown => encode_shutdown(out),
    }
}

/// Decodes one frame payload (the bytes after the length prefix).
///
/// # Errors
///
/// Rejects foreign version bytes, unknown kinds, truncated bodies,
/// trailing bytes, out-of-range core counts and mode bytes — every
/// failure a [`GpmError::Wire`] naming the offending frame.
pub fn decode_frame(payload: &[u8]) -> Result<Frame> {
    if payload.len() < 2 {
        return Err(wire_err(format!(
            "frame payload of {} bytes cannot hold version and kind",
            payload.len()
        )));
    }
    let version = payload[0];
    if version != WIRE_VERSION {
        return Err(wire_err(format!(
            "foreign protocol version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    let kind = payload[1];
    let body = &payload[2..];
    match kind {
        KIND_TELEMETRY => {
            let mut c = Cursor::new(body, "telemetry");
            let node = c.u64()?;
            let tick = c.u64()?;
            let budget = Watts::new(c.f64()?);
            let cores = c.cores()?;
            let current = c.modes(cores)?;
            let power = c.rows(cores)?;
            let bips = c.rows(cores)?;
            c.finish()?;
            Ok(Frame::Telemetry(NodeTelemetry {
                node,
                tick,
                matrices: PowerBipsMatrices::from_rows(power, bips),
                current,
                budget,
            }))
        }
        KIND_DECISION => {
            let mut c = Cursor::new(body, "decision");
            let node = c.u64()?;
            let tick = c.u64()?;
            let flags = c.u8()?;
            if flags > 1 {
                return Err(wire_err(format!(
                    "decision frame flags byte {flags} has unknown bits set"
                )));
            }
            let cores = c.cores()?;
            let modes = c.modes(cores)?;
            c.finish()?;
            Ok(Frame::Decision(NodeDecision {
                node,
                tick,
                modes,
                degraded: flags & 1 == 1,
            }))
        }
        KIND_TICK_END => {
            let mut c = Cursor::new(body, "tick-end");
            let tick = c.u64()?;
            c.finish()?;
            Ok(Frame::TickEnd { tick })
        }
        KIND_TICK_DONE => {
            let mut c = Cursor::new(body, "tick-done");
            let tick = c.u64()?;
            let decisions = c.u64()?;
            let rejected = c.u64()?;
            c.finish()?;
            Ok(Frame::TickDone {
                tick,
                decisions,
                rejected,
            })
        }
        KIND_STATS_REQUEST => {
            Cursor::new(body, "stats-request").finish()?;
            Ok(Frame::StatsRequest)
        }
        KIND_STATS => {
            let json =
                std::str::from_utf8(body).map_err(|_| wire_err("stats frame body is not UTF-8"))?;
            Ok(Frame::Stats(json.to_owned()))
        }
        KIND_SHUTDOWN => {
            Cursor::new(body, "shutdown").finish()?;
            Ok(Frame::Shutdown)
        }
        other => Err(wire_err(format!("unknown frame kind {other}"))),
    }
}

/// Buffered frame reader over any byte stream. The payload buffer is
/// reused across frames, so steady-state reads allocate only for the
/// decoded frame's own vectors.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
        }
    }

    /// Reads the next frame. `Ok(None)` is a clean end-of-stream at a
    /// frame boundary; EOF inside a frame is a truncation error.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and every [`decode_frame`]
    /// rejection, plus length prefixes beyond [`MAX_FRAME_BYTES`].
    pub fn read(&mut self) -> Result<Option<Frame>> {
        let mut len_bytes = [0u8; 4];
        match self.inner.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(err) => return Err(wire_err(format!("reading frame length: {err}"))),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(wire_err(format!(
                "frame length prefix {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        self.buf.resize(len, 0);
        self.inner.read_exact(&mut self.buf).map_err(|err| {
            wire_err(format!(
                "frame truncated mid-payload ({len} bytes expected): {err}"
            ))
        })?;
        decode_frame(&self.buf).map(Some)
    }
}

/// Writes `frames` bytes (one or more encoded frames) to a stream.
///
/// # Errors
///
/// Propagates transport failures as [`GpmError::Wire`].
pub fn write_all(writer: &mut impl Write, frames: &[u8]) -> Result<()> {
    writer
        .write_all(frames)
        .and_then(|()| writer.flush())
        .map_err(|err| wire_err(format!("writing frames: {err}")))
}
