//! The fleet decision *service*: the network layer in front of the
//! in-process [`FleetEngine`](gpm_core::FleetEngine).
//!
//! The ROADMAP's fleet north-star is GPM as a long-running service under
//! heavy traffic. PRs 8–9 built the in-process half; this crate adds the
//! wire: a compact length-prefixed binary protocol ([`wire`]), a sharded
//! thread-per-shard server ([`server`], [`shard`]) and a loadgen client
//! ([`loadgen`]) that replays the same phase-repeating synthetic fleet
//! as the in-process tier.
//!
//! Why shard: a single engine's tick runs serial leader cache probes and
//! a serial miss-insert replay. "Scaling Turbo Boost to a 1000 cores"
//! makes the argument at the chip level that applies here at the fleet
//! level — a flat single-arbiter manager stops scaling. [`node_shard`]
//! (one splitmix64 finalizer round modulo the shard count,
//! re-exported from `gpm_core`) routes each node to a shard-pinned
//! engine, so K shards run K serial sections concurrently while every
//! determinism pin of the engine survives (see [`shard`] for the
//! argument).
//!
//! Transport is `std::net` TCP plus Unix-domain sockets only, consistent
//! with the workspace's vendored-offline policy: no async runtime, no
//! network dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod server;
pub mod shard;
pub mod wire;

pub use gpm_core::node_shard;
pub use loadgen::{LoadgenOptions, LoadgenReport};
pub use server::{connect, ClientStream, Endpoint, ServeOptions, ServeStats, ServeSummary, Server};
pub use shard::ShardedEngine;
pub use wire::{
    decode_frame, encode_frame, Frame, FrameReader, MAX_FRAME_BYTES, MAX_WIRE_CORES, WIRE_VERSION,
};
