//! The sharded decision engine: node-id → shard routing over
//! thread-pinned [`FleetEngine`]s.
//!
//! Each shard is a worker thread owning a private engine — private
//! decision cache, private bounded ingest queue — fed by a bounded
//! chunked conveyor: the router buffers accepted reports and ships them
//! in [`ROUTER_CHUNK`]-sized batches, so a 10k-node tick costs a
//! handful of channel messages instead of one per node. The PR 8
//! backpressure semantics survive the hop: the router counts reports
//! accepted per shard since the last tick cut against the engine's own
//! `queue_capacity` and rejects the overflow with the same `retry_at`
//! advice the engine itself would give — a pure function of the
//! submission sequence, independent of worker drain speed. A tick
//! barrier ([`ShardedEngine::run_tick`]) flushes the conveyors,
//! broadcasts the tick cut to every shard, lets the per-shard batches
//! decide in parallel, then collects decisions in shard order.
//!
//! At **one shard** there is no cross-shard parallelism to win, so the
//! conveyor hop would be pure tax (~8% of a 10k-node tick on one core:
//! the extra telemetry moves plus producer/worker switching). A 1-shard
//! engine therefore runs inline on the caller's thread — same engine,
//! same submission order, bit-identical decisions — and submissions get
//! the engine's own richer outcome (validation failures and
//! backoff-aware retry hints surface synchronously).
//!
//! # Determinism
//!
//! Shard assignment is [`node_shard`] — one splitmix64 finalizer round
//! modulo the shard count, a pure function of the node id. Within a
//! shard, submissions arrive in client order (conveyor FIFO, inline
//! call order at one shard) and the engine's own tick protocol is
//! pool-width independent, so for a fixed shard count the per-node
//! decision stream is bit-identical across `GPM_THREADS` settings and
//! transports. Across *different* shard counts the per-node stream is
//! still invariant (sharding only changes which cache answers a node,
//! and exact-keyed cache hits are bit-identical to fresh solves) —
//! unless a rack budget is configured: rack shedding reacts to the
//! co-resident nodes of the same engine, so rack-armed decisions are
//! deterministic per shard count but not invariant across shard counts.

use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

use gpm_core::{
    node_shard, FleetCheckpoint, FleetConfig, FleetEngine, FleetStats, NodeDecision, NodeTelemetry,
    SubmitOutcome,
};
use gpm_types::{Result, Watts};

/// Reports per conveyor batch. Chunking keeps the channel cost per tick
/// at a handful of sends instead of one per node (the per-message hop
/// was worth ~15% of a 10k-node tick on one core, and every handoff to
/// a parked worker is a potential context switch) while still letting
/// the shard start validating long batches before the tick is cut.
const ROUTER_CHUNK: usize = 4096;

enum ShardMsg {
    Submit(Vec<NodeTelemetry>),
    Tick(u64),
    Stats,
    Checkpoint,
    SetRackBudget(Option<Watts>),
    Stop,
}

enum ShardReply {
    Tick(Vec<NodeDecision>),
    Stats(FleetStats),
    Checkpoint(FleetCheckpoint),
}

struct Shard {
    sender: SyncSender<ShardMsg>,
    replies: Receiver<ShardReply>,
    worker: Option<JoinHandle<()>>,
    /// Reports accepted but not yet conveyed (partial chunk).
    buffer: Vec<NodeTelemetry>,
    /// Reports accepted since the last tick cut — the router's bounded
    /// ingest window, checked against `capacity` so transport
    /// backpressure is a pure function of the submission sequence, not
    /// of how fast the worker drains.
    queued: usize,
    /// The shard engine's `queue_capacity`.
    capacity: usize,
}

impl Shard {
    /// Conveys the buffered chunk to the worker. The channel is sized so
    /// a within-capacity tick never fills it; a full or disconnected
    /// channel (worker died) surfaces as `false`.
    fn flush(&mut self) -> bool {
        if self.buffer.is_empty() {
            return true;
        }
        let chunk = std::mem::replace(&mut self.buffer, Vec::with_capacity(ROUTER_CHUNK));
        self.sender.send(ShardMsg::Submit(chunk)).is_ok()
    }
}

enum Backend {
    /// One shard: the engine runs on the caller's thread.
    Inline(Box<FleetEngine>),
    /// Two or more shards: thread-pinned engines behind conveyors.
    Threaded(Vec<Shard>),
}

/// K shard-pinned [`FleetEngine`]s behind a node-id router (the engine
/// runs inline, conveyor-free, at K = 1).
pub struct ShardedEngine {
    backend: Backend,
    next_tick: u64,
    router_rejected: u64,
}

fn worker_main(
    mut engine: FleetEngine,
    inbox: Receiver<ShardMsg>,
    replies: SyncSender<ShardReply>,
) {
    while let Ok(msg) = inbox.recv() {
        let reply = match msg {
            ShardMsg::Submit(chunk) => {
                // Outcomes land in the engine's own accounting
                // (rejected_invalid / rejected_backpressure); the router's
                // ingest window already applied the transport-level
                // backpressure.
                for telemetry in chunk {
                    engine.try_submit(telemetry);
                }
                continue;
            }
            ShardMsg::Tick(now) => ShardReply::Tick(engine.run_tick(now)),
            ShardMsg::Stats => ShardReply::Stats(engine.stats()),
            ShardMsg::Checkpoint => ShardReply::Checkpoint(engine.checkpoint()),
            ShardMsg::SetRackBudget(budget) => {
                engine.set_rack_budget(budget);
                continue;
            }
            ShardMsg::Stop => break,
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
}

impl ShardedEngine {
    /// Builds `shards` engines from per-shard configs. At one shard the
    /// engine runs inline; otherwise each is pinned to a worker thread.
    /// Engines are constructed on the caller's thread either way, so
    /// config errors surface synchronously.
    ///
    /// # Errors
    ///
    /// Rejects a zero shard count and propagates engine-config errors.
    pub fn new(configs: Vec<FleetConfig>) -> Result<Self> {
        Self::from_engines(
            configs
                .into_iter()
                .map(FleetEngine::new)
                .collect::<Result<Vec<_>>>()?,
        )
    }

    /// [`ShardedEngine::new`] with the same config cloned to every shard.
    ///
    /// # Errors
    ///
    /// Rejects a zero shard count and propagates engine-config errors.
    pub fn homogeneous(config: &FleetConfig, shards: usize) -> Result<Self> {
        Self::new(vec![config.clone(); shards])
    }

    /// Restores every shard from its checkpoint (one per shard, in shard
    /// order), resuming bit-identically per the engine's own guarantee.
    ///
    /// # Errors
    ///
    /// Rejects a zero shard count and propagates per-shard restore
    /// errors (version/config-fingerprint mismatches).
    pub fn restore(config: &FleetConfig, checkpoints: &[FleetCheckpoint]) -> Result<Self> {
        Self::from_engines(
            checkpoints
                .iter()
                .map(|checkpoint| FleetEngine::restore(config.clone(), checkpoint))
                .collect::<Result<Vec<_>>>()?,
        )
    }

    fn from_engines(mut engines: Vec<FleetEngine>) -> Result<Self> {
        if engines.is_empty() {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "serve.shards",
                reason: "the sharded engine needs at least one shard".into(),
            });
        }
        let backend = if engines.len() == 1 {
            Backend::Inline(Box::new(engines.pop().expect("length checked")))
        } else {
            Backend::Threaded(
                engines
                    .into_iter()
                    .map(|engine| {
                        let capacity = engine.config().queue_capacity;
                        // Sized in chunks so one full ingest window
                        // (`capacity` reports) plus its partial tail and
                        // the tick cut always fit without blocking: the
                        // bound on queued *reports* is the router's
                        // `queued` counter, not the channel.
                        let messages = capacity.div_ceil(ROUTER_CHUNK) + 2;
                        let (sender, inbox) = std::sync::mpsc::sync_channel(messages);
                        let (reply_sender, replies) = std::sync::mpsc::sync_channel(1);
                        let worker =
                            std::thread::spawn(move || worker_main(engine, inbox, reply_sender));
                        Shard {
                            sender,
                            replies,
                            worker: Some(worker),
                            buffer: Vec::with_capacity(ROUTER_CHUNK),
                            queued: 0,
                            capacity,
                        }
                    })
                    .collect(),
            )
        };
        Ok(Self {
            backend,
            next_tick: 0,
            router_rejected: 0,
        })
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.backend {
            Backend::Inline(_) => 1,
            Backend::Threaded(shards) => shards.len(),
        }
    }

    /// Submissions the router rejected because a shard's ingest window
    /// was exhausted. Always zero at one shard: the inline engine
    /// accounts its own rejections (`rejected_backpressure`).
    #[must_use]
    pub fn router_rejected(&self) -> u64 {
        self.router_rejected
    }

    /// Routes one report to its node's shard. A shard whose ingest
    /// window (its engine's `queue_capacity`, counted since the last
    /// tick cut) is exhausted rejects the report with the next tick as
    /// the retry advice, mirroring the engine's own bounded-queue
    /// semantics — and because the window is a counter, not a race
    /// against the worker's drain speed, the rejection pattern is a pure
    /// function of the submission sequence. Validation happens on the
    /// shard; an invalid report is accepted here and counted in the
    /// shard's `rejected_invalid`. Accepted reports travel to the worker
    /// in [`ROUTER_CHUNK`]-sized batches.
    ///
    /// At one shard the report goes straight to the inline engine and
    /// its own [`SubmitOutcome`] (including validation failures and
    /// backoff-aware retry hints) is returned directly.
    pub fn try_submit(&mut self, telemetry: NodeTelemetry) -> SubmitOutcome {
        let shards = match &mut self.backend {
            Backend::Inline(engine) => return engine.try_submit(telemetry),
            Backend::Threaded(shards) => shards,
        };
        let index = node_shard(telemetry.node, shards.len());
        let shard = &mut shards[index];
        if shard.queued >= shard.capacity {
            self.router_rejected += 1;
            return SubmitOutcome::Rejected {
                retry_at: self.next_tick + 1,
            };
        }
        shard.queued += 1;
        shard.buffer.push(telemetry);
        if shard.buffer.len() >= ROUTER_CHUNK && !shard.flush() {
            self.router_rejected += 1;
            return SubmitOutcome::Rejected {
                retry_at: self.next_tick + 1,
            };
        }
        SubmitOutcome::Accepted
    }

    /// Cuts the tick on every shard and collects decisions in shard
    /// order. The barrier broadcasts first, so shards decide their
    /// batches in parallel; the collection order (shard 0, 1, …) keeps
    /// the concatenated stream deterministic for a fixed shard count.
    pub fn run_tick(&mut self, now: u64) -> Vec<NodeDecision> {
        self.next_tick = now + 1;
        let shards = match &mut self.backend {
            Backend::Inline(engine) => return engine.run_tick(now),
            Backend::Threaded(shards) => shards,
        };
        for shard in shards.iter_mut() {
            shard.flush();
            shard.queued = 0;
            let _ = shard.sender.send(ShardMsg::Tick(now));
        }
        let mut decisions = Vec::new();
        for shard in shards.iter() {
            if let Ok(ShardReply::Tick(batch)) = shard.replies.recv() {
                if decisions.is_empty() {
                    // Shard 0's batch is kept, not copied: only the later
                    // shards' few hundred KB are appended.
                    decisions = batch;
                } else {
                    decisions.extend(batch);
                }
            }
        }
        decisions
    }

    /// Aggregated accounting: every shard's [`FleetStats`] merged
    /// (counters summed, running maxima maxed).
    pub fn stats(&mut self) -> FleetStats {
        let shards = match &mut self.backend {
            Backend::Inline(engine) => return engine.stats(),
            Backend::Threaded(shards) => shards,
        };
        let mut merged = FleetStats::default();
        for shard in shards.iter_mut() {
            shard.flush();
            let _ = shard.sender.send(ShardMsg::Stats);
        }
        for shard in shards.iter() {
            if let Ok(ShardReply::Stats(stats)) = shard.replies.recv() {
                merged.merge(&stats);
            }
        }
        merged
    }

    /// One checkpoint per shard, in shard order — the restore-side
    /// counterpart is [`ShardedEngine::restore`].
    pub fn checkpoint(&mut self) -> Vec<FleetCheckpoint> {
        let shards = match &mut self.backend {
            Backend::Inline(engine) => return vec![engine.checkpoint()],
            Backend::Threaded(shards) => shards,
        };
        for shard in shards.iter_mut() {
            shard.flush();
            let _ = shard.sender.send(ShardMsg::Checkpoint);
        }
        let mut checkpoints = Vec::with_capacity(shards.len());
        for shard in shards.iter() {
            if let Ok(ShardReply::Checkpoint(checkpoint)) = shard.replies.recv() {
                checkpoints.push(checkpoint);
            }
        }
        checkpoints
    }

    /// Re-arms every shard's rack budget (each shard gets the given
    /// budget as-is; the server divides a whole-rack budget by the shard
    /// count before calling this).
    pub fn set_rack_budget(&mut self, budget: Option<Watts>) {
        let shards = match &mut self.backend {
            Backend::Inline(engine) => return engine.set_rack_budget(budget),
            Backend::Threaded(shards) => shards,
        };
        for shard in shards.iter_mut() {
            shard.flush();
            let _ = shard.sender.send(ShardMsg::SetRackBudget(budget));
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        let shards = match &mut self.backend {
            Backend::Inline(_) => return,
            Backend::Threaded(shards) => shards,
        };
        for shard in shards.iter() {
            let _ = shard.sender.send(ShardMsg::Stop);
        }
        for shard in shards.iter_mut() {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}
