//! The `gpm loadgen` client: drives a serve endpoint with the same
//! phase-repeating synthetic fleet the in-process tier replays
//! ([`gpm_core::fleet_load`]), so a loadgen report and a
//! `gpm figure fleet --json` report describe the same traffic and can be
//! diffed by scripts.
//!
//! Each tick: encode every node's telemetry, send it with a `TickEnd`
//! cut, then read decisions until the server's `TickDone`. A warm epoch
//! of [`PHASES`] ticks populates the shard caches and is excluded from
//! measurement, exactly like the in-process tier; the measured epoch
//! reports sustained decisions/s and p50/p99 per-tick latency.

use std::io::{BufReader, BufWriter};
use std::time::Instant;

use gpm_core::fleet_load::{PhaseTables, PHASES};
use gpm_types::{GpmError, Result};
use serde::Serialize;

use crate::server::{connect, Endpoint};
use crate::wire::{
    encode_shutdown, encode_stats_request, encode_telemetry, encode_tick_end, write_all, Frame,
    FrameReader,
};

/// Loadgen run shape.
pub struct LoadgenOptions {
    /// Nodes submitted per tick.
    pub nodes: usize,
    /// Measured ticks (a [`PHASES`]-tick warm epoch runs first).
    pub ticks: usize,
    /// Send a `Shutdown` frame when done, stopping the server.
    pub shutdown: bool,
}

/// What one loadgen run measured (measured epoch only).
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Nodes submitted per tick.
    pub nodes: usize,
    /// Measured ticks.
    pub ticks: usize,
    /// Decisions received during the measured epoch.
    pub decisions: u64,
    /// Submissions the shard router rejected during the measured epoch.
    pub rejected: u64,
    /// Wall seconds the measured epoch took.
    pub elapsed_seconds: f64,
    /// Sustained decisions per second over the measured epoch.
    pub decisions_per_sec: f64,
    /// Median per-tick latency (submit-to-`TickDone`), milliseconds.
    pub p50_tick_ms: f64,
    /// 99th-percentile per-tick latency, milliseconds.
    pub p99_tick_ms: f64,
    /// The server's aggregated accounting (a `ServeStats` JSON
    /// document), fetched after the measured epoch.
    pub server_stats: String,
}

/// Submits one tick's telemetry, cuts it and drains the decision stream
/// until the server's `TickDone`; returns `(decisions, rejected)`.
fn drive_tick(
    tables: &PhaseTables,
    nodes: usize,
    tick: u64,
    out: &mut Vec<u8>,
    writer: &mut BufWriter<crate::server::ClientStream>,
    reader: &mut FrameReader<BufReader<crate::server::ClientStream>>,
) -> Result<(u64, u64)> {
    out.clear();
    for node in 0..nodes as u64 {
        encode_telemetry(&tables.telemetry(node, tick), out);
    }
    encode_tick_end(tick, out);
    write_all(writer, out)?;
    let mut decisions = 0u64;
    loop {
        match reader.read()? {
            Some(Frame::Decision(_)) => decisions += 1,
            Some(Frame::TickDone {
                tick: done_tick,
                rejected,
                ..
            }) => {
                if done_tick != tick {
                    return Err(GpmError::Wire(format!(
                        "tick-done for tick {done_tick} while driving tick {tick}"
                    )));
                }
                return Ok((decisions, rejected));
            }
            Some(other) => {
                return Err(GpmError::Wire(format!(
                    "unexpected frame {other:?} while awaiting tick {tick}"
                )));
            }
            None => {
                return Err(GpmError::Wire(format!(
                    "server closed the stream mid-tick {tick}"
                )));
            }
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the load: `nodes × (PHASES + ticks)` telemetry frames against
/// `endpoint`, measuring the post-warm epoch.
///
/// # Errors
///
/// Rejects degenerate sizes; propagates connect, transport and protocol
/// errors.
pub fn run(endpoint: &Endpoint, options: &LoadgenOptions) -> Result<LoadgenReport> {
    if options.nodes == 0 || options.ticks == 0 {
        return Err(GpmError::InvalidConfig {
            parameter: "loadgen.size",
            reason: "loadgen needs at least one node and one tick".into(),
        });
    }
    let tables = PhaseTables::build();
    let stream = connect(endpoint)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = FrameReader::new(BufReader::new(stream));
    let mut out = Vec::new();

    // Warm epoch: one full phase rotation populates the shard caches.
    for tick in 0..PHASES as u64 {
        drive_tick(
            &tables,
            options.nodes,
            tick,
            &mut out,
            &mut writer,
            &mut reader,
        )?;
    }

    let mut decisions = 0u64;
    let mut rejected = 0u64;
    let mut tick_ms = Vec::with_capacity(options.ticks);
    let start = Instant::now();
    for tick in 0..options.ticks as u64 {
        let tick_start = Instant::now();
        let (got, rej) = drive_tick(
            &tables,
            options.nodes,
            PHASES as u64 + tick,
            &mut out,
            &mut writer,
            &mut reader,
        )?;
        tick_ms.push(tick_start.elapsed().as_secs_f64() * 1e3);
        decisions += got;
        rejected += rej;
    }
    let elapsed_seconds = start.elapsed().as_secs_f64();

    // Fetch the server's view of the run before (optionally) stopping it.
    out.clear();
    encode_stats_request(&mut out);
    write_all(&mut writer, &out)?;
    let server_stats = match reader.read()? {
        Some(Frame::Stats(json)) => json,
        other => {
            return Err(GpmError::Wire(format!(
                "expected a stats frame, got {other:?}"
            )));
        }
    };
    if options.shutdown {
        out.clear();
        encode_shutdown(&mut out);
        write_all(&mut writer, &out)?;
    }

    tick_ms.sort_by(f64::total_cmp);
    Ok(LoadgenReport {
        nodes: options.nodes,
        ticks: options.ticks,
        decisions,
        rejected,
        elapsed_seconds,
        decisions_per_sec: if elapsed_seconds > 0.0 {
            decisions as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_tick_ms: percentile(&tick_ms, 0.50),
        p99_tick_ms: percentile(&tick_ms, 0.99),
        server_stats,
    })
}

impl LoadgenReport {
    /// Human-readable rendering for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "Loadgen: {} nodes x {} ticks over the wire\n\
             decisions       {:>12}   sustained {:.0} decisions/s\n\
             tick latency    {:>9.3}ms p50, {:.3}ms p99\n\
             rejected        {:>12}   (router backpressure)\n",
            self.nodes,
            self.ticks,
            self.decisions,
            self.decisions_per_sec,
            self.p50_tick_ms,
            self.p99_tick_ms,
            self.rejected,
        )
    }

    /// Machine-readable rendering for `--json` (the server's own stats
    /// document embedded as a string field).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LoadgenReport serializes")
    }
}
