//! The `gpm serve` server: a listener (TCP or Unix socket) in front of a
//! [`ShardedEngine`].
//!
//! Connections are served sequentially — one loadgen client drives one
//! tick stream at a time, which is the fleet protocol's natural shape
//! (telemetry is batched per tick and the tick barrier is global). The
//! shutdown path is protocol-level: a `Shutdown` frame stops the server
//! after the current connection, and `--once` stops it after the first
//! client disconnects, so scripts get a clean exit without any signal
//! handling.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use gpm_core::{FleetConfig, FleetStats};
use gpm_types::{GpmError, Result};
use serde::Serialize;

use crate::shard::ShardedEngine;
use crate::wire::{encode_decision, encode_stats, encode_tick_done, write_all, Frame, FrameReader};

/// Where the server listens or the client connects: `tcp:HOST:PORT`,
/// `unix:PATH`, or a bare `HOST:PORT` (TCP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint spec.
    ///
    /// # Errors
    ///
    /// Rejects empty hosts/paths.
    pub fn parse(spec: &str) -> Result<Self> {
        let reject = |reason: &str| {
            Err(GpmError::InvalidConfig {
                parameter: "endpoint",
                reason: format!("`{spec}`: {reason}"),
            })
        };
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return reject("unix endpoint needs a socket path");
            }
            return Ok(Self::Unix(PathBuf::from(path)));
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        if addr.is_empty() || !addr.contains(':') {
            return reject("tcp endpoint needs host:port");
        }
        Ok(Self::Tcp(addr.to_owned()))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(addr) => write!(f, "tcp:{addr}"),
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Aggregated service accounting, the JSON body of a `Stats` frame.
#[derive(Debug, Clone, Serialize)]
pub struct ServeStats {
    /// Shard count the server runs with.
    pub shards: usize,
    /// Submissions rejected at the shard router (exhausted per-shard
    /// ingest window).
    pub router_rejected: u64,
    /// Every shard's engine accounting, merged.
    pub fleet: FleetStats,
}

/// Server configuration beyond the [`FleetConfig`] each shard gets.
pub struct ServeOptions {
    /// Shard count (engines and worker threads). Must be at least 1.
    pub shards: usize,
    /// Per-shard engine configuration. A whole-rack budget should be
    /// divided by `shards` before it goes in here (the CLI does this),
    /// since every shard enforces its rack config independently.
    pub config: FleetConfig,
    /// Exit after the first client disconnects (scripted smoke runs).
    pub once: bool,
}

/// What the server did before exiting cleanly.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSummary {
    /// Connections served.
    pub connections: u64,
    /// Ticks cut across all connections.
    pub ticks: u64,
    /// Decisions streamed across all connections.
    pub decisions: u64,
    /// Final aggregated accounting.
    pub stats: ServeStats,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound fleet decision server. Binding and running are split so
/// callers (the CLI, tests, CI scripts) can learn the actual bound
/// address — `tcp:host:0` binds an ephemeral port — before serving.
pub struct Server {
    listener: Listener,
    engine: ShardedEngine,
    once: bool,
}

fn io_err(context: &str, err: std::io::Error) -> GpmError {
    GpmError::Wire(format!("{context}: {err}"))
}

impl Server {
    /// Binds the endpoint and spins up the sharded engine.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, a zero shard count and engine-config
    /// errors. An existing file at a Unix socket path is removed first
    /// (stale socket from a previous run).
    pub fn bind(endpoint: &Endpoint, options: ServeOptions) -> Result<Self> {
        let engine = ShardedEngine::homogeneous(&options.config, options.shards)?;
        let listener = match endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(
                TcpListener::bind(addr.as_str())
                    .map_err(|err| io_err(&format!("binding tcp:{addr}"), err))?,
            ),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(|err| io_err("removing stale unix socket", err))?;
                }
                Listener::Unix(
                    UnixListener::bind(path)
                        .map_err(|err| io_err(&format!("binding unix:{}", path.display()), err))?,
                    path.clone(),
                )
            }
        };
        Ok(Self {
            listener,
            engine,
            once: options.once,
        })
    }

    /// The actually-bound endpoint (ephemeral TCP ports resolved).
    #[must_use]
    pub fn local_endpoint(&self) -> Endpoint {
        match &self.listener {
            Listener::Tcp(listener) => Endpoint::Tcp(
                listener
                    .local_addr()
                    .map(|addr| addr.to_string())
                    .unwrap_or_default(),
            ),
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
        }
    }

    /// Serves connections sequentially until a `Shutdown` frame arrives
    /// (or, with `once`, until the first client disconnects).
    ///
    /// # Errors
    ///
    /// Propagates accept failures; per-connection protocol errors end
    /// that connection (the offending peer cannot be trusted to resync a
    /// length-prefixed stream) but not the server.
    pub fn run(mut self) -> Result<ServeSummary> {
        let mut connections = 0u64;
        let mut ticks = 0u64;
        let mut decisions = 0u64;
        let mut shutdown = false;
        while !shutdown {
            let outcome = match &self.listener {
                Listener::Tcp(listener) => {
                    let (stream, _) = listener
                        .accept()
                        .map_err(|err| io_err("accepting tcp connection", err))?;
                    serve_connection(stream, &mut self.engine)
                }
                Listener::Unix(listener, _) => {
                    let (stream, _) = listener
                        .accept()
                        .map_err(|err| io_err("accepting unix connection", err))?;
                    serve_connection(stream, &mut self.engine)
                }
            };
            connections += 1;
            match outcome {
                Ok(conn) => {
                    ticks += conn.ticks;
                    decisions += conn.decisions;
                    shutdown = conn.shutdown;
                }
                // A protocol violation poisons only its connection: the
                // stream cannot be resynchronised, the engine state can.
                Err(GpmError::Wire(_)) => {}
                Err(err) => return Err(err),
            }
            if self.once {
                shutdown = true;
            }
        }
        let stats = ServeStats {
            shards: self.engine.shards(),
            router_rejected: self.engine.router_rejected(),
            fleet: self.engine.stats(),
        };
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            connections,
            ticks,
            decisions,
            stats,
        })
    }
}

struct ConnectionSummary {
    ticks: u64,
    decisions: u64,
    shutdown: bool,
}

/// Drives one client connection through the tick protocol.
fn serve_connection<S>(stream: S, engine: &mut ShardedEngine) -> Result<ConnectionSummary>
where
    S: Read + Write + TryCloneStream,
{
    let writer_half = stream.try_clone_stream()?;
    let mut reader = FrameReader::new(BufReader::new(stream));
    let mut writer = BufWriter::new(writer_half);
    let mut out = Vec::new();
    let mut summary = ConnectionSummary {
        ticks: 0,
        decisions: 0,
        shutdown: false,
    };
    let mut rejected_before = engine.router_rejected();
    while let Some(frame) = reader.read()? {
        match frame {
            Frame::Telemetry(telemetry) => {
                engine.try_submit(telemetry);
            }
            Frame::TickEnd { tick } => {
                let batch = engine.run_tick(tick);
                summary.ticks += 1;
                summary.decisions += batch.len() as u64;
                out.clear();
                for decision in &batch {
                    encode_decision(decision, &mut out);
                }
                let rejected_now = engine.router_rejected();
                encode_tick_done(
                    tick,
                    batch.len() as u64,
                    rejected_now - rejected_before,
                    &mut out,
                );
                rejected_before = rejected_now;
                write_all(&mut writer, &out)?;
            }
            Frame::StatsRequest => {
                let stats = ServeStats {
                    shards: engine.shards(),
                    router_rejected: engine.router_rejected(),
                    fleet: engine.stats(),
                };
                let json = serde_json::to_string(&stats)
                    .map_err(|err| GpmError::Wire(format!("encoding stats: {err}")))?;
                out.clear();
                encode_stats(&json, &mut out);
                write_all(&mut writer, &out)?;
            }
            Frame::Shutdown => {
                summary.shutdown = true;
                break;
            }
            Frame::Decision(_) | Frame::TickDone { .. } | Frame::Stats(_) => {
                return Err(GpmError::Wire(
                    "client sent a server-to-client frame".into(),
                ));
            }
        }
    }
    Ok(summary)
}

/// The one stream capability the server needs beyond `Read + Write`:
/// splitting into an independently-owned writer half.
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> Result<Self>;
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> Result<Self> {
        self.try_clone()
            .map_err(|err| io_err("cloning tcp stream", err))
    }
}

impl TryCloneStream for UnixStream {
    fn try_clone_stream(&self) -> Result<Self> {
        self.try_clone()
            .map_err(|err| io_err("cloning unix stream", err))
    }
}

/// Connects to a serve endpoint, returning a unified stream for the
/// client side.
///
/// # Errors
///
/// Propagates connect failures as [`GpmError::Wire`].
pub fn connect(endpoint: &Endpoint) -> Result<ClientStream> {
    match endpoint {
        Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str())
            .map(ClientStream::Tcp)
            .map_err(|err| io_err(&format!("connecting to tcp:{addr}"), err)),
        Endpoint::Unix(path) => UnixStream::connect(path)
            .map(ClientStream::Unix)
            .map_err(|err| io_err(&format!("connecting to unix:{}", path.display()), err)),
    }
}

/// Client-side transport: TCP or Unix, one `Read + Write` surface.
pub enum ClientStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-socket connection.
    Unix(UnixStream),
}

impl ClientStream {
    /// Splits off an independently-owned handle to the same connection.
    ///
    /// # Errors
    ///
    /// Propagates the OS clone failure as [`GpmError::Wire`].
    pub fn try_clone(&self) -> Result<Self> {
        match self {
            Self::Tcp(stream) => stream.try_clone_stream().map(Self::Tcp),
            Self::Unix(stream) => stream.try_clone_stream().map(Self::Unix),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(stream) => stream.read(buf),
            Self::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(stream) => stream.write(buf),
            Self::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(stream) => stream.flush(),
            Self::Unix(stream) => stream.flush(),
        }
    }
}
