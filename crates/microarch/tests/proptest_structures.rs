//! Property tests over the microarchitectural structures: cache residency
//! and LRU behaviour, predictor bounds, and timing-model sanity.

use gpm_microarch::{
    BranchPredictor, CacheConfig, CoreConfig, CoreModel, InstructionSource, MicroOp,
    PredictorConfig, SetAssocCache,
};
use gpm_types::Hertz;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An accessed address is always resident immediately afterwards, and
    /// the miss counter never exceeds the access counter.
    #[test]
    fn cache_access_installs_line(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = SetAssocCache::new(CacheConfig::new(4096, 2, 64)).unwrap();
        for &addr in &addrs {
            let _ = cache.access(addr);
            prop_assert!(cache.contains(addr));
        }
        prop_assert!(cache.misses() <= cache.accesses());
        prop_assert_eq!(cache.accesses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&cache.miss_rate()));
    }

    /// Within one set, the `ways` most recently touched distinct lines are
    /// all resident (true-LRU guarantee).
    #[test]
    fn lru_keeps_most_recent_ways(tags in prop::collection::vec(0u64..64, 2..100)) {
        // Single-set cache: 2 ways × 64 B.
        let mut cache = SetAssocCache::new(CacheConfig::new(128, 2, 64)).unwrap();
        let mut recent: Vec<u64> = Vec::new();
        for &tag in &tags {
            let addr = tag * 64 * 2; // same set (set bits at zero)... single set anyway
            let _ = cache.access(addr);
            recent.retain(|&t| t != tag);
            recent.push(tag);
            if recent.len() > 2 {
                recent.remove(0);
            }
            for &t in &recent {
                prop_assert!(cache.contains(t * 64 * 2), "tag {t} evicted too early");
            }
        }
    }

    /// Predictor mispredict counts are bounded by prediction counts, and a
    /// perfectly-biased branch converges to ~zero mispredicts.
    #[test]
    fn predictor_bounds(outcomes in prop::collection::vec(any::<bool>(), 1..500)) {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        for &taken in &outcomes {
            let _ = bp.predict_and_update(0x4000, taken);
        }
        prop_assert!(bp.mispredictions() <= bp.predictions());
        prop_assert_eq!(bp.predictions(), outcomes.len() as u64);
    }

    /// The timing model never commits more instructions per cycle than the
    /// dispatch width allows, never zero for a non-empty run, and IPC stays
    /// within physical limits for any op mix.
    #[test]
    fn core_model_ipc_is_physical(
        kinds in prop::collection::vec(0u8..5, 50..500),
        seed in any::<u64>(),
    ) {
        struct Mix {
            kinds: Vec<u8>,
            i: usize,
            x: u64,
        }
        impl InstructionSource for Mix {
            fn next_op(&mut self) -> MicroOp {
                let k = self.kinds[self.i % self.kinds.len()];
                self.i += 1;
                self.x = self.x.wrapping_mul(6364136223846793005).wrapping_add(1);
                match k {
                    0 => MicroOp::int_alu(None),
                    1 => MicroOp::fp_alu(Some(1)),
                    2 => MicroOp::load(self.x % (1 << 22), None),
                    3 => MicroOp::store(self.x % (1 << 22), None),
                    _ => MicroOp::branch(0x100 + (self.x % 16) * 4, self.x & 2 == 0),
                }
            }
        }
        let config = CoreConfig::power4();
        let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
        let mut src = Mix { kinds, i: 0, x: seed | 1 };
        let stats = core.run_cycles(&mut src, 20_000);
        prop_assert!(stats.instructions > 0);
        prop_assert!(stats.cycles >= 20_000);
        prop_assert!(stats.ipc() <= f64::from(config.dispatch_width) + 1e-9);
        prop_assert!(stats.busy_cycles <= stats.cycles);
        prop_assert!(stats.l1d_misses <= stats.l1d_accesses);
        prop_assert!(stats.l2_misses <= stats.l2_accesses);
        prop_assert!(stats.mispredictions <= stats.branches);
    }

    /// Slowing the clock never *increases* wall-clock throughput.
    #[test]
    fn lower_frequency_never_faster(seed in any::<u64>()) {
        struct Rand { x: u64 }
        impl InstructionSource for Rand {
            fn next_op(&mut self) -> MicroOp {
                self.x = self.x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                match self.x % 4 {
                    0 => MicroOp::int_alu(Some(1)),
                    1 => MicroOp::load(self.x % (1 << 24), Some(1)),
                    2 => MicroOp::fp_alu(None),
                    _ => MicroOp::int_alu(None),
                }
            }
        }
        let config = CoreConfig::power4();
        let ips = |ghz: f64| {
            let mut core = CoreModel::new(&config, Hertz::from_ghz(ghz)).unwrap();
            let mut src = Rand { x: seed | 1 };
            let stats = core.run_cycles(&mut src, 300_000);
            stats.instructions as f64 / (stats.cycles as f64 / (ghz * 1e9))
        };
        let fast = ips(1.0);
        let slow = ips(0.85);
        prop_assert!(slow <= fast * 1.02, "slow {slow} vs fast {fast}");
    }
}
