//! Execution statistics and the activity factors consumed by the power
//! model.

use gpm_types::{Bips, Hertz, Micros};
use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulated interval.
///
/// These play the role of the paper's per-core performance-monitoring
/// counters: the local monitors report retired instructions per sampling
/// period to the global manager, and the power model converts the activity
/// counts into watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Executed fixed-point ops.
    pub int_ops: u64,
    /// Executed floating-point ops.
    pub fp_ops: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Executed branches.
    pub branches: u64,
    /// Branch mispredictions (pipeline refills).
    pub mispredictions: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 instruction-cache accesses.
    pub l1i_accesses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L2 accesses (from both instruction and data sides).
    pub l2_accesses: u64,
    /// L2 misses, i.e. main-memory accesses.
    pub l2_misses: u64,
    /// Cycles during which at least one instruction dispatched (a busy
    /// front-end burns more clock power than a stalled one).
    pub busy_cycles: u64,
    /// Prefetches issued by the hardware stream prefetcher (0 when
    /// disabled).
    pub prefetches: u64,
}

impl IntervalStats {
    /// Instructions per cycle over the interval; 0 when no cycles elapsed.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Wall-clock duration of the interval at clock frequency `f`.
    #[must_use]
    pub fn duration_at(&self, f: Hertz) -> Micros {
        Micros::new(self.cycles as f64 / f.value() * 1.0e6)
    }

    /// Throughput in BIPS at clock frequency `f`.
    #[must_use]
    pub fn bips_at(&self, f: Hertz) -> Bips {
        if self.cycles == 0 {
            return Bips::ZERO;
        }
        Bips::new(self.ipc() * f.as_ghz())
    }

    /// L2 misses per kilo-instruction — the canonical memory-boundedness
    /// indicator.
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Branch mispredictions per kilo-instruction.
    #[must_use]
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Accumulates another interval's counters into this one.
    pub fn merge(&mut self, other: &IntervalStats) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.mispredictions += other.mispredictions;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.l1i_accesses += other.l1i_accesses;
        self.l1i_misses += other.l1i_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.busy_cycles += other.busy_cycles;
        self.prefetches += other.prefetches;
    }

    /// Per-cycle activity factors for the power model.
    ///
    /// Returns all-zero factors when no cycles elapsed.
    #[must_use]
    pub fn activity(&self) -> ActivityFactors {
        if self.cycles == 0 {
            return ActivityFactors::default();
        }
        let c = self.cycles as f64;
        ActivityFactors {
            dispatch: self.instructions as f64 / c,
            int_issue: self.int_ops as f64 / c,
            fp_issue: self.fp_ops as f64 / c,
            mem_issue: (self.loads + self.stores) as f64 / c,
            l2: self.l2_accesses as f64 / c,
            busy: self.busy_cycles as f64 / c,
        }
    }
}

/// Per-cycle switching-activity factors (events per cycle), the α terms of
/// the `P = C·α·V²·f` dynamic-power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityFactors {
    /// Instructions dispatched per cycle (front-end + rename + ROB).
    pub dispatch: f64,
    /// Fixed-point issues per cycle.
    pub int_issue: f64,
    /// Floating-point issues per cycle.
    pub fp_issue: f64,
    /// Memory issues per cycle (LSU + L1D).
    pub mem_issue: f64,
    /// L2 accesses per cycle.
    pub l2: f64,
    /// Fraction of cycles with dispatch activity (front-end busy).
    pub busy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntervalStats {
        IntervalStats {
            instructions: 1000,
            cycles: 500,
            int_ops: 400,
            fp_ops: 100,
            loads: 300,
            stores: 100,
            branches: 100,
            mispredictions: 10,
            l1d_accesses: 400,
            l1d_misses: 40,
            l1i_accesses: 30,
            l1i_misses: 2,
            l2_accesses: 42,
            l2_misses: 8,
            busy_cycles: 450,
            prefetches: 0,
        }
    }

    #[test]
    fn ipc_and_bips() {
        let s = sample();
        assert_eq!(s.ipc(), 2.0);
        let b = s.bips_at(Hertz::from_ghz(1.0));
        assert!((b.value() - 2.0).abs() < 1e-12);
        let b85 = s.bips_at(Hertz::from_ghz(0.85));
        assert!((b85.value() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let s = IntervalStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.bips_at(Hertz::from_ghz(1.0)), Bips::ZERO);
        assert_eq!(s.activity(), ActivityFactors::default());
        assert_eq!(s.l2_mpki(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
    }

    #[test]
    fn mpki() {
        let s = sample();
        assert_eq!(s.l2_mpki(), 8.0);
        assert_eq!(s.branch_mpki(), 10.0);
    }

    #[test]
    fn duration() {
        let s = sample();
        let d = s.duration_at(Hertz::from_ghz(1.0));
        assert!((d.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.instructions, 2000);
        assert_eq!(a.cycles, 1000);
        assert_eq!(a.l2_misses, 16);
        assert_eq!(a.busy_cycles, 900);
        assert_eq!(a.ipc(), 2.0, "merging identical intervals keeps IPC");
    }

    #[test]
    fn activity_factors() {
        let s = sample();
        let a = s.activity();
        assert!((a.dispatch - 2.0).abs() < 1e-12);
        assert!((a.int_issue - 0.8).abs() < 1e-12);
        assert!((a.mem_issue - 0.8).abs() < 1e-12);
        assert!((a.fp_issue - 0.2).abs() < 1e-12);
        assert!((a.l2 - 0.084).abs() < 1e-12);
        assert!((a.busy - 0.9).abs() < 1e-12);
    }
}
