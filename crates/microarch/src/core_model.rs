//! The out-of-order core timing model: a dataflow scoreboard with dispatch
//! bandwidth, a ROB window, functional-unit contention, branch misprediction
//! refills and a real cache hierarchy.
//!
//! # Hot-path structure
//!
//! Every experiment in the workspace funnels through [`CoreModel::step`]'s
//! per-instruction loop, so this module is written for raw simulation
//! throughput while keeping results bit-identical across delivery and
//! dispatch strategies:
//!
//! * **Batched instruction delivery** — ops are pulled from the
//!   [`InstructionSource`] in blocks (via
//!   [`fill_ops`](InstructionSource::fill_ops)) into a reusable buffer, so a
//!   boxed/dynamic source pays one virtual call per block instead of one per
//!   op. Unconsumed ops carry over between `run_*` calls; callers that swap
//!   sources mid-run must call [`CoreModel::discard_pending_ops`].
//! * **Monomorphized memory path** — `run_cycles_with` and the internal
//!   stepping are generic over `M: MemorySubsystem + ?Sized`, so the
//!   private-L2 common case ([`PrivateMemory`]) inlines completely; dynamic
//!   users keep working through the `&mut dyn MemorySubsystem` blanket impl
//!   (see [`CoreModel::run_cycles_dyn`]).
//! * **No per-op division or float math** — the ROB ring is walked with a
//!   wrapping cursor instead of `%`, functional-unit arbitration is an O(1)
//!   scan specialised for the paper's 1- and 2-unit classes, and ns→cycles
//!   conversions are served from a tiny exact-result memo (the private
//!   memory system only ever produces two distinct latencies).

use gpm_types::{GpmError, Hertz, Result};

use crate::branch::PredictorLaneView;
use crate::cache::CacheLaneView;
use crate::{
    AccessOutcome, BranchPredictor, CoreConfig, InstructionSource, IntervalStats, MicroOp, OpKind,
    SetAssocCache, StreamPrefetcher,
};

/// Number of micro-ops fetched from an [`InstructionSource`] per refill of
/// the core's delivery buffer.
pub(crate) const OP_BATCH: usize = 256;

/// The level of the hierarchy *below* the core's private L1s.
///
/// The single-core case uses [`PrivateMemory`] (an L2 plus fixed-latency
/// DRAM). The full-CMP validation simulator substitutes a shared L2 with bus
/// contention. Latencies are exchanged in nanoseconds because the L2 and
/// memory live in asynchronous clock domains: their delay is constant in
/// wall-clock time regardless of the core's DVFS state.
pub trait MemorySubsystem {
    /// Performs an access that missed in the core's L1, at absolute wall
    /// time `now_ns`. Returns `(latency_ns, l2_hit)`.
    fn access(&mut self, addr: u64, now_ns: f64) -> (f64, bool);

    /// Like [`access`](Self::access), but carrying the request kind.
    ///
    /// The core always calls this entry point; the default forwards to
    /// `access`, so ordinary memory systems ignore the kind. Recording
    /// subsystems ([`DeferredL2`](crate::DeferredL2)) override it to log
    /// the kind alongside the address and timestamp.
    fn access_kind(&mut self, addr: u64, now_ns: f64, kind: AccessKind) -> (f64, bool) {
        let _ = kind;
        self.access(addr, now_ns)
    }
}

/// What an L2 request was issued for. Recorded in deferred-request logs so
/// replay and diagnostics can distinguish traffic classes; timing treats
/// all kinds identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I miss).
    Fetch,
    /// Demand load or store (L1D miss).
    Data,
    /// Hardware stream-prefetcher fill.
    Prefetch,
}

impl<T: MemorySubsystem + ?Sized> MemorySubsystem for &mut T {
    fn access(&mut self, addr: u64, now_ns: f64) -> (f64, bool) {
        (**self).access(addr, now_ns)
    }

    fn access_kind(&mut self, addr: u64, now_ns: f64, kind: AccessKind) -> (f64, bool) {
        (**self).access_kind(addr, now_ns, kind)
    }
}

/// A private L2 backed by fixed-latency DRAM — the memory system of the
/// paper's single-threaded Turandot runs.
#[derive(Debug, Clone)]
pub struct PrivateMemory {
    l2: SetAssocCache,
    l2_latency_ns: f64,
    memory_latency_ns: f64,
}

impl PrivateMemory {
    /// Builds the L2 + DRAM combination from a core configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if the L2 geometry is invalid.
    pub fn new(config: &CoreConfig) -> Result<Self> {
        Ok(Self {
            l2: SetAssocCache::new(config.l2)?,
            l2_latency_ns: config.memory.l2_latency_ns,
            memory_latency_ns: config.memory.memory_latency_ns,
        })
    }

    /// Read-only view of the L2 tag array (for tests and diagnostics).
    #[must_use]
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

impl MemorySubsystem for PrivateMemory {
    #[inline]
    fn access(&mut self, addr: u64, _now_ns: f64) -> (f64, bool) {
        match self.l2.access(addr) {
            AccessOutcome::Hit => (self.l2_latency_ns, true),
            AccessOutcome::Miss => (self.l2_latency_ns + self.memory_latency_ns, false),
        }
    }
}

/// Functional-unit classes tracked by the scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuClass {
    Lsu,
    Fxu,
    Fpu,
    Bru,
}

/// The static (per-configuration) half of the stepping state: every latency
/// and geometry parameter [`StepLane::step_op`] reads. One instance is
/// shared by all lanes of a [`LaneBatch`](crate::LaneBatch) and owned
/// per-core by the scalar [`Engine`].
#[derive(Debug, Clone)]
pub(crate) struct StepParams {
    pub(crate) dispatch_width: u32,
    pub(crate) rob_size: usize,
    pub(crate) fxu_latency: u64,
    pub(crate) fpu_latency: u64,
    pub(crate) mispredict_penalty: u64,
    pub(crate) l1_latency: u64,
    pub(crate) load_use_penalty: u64,
    pub(crate) l1i_block_shift: u32,
    pub(crate) l1d_block_shift: u32,
    /// Functional-unit pool boundaries into the flat free-time array:
    /// class `c` (in [`FuClass`] order LSU, FXU, FPU, BRU) occupies
    /// `fu_free[fu_offsets[c]..fu_offsets[c + 1]]`.
    pub(crate) fu_offsets: [usize; 5],
}

impl StepParams {
    pub(crate) fn from_config(config: &CoreConfig) -> Self {
        let (lsu, fxu, fpu, bru) = (
            config.lsu_count,
            config.fxu_count,
            config.fpu_count,
            config.bru_count,
        );
        Self {
            dispatch_width: config.dispatch_width,
            rob_size: config.rob_size,
            fxu_latency: config.fxu_latency,
            fpu_latency: config.fpu_latency,
            mispredict_penalty: config.mispredict_penalty,
            l1_latency: config.l1_latency,
            load_use_penalty: config.load_use_penalty,
            l1i_block_shift: config.l1i.block_bytes.trailing_zeros(),
            l1d_block_shift: config.l1d.block_bytes.trailing_zeros(),
            fu_offsets: [0, lsu, lsu + fxu, lsu + fxu + fpu, lsu + fxu + fpu + bru],
        }
    }

    /// Total functional units per lane (the flat free-time array's length).
    pub(crate) fn units_total(&self) -> usize {
        self.fu_offsets[4]
    }
}

/// A mutable window onto one lane's complete stepping state.
///
/// This is *the* scoreboard implementation: the scalar [`Engine`] builds a
/// view over its own fields and the SoA [`LaneBatch`](crate::LaneBatch)
/// builds one over slices of its lane-major arrays, so both paths execute
/// the identical [`step_op`](Self::step_op) and cannot diverge. Both paths
/// hoist the view out of their op loops (the scalar engine builds one per
/// run call, the batch one per chunk): `step_op` is too large to inline, so
/// a per-op view would be materialised on every call rather than scalarised
/// away — measured at ~15% of core throughput.
pub(crate) struct StepLane<'a> {
    pub(crate) params: &'a StepParams,
    pub(crate) freq: Hertz,
    pub(crate) ns_per_cycle: f64,
    pub(crate) l1i: CacheLaneView<'a>,
    pub(crate) l1d: CacheLaneView<'a>,
    pub(crate) predictor: PredictorLaneView<'a>,
    pub(crate) prefetcher: Option<&'a mut StreamPrefetcher>,
    pub(crate) cur_cycle: &'a mut u64,
    pub(crate) dispatched_in_cycle: &'a mut u32,
    pub(crate) last_busy_cycle: &'a mut u64,
    pub(crate) busy_cycles: &'a mut u64,
    pub(crate) completion_ring: &'a mut [u64],
    pub(crate) op_index: &'a mut u64,
    pub(crate) rob_slot: &'a mut usize,
    pub(crate) fu_free: &'a mut [u64],
    pub(crate) last_fetch_block: &'a mut u64,
    pub(crate) ns_cache: &'a mut [(f64, u64); 2],
}

impl StepLane<'_> {
    /// Advances the scoreboard by one micro-op.
    ///
    /// Force-inlined: there are exactly three monomorphic call sites (the
    /// scalar engine's two run loops and the lane kernel's chunk loop), and
    /// inlining lets the view's reference fields resolve to the caller's
    /// storage — the scalar path then compiles to the same direct field
    /// access it had before the view extraction.
    #[inline(always)]
    pub(crate) fn step_op<M: MemorySubsystem + ?Sized>(
        &mut self,
        op: MicroOp,
        memory: &mut M,
        stats: &mut IntervalStats,
    ) {
        // --- Instruction fetch: one L1I access per new code block. ---
        let fetch_block = op.code_addr >> self.params.l1i_block_shift;
        if fetch_block != *self.last_fetch_block {
            *self.last_fetch_block = fetch_block;
            stats.l1i_accesses += 1;
            if self.l1i.access(op.code_addr).is_miss() {
                stats.l1i_misses += 1;
                let now_ns = *self.cur_cycle as f64 * self.ns_per_cycle;
                let (lat_ns, l2_hit) = memory.access_kind(op.code_addr, now_ns, AccessKind::Fetch);
                stats.l2_accesses += 1;
                if !l2_hit {
                    stats.l2_misses += 1;
                }
                // An I-miss stalls the front end outright.
                *self.cur_cycle += self.ns_to_cycles(lat_ns);
                *self.dispatched_in_cycle = 0;
            }
        }

        // --- ROB window: wait for the oldest in-flight op to complete. ---
        let slot = *self.rob_slot;
        let oldest = self.completion_ring[slot];
        if oldest > *self.cur_cycle {
            *self.cur_cycle = oldest;
            *self.dispatched_in_cycle = 0;
        }

        // --- Dispatch bandwidth. ---
        if *self.dispatched_in_cycle >= self.params.dispatch_width {
            *self.cur_cycle += 1;
            *self.dispatched_in_cycle = 0;
        }
        *self.dispatched_in_cycle += 1;
        if *self.cur_cycle != *self.last_busy_cycle {
            *self.last_busy_cycle = *self.cur_cycle;
            *self.busy_cycles += 1;
        }

        // --- Operand readiness from the producer's completion time. ---
        //
        // Dependency presence is close to a coin flip in the synthetic
        // streams, so this is computed branch-free (`&` instead of `&&`,
        // selects instead of an `if let` body) to spare the host branch
        // predictor: a dep of 0 stands in for "none" and resolves to the
        // already-read oldest slot.
        let mut ready = *self.cur_cycle;
        let dep = op.dep.map_or(0, |d| d as usize);
        let valid = (dep > 0) & (dep as u64 <= *self.op_index) & (dep <= self.params.rob_size);
        let dep = if valid { dep } else { 0 };
        // (op_index - dep) % rob_size, via the wrapping cursor.
        let producer = if slot >= dep {
            slot - dep
        } else {
            slot + self.params.rob_size - dep
        };
        let produced = self.completion_ring[producer];
        ready = ready.max(if valid { produced } else { 0 });

        // --- Execute. ---
        stats.instructions += 1;
        let (class, latency, mispredicted) = match op.kind {
            OpKind::IntAlu => {
                stats.int_ops += 1;
                (FuClass::Fxu, self.params.fxu_latency, false)
            }
            OpKind::FpAlu => {
                stats.fp_ops += 1;
                (FuClass::Fpu, self.params.fpu_latency, false)
            }
            OpKind::Load { addr } => {
                stats.loads += 1;
                let lat = self.data_access(addr, ready, memory, stats);
                (FuClass::Lsu, lat + self.params.load_use_penalty, false)
            }
            OpKind::Store { addr } => {
                stats.stores += 1;
                // Stores update the hierarchy but retire through the store
                // queue without stalling consumers.
                let _ = self.data_access(addr, ready, memory, stats);
                (FuClass::Lsu, 1, false)
            }
            OpKind::Branch { pc, taken } => {
                stats.branches += 1;
                let miss = self.predictor.predict_and_update(pc, taken);
                if miss {
                    stats.mispredictions += 1;
                }
                if taken {
                    // POWER4 dispatch groups end at taken branches: the
                    // redirected fetch stream starts a new group next cycle.
                    *self.dispatched_in_cycle = self.params.dispatch_width;
                }
                (FuClass::Bru, 1, miss)
            }
        };

        // --- Functional-unit arbitration (pick the earliest-free unit). ---
        let class = class as usize;
        let pool =
            &mut self.fu_free[self.params.fu_offsets[class]..self.params.fu_offsets[class + 1]];
        let issue = take_earliest_unit(pool, ready);
        let completion = issue + latency;
        self.completion_ring[slot] = completion;
        *self.op_index += 1;
        *self.rob_slot += 1;
        if *self.rob_slot == self.params.rob_size {
            *self.rob_slot = 0;
        }

        // --- Misprediction: the front end restarts after resolution. ---
        if mispredicted {
            let restart = completion + self.params.mispredict_penalty;
            if restart > *self.cur_cycle {
                *self.cur_cycle = restart;
                *self.dispatched_in_cycle = 0;
            }
        }
    }

    /// L1D access, falling through to the memory subsystem on a miss.
    /// Returns the total load-to-use latency in core cycles.
    fn data_access<M: MemorySubsystem + ?Sized>(
        &mut self,
        addr: u64,
        at_cycle: u64,
        memory: &mut M,
        stats: &mut IntervalStats,
    ) -> u64 {
        stats.l1d_accesses += 1;
        let mut latency = self.params.l1_latency;
        if self.l1d.access(addr).is_miss() {
            stats.l1d_misses += 1;
            let now_ns = at_cycle as f64 * self.ns_per_cycle;
            let (lat_ns, l2_hit) = memory.access_kind(addr, now_ns, AccessKind::Data);
            stats.l2_accesses += 1;
            if !l2_hit {
                stats.l2_misses += 1;
            }
            latency += self.ns_to_cycles(lat_ns);

            // Ascending-stream hardware prefetch: fill the predicted next
            // blocks in the background (consumes L2 bandwidth, hides the
            // following demand misses, charges nothing to this load).
            if let Some(prefetcher) = self.prefetcher.as_mut() {
                if let Some((pf_start, count)) = prefetcher.on_miss(addr) {
                    let block_bytes = 1u64 << self.params.l1d_block_shift;
                    for k in 0..u64::from(count) {
                        let pf_addr = pf_start + k * block_bytes;
                        if self.l1d.contains(pf_addr) {
                            continue;
                        }
                        let (_, pf_l2_hit) =
                            memory.access_kind(pf_addr, now_ns, AccessKind::Prefetch);
                        stats.l2_accesses += 1;
                        if !pf_l2_hit {
                            stats.l2_misses += 1;
                        }
                        let _ = self.l1d.install(pf_addr);
                        stats.prefetches += 1;
                    }
                }
            }
        }
        latency
    }

    /// Converts a wall-clock latency to core cycles through the memo cache.
    ///
    /// The cached result is exactly what [`Hertz::cycles_for_ns`] returns
    /// for the same input, so hits and misses are indistinguishable in the
    /// produced timing.
    #[inline]
    fn ns_to_cycles(&mut self, ns: f64) -> u64 {
        if ns == self.ns_cache[0].0 {
            return self.ns_cache[0].1;
        }
        if ns == self.ns_cache[1].0 {
            self.ns_cache.swap(0, 1);
            return self.ns_cache[0].1;
        }
        let cycles = self.freq.cycles_for_ns(ns);
        self.ns_cache[1] = self.ns_cache[0];
        self.ns_cache[0] = (ns, cycles);
        cycles
    }
}

/// One core of the CMP at a concrete clock frequency.
///
/// The model keeps all microarchitectural state (cache contents, predictor
/// tables, in-flight completion times) across [`run_cycles`] calls, so a
/// benchmark can be simulated as a sequence of `delta_sim_time` intervals
/// exactly as the paper's toolchain does.
///
/// Internally the scoreboard lives in a separate [`Engine`] struct from the
/// private memory system, so `run_cycles` can borrow both halves disjointly
/// — no placeholder memory object is ever constructed.
///
/// [`run_cycles`]: CoreModel::run_cycles
#[derive(Debug, Clone)]
pub struct CoreModel {
    engine: Engine,
    memory: PrivateMemory,
}

/// The scoreboard half of [`CoreModel`]: everything except the private
/// memory subsystem, so stepping can mutably borrow the engine and an
/// external [`MemorySubsystem`] at the same time.
#[derive(Debug, Clone)]
struct Engine {
    // Static configuration (latencies in core cycles), shared verbatim with
    // the lane-batched kernel.
    params: StepParams,
    freq: Hertz,
    ns_per_cycle: f64,

    // Microarchitectural structures.
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    predictor: BranchPredictor,
    prefetcher: Option<StreamPrefetcher>,

    // Scoreboard state.
    cur_cycle: u64,
    dispatched_in_cycle: u32,
    last_busy_cycle: u64,
    busy_cycles: u64,
    completion_ring: Vec<u64>,
    op_index: u64,
    /// `op_index % rob_size`, maintained incrementally (no per-op `%`).
    rob_slot: usize,
    /// Per-unit next-free cycles, flat across classes; see
    /// [`StepParams::fu_offsets`] for the class boundaries.
    fu_free: Vec<u64>,
    last_fetch_block: u64,

    /// Exact-result memo for ns→cycles conversions: the private memory
    /// system produces only two distinct latencies, so this two-entry
    /// MRU cache hits almost always. Results are computed by
    /// [`Hertz::cycles_for_ns`] on miss, so cached conversions are
    /// bit-identical to uncached ones.
    ns_cache: [(f64, u64); 2],

    // Batched instruction delivery: ops fetched ahead of execution.
    op_buf: Vec<MicroOp>,
    op_buf_pos: usize,
    op_buf_len: usize,
}

impl CoreModel {
    /// Builds a core at clock frequency `freq` (the DVFS-scaled frequency of
    /// its current power mode).
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if `config` fails
    /// [`CoreConfig::validate`] or `freq` is not positive.
    pub fn new(config: &CoreConfig, freq: Hertz) -> Result<Self> {
        config.validate()?;
        if freq.value() <= 0.0 || freq.value().is_nan() {
            return Err(GpmError::InvalidConfig {
                parameter: "frequency",
                reason: format!("must be positive, got {}", freq.value()),
            });
        }
        let prefetcher = if config.prefetch_streams > 0 {
            Some(StreamPrefetcher::new(
                config.prefetch_streams,
                config.l1d.block_bytes,
            )?)
        } else {
            None
        };
        let params = StepParams::from_config(config);
        let units = params.units_total();
        Ok(Self {
            engine: Engine {
                params,
                freq,
                ns_per_cycle: 1.0e9 / freq.value(),
                l1i: SetAssocCache::new(config.l1i)?,
                l1d: SetAssocCache::new(config.l1d)?,
                predictor: BranchPredictor::new(config.predictor),
                prefetcher,
                cur_cycle: 0,
                dispatched_in_cycle: 0,
                last_busy_cycle: u64::MAX,
                busy_cycles: 0,
                completion_ring: vec![0; config.rob_size],
                op_index: 0,
                rob_slot: 0,
                fu_free: vec![0; units],
                last_fetch_block: u64::MAX,
                ns_cache: [(f64::NAN, 0); 2],
                op_buf: vec![MicroOp::int_alu(None); OP_BATCH],
                op_buf_pos: 0,
                op_buf_len: 0,
            },
            memory: PrivateMemory::new(config)?,
        })
    }

    /// The clock frequency this core instance runs at.
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.engine.freq
    }

    /// Total core cycles elapsed since construction.
    #[must_use]
    pub fn now_cycles(&self) -> u64 {
        self.engine.cur_cycle
    }

    /// Absolute wall time in nanoseconds since construction.
    #[must_use]
    pub fn now_ns(&self) -> f64 {
        self.engine.cur_cycle as f64 * self.engine.ns_per_cycle
    }

    /// Drops any instructions that were fetched from a source but not yet
    /// executed.
    ///
    /// The core prefetches ops in blocks of [`OP_BATCH`]; callers that swap
    /// instruction sources on a live core (e.g. trace capture restarting a
    /// stream after cache warm-up) must discard the stale tail so the next
    /// run starts at the new source's first op.
    pub fn discard_pending_ops(&mut self) {
        self.engine.op_buf_pos = 0;
        self.engine.op_buf_len = 0;
    }

    /// Stalls the core for exactly `cycles` cycles: the clock advances, no
    /// instructions dispatch, and the cycles count as idle (not busy).
    ///
    /// This is the stall-credit entry point of the two-phase full-CMP
    /// protocol: queueing and miss delays discovered during the serial L2
    /// replay of one quantum are charged to the core at the start of its
    /// next quantum. The credit is indistinguishable from a long in-order
    /// memory stall — the dispatch window reopens afterwards.
    pub fn apply_stall_cycles(&mut self, cycles: u64) {
        self.engine.cur_cycle += cycles;
        self.engine.dispatched_in_cycle = 0;
    }

    /// Runs the core against `source` for (at least) `target_cycles` core
    /// cycles using the core's private L2 and memory, returning the
    /// statistics of exactly this interval.
    pub fn run_cycles(
        &mut self,
        source: &mut impl InstructionSource,
        target_cycles: u64,
    ) -> IntervalStats {
        // Disjoint field borrows: the engine steps against the private
        // memory without any placeholder swap.
        self.engine
            .run_cycles_with(source, &mut self.memory, target_cycles)
    }

    /// Like [`run_cycles`](Self::run_cycles) but resolving L1 misses through
    /// an external [`MemorySubsystem`] (used by the full-CMP simulator's
    /// shared L2).
    ///
    /// This method is generic over the memory subsystem so concrete callers
    /// monomorphize and inline the access path; trait objects still work
    /// (`M = dyn MemorySubsystem`), or use
    /// [`run_cycles_dyn`](Self::run_cycles_dyn) to name the dynamic
    /// boundary explicitly.
    pub fn run_cycles_with<M: MemorySubsystem + ?Sized>(
        &mut self,
        source: &mut impl InstructionSource,
        memory: &mut M,
        target_cycles: u64,
    ) -> IntervalStats {
        self.engine.run_cycles_with(source, memory, target_cycles)
    }

    /// Thin dynamic-dispatch wrapper over
    /// [`run_cycles_with`](Self::run_cycles_with) for callers that hold the
    /// memory system (and/or the source) as trait objects.
    pub fn run_cycles_dyn(
        &mut self,
        mut source: &mut dyn InstructionSource,
        memory: &mut dyn MemorySubsystem,
        target_cycles: u64,
    ) -> IntervalStats {
        self.engine
            .run_cycles_with(&mut source, memory, target_cycles)
    }

    /// Runs until `count` further instructions have been dispatched.
    pub fn run_instructions(
        &mut self,
        source: &mut impl InstructionSource,
        count: u64,
    ) -> IntervalStats {
        self.engine
            .run_instructions_with(source, &mut self.memory, count)
    }

    /// The branch predictor (for diagnostics).
    #[must_use]
    pub fn predictor(&self) -> &BranchPredictor {
        &self.engine.predictor
    }

    /// The L1 data cache (for diagnostics).
    #[must_use]
    pub fn l1d(&self) -> &SetAssocCache {
        &self.engine.l1d
    }

    /// The private memory subsystem (for diagnostics).
    #[must_use]
    pub fn private_memory(&self) -> &PrivateMemory {
        &self.memory
    }
}

impl Engine {
    fn run_cycles_with<M: MemorySubsystem + ?Sized>(
        &mut self,
        source: &mut impl InstructionSource,
        memory: &mut M,
        target_cycles: u64,
    ) -> IntervalStats {
        let mut stats = IntervalStats::default();
        let start_cycle = self.cur_cycle;
        let end_cycle = start_cycle.saturating_add(target_cycles);
        let busy_start = self.busy_cycles;

        // Dispatch on delivery style ONCE per run (the contract requires a
        // source to answer `borrow_ops` consistently), so each loop below
        // contains only its own delivery code: for concrete generator
        // sources the zero-copy arm folds away entirely, and a dynamic
        // source pays one virtual probe per run instead of one per op.
        let (mut lane, op_buf, op_buf_pos, op_buf_len) = self.lane_view();
        if source.borrow_ops(1).is_some() {
            // Zero-copy path: step straight out of the source's own
            // storage, reporting back how many ops the cycle bound let us
            // retire.
            while *lane.cur_cycle < end_cycle {
                let Some(chunk) = source.borrow_ops(OP_BATCH) else {
                    debug_assert!(false, "source stopped serving borrowed blocks mid-run");
                    break;
                };
                let mut used = 0;
                while used < chunk.len() && *lane.cur_cycle < end_cycle {
                    lane.step_op(chunk[used], memory, &mut stats);
                    used += 1;
                }
                source.consume_ops(used);
            }
        } else {
            while *lane.cur_cycle < end_cycle {
                if *op_buf_pos == *op_buf_len {
                    *op_buf_len = source.fill_ops(op_buf);
                    assert!(
                        *op_buf_len > 0 && *op_buf_len <= op_buf.len(),
                        "InstructionSource::fill_ops must deliver 1..=buf.len() ops"
                    );
                    *op_buf_pos = 0;
                }
                let op = op_buf[*op_buf_pos];
                *op_buf_pos += 1;
                lane.step_op(op, memory, &mut stats);
            }
        }

        stats.cycles = self.cur_cycle - start_cycle;
        stats.busy_cycles = self.busy_cycles - busy_start;
        stats
    }

    fn run_instructions_with<M: MemorySubsystem + ?Sized>(
        &mut self,
        source: &mut impl InstructionSource,
        memory: &mut M,
        count: u64,
    ) -> IntervalStats {
        let mut stats = IntervalStats::default();
        let start_cycle = self.cur_cycle;
        let busy_start = self.busy_cycles;

        // Delivery-style dispatch once per run, as in `run_cycles_with`.
        let (mut lane, op_buf, op_buf_pos, op_buf_len) = self.lane_view();
        let mut remaining = count;
        if source.borrow_ops(1).is_some() {
            while remaining > 0 {
                let Some(chunk) = source.borrow_ops(OP_BATCH) else {
                    debug_assert!(false, "source stopped serving borrowed blocks mid-run");
                    break;
                };
                let take = chunk
                    .len()
                    .min(usize::try_from(remaining).unwrap_or(usize::MAX));
                for &op in &chunk[..take] {
                    lane.step_op(op, memory, &mut stats);
                }
                source.consume_ops(take);
                remaining -= take as u64;
            }
        } else {
            while remaining > 0 {
                if *op_buf_pos == *op_buf_len {
                    *op_buf_len = source.fill_ops(op_buf);
                    assert!(
                        *op_buf_len > 0 && *op_buf_len <= op_buf.len(),
                        "InstructionSource::fill_ops must deliver 1..=buf.len() ops"
                    );
                    *op_buf_pos = 0;
                }
                let op = op_buf[*op_buf_pos];
                *op_buf_pos += 1;
                lane.step_op(op, memory, &mut stats);
                remaining -= 1;
            }
        }

        stats.cycles = self.cur_cycle - start_cycle;
        stats.busy_cycles = self.busy_cycles - busy_start;
        stats
    }

    /// Splits the engine into a [`StepLane`] view over the scoreboard state
    /// plus the op delivery buffer. Built once per run call and reused for
    /// the whole op loop — rebuilding the view per op costs ~15% of core
    /// throughput ([`step_op`](StepLane::step_op) is too large to inline, so
    /// a per-op view is materialised rather than scalarised away). The
    /// lane-batched kernel hoists its views the same way, once per chunk.
    #[allow(clippy::type_complexity)]
    fn lane_view(&mut self) -> (StepLane<'_>, &mut [MicroOp], &mut usize, &mut usize) {
        let lane = StepLane {
            params: &self.params,
            freq: self.freq,
            ns_per_cycle: self.ns_per_cycle,
            l1i: self.l1i.view(),
            l1d: self.l1d.view(),
            predictor: self.predictor.view(),
            prefetcher: self.prefetcher.as_mut(),
            cur_cycle: &mut self.cur_cycle,
            dispatched_in_cycle: &mut self.dispatched_in_cycle,
            last_busy_cycle: &mut self.last_busy_cycle,
            busy_cycles: &mut self.busy_cycles,
            completion_ring: &mut self.completion_ring,
            op_index: &mut self.op_index,
            rob_slot: &mut self.rob_slot,
            fu_free: &mut self.fu_free,
            last_fetch_block: &mut self.last_fetch_block,
            ns_cache: &mut self.ns_cache,
        };
        (
            lane,
            &mut self.op_buf,
            &mut self.op_buf_pos,
            &mut self.op_buf_len,
        )
    }
}

/// Picks the earliest-free unit (lowest index on ties, matching
/// `min_by_key`), issues at `max(ready, unit_free)`, and occupies the unit
/// for one cycle (fully pipelined, initiation interval 1). Returns the
/// issue cycle.
///
/// The paper's configuration has 1 or 2 units per class, so those arities
/// are branchless; larger pools fall back to a linear first-minimum scan.
#[inline]
fn take_earliest_unit(units: &mut [u64], ready: u64) -> u64 {
    let chosen = match units {
        [_] => 0,
        [a, b] => usize::from(*b < *a),
        _ => {
            let mut best = 0;
            let mut best_t = units[0];
            for (i, &t) in units.iter().enumerate().skip(1) {
                if t < best_t {
                    best_t = t;
                    best = i;
                }
            }
            best
        }
    };
    let issue = ready.max(units[chosen]);
    units[chosen] = issue + 1;
    issue
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_types::Hertz;

    /// A configurable synthetic stream for targeted timing tests.
    struct TestStream {
        ops: Vec<MicroOp>,
        next: usize,
    }

    impl TestStream {
        fn cycle(ops: Vec<MicroOp>) -> Self {
            Self { ops, next: 0 }
        }
    }

    impl InstructionSource for TestStream {
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.next % self.ops.len()];
            self.next += 1;
            op
        }
    }

    fn core_at(ghz: f64) -> CoreModel {
        CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(ghz)).unwrap()
    }

    #[test]
    fn independent_int_ops_are_fxu_bound() {
        // 2 FXUs → IPC saturates at 2 for a pure integer stream.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let stats = core.run_cycles(&mut s, 100_000);
        let ipc = stats.ipc();
        assert!((1.8..=2.05).contains(&ipc), "expected ~2 IPC, got {ipc}");
    }

    #[test]
    fn mixed_stream_exceeds_fxu_limit() {
        // Int + FP + mem mix spreads over 6 units; dispatch width 5 caps it.
        let ops = vec![
            MicroOp::int_alu(None),
            MicroOp::int_alu(None),
            MicroOp::fp_alu(None),
            MicroOp::fp_alu(None),
            MicroOp::load(0x100, None), // L1-resident
        ];
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(ops);
        let stats = core.run_cycles(&mut s, 100_000);
        assert!(stats.ipc() > 3.5, "mixed stream IPC {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_serialises() {
        // Every op depends on the previous one: IPC ≤ 1.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(Some(1))]);
        let stats = core.run_cycles(&mut s, 50_000);
        assert!(stats.ipc() <= 1.05, "chain IPC {}", stats.ipc());
        assert!(stats.ipc() > 0.9);
    }

    #[test]
    fn fp_chain_pays_fpu_latency() {
        // Dependent FP chain: 1 op per fpu_latency (4) cycles.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::fp_alu(Some(1))]);
        let stats = core.run_cycles(&mut s, 80_000);
        let ipc = stats.ipc();
        assert!((0.2..=0.3).contains(&ipc), "FP chain IPC {ipc}");
    }

    #[test]
    fn pointer_chase_pays_memory_latency() {
        // Dependent loads over a 16 MiB working set miss everywhere:
        // ~1 + 9 + 77 = 87 cycles per op at 1 GHz.
        struct Chase {
            addr: u64,
        }
        impl InstructionSource for Chase {
            fn next_op(&mut self) -> MicroOp {
                self.addr = (self.addr.wrapping_mul(6364136223846793005).wrapping_add(1))
                    % (16 * 1024 * 1024);
                MicroOp::load(self.addr, Some(1))
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut Chase { addr: 1 }, 500_000);
        let cpi = 1.0 / stats.ipc();
        assert!(
            (60.0..=110.0).contains(&cpi),
            "pointer chase CPI {cpi}, l2 miss rate {}",
            stats.l2_misses as f64 / stats.l2_accesses.max(1) as f64
        );
    }

    #[test]
    fn memory_bound_code_degrades_less_under_dvfs() {
        // The paper's key DVFS asymmetry (Figure 2): CPU-bound work slows
        // down ∝ f, memory-bound work much less.
        fn throughput(ghz: f64, memory_bound: bool) -> f64 {
            struct Stream {
                addr: u64,
                memory_bound: bool,
                i: u64,
            }
            impl InstructionSource for Stream {
                fn next_op(&mut self) -> MicroOp {
                    self.i += 1;
                    if self.memory_bound {
                        self.addr = (self
                            .addr
                            .wrapping_mul(2862933555777941757)
                            .wrapping_add(3037000493))
                            % (32 * 1024 * 1024);
                        MicroOp::load(self.addr, Some(1))
                    } else {
                        MicroOp::int_alu(None)
                    }
                }
            }
            let mut core = CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(ghz)).unwrap();
            let mut s = Stream {
                addr: 1,
                memory_bound,
                i: 0,
            };
            let stats = core.run_cycles(&mut s, 400_000);
            // Instructions per wall-clock second.
            stats.instructions as f64 / (stats.cycles as f64 / (ghz * 1e9))
        }

        let cpu_slowdown = 1.0 - throughput(0.85, false) / throughput(1.0, false);
        let mem_slowdown = 1.0 - throughput(0.85, true) / throughput(1.0, true);
        assert!(
            (0.12..=0.18).contains(&cpu_slowdown),
            "CPU-bound slowdown should be ~15%, got {cpu_slowdown}"
        );
        assert!(
            mem_slowdown < 0.06,
            "memory-bound slowdown should be small, got {mem_slowdown}"
        );
    }

    #[test]
    fn mispredictions_cost_refill() {
        // Random branches through a real predictor → large CPI penalty.
        struct RandomBranches {
            x: u64,
        }
        impl InstructionSource for RandomBranches {
            fn next_op(&mut self) -> MicroOp {
                self.x ^= self.x << 13;
                self.x ^= self.x >> 7;
                self.x ^= self.x << 17;
                MicroOp::branch(0x40, self.x & 1 == 1)
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut RandomBranches { x: 42 }, 100_000);
        assert!(stats.mispredictions > 0);
        let cpi = 1.0 / stats.ipc();
        assert!(cpi > 3.0, "mispredict-heavy stream CPI {cpi}");
    }

    #[test]
    fn predictable_branches_are_cheap() {
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![
            MicroOp::branch(0x40, true),
            MicroOp::int_alu(None),
            MicroOp::int_alu(None),
        ]);
        let stats = core.run_cycles(&mut s, 100_000);
        assert!(
            stats.mispredictions * 100 < stats.branches,
            "biased branch should be >99% predicted"
        );
        assert!(stats.ipc() > 2.0);
    }

    #[test]
    fn icache_fetch_counted_per_block() {
        // Sequential code: one L1I access per 128-byte block (32 ops at 4 B).
        struct Sequential {
            pc: u64,
        }
        impl InstructionSource for Sequential {
            fn next_op(&mut self) -> MicroOp {
                self.pc += 4;
                MicroOp::int_alu(None).at_code(self.pc)
            }
        }
        let mut core = core_at(1.0);
        // pc runs 4..=12800, touching blocks 0..=100 → 101 distinct blocks.
        let stats = core.run_instructions(&mut Sequential { pc: 0 }, 3200);
        assert_eq!(stats.l1i_accesses, 101);
    }

    #[test]
    fn stats_cycles_match_interval() {
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let stats = core.run_cycles(&mut s, 12_345);
        assert!(stats.cycles >= 12_345);
        assert!(stats.cycles < 12_345 + 100, "only small overshoot allowed");
    }

    #[test]
    fn state_persists_across_intervals() {
        // Warm caches in interval 1 make interval 2 faster for a small
        // working set. The loads are dependent so the latency is exposed
        // rather than hidden by the ROB window.
        struct Loop {
            i: u64,
        }
        impl InstructionSource for Loop {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                MicroOp::load((self.i * 64) % (16 * 1024), Some(1))
            }
        }
        let mut core = core_at(1.0);
        let mut s = Loop { i: 0 };
        let cold = core.run_cycles(&mut s, 20_000);
        let warm = core.run_cycles(&mut s, 20_000);
        assert!(
            warm.ipc() > cold.ipc(),
            "warm {} should beat cold {}",
            warm.ipc(),
            cold.ipc()
        );
    }

    #[test]
    fn now_ns_tracks_frequency() {
        let mut core = core_at(0.5);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let _ = core.run_cycles(&mut s, 1000);
        let ns = core.now_ns();
        // 1000+ cycles at 0.5 GHz = 2000+ ns.
        assert!((2000.0..2300.0).contains(&ns), "{ns}");
    }

    #[test]
    fn stream_prefetcher_hides_sequential_misses() {
        // A pure streaming sweep: with the 8-stream prefetcher the demand
        // miss rate collapses and throughput rises.
        struct Sweep {
            addr: u64,
        }
        impl InstructionSource for Sweep {
            fn next_op(&mut self) -> MicroOp {
                self.addr += 16;
                MicroOp::load(self.addr % (64 * 1024 * 1024), Some(1))
            }
        }
        let run = |streams: usize| {
            let mut config = CoreConfig::power4();
            config.prefetch_streams = streams;
            let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
            core.run_cycles(&mut Sweep { addr: 0 }, 300_000)
        };
        let off = run(0);
        let on = run(8);
        assert_eq!(off.prefetches, 0);
        assert!(on.prefetches > 100, "prefetches {}", on.prefetches);
        assert!(
            (on.l1d_misses as f64) < off.l1d_misses as f64 * 0.7,
            "misses {} -> {}",
            off.l1d_misses,
            on.l1d_misses
        );
        assert!(on.ipc() > off.ipc() * 1.2, "{} vs {}", on.ipc(), off.ipc());
    }

    #[test]
    fn prefetcher_is_harmless_on_pointer_chases() {
        let run = |streams: usize| {
            struct Chase {
                addr: u64,
            }
            impl InstructionSource for Chase {
                fn next_op(&mut self) -> MicroOp {
                    self.addr = (self.addr.wrapping_mul(6364136223846793005).wrapping_add(1))
                        % (16 * 1024 * 1024);
                    MicroOp::load(self.addr, Some(1))
                }
            }
            let mut config = CoreConfig::power4();
            config.prefetch_streams = streams;
            let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0)).unwrap();
            core.run_cycles(&mut Chase { addr: 1 }, 300_000)
        };
        let off = run(0);
        let on = run(8);
        // Random chains neither benefit nor regress meaningfully.
        assert!((on.ipc() - off.ipc()).abs() < off.ipc() * 0.05);
    }

    #[test]
    fn store_misses_do_not_stall_consumers() {
        // Stores to a huge region (all misses) with independent int ops:
        // throughput should stay near dispatch-limited because stores retire
        // through the store queue.
        struct Stores {
            i: u64,
        }
        impl InstructionSource for Stores {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                if self.i.is_multiple_of(4) {
                    MicroOp::store((self.i * 131) % (64 * 1024 * 1024), None)
                } else {
                    MicroOp::int_alu(None)
                }
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut Stores { i: 0 }, 100_000);
        assert!(
            stats.ipc() > 1.5,
            "stores should not serialise: {}",
            stats.ipc()
        );
    }

    #[test]
    fn buffered_delivery_is_invisible_to_results() {
        // A source that delivers one op per fill_ops call (the old
        // one-virtual-call-per-op regime) must produce the same timing as
        // the default full-batch delivery.
        struct OneAtATime(TestStream);
        impl InstructionSource for OneAtATime {
            fn next_op(&mut self) -> MicroOp {
                self.0.next_op()
            }
            fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
                buf[0] = self.0.next_op();
                1
            }
        }
        let ops = vec![
            MicroOp::int_alu(Some(1)),
            MicroOp::load(0x40, None),
            MicroOp::branch(0x10, true),
            MicroOp::fp_alu(None),
        ];
        let mut batched_core = core_at(1.0);
        let mut one_core = core_at(1.0);
        let mut batched = TestStream::cycle(ops.clone());
        let mut one = OneAtATime(TestStream::cycle(ops));
        for _ in 0..4 {
            let a = batched_core.run_cycles(&mut batched, 10_000);
            let b = one_core.run_cycles(&mut one, 10_000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn discard_pending_ops_restarts_from_new_source() {
        // After swapping sources mid-run, the next executed op must come
        // from the new source, not the stale buffered tail.
        let mut core = core_at(1.0);
        let mut ints = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let _ = core.run_cycles(&mut ints, 1_000);
        core.discard_pending_ops();
        let mut fps = TestStream::cycle(vec![MicroOp::fp_alu(None)]);
        let stats = core.run_instructions(&mut fps, 100);
        assert_eq!(stats.fp_ops, 100);
        assert_eq!(stats.int_ops, 0, "stale buffered ops must not execute");
    }

    #[test]
    fn earliest_unit_matches_min_by_key_semantics() {
        // First-minimum tie-breaking, all arities.
        let mut two = [5u64, 5];
        assert_eq!(take_earliest_unit(&mut two, 0), 5);
        assert_eq!(two, [6, 5], "tie picks unit 0");
        let mut two = [7u64, 3];
        assert_eq!(take_earliest_unit(&mut two, 0), 3);
        assert_eq!(two, [7, 4]);
        let mut three = [4u64, 2, 2];
        assert_eq!(take_earliest_unit(&mut three, 10), 10);
        assert_eq!(three, [4, 11, 2], "first minimum wins");
        let mut one = [9u64];
        assert_eq!(take_earliest_unit(&mut one, 1), 9);
        assert_eq!(one, [10]);
    }
}
