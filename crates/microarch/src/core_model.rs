//! The out-of-order core timing model: a dataflow scoreboard with dispatch
//! bandwidth, a ROB window, functional-unit contention, branch misprediction
//! refills and a real cache hierarchy.

use gpm_types::Hertz;

use crate::{
    AccessOutcome, BranchPredictor, CoreConfig, InstructionSource, IntervalStats, MicroOp, OpKind,
    SetAssocCache, StreamPrefetcher,
};

/// The level of the hierarchy *below* the core's private L1s.
///
/// The single-core case uses [`PrivateMemory`] (an L2 plus fixed-latency
/// DRAM). The full-CMP validation simulator substitutes a shared L2 with bus
/// contention. Latencies are exchanged in nanoseconds because the L2 and
/// memory live in asynchronous clock domains: their delay is constant in
/// wall-clock time regardless of the core's DVFS state.
pub trait MemorySubsystem {
    /// Performs an access that missed in the core's L1, at absolute wall
    /// time `now_ns`. Returns `(latency_ns, l2_hit)`.
    fn access(&mut self, addr: u64, now_ns: f64) -> (f64, bool);
}

impl<T: MemorySubsystem + ?Sized> MemorySubsystem for &mut T {
    fn access(&mut self, addr: u64, now_ns: f64) -> (f64, bool) {
        (**self).access(addr, now_ns)
    }
}

/// A private L2 backed by fixed-latency DRAM — the memory system of the
/// paper's single-threaded Turandot runs.
#[derive(Debug, Clone)]
pub struct PrivateMemory {
    l2: SetAssocCache,
    l2_latency_ns: f64,
    memory_latency_ns: f64,
}

impl PrivateMemory {
    /// Builds the L2 + DRAM combination from a core configuration.
    #[must_use]
    pub fn new(config: &CoreConfig) -> Self {
        Self {
            l2: SetAssocCache::new(config.l2),
            l2_latency_ns: config.memory.l2_latency_ns,
            memory_latency_ns: config.memory.memory_latency_ns,
        }
    }

    /// Read-only view of the L2 tag array (for tests and diagnostics).
    #[must_use]
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

impl MemorySubsystem for PrivateMemory {
    fn access(&mut self, addr: u64, _now_ns: f64) -> (f64, bool) {
        match self.l2.access(addr) {
            AccessOutcome::Hit => (self.l2_latency_ns, true),
            AccessOutcome::Miss => (self.l2_latency_ns + self.memory_latency_ns, false),
        }
    }
}

/// Functional-unit classes tracked by the scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuClass {
    Lsu,
    Fxu,
    Fpu,
    Bru,
}

/// One core of the CMP at a concrete clock frequency.
///
/// The model keeps all microarchitectural state (cache contents, predictor
/// tables, in-flight completion times) across [`run_cycles`] calls, so a
/// benchmark can be simulated as a sequence of `delta_sim_time` intervals
/// exactly as the paper's toolchain does.
///
/// [`run_cycles`]: CoreModel::run_cycles
#[derive(Debug, Clone)]
pub struct CoreModel {
    // Static configuration (latencies in core cycles).
    dispatch_width: u32,
    rob_size: usize,
    fxu_latency: u64,
    fpu_latency: u64,
    mispredict_penalty: u64,
    l1_latency: u64,
    load_use_penalty: u64,
    freq: Hertz,
    ns_per_cycle: f64,
    l1i_block_shift: u32,
    l1d_block_shift: u32,

    // Microarchitectural structures.
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    predictor: BranchPredictor,
    prefetcher: Option<StreamPrefetcher>,
    memory: PrivateMemory,

    // Scoreboard state.
    cur_cycle: u64,
    dispatched_in_cycle: u32,
    last_busy_cycle: u64,
    busy_cycles: u64,
    completion_ring: Vec<u64>,
    op_index: u64,
    fu_free: [Vec<u64>; 4],
    last_fetch_block: u64,
}

impl CoreModel {
    /// Builds a core at clock frequency `freq` (the DVFS-scaled frequency of
    /// its current power mode).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CoreConfig::validate`] or `freq` is not
    /// positive.
    #[must_use]
    pub fn new(config: &CoreConfig, freq: Hertz) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid core config: {e}"));
        assert!(freq.value() > 0.0, "frequency must be positive");
        Self {
            dispatch_width: config.dispatch_width,
            rob_size: config.rob_size,
            fxu_latency: config.fxu_latency,
            fpu_latency: config.fpu_latency,
            mispredict_penalty: config.mispredict_penalty,
            l1_latency: config.l1_latency,
            load_use_penalty: config.load_use_penalty,
            freq,
            ns_per_cycle: 1.0e9 / freq.value(),
            l1i_block_shift: config.l1i.block_bytes.trailing_zeros(),
            l1d_block_shift: config.l1d.block_bytes.trailing_zeros(),
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            predictor: BranchPredictor::new(config.predictor),
            prefetcher: (config.prefetch_streams > 0)
                .then(|| StreamPrefetcher::new(config.prefetch_streams, config.l1d.block_bytes)),
            memory: PrivateMemory::new(config),
            cur_cycle: 0,
            dispatched_in_cycle: 0,
            last_busy_cycle: u64::MAX,
            busy_cycles: 0,
            completion_ring: vec![0; config.rob_size],
            op_index: 0,
            fu_free: [
                vec![0; config.lsu_count],
                vec![0; config.fxu_count],
                vec![0; config.fpu_count],
                vec![0; config.bru_count],
            ],
            last_fetch_block: u64::MAX,
        }
    }

    /// The clock frequency this core instance runs at.
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.freq
    }

    /// Total core cycles elapsed since construction.
    #[must_use]
    pub fn now_cycles(&self) -> u64 {
        self.cur_cycle
    }

    /// Absolute wall time in nanoseconds since construction.
    #[must_use]
    pub fn now_ns(&self) -> f64 {
        self.cur_cycle as f64 * self.ns_per_cycle
    }

    /// Runs the core against `source` for (at least) `target_cycles` core
    /// cycles using the core's private L2 and memory, returning the
    /// statistics of exactly this interval.
    pub fn run_cycles(
        &mut self,
        source: &mut impl InstructionSource,
        target_cycles: u64,
    ) -> IntervalStats {
        // `self.memory` cannot be borrowed mutably while `self` methods run,
        // so temporarily move it out (it is cheap: a tag array handle).
        let mut memory = std::mem::replace(
            &mut self.memory,
            PrivateMemory {
                l2: SetAssocCache::new(gpm_types_placeholder()),
                l2_latency_ns: 0.0,
                memory_latency_ns: 0.0,
            },
        );
        let stats = self.run_cycles_with(source, &mut memory, target_cycles);
        self.memory = memory;
        stats
    }

    /// Like [`run_cycles`](Self::run_cycles) but resolving L1 misses through
    /// an external [`MemorySubsystem`] (used by the full-CMP simulator's
    /// shared L2).
    pub fn run_cycles_with(
        &mut self,
        source: &mut impl InstructionSource,
        memory: &mut dyn MemorySubsystem,
        target_cycles: u64,
    ) -> IntervalStats {
        let mut stats = IntervalStats::default();
        let start_cycle = self.cur_cycle;
        let end_cycle = start_cycle.saturating_add(target_cycles);
        let busy_start = self.busy_cycles;

        while self.cur_cycle < end_cycle {
            let op = source.next_op();
            self.step(op, memory, &mut stats);
        }

        stats.cycles = self.cur_cycle - start_cycle;
        stats.busy_cycles = self.busy_cycles - busy_start;
        stats
    }

    /// Runs until `count` further instructions have been dispatched.
    pub fn run_instructions(
        &mut self,
        source: &mut impl InstructionSource,
        count: u64,
    ) -> IntervalStats {
        let mut memory = std::mem::replace(
            &mut self.memory,
            PrivateMemory {
                l2: SetAssocCache::new(gpm_types_placeholder()),
                l2_latency_ns: 0.0,
                memory_latency_ns: 0.0,
            },
        );
        let mut stats = IntervalStats::default();
        let start_cycle = self.cur_cycle;
        let busy_start = self.busy_cycles;
        for _ in 0..count {
            let op = source.next_op();
            self.step(op, &mut memory, &mut stats);
        }
        self.memory = memory;
        stats.cycles = self.cur_cycle - start_cycle;
        stats.busy_cycles = self.busy_cycles - busy_start;
        stats
    }

    /// Advances the scoreboard by one micro-op.
    fn step(&mut self, op: MicroOp, memory: &mut dyn MemorySubsystem, stats: &mut IntervalStats) {
        // --- Instruction fetch: one L1I access per new code block. ---
        let fetch_block = op.code_addr >> self.l1i_block_shift;
        if fetch_block != self.last_fetch_block {
            self.last_fetch_block = fetch_block;
            stats.l1i_accesses += 1;
            if self.l1i.access(op.code_addr).is_miss() {
                stats.l1i_misses += 1;
                let now_ns = self.cur_cycle as f64 * self.ns_per_cycle;
                let (lat_ns, l2_hit) = memory.access(op.code_addr, now_ns);
                stats.l2_accesses += 1;
                if !l2_hit {
                    stats.l2_misses += 1;
                }
                // An I-miss stalls the front end outright.
                self.cur_cycle += self.ns_to_cycles(lat_ns);
                self.dispatched_in_cycle = 0;
            }
        }

        // --- ROB window: wait for the oldest in-flight op to complete. ---
        let slot = (self.op_index % self.rob_size as u64) as usize;
        let oldest = self.completion_ring[slot];
        if oldest > self.cur_cycle {
            self.cur_cycle = oldest;
            self.dispatched_in_cycle = 0;
        }

        // --- Dispatch bandwidth. ---
        if self.dispatched_in_cycle >= self.dispatch_width {
            self.cur_cycle += 1;
            self.dispatched_in_cycle = 0;
        }
        self.dispatched_in_cycle += 1;
        if self.cur_cycle != self.last_busy_cycle {
            self.last_busy_cycle = self.cur_cycle;
            self.busy_cycles += 1;
        }

        // --- Operand readiness from the producer's completion time. ---
        let mut ready = self.cur_cycle;
        if let Some(dep) = op.dep {
            let dep = u64::from(dep);
            if dep > 0 && dep <= self.op_index && dep <= self.rob_size as u64 {
                let producer = ((self.op_index - dep) % self.rob_size as u64) as usize;
                ready = ready.max(self.completion_ring[producer]);
            }
        }

        // --- Execute. ---
        stats.instructions += 1;
        let (class, latency, mispredicted) = match op.kind {
            OpKind::IntAlu => {
                stats.int_ops += 1;
                (FuClass::Fxu, self.fxu_latency, false)
            }
            OpKind::FpAlu => {
                stats.fp_ops += 1;
                (FuClass::Fpu, self.fpu_latency, false)
            }
            OpKind::Load { addr } => {
                stats.loads += 1;
                let lat = self.data_access(addr, ready, memory, stats);
                (FuClass::Lsu, lat + self.load_use_penalty, false)
            }
            OpKind::Store { addr } => {
                stats.stores += 1;
                // Stores update the hierarchy but retire through the store
                // queue without stalling consumers.
                let _ = self.data_access(addr, ready, memory, stats);
                (FuClass::Lsu, 1, false)
            }
            OpKind::Branch { pc, taken } => {
                stats.branches += 1;
                let miss = self.predictor.predict_and_update(pc, taken);
                if miss {
                    stats.mispredictions += 1;
                }
                if taken {
                    // POWER4 dispatch groups end at taken branches: the
                    // redirected fetch stream starts a new group next cycle.
                    self.dispatched_in_cycle = self.dispatch_width;
                }
                (FuClass::Bru, 1, miss)
            }
        };

        // --- Functional-unit arbitration (pick the earliest-free unit). ---
        let units = &mut self.fu_free[class as usize];
        let unit = units
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("unit counts validated >= 1");
        let issue = ready.max(units[unit]);
        units[unit] = issue + 1; // fully pipelined, initiation interval 1
        let completion = issue + latency;
        self.completion_ring[slot] = completion;
        self.op_index += 1;

        // --- Misprediction: the front end restarts after resolution. ---
        if mispredicted {
            let restart = completion + self.mispredict_penalty;
            if restart > self.cur_cycle {
                self.cur_cycle = restart;
                self.dispatched_in_cycle = 0;
            }
        }
    }

    /// L1D access, falling through to the memory subsystem on a miss.
    /// Returns the total load-to-use latency in core cycles.
    fn data_access(
        &mut self,
        addr: u64,
        at_cycle: u64,
        memory: &mut dyn MemorySubsystem,
        stats: &mut IntervalStats,
    ) -> u64 {
        stats.l1d_accesses += 1;
        let mut latency = self.l1_latency;
        if self.l1d.access(addr).is_miss() {
            stats.l1d_misses += 1;
            let now_ns = at_cycle as f64 * self.ns_per_cycle;
            let (lat_ns, l2_hit) = memory.access(addr, now_ns);
            stats.l2_accesses += 1;
            if !l2_hit {
                stats.l2_misses += 1;
            }
            latency += self.ns_to_cycles(lat_ns);

            // Ascending-stream hardware prefetch: fill the predicted next
            // blocks in the background (consumes L2 bandwidth, hides the
            // following demand misses, charges nothing to this load).
            if let Some(prefetcher) = self.prefetcher.as_mut() {
                if let Some((pf_start, count)) = prefetcher.on_miss(addr) {
                    let block_bytes = 1u64 << self.l1d_block_shift;
                    for k in 0..u64::from(count) {
                        let pf_addr = pf_start + k * block_bytes;
                        if self.l1d.contains(pf_addr) {
                            continue;
                        }
                        let (_, pf_l2_hit) = memory.access(pf_addr, now_ns);
                        stats.l2_accesses += 1;
                        if !pf_l2_hit {
                            stats.l2_misses += 1;
                        }
                        let _ = self.l1d.install(pf_addr);
                        stats.prefetches += 1;
                    }
                }
            }
        }
        latency
    }

    #[inline]
    fn ns_to_cycles(&self, ns: f64) -> u64 {
        self.freq.cycles_for_ns(ns)
    }

    /// The branch predictor (for diagnostics).
    #[must_use]
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// The L1 data cache (for diagnostics).
    #[must_use]
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// The private memory subsystem (for diagnostics).
    #[must_use]
    pub fn private_memory(&self) -> &PrivateMemory {
        &self.memory
    }
}

/// Minimal valid cache geometry used for the temporary placeholder while the
/// private memory is moved out during a run (1 set × 1 way × 64 B).
fn gpm_types_placeholder() -> crate::CacheConfig {
    crate::CacheConfig::new(64, 1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_types::Hertz;

    /// A configurable synthetic stream for targeted timing tests.
    struct TestStream {
        ops: Vec<MicroOp>,
        next: usize,
    }

    impl TestStream {
        fn cycle(ops: Vec<MicroOp>) -> Self {
            Self { ops, next: 0 }
        }
    }

    impl InstructionSource for TestStream {
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.next % self.ops.len()];
            self.next += 1;
            op
        }
    }

    fn core_at(ghz: f64) -> CoreModel {
        CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(ghz))
    }

    #[test]
    fn independent_int_ops_are_fxu_bound() {
        // 2 FXUs → IPC saturates at 2 for a pure integer stream.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let stats = core.run_cycles(&mut s, 100_000);
        let ipc = stats.ipc();
        assert!((1.8..=2.05).contains(&ipc), "expected ~2 IPC, got {ipc}");
    }

    #[test]
    fn mixed_stream_exceeds_fxu_limit() {
        // Int + FP + mem mix spreads over 6 units; dispatch width 5 caps it.
        let ops = vec![
            MicroOp::int_alu(None),
            MicroOp::int_alu(None),
            MicroOp::fp_alu(None),
            MicroOp::fp_alu(None),
            MicroOp::load(0x100, None), // L1-resident
        ];
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(ops);
        let stats = core.run_cycles(&mut s, 100_000);
        assert!(stats.ipc() > 3.5, "mixed stream IPC {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_serialises() {
        // Every op depends on the previous one: IPC ≤ 1.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(Some(1))]);
        let stats = core.run_cycles(&mut s, 50_000);
        assert!(stats.ipc() <= 1.05, "chain IPC {}", stats.ipc());
        assert!(stats.ipc() > 0.9);
    }

    #[test]
    fn fp_chain_pays_fpu_latency() {
        // Dependent FP chain: 1 op per fpu_latency (4) cycles.
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::fp_alu(Some(1))]);
        let stats = core.run_cycles(&mut s, 80_000);
        let ipc = stats.ipc();
        assert!((0.2..=0.3).contains(&ipc), "FP chain IPC {ipc}");
    }

    #[test]
    fn pointer_chase_pays_memory_latency() {
        // Dependent loads over a 16 MiB working set miss everywhere:
        // ~1 + 9 + 77 = 87 cycles per op at 1 GHz.
        struct Chase {
            addr: u64,
        }
        impl InstructionSource for Chase {
            fn next_op(&mut self) -> MicroOp {
                self.addr = (self.addr.wrapping_mul(6364136223846793005).wrapping_add(1))
                    % (16 * 1024 * 1024);
                MicroOp::load(self.addr, Some(1))
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut Chase { addr: 1 }, 500_000);
        let cpi = 1.0 / stats.ipc();
        assert!(
            (60.0..=110.0).contains(&cpi),
            "pointer chase CPI {cpi}, l2 miss rate {}",
            stats.l2_misses as f64 / stats.l2_accesses.max(1) as f64
        );
    }

    #[test]
    fn memory_bound_code_degrades_less_under_dvfs() {
        // The paper's key DVFS asymmetry (Figure 2): CPU-bound work slows
        // down ∝ f, memory-bound work much less.
        fn throughput(ghz: f64, memory_bound: bool) -> f64 {
            struct Stream {
                addr: u64,
                memory_bound: bool,
                i: u64,
            }
            impl InstructionSource for Stream {
                fn next_op(&mut self) -> MicroOp {
                    self.i += 1;
                    if self.memory_bound {
                        self.addr = (self
                            .addr
                            .wrapping_mul(2862933555777941757)
                            .wrapping_add(3037000493))
                            % (32 * 1024 * 1024);
                        MicroOp::load(self.addr, Some(1))
                    } else {
                        MicroOp::int_alu(None)
                    }
                }
            }
            let mut core = CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(ghz));
            let mut s = Stream {
                addr: 1,
                memory_bound,
                i: 0,
            };
            let stats = core.run_cycles(&mut s, 400_000);
            // Instructions per wall-clock second.
            stats.instructions as f64 / (stats.cycles as f64 / (ghz * 1e9))
        }

        let cpu_slowdown = 1.0 - throughput(0.85, false) / throughput(1.0, false);
        let mem_slowdown = 1.0 - throughput(0.85, true) / throughput(1.0, true);
        assert!(
            (0.12..=0.18).contains(&cpu_slowdown),
            "CPU-bound slowdown should be ~15%, got {cpu_slowdown}"
        );
        assert!(
            mem_slowdown < 0.06,
            "memory-bound slowdown should be small, got {mem_slowdown}"
        );
    }

    #[test]
    fn mispredictions_cost_refill() {
        // Random branches through a real predictor → large CPI penalty.
        struct RandomBranches {
            x: u64,
        }
        impl InstructionSource for RandomBranches {
            fn next_op(&mut self) -> MicroOp {
                self.x ^= self.x << 13;
                self.x ^= self.x >> 7;
                self.x ^= self.x << 17;
                MicroOp::branch(0x40, self.x & 1 == 1)
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut RandomBranches { x: 42 }, 100_000);
        assert!(stats.mispredictions > 0);
        let cpi = 1.0 / stats.ipc();
        assert!(cpi > 3.0, "mispredict-heavy stream CPI {cpi}");
    }

    #[test]
    fn predictable_branches_are_cheap() {
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![
            MicroOp::branch(0x40, true),
            MicroOp::int_alu(None),
            MicroOp::int_alu(None),
        ]);
        let stats = core.run_cycles(&mut s, 100_000);
        assert!(
            stats.mispredictions * 100 < stats.branches,
            "biased branch should be >99% predicted"
        );
        assert!(stats.ipc() > 2.0);
    }

    #[test]
    fn icache_fetch_counted_per_block() {
        // Sequential code: one L1I access per 128-byte block (32 ops at 4 B).
        struct Sequential {
            pc: u64,
        }
        impl InstructionSource for Sequential {
            fn next_op(&mut self) -> MicroOp {
                self.pc += 4;
                MicroOp::int_alu(None).at_code(self.pc)
            }
        }
        let mut core = core_at(1.0);
        // pc runs 4..=12800, touching blocks 0..=100 → 101 distinct blocks.
        let stats = core.run_instructions(&mut Sequential { pc: 0 }, 3200);
        assert_eq!(stats.l1i_accesses, 101);
    }

    #[test]
    fn stats_cycles_match_interval() {
        let mut core = core_at(1.0);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let stats = core.run_cycles(&mut s, 12_345);
        assert!(stats.cycles >= 12_345);
        assert!(stats.cycles < 12_345 + 100, "only small overshoot allowed");
    }

    #[test]
    fn state_persists_across_intervals() {
        // Warm caches in interval 1 make interval 2 faster for a small
        // working set. The loads are dependent so the latency is exposed
        // rather than hidden by the ROB window.
        struct Loop {
            i: u64,
        }
        impl InstructionSource for Loop {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                MicroOp::load((self.i * 64) % (16 * 1024), Some(1))
            }
        }
        let mut core = core_at(1.0);
        let mut s = Loop { i: 0 };
        let cold = core.run_cycles(&mut s, 20_000);
        let warm = core.run_cycles(&mut s, 20_000);
        assert!(
            warm.ipc() > cold.ipc(),
            "warm {} should beat cold {}",
            warm.ipc(),
            cold.ipc()
        );
    }

    #[test]
    fn now_ns_tracks_frequency() {
        let mut core = core_at(0.5);
        let mut s = TestStream::cycle(vec![MicroOp::int_alu(None)]);
        let _ = core.run_cycles(&mut s, 1000);
        let ns = core.now_ns();
        // 1000+ cycles at 0.5 GHz = 2000+ ns.
        assert!((2000.0..2300.0).contains(&ns), "{ns}");
    }

    #[test]
    fn stream_prefetcher_hides_sequential_misses() {
        // A pure streaming sweep: with the 8-stream prefetcher the demand
        // miss rate collapses and throughput rises.
        struct Sweep {
            addr: u64,
        }
        impl InstructionSource for Sweep {
            fn next_op(&mut self) -> MicroOp {
                self.addr += 16;
                MicroOp::load(self.addr % (64 * 1024 * 1024), Some(1))
            }
        }
        let run = |streams: usize| {
            let mut config = CoreConfig::power4();
            config.prefetch_streams = streams;
            let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0));
            core.run_cycles(&mut Sweep { addr: 0 }, 300_000)
        };
        let off = run(0);
        let on = run(8);
        assert_eq!(off.prefetches, 0);
        assert!(on.prefetches > 100, "prefetches {}", on.prefetches);
        assert!(
            (on.l1d_misses as f64) < off.l1d_misses as f64 * 0.7,
            "misses {} -> {}",
            off.l1d_misses,
            on.l1d_misses
        );
        assert!(on.ipc() > off.ipc() * 1.2, "{} vs {}", on.ipc(), off.ipc());
    }

    #[test]
    fn prefetcher_is_harmless_on_pointer_chases() {
        let run = |streams: usize| {
            struct Chase {
                addr: u64,
            }
            impl InstructionSource for Chase {
                fn next_op(&mut self) -> MicroOp {
                    self.addr = (self.addr.wrapping_mul(6364136223846793005).wrapping_add(1))
                        % (16 * 1024 * 1024);
                    MicroOp::load(self.addr, Some(1))
                }
            }
            let mut config = CoreConfig::power4();
            config.prefetch_streams = streams;
            let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0));
            core.run_cycles(&mut Chase { addr: 1 }, 300_000)
        };
        let off = run(0);
        let on = run(8);
        // Random chains neither benefit nor regress meaningfully.
        assert!((on.ipc() - off.ipc()).abs() < off.ipc() * 0.05);
    }

    #[test]
    fn store_misses_do_not_stall_consumers() {
        // Stores to a huge region (all misses) with independent int ops:
        // throughput should stay near dispatch-limited because stores retire
        // through the store queue.
        struct Stores {
            i: u64,
        }
        impl InstructionSource for Stores {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                if self.i.is_multiple_of(4) {
                    MicroOp::store((self.i * 131) % (64 * 1024 * 1024), None)
                } else {
                    MicroOp::int_alu(None)
                }
            }
        }
        let mut core = core_at(1.0);
        let stats = core.run_cycles(&mut Stores { i: 0 }, 100_000);
        assert!(
            stats.ipc() > 1.5,
            "stores should not serialise: {}",
            stats.ipc()
        );
    }
}
