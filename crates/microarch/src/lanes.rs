//! Structure-of-arrays lane batching: N cores (or N candidate power modes
//! of one core) stepped in lockstep by a single kernel.
//!
//! # Why lanes
//!
//! The scalar path simulates each core (or each candidate power mode) as a
//! complete, separate run: N runs re-stream the op sequence N times and
//! re-walk the memory hierarchy cold each time. A [`LaneBatch`] holds N
//! *independent* cores' architectural state as parallel flat arrays and
//! [`step_lanes`](LaneBatch::step_lanes) advances them in
//! chunk-synchronous lockstep — a budget of retired ops
//! ([`set_chunk_ops`](LaneBatch::set_chunk_ops), default [`CHUNK_OPS`])
//! for one lane, then the next, round-robin. When the lanes replay the
//! same tape (mode capture), lockstep keeps their read positions within
//! one chunk of each other, so the tape window is streamed through host
//! caches once per batch instead of once per lane. The chunk size
//! balances that sharing against each lane's own working set (its
//! simulated cache tags and predictor tables): per-op interleaving would
//! thrash the host cache with N lane-state sets live at once, while
//! whole-run granularity forfeits tape sharing entirely — the right
//! choice for lanes with *independent* sources (the full-CMP simulator),
//! which have nothing to share.
//!
//! # Determinism
//!
//! No data flows between lanes inside the kernel: each lane owns disjoint
//! windows of the lane-major arrays ([`CacheLanes`], [`PredictorLanes`],
//! completion rings, unit free-times) and steps through the *same*
//! [`StepLane::step_op`] implementation the scalar engine runs. A lane's
//! op sequence, cycle arithmetic and memory-subsystem call sequence are
//! therefore bit-identical to a standalone [`CoreModel`](crate::CoreModel)
//! fed the same source — pinned by the SoA-vs-scalar equivalence tests and
//! the golden trace/CMP hashes.

use gpm_types::{GpmError, Hertz, Result};

use crate::branch::PredictorLanes;
use crate::cache::CacheLanes;
use crate::core_model::{StepLane, StepParams, OP_BATCH};
use crate::{
    CoreConfig, InstructionSource, IntervalStats, MemorySubsystem, MicroOp, StreamPrefetcher,
};

/// Retired ops one lane advances before the kernel switches to the next
/// lane.
///
/// The round-robin granularity of [`LaneBatch::step_lanes`]: small enough
/// that co-replaying lanes stay within one hot tape window of each other,
/// large enough that a lane's simulated cache tags and predictor tables
/// stay resident in host caches for many consecutive ops before the next
/// lane evicts them. The budget is counted in *ops*, not cycles, because
/// that is what bounds the drift between lanes' tape read positions: lanes
/// chunked by cycles drift apart by their cumulative IPC difference (a
/// slower mode retires more ops per cycle once memory latencies shrink in
/// cycle terms), so the shared window grows with run length and falls out
/// of host cache; an op budget pins every lane within one chunk of the
/// leader for the whole run. Purely a scheduling knob — any value produces
/// bit-identical results, because no data flows between lanes.
pub const CHUNK_OPS: usize = 8_192;

/// N cores' complete stepping state as structure-of-arrays, advanced in
/// lockstep by [`step_lanes`](Self::step_lanes).
///
/// All lanes share one [`CoreConfig`] (geometry, latencies) but each lane
/// has its own clock frequency — the lane↔mode mapping of a 3-mode capture
/// batch — and fully private microarchitectural state.
///
/// # Examples
///
/// ```
/// use gpm_microarch::{CoreConfig, InstructionSource, LaneBatch, MicroOp, PrivateMemory};
/// use gpm_types::Hertz;
///
/// struct Ones;
/// impl InstructionSource for Ones {
///     fn next_op(&mut self) -> MicroOp {
///         MicroOp::int_alu(None)
///     }
/// }
///
/// let config = CoreConfig::power4();
/// let freqs = [Hertz::from_ghz(1.0), Hertz::from_ghz(0.85)];
/// let mut batch = LaneBatch::new(&config, &freqs)?;
/// let mut sources = [Ones, Ones];
/// let mut memories = [PrivateMemory::new(&config)?, PrivateMemory::new(&config)?];
/// let mut stats = vec![Default::default(); 2];
/// batch.step_lanes(&mut sources, &mut memories, &[10_000; 2], |lane, s| {
///     stats[lane] = *s;
///     None // one segment per lane, then stop
/// });
/// assert!(stats[0].ipc() > 1.8);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneBatch {
    params: StepParams,
    lanes: usize,
    chunk_ops: usize,

    // Per-lane clocking.
    freq: Vec<Hertz>,
    ns_per_cycle: Vec<f64>,

    // Lane-major microarchitectural structures.
    l1i: CacheLanes,
    l1d: CacheLanes,
    predictors: PredictorLanes,
    prefetchers: Vec<Option<StreamPrefetcher>>,

    // Per-lane scoreboard state (SoA).
    cur_cycle: Vec<u64>,
    dispatched_in_cycle: Vec<u32>,
    last_busy_cycle: Vec<u64>,
    busy_cycles: Vec<u64>,
    /// `lanes × rob_size`, lane-major.
    completion: Vec<u64>,
    op_index: Vec<u64>,
    rob_slot: Vec<usize>,
    /// `lanes × units_total`, lane-major; class boundaries per
    /// `StepParams::fu_offsets`.
    fu_free: Vec<u64>,
    units_per_lane: usize,
    last_fetch_block: Vec<u64>,
    ns_cache: Vec<[(f64, u64); 2]>,

    // Per-lane batched op delivery (`lanes × OP_BATCH`, lane-major).
    op_buf: Vec<MicroOp>,
    op_buf_pos: Vec<usize>,
    op_buf_len: Vec<usize>,

    // Kernel scratch, kept across calls to avoid reallocation.
    seg_stats: Vec<IntervalStats>,
    seg_start: Vec<u64>,
    busy_start: Vec<u64>,
    end_cycle: Vec<u64>,
    active: Vec<bool>,
}

impl LaneBatch {
    /// Builds a batch of `freqs.len()` lanes sharing `config`, lane `i`
    /// clocked at `freqs[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if `config` fails
    /// [`CoreConfig::validate`], `freqs` is empty, or any frequency is not
    /// positive.
    pub fn new(config: &CoreConfig, freqs: &[Hertz]) -> Result<Self> {
        config.validate()?;
        if freqs.is_empty() {
            return Err(GpmError::InvalidConfig {
                parameter: "lanes",
                reason: "a lane batch needs at least one lane".into(),
            });
        }
        for freq in freqs {
            if freq.value() <= 0.0 || freq.value().is_nan() {
                return Err(GpmError::InvalidConfig {
                    parameter: "frequency",
                    reason: format!("must be positive, got {}", freq.value()),
                });
            }
        }
        let lanes = freqs.len();
        let params = StepParams::from_config(config);
        let units_per_lane = params.units_total();
        let mut prefetchers = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            prefetchers.push(if config.prefetch_streams > 0 {
                Some(StreamPrefetcher::new(
                    config.prefetch_streams,
                    config.l1d.block_bytes,
                )?)
            } else {
                None
            });
        }
        Ok(Self {
            lanes,
            chunk_ops: CHUNK_OPS,
            freq: freqs.to_vec(),
            ns_per_cycle: freqs.iter().map(|f| 1.0e9 / f.value()).collect(),
            l1i: CacheLanes::new(config.l1i, lanes)?,
            l1d: CacheLanes::new(config.l1d, lanes)?,
            predictors: PredictorLanes::new(config.predictor, lanes)?,
            prefetchers,
            cur_cycle: vec![0; lanes],
            dispatched_in_cycle: vec![0; lanes],
            last_busy_cycle: vec![u64::MAX; lanes],
            busy_cycles: vec![0; lanes],
            completion: vec![0; lanes * params.rob_size],
            op_index: vec![0; lanes],
            rob_slot: vec![0; lanes],
            fu_free: vec![0; lanes * units_per_lane],
            units_per_lane,
            last_fetch_block: vec![u64::MAX; lanes],
            ns_cache: vec![[(f64::NAN, 0); 2]; lanes],
            op_buf: vec![MicroOp::int_alu(None); lanes * OP_BATCH],
            op_buf_pos: vec![0; lanes],
            op_buf_len: vec![0; lanes],
            seg_stats: vec![IntervalStats::default(); lanes],
            seg_start: vec![0; lanes],
            busy_start: vec![0; lanes],
            end_cycle: vec![0; lanes],
            active: vec![false; lanes],
            params,
        })
    }

    /// Number of lanes in the batch.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets the round-robin granularity of
    /// [`step_lanes`](Self::step_lanes), in retired ops per lane per turn
    /// (default [`CHUNK_OPS`]).
    ///
    /// Purely a scheduling knob — results are bit-identical for any value.
    /// The default suits lanes co-replaying one shared tape, where a small
    /// chunk keeps every cursor inside one hot window of the recording.
    /// Lanes with *independent* sources gain nothing from interleaving, so
    /// callers like the full-CMP simulator pass `usize::MAX` to run each
    /// lane straight through its segment, keeping that lane's simulated
    /// cache tags and predictor tables hot instead of cycling N lanes'
    /// state through the host cache every chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_ops` is 0.
    pub fn set_chunk_ops(&mut self, chunk_ops: usize) {
        assert!(chunk_ops > 0, "chunk_ops must be at least 1");
        self.chunk_ops = chunk_ops;
    }

    /// The clock frequency of lane `lane`.
    #[must_use]
    pub fn frequency(&self, lane: usize) -> Hertz {
        self.freq[lane]
    }

    /// Total core cycles elapsed on lane `lane` since construction.
    #[must_use]
    pub fn now_cycles(&self, lane: usize) -> u64 {
        self.cur_cycle[lane]
    }

    /// Stalls lane `lane` for exactly `cycles` cycles: the clock advances,
    /// no instructions dispatch, and the cycles count as idle (not busy).
    /// The lane-batched counterpart of
    /// [`CoreModel::apply_stall_cycles`](crate::CoreModel::apply_stall_cycles).
    pub fn apply_stall_cycles(&mut self, lane: usize, cycles: u64) {
        self.cur_cycle[lane] += cycles;
        self.dispatched_in_cycle[lane] = 0;
    }

    /// Drops instructions fetched from the lanes' sources but not yet
    /// executed, on every lane. Callers that swap instruction sources on a
    /// live batch (e.g. capture restarting streams after warm-up) must
    /// discard the stale tails; see
    /// [`CoreModel::discard_pending_ops`](crate::CoreModel::discard_pending_ops).
    pub fn discard_pending_ops(&mut self) {
        self.op_buf_pos.fill(0);
        self.op_buf_len.fill(0);
    }

    /// Advances all lanes in lockstep, one chunk of cycles per live lane
    /// per round.
    ///
    /// Lane `i` steps ops against `sources[i]`/`memories[i]` until its
    /// clock reaches `targets[i]` cycles past its current time (the same
    /// "last op may overshoot" boundary as
    /// [`CoreModel::run_cycles`](crate::CoreModel::run_cycles)). At each
    /// boundary the lane's segment statistics are handed to `on_segment`;
    /// returning `Some(next_target)` immediately opens the next segment
    /// (the lane never pauses, so chunk-synchronous lockstep is preserved
    /// across segment boundaries), returning `None` retires the lane. The
    /// call returns when every lane has retired.
    ///
    /// A target of 0 yields an immediate, empty segment — callers encoding
    /// "this quantum is fully stalled" get a default `IntervalStats` with
    /// zero cycles, exactly as the scalar path produces. `on_segment` must
    /// eventually return `None` (or a non-zero target) per lane, or the
    /// kernel spins on zero-length segments forever.
    ///
    /// # Panics
    ///
    /// Panics if `sources`, `memories` and `targets` are not all exactly
    /// [`lanes`](Self::lanes) long, or if a source violates the
    /// [`InstructionSource::fill_ops`] contract.
    pub fn step_lanes<S, M, F>(
        &mut self,
        sources: &mut [S],
        memories: &mut [M],
        targets: &[u64],
        mut on_segment: F,
    ) where
        S: InstructionSource,
        M: MemorySubsystem,
        F: FnMut(usize, &IntervalStats) -> Option<u64>,
    {
        let n = self.lanes;
        assert!(
            sources.len() == n && memories.len() == n && targets.len() == n,
            "step_lanes needs exactly one source, memory and target per lane \
             ({n} lanes; got {} sources, {} memories, {} targets)",
            sources.len(),
            memories.len(),
            targets.len(),
        );

        for (lane, &target) in targets.iter().enumerate() {
            self.seg_stats[lane] = IntervalStats::default();
            self.seg_start[lane] = self.cur_cycle[lane];
            self.busy_start[lane] = self.busy_cycles[lane];
            self.end_cycle[lane] = self.cur_cycle[lane].saturating_add(target);
            self.active[lane] = true;
        }
        let mut alive = n;

        while alive > 0 {
            for lane in 0..n {
                if !self.active[lane] {
                    continue;
                }
                let mut budget = self.chunk_ops;

                'lane: loop {
                    // Segment boundaries are pure bookkeeping in the
                    // op-driven loop: finalize, hand off, and (maybe) open
                    // the next segment without the lane missing a round.
                    while self.cur_cycle[lane] >= self.end_cycle[lane] {
                        let mut stats = self.seg_stats[lane];
                        stats.cycles = self.cur_cycle[lane] - self.seg_start[lane];
                        stats.busy_cycles = self.busy_cycles[lane] - self.busy_start[lane];
                        match on_segment(lane, &stats) {
                            Some(next) => {
                                self.seg_stats[lane] = IntervalStats::default();
                                self.seg_start[lane] = self.cur_cycle[lane];
                                self.busy_start[lane] = self.busy_cycles[lane];
                                self.end_cycle[lane] = self.cur_cycle[lane].saturating_add(next);
                            }
                            None => {
                                self.active[lane] = false;
                                alive -= 1;
                                break 'lane;
                            }
                        }
                    }
                    if budget == 0 {
                        break 'lane;
                    }

                    // Burst of ops for this lane, through one view over its
                    // lane-major windows, until the segment ends or the
                    // chunk's op budget runs out.
                    let stop = self.end_cycle[lane];
                    let rob = self.params.rob_size;
                    let units = self.units_per_lane;
                    let mut view = StepLane {
                        params: &self.params,
                        freq: self.freq[lane],
                        ns_per_cycle: self.ns_per_cycle[lane],
                        l1i: self.l1i.lane_view(lane),
                        l1d: self.l1d.lane_view(lane),
                        predictor: self.predictors.lane_view(lane),
                        prefetcher: self.prefetchers[lane].as_mut(),
                        cur_cycle: &mut self.cur_cycle[lane],
                        dispatched_in_cycle: &mut self.dispatched_in_cycle[lane],
                        last_busy_cycle: &mut self.last_busy_cycle[lane],
                        busy_cycles: &mut self.busy_cycles[lane],
                        completion_ring: &mut self.completion[lane * rob..(lane + 1) * rob],
                        op_index: &mut self.op_index[lane],
                        rob_slot: &mut self.rob_slot[lane],
                        fu_free: &mut self.fu_free[lane * units..(lane + 1) * units],
                        last_fetch_block: &mut self.last_fetch_block[lane],
                        ns_cache: &mut self.ns_cache[lane],
                    };
                    let op_buf = &mut self.op_buf[lane * OP_BATCH..(lane + 1) * OP_BATCH];
                    let pos = &mut self.op_buf_pos[lane];
                    let len = &mut self.op_buf_len[lane];
                    let stats = &mut self.seg_stats[lane];
                    let source = &mut sources[lane];
                    let memory = &mut memories[lane];
                    // Delivery-style dispatch once per burst (the contract
                    // requires a source to answer `borrow_ops`
                    // consistently). The zero-copy tape loop stays written
                    // out here, where the optimiser sees the view fields
                    // come straight from the batch's own arrays (hoisting
                    // it behind a call was measured ~5% slower on the
                    // capture benches); the buffered loop wants the
                    // opposite and lives in [`run_buffered_burst`].
                    if source.borrow_ops(1).is_some() {
                        while *view.cur_cycle < stop && budget > 0 {
                            let Some(chunk) = source.borrow_ops(budget.min(OP_BATCH)) else {
                                debug_assert!(
                                    false,
                                    "source stopped serving borrowed blocks mid-burst"
                                );
                                break;
                            };
                            let mut used = 0;
                            while used < chunk.len() && *view.cur_cycle < stop {
                                view.step_op(chunk[used], memory, stats);
                                used += 1;
                            }
                            source.consume_ops(used);
                            budget -= used;
                        }
                    } else {
                        budget = run_buffered_burst(
                            &mut view, op_buf, pos, len, source, memory, stats, stop, budget,
                        );
                    }
                }
            }
        }
    }
}

/// One lane's op burst off a generator source, via the lane's delivery
/// buffer.
///
/// Deliberately `inline(never)`: folding this loop into
/// [`LaneBatch::step_lanes`] — whose round-robin and segment bookkeeping
/// would share one huge frame with it — was measured ~5% slower on the
/// full-CMP benches, the shape the scalar path avoids by having
/// `run_cycles_with` to itself.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn run_buffered_burst<S: InstructionSource, M: MemorySubsystem>(
    view: &mut StepLane<'_>,
    op_buf: &mut [MicroOp],
    pos: &mut usize,
    len: &mut usize,
    source: &mut S,
    memory: &mut M,
    stats: &mut IntervalStats,
    stop: u64,
    mut budget: usize,
) -> usize {
    while *view.cur_cycle < stop && budget > 0 {
        if *pos >= *len {
            let filled = source.fill_ops(op_buf);
            assert!(
                filled > 0 && filled <= op_buf.len(),
                "InstructionSource::fill_ops must deliver 1..=buf.len() ops"
            );
            *len = filled;
            *pos = 0;
        }
        while *pos < *len && *view.cur_cycle < stop && budget > 0 {
            let op = op_buf[*pos];
            *pos += 1;
            view.step_op(op, memory, stats);
            budget -= 1;
        }
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreModel, PrivateMemory};

    /// Deterministic mixed-op stream, seeded per lane.
    struct Mix {
        x: u64,
    }

    impl InstructionSource for Mix {
        fn next_op(&mut self) -> MicroOp {
            self.x ^= self.x << 13;
            self.x ^= self.x >> 7;
            self.x ^= self.x << 17;
            let dep = if self.x & 4 == 0 {
                Some(1 + (self.x >> 3) as u32 % 8)
            } else {
                None
            };
            match self.x % 5 {
                0 => MicroOp::int_alu(dep),
                1 => MicroOp::fp_alu(dep),
                2 => MicroOp::load(self.x % (8 * 1024 * 1024), dep),
                3 => MicroOp::store(self.x % (8 * 1024 * 1024), dep),
                _ => MicroOp::branch(0x40 + self.x % 64, self.x & 2 == 0),
            }
        }
    }

    fn freqs(n: usize) -> Vec<Hertz> {
        (0..n)
            .map(|i| Hertz::from_ghz(1.0 - 0.05 * i as f64))
            .collect()
    }

    #[test]
    fn lanes_match_scalar_cores_over_multiple_segments() {
        let config = CoreConfig::power4();
        let lane_freqs = freqs(4);
        let mut batch = LaneBatch::new(&config, &lane_freqs).unwrap();
        let mut sources: Vec<_> = (0..4).map(|i| Mix { x: 1 + i as u64 }).collect();
        let mut memories: Vec<_> = (0..4)
            .map(|_| PrivateMemory::new(&config).unwrap())
            .collect();

        // Three segments of 20k cycles per lane via the callback.
        let mut batched: Vec<Vec<IntervalStats>> = vec![Vec::new(); 4];
        batch.step_lanes(&mut sources, &mut memories, &[20_000; 4], |lane, s| {
            batched[lane].push(*s);
            if batched[lane].len() < 3 {
                Some(20_000)
            } else {
                None
            }
        });

        for lane in 0..4 {
            let mut core = CoreModel::new(&config, lane_freqs[lane]).unwrap();
            let mut source = Mix { x: 1 + lane as u64 };
            for (seg, expected) in batched[lane].iter().enumerate() {
                let scalar = core.run_cycles(&mut source, 20_000);
                assert_eq!(
                    *expected, scalar,
                    "lane {lane} segment {seg} diverged from scalar"
                );
            }
            assert_eq!(batch.now_cycles(lane), core.now_cycles());
        }
    }

    #[test]
    fn stall_and_zero_target_match_scalar_semantics() {
        let config = CoreConfig::power4();
        let mut batch = LaneBatch::new(&config, &freqs(2)).unwrap();
        let mut sources = [Mix { x: 11 }, Mix { x: 22 }];
        let mut memories = [
            PrivateMemory::new(&config).unwrap(),
            PrivateMemory::new(&config).unwrap(),
        ];

        batch.apply_stall_cycles(0, 5_000);
        assert_eq!(batch.now_cycles(0), 5_000);

        // Lane 0 fully stalled this quantum (target 0), lane 1 runs.
        let mut seen = [IntervalStats::default(); 2];
        batch.step_lanes(&mut sources, &mut memories, &[0, 10_000], |lane, s| {
            seen[lane] = *s;
            None
        });
        assert_eq!(seen[0], IntervalStats::default());
        assert!(seen[1].instructions > 0);
        assert_eq!(batch.now_cycles(0), 5_000, "stalled lane did not step");
    }

    #[test]
    fn discard_pending_ops_restarts_from_new_sources() {
        struct Only(fn(Option<u32>) -> MicroOp);
        impl InstructionSource for Only {
            fn next_op(&mut self) -> MicroOp {
                (self.0)(None)
            }
        }
        let config = CoreConfig::power4();
        let mut batch = LaneBatch::new(&config, &freqs(2)).unwrap();
        let mut ints = [Only(MicroOp::int_alu), Only(MicroOp::int_alu)];
        let mut memories = [
            PrivateMemory::new(&config).unwrap(),
            PrivateMemory::new(&config).unwrap(),
        ];
        batch.step_lanes(&mut ints, &mut memories, &[1_000; 2], |_, _| None);
        batch.discard_pending_ops();
        let mut fps = [Only(MicroOp::fp_alu), Only(MicroOp::fp_alu)];
        let mut seen = [IntervalStats::default(); 2];
        batch.step_lanes(&mut fps, &mut memories, &[1_000; 2], |lane, s| {
            seen[lane] = *s;
            None
        });
        for s in seen {
            assert!(s.fp_ops > 0);
            assert_eq!(s.int_ops, 0, "stale buffered ops must not execute");
        }
    }

    #[test]
    fn new_rejects_degenerate_configs_without_panicking() {
        let mut bad = CoreConfig::power4();
        bad.predictor.bimodal_entries = 1000;
        assert!(matches!(
            LaneBatch::new(&bad, &freqs(2)),
            Err(GpmError::InvalidConfig {
                parameter: "predictor",
                ..
            })
        ));
        assert!(LaneBatch::new(&CoreConfig::power4(), &[]).is_err());
        assert!(LaneBatch::new(&CoreConfig::power4(), &[Hertz::new(0.0)]).is_err());
    }
}
