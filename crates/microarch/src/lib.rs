//! An out-of-order, POWER4/5-class core timing model — the workspace's
//! stand-in for IBM's Turandot simulator.
//!
//! The model is *instruction-driven with cycle accounting* (interval-style):
//! every micro-op flows through a dataflow scoreboard that models
//!
//! * dispatch bandwidth (5 instructions per cycle, Table 1 of the paper),
//! * a reorder-buffer window that bounds in-flight work and therefore
//!   memory-level parallelism,
//! * functional-unit contention (2 LSU, 2 FXU, 2 FPU, 1 BRU),
//! * a real bimodal + gshare + selector branch predictor (16K entries each)
//!   with pipeline-refill penalties on mispredictions,
//! * real set-associative L1I/L1D/L2 cache tag arrays with LRU replacement,
//!   backed by a fixed-latency memory.
//!
//! Per-instruction cost is O(1), so the model simulates tens of millions of
//! instructions per second — fast enough to regenerate every experiment in
//! the paper from scratch — while still *exercising real structures* rather
//! than sampling from closed-form distributions.
//!
//! # DVFS behaviour
//!
//! A [`CoreModel`] is instantiated at a concrete clock frequency. Latencies
//! inside the core clock domain (L1 hit, FXU/FPU/BRU latency, refill) are
//! constant in *cycles*; the shared L2 and memory live in asynchronous
//! domains, so their latencies are constant in *nanoseconds* and are
//! re-expressed in core cycles per mode. Running the same instruction stream
//! at 0.85 f therefore hurts compute-bound code by ≈15% but memory-bound code
//! far less — the core effect the paper's mode-selection policies exploit.
//!
//! # Examples
//!
//! ```
//! use gpm_microarch::{CoreConfig, CoreModel, InstructionSource, MicroOp};
//! use gpm_types::Hertz;
//!
//! /// A trivial stream of independent integer ops.
//! struct Ones;
//! impl InstructionSource for Ones {
//!     fn next_op(&mut self) -> MicroOp {
//!         MicroOp::int_alu(None)
//!     }
//! }
//!
//! let config = CoreConfig::power4();
//! let mut core = CoreModel::new(&config, Hertz::from_ghz(1.0))?;
//! let stats = core.run_cycles(&mut Ones, 10_000);
//! // A pure integer stream saturates the two fixed-point units: IPC ≈ 2.
//! assert!(stats.ipc() > 1.8);
//! # Ok::<(), gpm_types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod config;
mod core_model;
mod deferred;
mod lanes;
mod op;
mod prefetch;
mod stats;

pub use branch::{BranchPredictor, PredictorConfig};
pub use cache::{AccessOutcome, CacheConfig, SetAssocCache};
pub use config::{CoreConfig, MemoryConfig};
pub use core_model::{AccessKind, CoreModel, MemorySubsystem, PrivateMemory};
pub use deferred::{DeferredL2, L2Request};
pub use lanes::LaneBatch;
pub use op::{InstructionSource, MicroOp, OpKind};
pub use prefetch::StreamPrefetcher;
pub use stats::{ActivityFactors, IntervalStats};
