//! Set-associative cache tag-array model with true LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// let l1d = gpm_microarch::CacheConfig::new(32 * 1024, 2, 128);
/// assert_eq!(l1d.sets(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub block_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    #[must_use]
    pub const fn new(size_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        Self {
            size_bytes,
            ways,
            block_bytes,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub const fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.block_bytes)
    }

    /// Checks the geometry is usable (non-zero, power-of-two sets and block).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the geometry is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.size_bytes == 0 || self.ways == 0 || self.block_bytes == 0 {
            return Err("size, ways and block size must be non-zero".into());
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(format!(
                "block size {} is not a power of two",
                self.block_bytes
            ));
        }
        if !self.size_bytes.is_multiple_of(self.ways * self.block_bytes) {
            return Err("size must be divisible by ways × block".into());
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} is not a power of two"));
        }
        Ok(())
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (allocate-on-miss).
    Miss,
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Miss`].
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss)
    }
}

/// One tag-array entry, packed to 16 bytes for cache-friendly set scans.
/// `stamp == 0` means invalid: valid lines always carry a stamp ≥ 1 (the
/// stamp counter is pre-incremented before any fill), which also makes an
/// invalid way the automatic least-recently-used victim.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    stamp: u64,
}

/// A mutable window onto one cache instance's tag array and counters.
///
/// This is *the* implementation of the probe/fill/LRU logic:
/// [`SetAssocCache`] (one core, its own allocation) and [`CacheLanes`]
/// (N lanes sharing one flat allocation) both dispatch through it, so the
/// scalar reference path and the SoA lane-batched path cannot diverge.
#[derive(Debug)]
pub(crate) struct CacheLaneView<'a> {
    lines: &'a mut [Line],
    next_stamp: &'a mut u64,
    accesses: &'a mut u64,
    misses: &'a mut u64,
    ways: usize,
    set_mask: u64,
    block_shift: u32,
    tag_shift: u32,
}

impl CacheLaneView<'_> {
    /// Accesses byte address `addr`, allocating the line on a miss.
    ///
    /// A single pass over the (2–4 entry) set serves both the hit fast path
    /// and LRU victim selection: the scan returns as soon as the tag
    /// matches, and otherwise has already found the first minimum-stamp way
    /// (invalid ways carry stamp 0, so they win automatically — the same
    /// ordering `min_by_key` on `valid → stamp, invalid → 0` produced).
    #[inline]
    pub(crate) fn access(&mut self, addr: u64) -> AccessOutcome {
        *self.accesses += 1;
        *self.next_stamp += 1;
        let stamp = *self.next_stamp;
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.tag_shift;
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (i, line) in set_lines.iter_mut().enumerate() {
            if line.tag == tag && line.stamp != 0 {
                line.stamp = stamp;
                return AccessOutcome::Hit;
            }
            if line.stamp < victim_stamp {
                victim_stamp = line.stamp;
                victim = i;
            }
        }

        *self.misses += 1;
        set_lines[victim] = Line { tag, stamp };
        AccessOutcome::Miss
    }

    /// Installs the line for `addr` without counting a demand access or a
    /// demand miss (hardware-prefetch fills). Returns whether the line was
    /// already resident.
    pub(crate) fn install(&mut self, addr: u64) -> AccessOutcome {
        let before = (*self.accesses, *self.misses);
        let outcome = self.access(addr);
        (*self.accesses, *self.misses) = before;
        outcome
    }

    /// Probes whether `addr` is resident without touching LRU state or
    /// counters.
    #[must_use]
    #[inline]
    pub(crate) fn contains(&self, addr: u64) -> bool {
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.tag_shift;
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.tag == tag && l.stamp != 0)
    }
}

/// N independent cache instances of one geometry, stored as flat
/// structure-of-arrays: all lanes' tag arrays live in one lane-major
/// allocation, with per-lane stamp and counter vectors alongside.
///
/// Lanes never share lines or stamps — [`lane_view`](Self::lane_view)
/// windows one lane and runs the exact [`CacheLaneView`] logic the scalar
/// [`SetAssocCache`] runs, so a lane is bit-identical to a standalone cache
/// receiving the same access sequence.
#[derive(Debug, Clone)]
pub(crate) struct CacheLanes {
    lines: Vec<Line>,
    lines_per_lane: usize,
    next_stamp: Vec<u64>,
    accesses: Vec<u64>,
    misses: Vec<u64>,
    ways: usize,
    set_mask: u64,
    block_shift: u32,
    tag_shift: u32,
}

impl CacheLanes {
    /// Builds `lanes` caches of the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the geometry fails
    /// [`CacheConfig::validate`].
    pub(crate) fn new(config: CacheConfig, lanes: usize) -> gpm_types::Result<Self> {
        config
            .validate()
            .map_err(|reason| gpm_types::GpmError::InvalidConfig {
                parameter: "cache",
                reason,
            })?;
        let sets = config.sets();
        let set_mask = sets as u64 - 1;
        let lines_per_lane = sets * config.ways;
        Ok(Self {
            lines: vec![Line::default(); lines_per_lane * lanes],
            lines_per_lane,
            next_stamp: vec![0; lanes],
            accesses: vec![0; lanes],
            misses: vec![0; lanes],
            ways: config.ways,
            set_mask,
            block_shift: config.block_bytes.trailing_zeros(),
            tag_shift: set_mask.count_ones(),
        })
    }

    /// A mutable window onto lane `lane`'s tag array and counters.
    #[inline]
    pub(crate) fn lane_view(&mut self, lane: usize) -> CacheLaneView<'_> {
        let base = lane * self.lines_per_lane;
        CacheLaneView {
            lines: &mut self.lines[base..base + self.lines_per_lane],
            next_stamp: &mut self.next_stamp[lane],
            accesses: &mut self.accesses[lane],
            misses: &mut self.misses[lane],
            ways: self.ways,
            set_mask: self.set_mask,
            block_shift: self.block_shift,
            tag_shift: self.tag_shift,
        }
    }
}

/// A set-associative cache with true-LRU replacement, modelling only the tag
/// array (timing/allocation behaviour; no data storage).
///
/// Both L1s and the shared L2 of the paper's configuration are instances of
/// this type. Accesses allocate on miss; there is no distinction between
/// reads and writes (the paper's policies only consume aggregate miss
/// behaviour).
///
/// # Examples
///
/// ```
/// use gpm_microarch::{AccessOutcome, CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1024, 2, 64)).unwrap();
/// assert_eq!(c.access(0x0), AccessOutcome::Miss);
/// assert_eq!(c.access(0x0), AccessOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    block_shift: u32,
    tag_shift: u32,
    next_stamp: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the geometry fails
    /// [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> gpm_types::Result<Self> {
        config
            .validate()
            .map_err(|reason| gpm_types::GpmError::InvalidConfig {
                parameter: "cache",
                reason,
            })?;
        let sets = config.sets();
        let set_mask = sets as u64 - 1;
        Ok(Self {
            config,
            lines: vec![Line::default(); sets * config.ways],
            set_mask,
            block_shift: config.block_bytes.trailing_zeros(),
            tag_shift: set_mask.count_ones(),
            next_stamp: 0,
            accesses: 0,
            misses: 0,
        })
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// A mutable window onto this cache's tag array and counters — the
    /// shared implementation behind both the scalar and the lane-batched
    /// access paths.
    #[inline]
    pub(crate) fn view(&mut self) -> CacheLaneView<'_> {
        CacheLaneView {
            lines: &mut self.lines,
            next_stamp: &mut self.next_stamp,
            accesses: &mut self.accesses,
            misses: &mut self.misses,
            ways: self.config.ways,
            set_mask: self.set_mask,
            block_shift: self.block_shift,
            tag_shift: self.tag_shift,
        }
    }

    /// Accesses byte address `addr`, allocating the line on a miss.
    ///
    /// See [`CacheLaneView::access`] for the single-pass hit/LRU-victim
    /// scan this delegates to.
    #[inline]
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.view().access(addr)
    }

    /// Installs the line for `addr` without counting a demand access or a
    /// demand miss (hardware-prefetch fills). Returns whether the line was
    /// already resident.
    pub fn install(&mut self, addr: u64) -> AccessOutcome {
        self.view().install(addr)
    }

    /// Probes whether `addr` is resident without touching LRU state or
    /// counters.
    #[must_use]
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.tag_shift;
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.tag == tag && l.stamp != 0)
    }

    /// Total accesses since construction or the last [`reset_counters`].
    ///
    /// [`reset_counters`]: Self::reset_counters
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses since construction or the last counter reset.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over the counted window; 0 when no accesses happened.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears the access/miss counters but keeps cache contents warm.
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all lines and clears counters.
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
        self.next_stamp = 0;
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64 B blocks.
        SetAssocCache::new(CacheConfig::new(256, 2, 64)).unwrap()
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 2, 128);
        assert_eq!(c.sets(), 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheConfig::new(300, 2, 64).validate().is_err());
        assert!(CacheConfig::new(256, 2, 48).validate().is_err());
        assert!(CacheConfig::new(0, 2, 64).validate().is_err());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(c.access(0).is_miss());
        assert!(!c.access(0).is_miss());
        // Same block, different byte.
        assert!(!c.access(63).is_miss());
        // Next block maps to the other set.
        assert!(c.access(64).is_miss());
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds blocks with (block & 1) == 0: addresses 0, 128, 256…
        c.access(0); // miss, way 0
        c.access(128); // miss, way 1
        c.access(0); // hit, refreshes block 0
        c.access(256); // miss, evicts 128 (LRU)
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn contains_does_not_count() {
        let mut c = tiny();
        c.access(0);
        let before = c.accesses();
        let _ = c.contains(0);
        assert_eq!(c.accesses(), before);
    }

    #[test]
    fn install_fills_without_counting() {
        let mut c = tiny();
        assert!(c.install(0).is_miss());
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(!c.access(0).is_miss(), "installed line is resident");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.contains(0));
        assert_eq!(c.accesses(), 0);
        assert!(c.access(0).is_miss());
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(!c.access(0).is_miss(), "contents survive counter reset");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 256 B total
        let mut misses = 0;
        // Stream over 4 KiB repeatedly: everything should keep missing after
        // warmup because the working set is 16× the capacity.
        for round in 0..4 {
            for block in 0..64u64 {
                if c.access(block * 64).is_miss() && round > 0 {
                    misses += 1;
                }
            }
        }
        assert_eq!(
            misses,
            3 * 64,
            "LRU with a circular sweep evicts everything"
        );
    }

    #[test]
    fn miss_rate_zero_when_unused() {
        assert_eq!(tiny().miss_rate(), 0.0);
    }

    #[test]
    fn new_rejects_invalid_geometry() {
        assert!(matches!(
            SetAssocCache::new(CacheConfig::new(100, 3, 7)),
            Err(gpm_types::GpmError::InvalidConfig {
                parameter: "cache",
                ..
            })
        ));
    }

    #[test]
    fn lanes_match_independent_scalar_caches() {
        // Three lanes fed three different access sequences must behave
        // exactly like three standalone caches fed the same sequences.
        let config = CacheConfig::new(256, 2, 64);
        let mut lanes = CacheLanes::new(config, 3).unwrap();
        let mut scalars: Vec<_> = (0..3)
            .map(|_| SetAssocCache::new(config).unwrap())
            .collect();
        let mut x = 7u64;
        for i in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lane = (i % 3) as usize;
            let addr = x % 8192;
            assert_eq!(
                lanes.lane_view(lane).access(addr),
                scalars[lane].access(addr)
            );
            if i % 7 == 0 {
                assert_eq!(
                    lanes.lane_view(lane).install(addr ^ 4096),
                    scalars[lane].install(addr ^ 4096)
                );
            }
            assert_eq!(
                lanes.lane_view(lane).contains(addr),
                scalars[lane].contains(addr)
            );
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            assert_eq!(*lanes.lane_view(lane).accesses, scalar.accesses());
            assert_eq!(*lanes.lane_view(lane).misses, scalar.misses());
        }
    }

    #[test]
    fn lanes_reject_invalid_geometry() {
        assert!(CacheLanes::new(CacheConfig::new(100, 3, 7), 2).is_err());
    }
}
