//! Hardware stream prefetcher — an off-by-default extension.
//!
//! The real POWER4 shipped an 8-stream hardware prefetcher; the paper's
//! Table 1 does not list one, so the default [`CoreConfig`] leaves it
//! disabled to match the evaluated configuration. Enabling it
//! ([`CoreConfig::prefetch_streams`] > 0) lets sensitivity studies ask how
//! much of the memory-boundedness — and therefore of the DVFS
//! insensitivity the policies exploit — survives a prefetcher
//! (`ablation_prefetch` bench).
//!
//! The mechanism is the classic ascending-stream detector: a miss that hits
//! a tracked stream's expected next block confirms the stream and issues a
//! prefetch for the following block; unrecognised misses allocate a new
//! stream (LRU replacement).
//!
//! [`CoreConfig`]: crate::CoreConfig
//! [`CoreConfig::prefetch_streams`]: crate::CoreConfig::prefetch_streams

/// One tracked ascending stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// The block address expected to miss next.
    next_block: u64,
    /// LRU stamp.
    stamp: u64,
    /// Current prefetch degree (ramps 1 → 2 → 4 as the stream keeps
    /// confirming, like POWER4's ramping stream engine).
    depth: u32,
}

/// An N-stream ascending prefetch detector.
///
/// # Examples
///
/// ```
/// use gpm_microarch::StreamPrefetcher;
///
/// let mut p = StreamPrefetcher::new(4, 128).unwrap();
/// assert_eq!(p.on_miss(0x0000), None);           // becomes a candidate
/// assert_eq!(p.on_miss(0x0080), Some((0x100, 1))); // confirmed: 1 block
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    candidates: Vec<Stream>,
    max_streams: usize,
    block_bytes: u64,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a detector tracking up to `streams` concurrent ascending
    /// streams over `block_bytes`-sized cache lines.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if `streams` is zero
    /// or `block_bytes` is not a power of two.
    pub fn new(streams: usize, block_bytes: usize) -> gpm_types::Result<Self> {
        if streams == 0 {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "prefetch_streams",
                reason: "need at least one stream".into(),
            });
        }
        if !block_bytes.is_power_of_two() {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "prefetch_block_bytes",
                reason: format!("block size {block_bytes} is not a power of two"),
            });
        }
        Ok(Self {
            streams: Vec::with_capacity(streams.min(64)),
            candidates: Vec::with_capacity((streams * 4).min(256)),
            max_streams: streams.min(64),
            block_bytes: block_bytes as u64,
            clock: 0,
            issued: 0,
        })
    }

    /// Reports a demand miss at byte address `addr`. Returns
    /// `(first_prefetch_addr, block_count)` when the miss hit a confirmed
    /// stream or promoted a candidate — the engine prefetches `block_count`
    /// consecutive blocks ahead, ramping the degree 1 → 2 → 4 as the stream
    /// keeps confirming.
    pub fn on_miss(&mut self, addr: u64) -> Option<(u64, u32)> {
        self.clock += 1;
        let block = addr / self.block_bytes;

        // Confirmed stream: ramp the degree and run further ahead.
        if let Some(stream) = self.streams.iter_mut().find(|s| s.next_block == block) {
            stream.depth = (stream.depth * 2).min(4);
            stream.next_block = block + 1 + u64::from(stream.depth);
            stream.stamp = self.clock;
            self.issued += u64::from(stream.depth);
            return Some(((block + 1) * self.block_bytes, stream.depth));
        }

        // Candidate confirmed: promote to a stream and issue the first
        // prefetch.
        if let Some(pos) = self.candidates.iter().position(|c| c.next_block == block) {
            self.candidates.swap_remove(pos);
            let stream = Stream {
                next_block: block + 2,
                stamp: self.clock,
                depth: 1,
            };
            if self.streams.len() < self.max_streams {
                self.streams.push(stream);
            } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.stamp) {
                *victim = stream;
            }
            self.issued += 1;
            return Some(((block + 1) * self.block_bytes, 1));
        }

        // Unknown miss: remember it as a candidate only — random traffic
        // churns this table without touching confirmed streams.
        let candidate = Stream {
            next_block: block + 1,
            stamp: self.clock,
            depth: 1,
        };
        if self.candidates.len() < self.candidates.capacity() {
            self.candidates.push(candidate);
        } else if let Some(victim) = self.candidates.iter_mut().min_by_key(|c| c.stamp) {
            *victim = candidate;
        }
        None
    }

    /// Confirmed streams currently tracked.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Prefetches issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_confirms_and_ramps() {
        let mut p = StreamPrefetcher::new(8, 128).unwrap();
        assert_eq!(p.on_miss(0), None);
        // Promotion: prefetch 1 block, expect the next miss at block 3.
        assert_eq!(p.on_miss(128), Some((256, 1)));
        assert_eq!(p.active_streams(), 1);
        // Confirmation ramps the degree to 2: prefetch blocks 4-5, next
        // miss expected at block 6.
        assert_eq!(p.on_miss(3 * 128), Some((4 * 128, 2)));
        // And to 4.
        assert_eq!(p.on_miss(6 * 128), Some((7 * 128, 4)));
        // Saturates at 4.
        assert_eq!(p.on_miss(11 * 128), Some((12 * 128, 4)));
        assert_eq!(p.issued(), 1 + 2 + 4 + 4);
    }

    #[test]
    fn random_misses_never_trigger() {
        let mut p = StreamPrefetcher::new(8, 128).unwrap();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(p.on_miss((x % (1 << 30)) & !0x7f), None);
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn tracks_multiple_interleaved_streams() {
        let mut p = StreamPrefetcher::new(4, 128).unwrap();
        let bases = [0u64, 1 << 20, 2 << 20, 3 << 20];
        for &b in &bases {
            assert_eq!(p.on_miss(b), None);
        }
        for &b in &bases {
            assert_eq!(p.on_miss(b + 128), Some((b + 256, 1)), "base {b:#x}");
        }
    }

    #[test]
    fn confirmed_streams_survive_random_churn() {
        let mut p = StreamPrefetcher::new(2, 128).unwrap();
        // Confirm a stream.
        p.on_miss(0);
        assert!(p.on_miss(128).is_some());
        assert_eq!(p.active_streams(), 1);
        // Flood with random misses: only candidates churn.
        let mut x = 99u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let _ = p.on_miss(((x % (1 << 30)) | (1 << 32)) & !0x7f);
        }
        assert_eq!(p.active_streams(), 1, "confirmed stream survives");
        // The stream still fires (ramped to degree 2).
        assert_eq!(p.on_miss(384), Some((512, 2)));
    }

    #[test]
    fn candidate_table_is_bounded() {
        let mut p = StreamPrefetcher::new(2, 128).unwrap();
        for i in 0..1000u64 {
            let _ = p.on_miss(i * 4096 * 7 + (1 << 33));
        }
        assert_eq!(p.issued(), 0);
        assert_eq!(p.active_streams(), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(StreamPrefetcher::new(0, 128).is_err());
        assert!(StreamPrefetcher::new(4, 100).is_err());
    }
}
