//! Combining branch predictor: bimodal + gshare + selector (Table 1).

use serde::{Deserialize, Serialize};

/// Sizes of the three predictor tables.
///
/// Table 1 of the paper: 16K-entry bimodal, 16K-entry gshare, 16K-entry
/// selector, each a table of 2-bit saturating counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: usize,
    /// Entries in the gshare table (power of two).
    pub gshare_entries: usize,
    /// Entries in the selector table (power of two).
    pub selector_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 16 * 1024,
            gshare_entries: 16 * 1024,
            selector_entries: 16 * 1024,
        }
    }
}

impl PredictorConfig {
    /// Checks the table sizes are usable (non-zero powers of two, so the
    /// index masks are well-formed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a table size is invalid.
    pub fn validate(&self) -> Result<(), String> {
        for (name, n) in [
            ("bimodal_entries", self.bimodal_entries),
            ("gshare_entries", self.gshare_entries),
            ("selector_entries", self.selector_entries),
        ] {
            if !n.is_power_of_two() {
                return Err(format!(
                    "table {name} must be a non-zero power of two, got {n}"
                ));
            }
        }
        Ok(())
    }
}

/// Two-bit saturating counter helpers.
#[inline]
fn counter_predict(counter: u8) -> bool {
    counter >= 2
}

#[inline]
fn counter_update(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// A McFarling-style combining predictor: a bimodal table and a gshare table
/// race, and a selector table (indexed by PC) learns which component to
/// trust per branch.
///
/// # Examples
///
/// ```
/// use gpm_microarch::{BranchPredictor, PredictorConfig};
///
/// let mut bp = BranchPredictor::new(PredictorConfig::default());
/// // A strongly-biased branch becomes perfectly predicted.
/// let mut wrong = 0;
/// for _ in 0..1000 {
///     if bp.predict_and_update(0x4000, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    selector: Vec<u8>,
    // Index masks (len - 1), precomputed so the per-branch hot path does no
    // table-length loads.
    bi_mask: usize,
    gs_mask: usize,
    sel_mask: usize,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

/// A mutable window onto one predictor instance's tables and counters.
///
/// This is *the* implementation of the combining-predictor update:
/// [`BranchPredictor`] (one core, its own tables) and [`PredictorLanes`]
/// (N lanes sharing flat lane-major tables) both dispatch through it, so
/// the scalar reference path and the SoA lane-batched path cannot diverge.
#[derive(Debug)]
pub(crate) struct PredictorLaneView<'a> {
    bimodal: &'a mut [u8],
    gshare: &'a mut [u8],
    selector: &'a mut [u8],
    bi_mask: usize,
    gs_mask: usize,
    sel_mask: usize,
    history: &'a mut u64,
    predictions: &'a mut u64,
    mispredictions: &'a mut u64,
}

impl PredictorLaneView<'_> {
    /// Predicts branch at `pc`, then updates all tables with the actual
    /// `taken` outcome. Returns `true` if the branch was **mispredicted**.
    #[inline]
    pub(crate) fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi_idx = (pc as usize) & self.bi_mask;
        let gs_idx = ((pc ^ *self.history) as usize) & self.gs_mask;
        let sel_idx = (pc as usize) & self.sel_mask;

        let bi_pred = counter_predict(self.bimodal[bi_idx]);
        let gs_pred = counter_predict(self.gshare[gs_idx]);
        // Selector ≥ 2 → trust gshare.
        let prediction = if counter_predict(self.selector[sel_idx]) {
            gs_pred
        } else {
            bi_pred
        };

        // Train the selector only when the components disagree.
        if bi_pred != gs_pred {
            counter_update(&mut self.selector[sel_idx], gs_pred == taken);
        }
        counter_update(&mut self.bimodal[bi_idx], taken);
        counter_update(&mut self.gshare[gs_idx], taken);
        *self.history = (*self.history << 1) | u64::from(taken);

        *self.predictions += 1;
        let mispredicted = prediction != taken;
        if mispredicted {
            *self.mispredictions += 1;
        }
        mispredicted
    }
}

/// N independent combining predictors, stored as flat structure-of-arrays:
/// all lanes' bimodal/gshare/selector tables live in lane-major
/// allocations, with per-lane history and counters alongside.
///
/// Lanes never share counters or history — [`lane_view`](Self::lane_view)
/// windows one lane and runs the exact [`PredictorLaneView`] logic the
/// scalar [`BranchPredictor`] runs, so a lane is bit-identical to a
/// standalone predictor seeing the same branch sequence.
#[derive(Debug, Clone)]
pub(crate) struct PredictorLanes {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    selector: Vec<u8>,
    bi_entries: usize,
    gs_entries: usize,
    sel_entries: usize,
    bi_mask: usize,
    gs_mask: usize,
    sel_mask: usize,
    history: Vec<u64>,
    predictions: Vec<u64>,
    mispredictions: Vec<u64>,
}

impl PredictorLanes {
    /// Builds `lanes` predictors with the given table sizes.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the sizes fail
    /// [`PredictorConfig::validate`].
    pub(crate) fn new(config: PredictorConfig, lanes: usize) -> gpm_types::Result<Self> {
        config
            .validate()
            .map_err(|reason| gpm_types::GpmError::InvalidConfig {
                parameter: "predictor",
                reason,
            })?;
        Ok(Self {
            // Initialise to weakly-taken so cold branches behave neutrally.
            bimodal: vec![2; config.bimodal_entries * lanes],
            gshare: vec![2; config.gshare_entries * lanes],
            selector: vec![2; config.selector_entries * lanes],
            bi_entries: config.bimodal_entries,
            gs_entries: config.gshare_entries,
            sel_entries: config.selector_entries,
            bi_mask: config.bimodal_entries - 1,
            gs_mask: config.gshare_entries - 1,
            sel_mask: config.selector_entries - 1,
            history: vec![0; lanes],
            predictions: vec![0; lanes],
            mispredictions: vec![0; lanes],
        })
    }

    /// A mutable window onto lane `lane`'s tables and counters.
    #[inline]
    pub(crate) fn lane_view(&mut self, lane: usize) -> PredictorLaneView<'_> {
        PredictorLaneView {
            bimodal: &mut self.bimodal[lane * self.bi_entries..(lane + 1) * self.bi_entries],
            gshare: &mut self.gshare[lane * self.gs_entries..(lane + 1) * self.gs_entries],
            selector: &mut self.selector[lane * self.sel_entries..(lane + 1) * self.sel_entries],
            bi_mask: self.bi_mask,
            gs_mask: self.gs_mask,
            sel_mask: self.sel_mask,
            history: &mut self.history[lane],
            predictions: &mut self.predictions[lane],
            mispredictions: &mut self.mispredictions[lane],
        }
    }
}

impl BranchPredictor {
    /// Builds a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or not a power of two; validate
    /// first with [`PredictorConfig::validate`] to get an error instead
    /// (as [`CoreConfig::validate`](crate::CoreConfig::validate) does).
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        if let Err(reason) = config.validate() {
            panic!("predictor {reason}");
        }
        Self {
            // Initialise to weakly-taken so cold branches behave neutrally.
            bimodal: vec![2; config.bimodal_entries],
            gshare: vec![2; config.gshare_entries],
            selector: vec![2; config.selector_entries],
            bi_mask: config.bimodal_entries - 1,
            gs_mask: config.gshare_entries - 1,
            sel_mask: config.selector_entries - 1,
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// A mutable window onto this predictor's tables and counters — the
    /// shared implementation behind both the scalar and the lane-batched
    /// update paths.
    #[inline]
    pub(crate) fn view(&mut self) -> PredictorLaneView<'_> {
        PredictorLaneView {
            bimodal: &mut self.bimodal,
            gshare: &mut self.gshare,
            selector: &mut self.selector,
            bi_mask: self.bi_mask,
            gs_mask: self.gs_mask,
            sel_mask: self.sel_mask,
            history: &mut self.history,
            predictions: &mut self.predictions,
            mispredictions: &mut self.mispredictions,
        }
    }

    /// Predicts branch at `pc`, then updates all tables with the actual
    /// `taken` outcome. Returns `true` if the branch was **mispredicted**.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.view().predict_and_update(pc, taken)
    }

    /// Total predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate; 0 when no branches were seen.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears the counters but keeps learned state.
    pub fn reset_counters(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }

    #[test]
    fn biased_branch_learns() {
        let mut bp = predictor();
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        bp.reset_counters();
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        assert_eq!(bp.mispredictions(), 0);
    }

    #[test]
    fn alternating_pattern_is_learned_by_gshare() {
        let mut bp = predictor();
        let mut flip = false;
        for _ in 0..2000 {
            bp.predict_and_update(0x200, flip);
            flip = !flip;
        }
        bp.reset_counters();
        for _ in 0..1000 {
            bp.predict_and_update(0x200, flip);
            flip = !flip;
        }
        assert!(
            bp.mispredict_rate() < 0.05,
            "gshare should capture period-2 history, got {}",
            bp.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_heavily() {
        let mut bp = predictor();
        // Deterministic pseudo-random outcome stream.
        let mut x = 0x12345678u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        };
        for _ in 0..20_000 {
            bp.predict_and_update(0x300, next());
        }
        assert!(
            bp.mispredict_rate() > 0.35,
            "random outcomes cannot be predicted, got {}",
            bp.mispredict_rate()
        );
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut bp = predictor();
        for _ in 0..500 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x1001, false);
        }
        bp.reset_counters();
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x1001, false);
        }
        assert!(bp.mispredict_rate() < 0.02);
    }

    #[test]
    fn rate_zero_with_no_branches() {
        assert_eq!(predictor().mispredict_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_tables() {
        let _ = BranchPredictor::new(PredictorConfig {
            bimodal_entries: 1000,
            ..PredictorConfig::default()
        });
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let bad = PredictorConfig {
            gshare_entries: 1000,
            ..PredictorConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(PredictorConfig::default().validate().is_ok());
        assert!(PredictorLanes::new(bad, 2).is_err());
    }

    #[test]
    fn lanes_match_independent_scalar_predictors() {
        // Small tables so lanes alias internally but never across lanes.
        let config = PredictorConfig {
            bimodal_entries: 64,
            gshare_entries: 64,
            selector_entries: 64,
        };
        let mut lanes = PredictorLanes::new(config, 3).unwrap();
        let mut scalars: Vec<_> = (0..3).map(|_| BranchPredictor::new(config)).collect();
        let mut x = 5u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lane = (i % 3) as usize;
            let pc = x % 512;
            let taken = (x >> 9) & 1 == 1;
            assert_eq!(
                lanes.lane_view(lane).predict_and_update(pc, taken),
                scalars[lane].predict_and_update(pc, taken)
            );
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            assert_eq!(lanes.predictions[lane], scalar.predictions());
            assert_eq!(lanes.mispredictions[lane], scalar.mispredictions());
        }
    }

    #[test]
    fn counter_saturation() {
        let mut c = 3u8;
        counter_update(&mut c, true);
        assert_eq!(c, 3);
        let mut c = 0u8;
        counter_update(&mut c, false);
        assert_eq!(c, 0);
    }
}
