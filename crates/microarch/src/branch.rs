//! Combining branch predictor: bimodal + gshare + selector (Table 1).

use serde::{Deserialize, Serialize};

/// Sizes of the three predictor tables.
///
/// Table 1 of the paper: 16K-entry bimodal, 16K-entry gshare, 16K-entry
/// selector, each a table of 2-bit saturating counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: usize,
    /// Entries in the gshare table (power of two).
    pub gshare_entries: usize,
    /// Entries in the selector table (power of two).
    pub selector_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 16 * 1024,
            gshare_entries: 16 * 1024,
            selector_entries: 16 * 1024,
        }
    }
}

/// Two-bit saturating counter helpers.
#[inline]
fn counter_predict(counter: u8) -> bool {
    counter >= 2
}

#[inline]
fn counter_update(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// A McFarling-style combining predictor: a bimodal table and a gshare table
/// race, and a selector table (indexed by PC) learns which component to
/// trust per branch.
///
/// # Examples
///
/// ```
/// use gpm_microarch::{BranchPredictor, PredictorConfig};
///
/// let mut bp = BranchPredictor::new(PredictorConfig::default());
/// // A strongly-biased branch becomes perfectly predicted.
/// let mut wrong = 0;
/// for _ in 0..1000 {
///     if bp.predict_and_update(0x4000, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    selector: Vec<u8>,
    // Index masks (len - 1), precomputed so the per-branch hot path does no
    // table-length loads.
    bi_mask: usize,
    gs_mask: usize,
    sel_mask: usize,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Builds a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or not a power of two.
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        for (name, n) in [
            ("bimodal_entries", config.bimodal_entries),
            ("gshare_entries", config.gshare_entries),
            ("selector_entries", config.selector_entries),
        ] {
            assert!(
                n.is_power_of_two(),
                "predictor table {name} must be a non-zero power of two, got {n}"
            );
        }
        Self {
            // Initialise to weakly-taken so cold branches behave neutrally.
            bimodal: vec![2; config.bimodal_entries],
            gshare: vec![2; config.gshare_entries],
            selector: vec![2; config.selector_entries],
            bi_mask: config.bimodal_entries - 1,
            gs_mask: config.gshare_entries - 1,
            sel_mask: config.selector_entries - 1,
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts branch at `pc`, then updates all tables with the actual
    /// `taken` outcome. Returns `true` if the branch was **mispredicted**.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi_idx = (pc as usize) & self.bi_mask;
        let gs_idx = ((pc ^ self.history) as usize) & self.gs_mask;
        let sel_idx = (pc as usize) & self.sel_mask;

        let bi_pred = counter_predict(self.bimodal[bi_idx]);
        let gs_pred = counter_predict(self.gshare[gs_idx]);
        // Selector ≥ 2 → trust gshare.
        let prediction = if counter_predict(self.selector[sel_idx]) {
            gs_pred
        } else {
            bi_pred
        };

        // Train the selector only when the components disagree.
        if bi_pred != gs_pred {
            counter_update(&mut self.selector[sel_idx], gs_pred == taken);
        }
        counter_update(&mut self.bimodal[bi_idx], taken);
        counter_update(&mut self.gshare[gs_idx], taken);
        self.history = (self.history << 1) | u64::from(taken);

        self.predictions += 1;
        let mispredicted = prediction != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        mispredicted
    }

    /// Total predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate; 0 when no branches were seen.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears the counters but keeps learned state.
    pub fn reset_counters(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }

    #[test]
    fn biased_branch_learns() {
        let mut bp = predictor();
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        bp.reset_counters();
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        assert_eq!(bp.mispredictions(), 0);
    }

    #[test]
    fn alternating_pattern_is_learned_by_gshare() {
        let mut bp = predictor();
        let mut flip = false;
        for _ in 0..2000 {
            bp.predict_and_update(0x200, flip);
            flip = !flip;
        }
        bp.reset_counters();
        for _ in 0..1000 {
            bp.predict_and_update(0x200, flip);
            flip = !flip;
        }
        assert!(
            bp.mispredict_rate() < 0.05,
            "gshare should capture period-2 history, got {}",
            bp.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_heavily() {
        let mut bp = predictor();
        // Deterministic pseudo-random outcome stream.
        let mut x = 0x12345678u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        };
        for _ in 0..20_000 {
            bp.predict_and_update(0x300, next());
        }
        assert!(
            bp.mispredict_rate() > 0.35,
            "random outcomes cannot be predicted, got {}",
            bp.mispredict_rate()
        );
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut bp = predictor();
        for _ in 0..500 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x1001, false);
        }
        bp.reset_counters();
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x1001, false);
        }
        assert!(bp.mispredict_rate() < 0.02);
    }

    #[test]
    fn rate_zero_with_no_branches() {
        assert_eq!(predictor().mispredict_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_tables() {
        let _ = BranchPredictor::new(PredictorConfig {
            bimodal_entries: 1000,
            ..PredictorConfig::default()
        });
    }

    #[test]
    fn counter_saturation() {
        let mut c = 3u8;
        counter_update(&mut c, true);
        assert_eq!(c, 3);
        let mut c = 0u8;
        counter_update(&mut c, false);
        assert_eq!(c, 0);
    }
}
