//! Micro-operations and the instruction-stream abstraction.

use serde::{Deserialize, Serialize};

/// The class of a micro-operation, determining which functional unit
/// executes it and what its latency is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Fixed-point ALU operation (FXU, 1 cycle).
    IntAlu,
    /// Floating-point operation (FPU, pipelined multi-cycle).
    FpAlu,
    /// Memory load (LSU; latency from the cache hierarchy).
    Load {
        /// Byte address accessed.
        addr: u64,
    },
    /// Memory store (LSU; retires without stalling consumers).
    Store {
        /// Byte address accessed.
        addr: u64,
    },
    /// Conditional branch (BRU; may trigger a pipeline refill).
    Branch {
        /// Static address of the branch, used to index predictor tables.
        pc: u64,
        /// Actual outcome.
        taken: bool,
    },
}

/// One micro-operation of a synthetic instruction stream.
///
/// `dep` is the distance (in dynamically preceding micro-ops) to the
/// producer of this op's source operand, if any; it is how workload
/// generators express ILP. A chain of `dep = Some(1)` loads is a
/// pointer-chase with no memory-level parallelism; independent ops
/// (`dep = None`) saturate the dispatch width.
///
/// `code_addr` is the address of the instruction itself, used for L1I
/// modelling (one access per cache block of straight-line code).
///
/// # Examples
///
/// ```
/// use gpm_microarch::MicroOp;
///
/// let op = MicroOp::load(0x1000, Some(1)).at_code(0x400);
/// assert!(op.is_memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Operation class.
    pub kind: OpKind,
    /// Distance back to the producing op, or `None` when independent.
    pub dep: Option<u32>,
    /// Address of the instruction word (for I-cache modelling).
    pub code_addr: u64,
}

impl MicroOp {
    /// Creates a fixed-point ALU op.
    #[must_use]
    pub const fn int_alu(dep: Option<u32>) -> Self {
        Self {
            kind: OpKind::IntAlu,
            dep,
            code_addr: 0,
        }
    }

    /// Creates a floating-point op.
    #[must_use]
    pub const fn fp_alu(dep: Option<u32>) -> Self {
        Self {
            kind: OpKind::FpAlu,
            dep,
            code_addr: 0,
        }
    }

    /// Creates a load from `addr`.
    #[must_use]
    pub const fn load(addr: u64, dep: Option<u32>) -> Self {
        Self {
            kind: OpKind::Load { addr },
            dep,
            code_addr: 0,
        }
    }

    /// Creates a store to `addr`.
    #[must_use]
    pub const fn store(addr: u64, dep: Option<u32>) -> Self {
        Self {
            kind: OpKind::Store { addr },
            dep,
            code_addr: 0,
        }
    }

    /// Creates a conditional branch at `pc` with the given outcome.
    #[must_use]
    pub const fn branch(pc: u64, taken: bool) -> Self {
        Self {
            kind: OpKind::Branch { pc, taken },
            dep: None,
            code_addr: 0,
        }
    }

    /// Sets the instruction's own code address (builder-style).
    #[must_use]
    pub const fn at_code(mut self, code_addr: u64) -> Self {
        self.code_addr = code_addr;
        self
    }

    /// Returns `true` for loads and stores.
    #[must_use]
    pub const fn is_memory(&self) -> bool {
        matches!(self.kind, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// Returns `true` for branches.
    #[must_use]
    pub const fn is_branch(&self) -> bool {
        matches!(self.kind, OpKind::Branch { .. })
    }
}

/// A source of micro-operations driven by the core model.
///
/// Implementations are expected to be infinite (looping) streams;
/// finite-length semantics (benchmark completion) are handled one level up
/// by the trace captures, which know each benchmark's total instruction
/// count.
pub trait InstructionSource {
    /// Produces the next micro-op in program order.
    fn next_op(&mut self) -> MicroOp;

    /// Fills `buf` with the next micro-ops in program order and returns how
    /// many were written (always starting at `buf[0]`).
    ///
    /// This is the batched delivery path: the core pulls ops in blocks so a
    /// boxed/dynamic source pays one virtual call per block rather than one
    /// per op. The contract for a non-empty `buf` is to deliver between 1
    /// and `buf.len()` ops — delivering fewer than requested is allowed
    /// (e.g. a source that produces ops in fixed-size chunks), delivering 0
    /// is a violation and the core panics on it.
    ///
    /// Batching must not change the op sequence: `fill_ops` followed by
    /// `next_op` yields exactly the ops `next_op` alone would have yielded.
    /// The default implementation guarantees this by delegating to
    /// [`next_op`](Self::next_op) for every slot.
    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.next_op();
        }
        buf.len()
    }

    /// Borrows the next up-to-`max` micro-ops in program order without
    /// copying, or `None` if this source cannot serve borrowed blocks.
    ///
    /// The zero-copy delivery path: a source backed by in-memory storage
    /// (e.g. a recorded tape) returns a slice straight into that storage
    /// and the core steps ops from it, skipping the per-op copy into its
    /// delivery buffer. Borrowing does *not* consume — the caller reports
    /// how many ops it actually stepped via
    /// [`consume_ops`](Self::consume_ops), which is what advances the
    /// stream (the core may stop mid-block at a cycle boundary). `max` is
    /// at least 1 and a `Some` return must hold between 1 and `max` ops.
    ///
    /// A source must answer consistently — either always `None` (the
    /// buffered [`fill_ops`](Self::fill_ops) path is used) or always
    /// `Some`, with exactly the op sequence `next_op` would produce.
    fn borrow_ops(&mut self, max: usize) -> Option<&[MicroOp]> {
        let _ = max;
        None
    }

    /// Consumes `n` ops previously returned by
    /// [`borrow_ops`](Self::borrow_ops), advancing the stream past them.
    /// Never called with `n > 0` on sources whose `borrow_ops` returns
    /// `None`.
    fn consume_ops(&mut self, n: usize) {
        debug_assert!(n == 0, "consume_ops on a source without borrow_ops");
    }
}

impl<T: InstructionSource + ?Sized> InstructionSource for &mut T {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }

    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        (**self).fill_ops(buf)
    }

    fn borrow_ops(&mut self, max: usize) -> Option<&[MicroOp]> {
        (**self).borrow_ops(max)
    }

    fn consume_ops(&mut self, n: usize) {
        (**self).consume_ops(n);
    }
}

impl<T: InstructionSource + ?Sized> InstructionSource for Box<T> {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }

    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        (**self).fill_ops(buf)
    }

    fn borrow_ops(&mut self, max: usize) -> Option<&[MicroOp]> {
        (**self).borrow_ops(max)
    }

    fn consume_ops(&mut self, n: usize) {
        (**self).consume_ops(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(MicroOp::int_alu(None).kind, OpKind::IntAlu);
        assert_eq!(MicroOp::fp_alu(Some(2)).dep, Some(2));
        assert!(MicroOp::load(8, None).is_memory());
        assert!(MicroOp::store(8, None).is_memory());
        assert!(MicroOp::branch(0x10, true).is_branch());
        assert!(!MicroOp::int_alu(None).is_memory());
    }

    #[test]
    fn at_code_sets_address() {
        let op = MicroOp::int_alu(None).at_code(0xdead);
        assert_eq!(op.code_addr, 0xdead);
    }

    #[test]
    fn source_via_mut_ref_and_box() {
        struct S(u64);
        impl InstructionSource for S {
            fn next_op(&mut self) -> MicroOp {
                self.0 += 1;
                MicroOp::int_alu(None)
            }
        }
        let mut s = S(0);
        let _ = InstructionSource::next_op(&mut (&mut s));
        let mut b: Box<dyn InstructionSource> = Box::new(S(0));
        let _ = b.next_op();
        assert_eq!(s.0, 1);
    }

    #[test]
    fn default_fill_ops_matches_next_op() {
        struct Counting(u64);
        impl InstructionSource for Counting {
            fn next_op(&mut self) -> MicroOp {
                self.0 += 1;
                MicroOp::load(self.0 * 8, None)
            }
        }
        let mut by_batch = Counting(0);
        let mut buf = [MicroOp::int_alu(None); 7];
        assert_eq!(by_batch.fill_ops(&mut buf), 7);
        let mut one_by_one = Counting(0);
        for op in buf {
            assert_eq!(op, one_by_one.next_op());
        }
        // Boxed dynamic sources forward the batched path.
        let mut boxed: Box<dyn InstructionSource> = Box::new(Counting(0));
        assert_eq!(boxed.fill_ops(&mut buf), 7);
        assert_eq!(buf[0], MicroOp::load(8, None));
    }
}
