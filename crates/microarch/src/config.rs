//! Core and memory-hierarchy configuration (Table 1 of the paper).

use gpm_types::{GpmError, Hertz, Result};
use serde::{Deserialize, Serialize};

use crate::{CacheConfig, PredictorConfig};

/// Latencies of the asynchronous (non-core-clock) part of the hierarchy.
///
/// The paper's Table 1 gives L2 and memory latencies in cycles at the nominal
/// clock; we store them in nanoseconds so that they stay constant under DVFS
/// and are re-expressed in core cycles per mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Shared L2 unified cache access latency in nanoseconds (9 cycles at
    /// 1 GHz nominal).
    pub l2_latency_ns: f64,
    /// Main-memory access latency in nanoseconds (77 cycles at 1 GHz
    /// nominal).
    pub memory_latency_ns: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            l2_latency_ns: 9.0,
            memory_latency_ns: 77.0,
        }
    }
}

/// Full configuration of one core plus its memory hierarchy, mirroring the
/// paper's Table 1 design parameters.
///
/// Use [`CoreConfig::power4`] for the exact paper configuration; individual
/// fields can be adjusted afterwards for sensitivity studies.
///
/// # Examples
///
/// ```
/// let mut cfg = gpm_microarch::CoreConfig::power4();
/// assert_eq!(cfg.dispatch_width, 5);
/// cfg.rob_size = 128; // ablation: smaller window
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions dispatched per cycle (Table 1: 5).
    pub dispatch_width: u32,
    /// Reorder-buffer window bounding in-flight instructions. Table 1 lists
    /// a 256-entry instruction queue; the window also caps memory-level
    /// parallelism.
    pub rob_size: usize,
    /// Number of load/store units (Table 1: 2 LSU).
    pub lsu_count: usize,
    /// Number of fixed-point units (Table 1: 2 FXU).
    pub fxu_count: usize,
    /// Number of floating-point units (Table 1: 2 FPU).
    pub fpu_count: usize,
    /// Number of branch units (Table 1: 1 BRU).
    pub bru_count: usize,
    /// Fixed-point operation latency in core cycles.
    pub fxu_latency: u64,
    /// Floating-point operation latency in core cycles (pipelined).
    pub fpu_latency: u64,
    /// Pipeline-refill penalty after a branch misprediction, in core cycles.
    pub mispredict_penalty: u64,
    /// L1 data cache (Table 1: 32 KB, 2-way, 128 B blocks, 1-cycle).
    pub l1d: CacheConfig,
    /// L1 instruction cache (Table 1: 64 KB, 2-way, 128 B blocks, 1-cycle).
    pub l1i: CacheConfig,
    /// Unified L2 (Table 1: 2 MB, 4-way LRU, 128 B blocks, 9-cycle).
    pub l2: CacheConfig,
    /// L1 hit latency in core cycles.
    pub l1_latency: u64,
    /// Extra load-to-use bubble in core cycles beyond the L1 array access:
    /// address generation and forwarding through the deep POWER4-class
    /// pipeline. Consumers of a load observe `l1_latency +
    /// load_use_penalty` (+ the miss latency, if any).
    pub load_use_penalty: u64,
    /// Asynchronous-domain latencies (L2, memory) in nanoseconds.
    pub memory: MemoryConfig,
    /// Branch predictor configuration (Table 1: 16K bimodal + 16K gshare +
    /// 16K selector).
    pub predictor: PredictorConfig,
    /// Hardware stream-prefetcher streams; 0 disables it. The paper's
    /// Table 1 lists no prefetcher, so the default is 0 (the real POWER4
    /// had 8 streams — enable for sensitivity studies).
    pub prefetch_streams: usize,
    /// Nominal (Turbo) clock frequency. 1 GHz matches the paper's
    /// "100K cycles ≈ 100 µs" DVFS-granularity arithmetic.
    pub nominal_frequency: Hertz,
}

impl CoreConfig {
    /// The paper's POWER4-like configuration (Table 1).
    #[must_use]
    pub fn power4() -> Self {
        Self {
            dispatch_width: 5,
            rob_size: 256,
            lsu_count: 2,
            fxu_count: 2,
            fpu_count: 2,
            bru_count: 1,
            fxu_latency: 1,
            fpu_latency: 4,
            mispredict_penalty: 12,
            l1d: CacheConfig::new(32 * 1024, 2, 128),
            l1i: CacheConfig::new(64 * 1024, 2, 128),
            l2: CacheConfig::new(2 * 1024 * 1024, 4, 128),
            l1_latency: 1,
            load_use_penalty: 2,
            memory: MemoryConfig::default(),
            predictor: PredictorConfig::default(),
            prefetch_streams: 0,
            nominal_frequency: Hertz::from_ghz(1.0),
        }
    }

    /// Checks internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when a parameter is zero or
    /// otherwise unusable.
    pub fn validate(&self) -> Result<()> {
        if self.dispatch_width == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "dispatch_width",
                reason: "must be at least 1".into(),
            });
        }
        if self.rob_size == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "rob_size",
                reason: "must be at least 1".into(),
            });
        }
        for (name, count) in [
            ("lsu_count", self.lsu_count),
            ("fxu_count", self.fxu_count),
            ("fpu_count", self.fpu_count),
            ("bru_count", self.bru_count),
        ] {
            if count == 0 {
                return Err(GpmError::InvalidConfig {
                    parameter: name,
                    reason: "functional unit counts must be at least 1".into(),
                });
            }
        }
        if self.nominal_frequency.value() <= 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "nominal_frequency",
                reason: "must be positive".into(),
            });
        }
        if self.memory.l2_latency_ns <= 0.0 || self.memory.memory_latency_ns <= 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "memory",
                reason: "latencies must be positive".into(),
            });
        }
        for (name, cache) in [("l1d", &self.l1d), ("l1i", &self.l1i), ("l2", &self.l2)] {
            cache.validate().map_err(|reason| GpmError::InvalidConfig {
                parameter: name,
                reason,
            })?;
        }
        self.predictor
            .validate()
            .map_err(|reason| GpmError::InvalidConfig {
                parameter: "predictor",
                reason,
            })?;
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::power4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power4_matches_table1() {
        let c = CoreConfig::power4();
        assert_eq!(c.dispatch_width, 5);
        assert_eq!(c.rob_size, 256);
        assert_eq!(
            (c.lsu_count, c.fxu_count, c.fpu_count, c.bru_count),
            (2, 2, 2, 1)
        );
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 4);
        assert_eq!(c.l1d.block_bytes, 128);
        // 9 / 77 cycles at the 1 GHz nominal clock.
        assert_eq!(c.nominal_frequency.cycles_for_ns(c.memory.l2_latency_ns), 9);
        assert_eq!(
            c.nominal_frequency
                .cycles_for_ns(c.memory.memory_latency_ns),
            77
        );
        c.validate().unwrap();
    }

    #[test]
    fn default_is_power4() {
        assert_eq!(CoreConfig::default(), CoreConfig::power4());
    }

    #[test]
    fn validate_rejects_zero_width() {
        let mut c = CoreConfig::power4();
        c.dispatch_width = 0;
        assert!(matches!(
            c.validate(),
            Err(GpmError::InvalidConfig {
                parameter: "dispatch_width",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_zero_units() {
        let mut c = CoreConfig::power4();
        c.bru_count = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_memory() {
        let mut c = CoreConfig::power4();
        c.memory.memory_latency_ns = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_predictor() {
        // A degenerate predictor table used to slip through validation and
        // panic deep inside `BranchPredictor::new`; it must surface as a
        // typed configuration error instead.
        let mut c = CoreConfig::power4();
        c.predictor.bimodal_entries = 1000;
        assert!(matches!(
            c.validate(),
            Err(GpmError::InvalidConfig {
                parameter: "predictor",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_bad_cache() {
        let mut c = CoreConfig::power4();
        c.l1d.ways = 0;
        assert!(matches!(
            c.validate(),
            Err(GpmError::InvalidConfig {
                parameter: "l1d",
                ..
            })
        ));
    }
}
