//! Request-recording memory subsystem for two-phase parallel CMP
//! simulation.
//!
//! In the full-CMP simulator's parallel protocol every core steps one
//! quantum against a [`DeferredL2`] instead of the real shared L2: L1 hits
//! resolve locally in the core as usual, and each would-be L2 request is
//! *recorded* — timestamp, address, kind — while the core is charged a
//! *predicted* per-access latency (the L2 array-hit latency initially; the
//! simulation driver retargets it to the observed mean after each replay).
//! After the quantum, a single thread merge-replays all cores' logs
//! against the real shared L2 in global `(timestamp, core)` order; the
//! signed difference between the latency the requests *actually* cost
//! (queueing delay, memory latency on a miss) and the predicted charge is
//! settled as a stall credit at the start of the core's next quantum.
//!
//! Because a core's quantum depends only on its own state plus the credits
//! computed by the serial replay, phase 1 is embarrassingly parallel and
//! the protocol is bit-identical for any worker count.

use crate::{AccessKind, MemorySubsystem};

/// One recorded L2 request of a core's quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Request {
    /// Core-local wall-clock timestamp of the request in nanoseconds.
    pub now_ns: f64,
    /// Line address.
    pub addr: u64,
    /// Traffic class (fetch / demand data / prefetch).
    pub kind: AccessKind,
}

/// A [`MemorySubsystem`] that records L2 requests instead of serving them.
///
/// Every access is charged `charge_ns` (the optimistic L2 hit latency) and
/// reported as a hit; the real hit/miss outcome and all contention delays
/// are discovered later by replaying the log against the shared L2. The log
/// buffer is reused across quanta — [`reset`](DeferredL2::reset) keeps the
/// allocation.
#[derive(Debug, Clone)]
pub struct DeferredL2 {
    log: Vec<L2Request>,
    charge_ns: f64,
}

impl DeferredL2 {
    /// Builds a recorder charging `charge_ns` per access (the L2 array hit
    /// latency of the shared cache it stands in for).
    #[must_use]
    pub fn new(charge_ns: f64) -> Self {
        Self {
            log: Vec::new(),
            charge_ns,
        }
    }

    /// The per-access latency currently charged during recording.
    #[must_use]
    pub fn charge_ns(&self) -> f64 {
        self.charge_ns
    }

    /// Updates the per-access charge for subsequent quanta.
    ///
    /// The full-CMP replay sets this to the lane's observed mean L2
    /// latency, so the recording timeline tracks the real one and the
    /// correction credits stay small.
    pub fn set_charge_ns(&mut self, charge_ns: f64) {
        self.charge_ns = charge_ns;
    }

    /// The requests recorded since the last [`reset`](Self::reset).
    #[must_use]
    pub fn log(&self) -> &[L2Request] {
        &self.log
    }

    /// Clears the log, keeping its allocation for the next quantum.
    pub fn reset(&mut self) {
        self.log.clear();
    }

    /// Sorts the log by timestamp, preserving program order between equal
    /// timestamps (stable sort, total order over floats).
    ///
    /// A core's log is *almost* sorted already but not exactly: dependent
    /// loads carry their operand-ready time, which can step backwards
    /// relative to an earlier op's completion, and prefetch fills share
    /// their trigger miss's timestamp. Sorting per core (in parallel, at
    /// the end of phase 1) lets phase 2 do a cheap k-way merge.
    pub fn sort_log(&mut self) {
        self.log.sort_by(|a, b| a.now_ns.total_cmp(&b.now_ns));
    }
}

impl MemorySubsystem for DeferredL2 {
    fn access(&mut self, addr: u64, now_ns: f64) -> (f64, bool) {
        self.access_kind(addr, now_ns, AccessKind::Data)
    }

    fn access_kind(&mut self, addr: u64, now_ns: f64, kind: AccessKind) -> (f64, bool) {
        self.log.push(L2Request { now_ns, addr, kind });
        (self.charge_ns, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_charges_optimistically() {
        let mut mem = DeferredL2::new(9.0);
        let (lat, hit) = mem.access_kind(0x80, 5.0, AccessKind::Fetch);
        assert_eq!(lat, 9.0);
        assert!(hit, "recording path never reports a miss");
        let (lat, hit) = mem.access(0x1000, 7.5);
        assert_eq!((lat, hit), (9.0, true));
        assert_eq!(
            mem.log(),
            &[
                L2Request {
                    now_ns: 5.0,
                    addr: 0x80,
                    kind: AccessKind::Fetch
                },
                L2Request {
                    now_ns: 7.5,
                    addr: 0x1000,
                    kind: AccessKind::Data
                },
            ]
        );
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut mem = DeferredL2::new(9.0);
        for i in 0..1000 {
            let _ = mem.access(i * 128, i as f64);
        }
        let cap = {
            mem.reset();
            assert!(mem.log().is_empty());
            mem.log.capacity()
        };
        assert!(cap >= 1000, "reset must keep the allocation");
    }

    #[test]
    fn sort_is_stable_for_equal_timestamps() {
        let mut mem = DeferredL2::new(9.0);
        let _ = mem.access_kind(3, 2.0, AccessKind::Data);
        let _ = mem.access_kind(1, 1.0, AccessKind::Data);
        let _ = mem.access_kind(2, 1.0, AccessKind::Prefetch);
        mem.sort_log();
        let addrs: Vec<u64> = mem.log().iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![1, 2, 3], "stable: 1 before 2, both before 3");
    }
}
