//! Calibration tests: each synthetic benchmark must land in its Table 2
//! class when run through the real core timing model, and the suite's DVFS
//! response must bracket the paper's Figure 2 corner cases.
//!
//! The assertions pin the properties the paper's experiments actually
//! consume: memory-boundedness classes (which drive per-mode behaviour
//! differences), the DVFS slowdown asymmetry of Figure 2, and cross-
//! benchmark orderings — not absolute SPEC scores.

use gpm_microarch::{CoreConfig, CoreModel};
use gpm_types::Hertz;
use gpm_workloads::SpecBenchmark;

const WARMUP_CYCLES: u64 = 300_000;
const MEASURE_CYCLES: u64 = 1_500_000;

/// Runs `bench` at `ghz` and returns (IPC, L2 MPKI, instructions/second).
fn measure(bench: SpecBenchmark, ghz: f64) -> (f64, f64, f64) {
    let mut core = CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(ghz)).unwrap();
    let mut stream = bench.stream();
    let _ = core.run_cycles(&mut stream, WARMUP_CYCLES);
    let stats = core.run_cycles(&mut stream, MEASURE_CYCLES);
    let seconds = stats.cycles as f64 / (ghz * 1e9);
    (
        stats.ipc(),
        stats.l2_mpki(),
        stats.instructions as f64 / seconds,
    )
}

fn slowdown85(bench: SpecBenchmark) -> f64 {
    let (_, _, turbo) = measure(bench, 1.0);
    let (_, _, eff2) = measure(bench, 0.85);
    1.0 - eff2 / turbo
}

const VERY_HIGH_CPU: [SpecBenchmark; 6] = [
    SpecBenchmark::Crafty,
    SpecBenchmark::Facerec,
    SpecBenchmark::Sixtrack,
    SpecBenchmark::Gap,
    SpecBenchmark::Perlbmk,
    SpecBenchmark::Wupwise,
];
const HIGH_CPU: [SpecBenchmark; 3] = [
    SpecBenchmark::Gcc,
    SpecBenchmark::Mesa,
    SpecBenchmark::Vortex,
];
const VERY_MEM_BOUND: [SpecBenchmark; 2] = [SpecBenchmark::Art, SpecBenchmark::Mcf];

#[test]
fn benchmark_classes_match_table2() {
    let mut lines = vec![format!(
        "{:<10} {:>6} {:>8} {:>10}",
        "bench", "IPC", "L2MPKI", "slowdown85"
    )];
    for b in SpecBenchmark::ALL {
        let (ipc, mpki, _) = measure(b, 1.0);
        lines.push(format!(
            "{:<10} {:>6.2} {:>8.2} {:>9.1}%",
            b.name(),
            ipc,
            mpki,
            slowdown85(b) * 100.0
        ));
    }
    println!("{}", lines.join("\n"));

    let ipc_of = |b: SpecBenchmark| measure(b, 1.0).0;
    let mpki_of = |b: SpecBenchmark| measure(b, 1.0).1;

    // very high CPU / very low memory utilisation
    for b in VERY_HIGH_CPU {
        assert!(
            ipc_of(b) > 2.0,
            "{b} should be CPU bound, ipc {}",
            ipc_of(b)
        );
        assert!(mpki_of(b) < 1.0, "{b} mpki {}", mpki_of(b));
    }
    // high CPU / low memory utilisation
    for b in HIGH_CPU {
        let ipc = ipc_of(b);
        assert!(ipc > 1.8, "{b} ipc {ipc}");
        assert!(mpki_of(b) < 2.5, "{b} mpki {}", mpki_of(b));
    }
    // low CPU / high memory utilisation
    let ammp_ipc = ipc_of(SpecBenchmark::Ammp);
    assert!((0.7..=1.8).contains(&ammp_ipc), "ammp ipc {ammp_ipc}");
    let ammp_mpki = mpki_of(SpecBenchmark::Ammp);
    assert!((8.0..=45.0).contains(&ammp_mpki), "ammp mpki {ammp_mpki}");
    // very low CPU / very high memory utilisation
    for b in VERY_MEM_BOUND {
        assert!(
            ipc_of(b) < 0.7,
            "{b} should be memory bound, ipc {}",
            ipc_of(b)
        );
        assert!(mpki_of(b) > 30.0, "{b} mpki {}", mpki_of(b));
    }
    // mcf has the lowest IPC of the suite.
    let mcf = ipc_of(SpecBenchmark::Mcf);
    for b in SpecBenchmark::ALL {
        assert!(mcf <= ipc_of(b), "{b} below mcf");
    }
    // Memory-bound benchmarks sit far below the CPU-bound ones: the
    // inter-benchmark variation MaxBIPS exploits.
    assert!(ipc_of(SpecBenchmark::Sixtrack) > 5.0 * mcf);
}

#[test]
fn figure2_corner_cases() {
    // Figure 2: sixtrack's Eff2 slowdown is near the 15% linear bound
    // (the paper measures 17.3% including elapsed-time effects); mcf's is
    // tiny (3.7% in the paper).
    let six = slowdown85(SpecBenchmark::Sixtrack);
    assert!((0.12..=0.17).contains(&six), "sixtrack Eff2 slowdown {six}");

    let mcf = slowdown85(SpecBenchmark::Mcf);
    assert!((-0.02..=0.07).contains(&mcf), "mcf Eff2 slowdown {mcf}");
    assert!(mcf < six);

    // sixtrack is the worst-hit benchmark in the suite — the paper's
    // upper-bound corner case.
    for b in SpecBenchmark::ALL {
        assert!(
            slowdown85(b) <= six + 0.005,
            "{b} slows more than sixtrack: {} vs {six}",
            slowdown85(b)
        );
    }
}

#[test]
fn dvfs_slowdowns_split_by_class() {
    // CPU-bound benchmarks approach the 15% linear bound; memory-bound ones
    // stay well below it; ammp (low CPU / high memory) sits in between.
    for b in VERY_HIGH_CPU {
        let s = slowdown85(b);
        assert!((0.11..=0.17).contains(&s), "{b} slowdown {s}");
    }
    for b in VERY_MEM_BOUND {
        let s = slowdown85(b);
        assert!(s < 0.08, "{b} slowdown {s}");
    }
    let ammp = slowdown85(SpecBenchmark::Ammp);
    assert!((0.03..=0.11).contains(&ammp), "ammp slowdown {ammp}");
}

#[test]
fn eff1_slowdowns_are_between_turbo_and_eff2() {
    for b in [
        SpecBenchmark::Sixtrack,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
    ] {
        let (_, _, turbo) = measure(b, 1.0);
        let (_, _, eff1) = measure(b, 0.95);
        let (_, _, eff2) = measure(b, 0.85);
        let s1 = 1.0 - eff1 / turbo;
        let s2 = 1.0 - eff2 / turbo;
        assert!(s1 <= s2 + 0.01, "{b}: eff1 {s1} vs eff2 {s2}");
        assert!(s1 <= 0.06, "{b}: eff1 slowdown bound 5%, got {s1}");
    }
}
