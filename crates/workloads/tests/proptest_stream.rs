//! Property tests over the synthetic workload streams.

use gpm_microarch::{InstructionSource, OpKind};
use gpm_workloads::SpecBenchmark;
use proptest::prelude::*;

fn bench_from(idx: usize) -> SpecBenchmark {
    SpecBenchmark::ALL[idx % SpecBenchmark::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streams are deterministic: two instances with identical parameters
    /// produce identical prefixes of any length.
    #[test]
    fn determinism(idx in 0usize..12, n in 1usize..5000, salt in any::<u64>()) {
        let p = bench_from(idx).profile();
        let mut a = p.stream_with(0, salt).unwrap();
        let mut b = p.stream_with(0, salt).unwrap();
        for _ in 0..n {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
        prop_assert_eq!(a.generated(), n as u64);
    }

    /// Address bases partition cores: streams with different bases never
    /// touch each other's data regions.
    #[test]
    fn address_bases_partition(idx in 0usize..12, core_a in 0u64..4, core_b in 4u64..8) {
        let p = bench_from(idx).profile();
        let stride = 1u64 << 36;
        let collect = |base: u64| {
            let mut s = p.stream_with(base * stride, base).unwrap();
            let mut addrs = Vec::new();
            for _ in 0..2000 {
                if let OpKind::Load { addr } | OpKind::Store { addr } = s.next_op().kind {
                    addrs.push(addr);
                }
            }
            addrs
        };
        let a = collect(core_a);
        let b = collect(core_b);
        for addr in &a {
            prop_assert!(addr / stride == core_a, "{addr:#x} outside slice {core_a}");
        }
        for addr in &b {
            prop_assert!(addr / stride == core_b);
        }
    }

    /// Dependencies always point backwards to existing ops and stay within
    /// a plausible window.
    #[test]
    fn dependencies_are_well_formed(idx in 0usize..12) {
        let mut s = bench_from(idx).stream();
        for i in 0u64..20_000 {
            let op = s.next_op();
            if let Some(dep) = op.dep {
                prop_assert!(dep as u64 <= i.max(1), "op {i} depends {dep} back");
                prop_assert!(dep > 0);
            }
        }
    }

    /// Instruction mixes stay within ±2% of the profile over long windows,
    /// for every benchmark.
    #[test]
    fn mix_converges(idx in 0usize..12) {
        let bench = bench_from(idx);
        let p = bench.profile();
        let mut s = bench.stream();
        let n = 100_000;
        let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            match s.next_op().kind {
                OpKind::Load { .. } => loads += 1,
                OpKind::Store { .. } => stores += 1,
                OpKind::Branch { .. } => branches += 1,
                _ => {}
            }
        }
        let f = |c: u64| c as f64 / n as f64;
        prop_assert!((f(loads) - p.mix.load).abs() < 0.02, "{bench}: loads {}", f(loads));
        prop_assert!((f(stores) - p.mix.store).abs() < 0.02);
        prop_assert!((f(branches) - p.mix.branch).abs() < 0.02);
    }
}
