//! The benchmark combinations of the paper's Table 2, plus the 8-way
//! combinations of Figure 10.

use std::fmt;

use gpm_types::{GpmError, Result};
use serde::{Deserialize, Serialize};

use crate::SpecBenchmark;

/// A multiprogrammed workload: one benchmark per core.
///
/// # Examples
///
/// ```
/// use gpm_workloads::combos;
///
/// let combo = combos::ammp_mcf_crafty_art();
/// assert_eq!(combo.cores(), 4);
/// assert_eq!(combo.label(), "ammp|mcf|crafty|art");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadCombo {
    benchmarks: Vec<SpecBenchmark>,
}

impl WorkloadCombo {
    /// Builds a combo from an explicit core→benchmark assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when empty.
    pub fn new(benchmarks: Vec<SpecBenchmark>) -> Result<Self> {
        if benchmarks.is_empty() {
            return Err(GpmError::InvalidConfig {
                parameter: "benchmarks",
                reason: "a workload combination needs at least one benchmark".into(),
            });
        }
        Ok(Self { benchmarks })
    }

    /// Parses a `"ammp|mcf|crafty|art"`-style label.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::UnknownBenchmark`] for unrecognised names and
    /// [`GpmError::InvalidConfig`] for an empty label.
    pub fn parse(label: &str) -> Result<Self> {
        let benchmarks = label
            .split('|')
            .filter(|s| !s.is_empty())
            .map(SpecBenchmark::from_name)
            .collect::<Result<Vec<_>>>()?;
        Self::new(benchmarks)
    }

    /// Number of cores (= benchmarks).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// Per-core benchmarks, core 0 first.
    #[must_use]
    pub fn benchmarks(&self) -> &[SpecBenchmark] {
        &self.benchmarks
    }

    /// The paper's `a|b|c|d` notation.
    #[must_use]
    pub fn label(&self) -> String {
        self.benchmarks
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Concatenates two combos into a wider one (how the paper builds its
    /// 8-way workloads from 4-way pairs).
    #[must_use]
    pub fn concat(&self, other: &WorkloadCombo) -> WorkloadCombo {
        let mut benchmarks = self.benchmarks.clone();
        benchmarks.extend_from_slice(&other.benchmarks);
        WorkloadCombo { benchmarks }
    }
}

impl fmt::Display for WorkloadCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.label().replace('|', ", "))
    }
}

macro_rules! combo_fn {
    ($(#[$meta:meta])* $name:ident, [$($bench:ident),+]) => {
        $(#[$meta])*
        #[must_use]
        pub fn $name() -> WorkloadCombo {
            WorkloadCombo {
                benchmarks: vec![$(SpecBenchmark::$bench),+],
            }
        }
    };
}

combo_fn!(
    /// 2-way, Table 2: low CPU utilisation, high memory utilisation.
    ammp_art,
    [Ammp, Art]
);
combo_fn!(
    /// 2-way, Table 2: high CPU utilisation, low memory utilisation.
    gcc_mesa,
    [Gcc, Mesa]
);
combo_fn!(
    /// 2-way, Table 2: very high CPU utilisation, very low memory
    /// utilisation.
    crafty_facerec,
    [Crafty, Facerec]
);
combo_fn!(
    /// 2-way, Table 2: very low CPU utilisation, very high memory
    /// utilisation.
    art_mcf,
    [Art, Mcf]
);
combo_fn!(
    /// 4-way, Table 2: low CPU utilisation, high memory utilisation. The
    /// running example of Figures 3, 4, 6 and 7.
    ammp_mcf_crafty_art,
    [Ammp, Mcf, Crafty, Art]
);
combo_fn!(
    /// 4-way, Table 2: high CPU utilisation, low memory utilisation.
    facerec_gcc_mesa_vortex,
    [Facerec, Gcc, Mesa, Vortex]
);
combo_fn!(
    /// 4-way, Table 2: very high CPU utilisation, very low memory
    /// utilisation.
    sixtrack_gap_perlbmk_wupwise,
    [Sixtrack, Gap, Perlbmk, Wupwise]
);
combo_fn!(
    /// 4-way, Table 2: very low CPU utilisation, very high memory
    /// utilisation.
    mcf_mcf_art_art,
    [Mcf, Mcf, Art, Art]
);
combo_fn!(
    /// The second Figure 3 combination: mcf replaced by sixtrack.
    ammp_crafty_art_sixtrack,
    [Ammp, Crafty, Art, Sixtrack]
);

/// 8-way combination (a) of Figure 10.
#[must_use]
pub fn eight_way_mixed() -> WorkloadCombo {
    ammp_mcf_crafty_art().concat(&facerec_gcc_mesa_vortex())
}

/// 8-way combination (b) of Figure 10.
#[must_use]
pub fn eight_way_corners() -> WorkloadCombo {
    sixtrack_gap_perlbmk_wupwise().concat(&mcf_mcf_art_art())
}

/// 16-way wide-CMP combination: both 8-way workloads side by side. Beyond
/// the paper's figures — the exact-solver scaling tier (3^16 ≈ 43M
/// candidates, intractable for the literal scan).
#[must_use]
pub fn sixteen_way_mixed() -> WorkloadCombo {
    eight_way_mixed().concat(&eight_way_corners())
}

/// 32-way wide-CMP combination: the 16-way workload doubled. The extreme
/// point of the exact-solver scaling tier (3^32 ≈ 1.8e15 candidates).
#[must_use]
pub fn thirty_two_way_mixed() -> WorkloadCombo {
    let sixteen = sixteen_way_mixed();
    sixteen.concat(&sixteen)
}

/// 64-way cluster-CMP combination: the 32-way workload doubled. Beyond the
/// flat exact solver's comfortable range — the tier where the hierarchical
/// (cluster-sharded) simulator and controller take over.
#[must_use]
pub fn sixty_four_way_mixed() -> WorkloadCombo {
    let thirty_two = thirty_two_way_mixed();
    thirty_two.concat(&thirty_two)
}

/// 128-way cluster-CMP combination: the 64-way workload doubled.
#[must_use]
pub fn one_twenty_eight_way_mixed() -> WorkloadCombo {
    let sixty_four = sixty_four_way_mixed();
    sixty_four.concat(&sixty_four)
}

/// 256-way cluster-CMP combination: the 128-way workload doubled — the
/// widest configuration the hierarchical tier targets.
#[must_use]
pub fn two_fifty_six_way_mixed() -> WorkloadCombo {
    let octo = one_twenty_eight_way_mixed();
    octo.concat(&octo)
}

/// The four 2-way combinations of Table 2 (Figure 8, panels a–d).
#[must_use]
pub fn two_way_suite() -> Vec<WorkloadCombo> {
    vec![ammp_art(), gcc_mesa(), crafty_facerec(), art_mcf()]
}

/// The four 4-way combinations of Table 2 (Figure 9, panels a–d).
#[must_use]
pub fn four_way_suite() -> Vec<WorkloadCombo> {
    vec![
        ammp_mcf_crafty_art(),
        facerec_gcc_mesa_vortex(),
        sixtrack_gap_perlbmk_wupwise(),
        mcf_mcf_art_art(),
    ]
}

/// The two 8-way combinations (Figure 10, panels a–b).
#[must_use]
pub fn eight_way_suite() -> Vec<WorkloadCombo> {
    vec![eight_way_mixed(), eight_way_corners()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_labels() {
        assert_eq!(ammp_art().label(), "ammp|art");
        assert_eq!(ammp_mcf_crafty_art().label(), "ammp|mcf|crafty|art");
        assert_eq!(
            sixtrack_gap_perlbmk_wupwise().label(),
            "sixtrack|gap|perlbmk|wupwise"
        );
        assert_eq!(mcf_mcf_art_art().cores(), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for combo in two_way_suite().into_iter().chain(four_way_suite()) {
            assert_eq!(WorkloadCombo::parse(&combo.label()).unwrap(), combo);
        }
    }

    #[test]
    fn parse_rejects_unknown_and_empty() {
        assert!(WorkloadCombo::parse("ammp|quake").is_err());
        assert!(WorkloadCombo::parse("").is_err());
    }

    #[test]
    fn concat_builds_eight_way() {
        let eight = eight_way_mixed();
        assert_eq!(eight.cores(), 8);
        assert_eq!(eight.benchmarks()[0], SpecBenchmark::Ammp);
        assert_eq!(eight.benchmarks()[7], SpecBenchmark::Vortex);
        assert_eq!(eight_way_corners().cores(), 8);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ammp_art().to_string(), "(ammp, art)");
    }

    #[test]
    fn duplicate_benchmarks_allowed() {
        // Table 2's mcf|mcf|art|art row.
        let c = mcf_mcf_art_art();
        assert_eq!(c.benchmarks()[0], c.benchmarks()[1]);
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(two_way_suite().len(), 4);
        assert_eq!(four_way_suite().len(), 4);
        assert_eq!(eight_way_suite().len(), 2);
    }

    #[test]
    fn wide_combos_cover_16_and_32_cores() {
        let sixteen = sixteen_way_mixed();
        assert_eq!(sixteen.cores(), 16);
        assert_eq!(&sixteen.benchmarks()[..8], eight_way_mixed().benchmarks());
        let thirty_two = thirty_two_way_mixed();
        assert_eq!(thirty_two.cores(), 32);
        assert_eq!(&thirty_two.benchmarks()[..16], sixteen.benchmarks());
        assert_eq!(&thirty_two.benchmarks()[16..], sixteen.benchmarks());
    }

    #[test]
    fn hier_combos_cover_64_through_256_cores() {
        let thirty_two = thirty_two_way_mixed();
        let sixty_four = sixty_four_way_mixed();
        assert_eq!(sixty_four.cores(), 64);
        assert_eq!(&sixty_four.benchmarks()[..32], thirty_two.benchmarks());
        assert_eq!(&sixty_four.benchmarks()[32..], thirty_two.benchmarks());
        assert_eq!(one_twenty_eight_way_mixed().cores(), 128);
        let wide = two_fifty_six_way_mixed();
        assert_eq!(wide.cores(), 256);
        assert_eq!(&wide.benchmarks()[..64], sixty_four.benchmarks());
    }
}
