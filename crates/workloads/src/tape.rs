//! A shared, append-only recording of a deterministic instruction stream.
//!
//! Capturing a benchmark's per-mode traces replays the *same* op sequence
//! through three differently-clocked cores (plus once more per warm-up).
//! Generating that sequence is as expensive as simulating it, so paying it
//! once and replaying from memory roughly halves end-to-end capture time:
//! a [`SharedTape`] wraps the generator, materialises ops on first demand,
//! and hands out any number of independent [`TapeReader`] cursors.
//!
//! Readers see exactly the ops the wrapped stream would have produced — the
//! tape's content is determined by position alone, so concurrent readers
//! (e.g. per-mode captures running on the `gpm_par` pool) cannot perturb it.

use std::sync::{Arc, Mutex};

use gpm_microarch::{InstructionSource, MicroOp};

use crate::WorkloadStream;

/// Ops generated per tape extension; amortises the lock acquisition and the
/// generator call across a block while keeping the staging buffer
/// cache-resident (1024 × ~40 B ≈ 40 KiB).
const TAPE_CHUNK: usize = 1024;

/// Retired tape storage kept alive for reuse. A full capture tape runs to
/// hundreds of megabytes, and glibc returns freed blocks that large to the
/// kernel, so without recycling every capture re-pays first-touch page
/// faults across the whole recording (~20 ns/op on a 4 KiB-page host).
/// Keeping a bounded number of buffers mapped turns that into a one-time
/// cost per process.
static POOL: Mutex<Vec<Vec<MicroOp>>> = Mutex::new(Vec::new());

/// Buffers retained in [`POOL`]; captures run one tape at a time, so one
/// spare (plus headroom for an overlapping reader) is enough.
const POOL_LIMIT: usize = 2;

fn pooled_vec(expected_ops: usize) -> Vec<MicroOp> {
    let recycled = POOL.lock().ok().and_then(|mut pool| pool.pop());
    match recycled {
        Some(mut ops) => {
            ops.clear();
            ops.reserve(expected_ops);
            ops
        }
        None => Vec::with_capacity(expected_ops),
    }
}

/// A lazily-materialised, shareable recording of a [`WorkloadStream`].
///
/// # Examples
///
/// ```
/// use gpm_microarch::InstructionSource;
/// use gpm_workloads::{SharedTape, SpecBenchmark};
///
/// let tape = SharedTape::new(SpecBenchmark::Gcc.stream());
/// let mut live = SpecBenchmark::Gcc.stream();
/// let mut replay = tape.reader();
/// for _ in 0..1000 {
///     assert_eq!(live.next_op(), replay.next_op());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SharedTape {
    inner: Arc<Mutex<TapeInner>>,
}

#[derive(Debug)]
struct TapeInner {
    stream: WorkloadStream,
    ops: Vec<MicroOp>,
    /// Reused staging block: the generator writes into this cache-resident
    /// buffer, and one memcpy appends it to the (memory-streaming) tape, so
    /// each materialised op costs a single pass over the tape's cold pages.
    chunk: Vec<MicroOp>,
}

impl TapeInner {
    /// Extends the recording until at least `len` ops are materialised.
    fn ensure(&mut self, len: usize) {
        while self.ops.len() < len {
            let n = self.stream.fill_ops(&mut self.chunk);
            self.ops.extend_from_slice(&self.chunk[..n]);
        }
    }
}

impl Drop for TapeInner {
    fn drop(&mut self) {
        let ops = std::mem::take(&mut self.ops);
        if ops.capacity() == 0 {
            return;
        }
        if let Ok(mut pool) = POOL.lock() {
            if pool.len() < POOL_LIMIT {
                pool.push(ops);
            }
        }
    }
}

impl SharedTape {
    /// Wraps `stream`; ops are generated on first demand and kept for every
    /// subsequent reader.
    #[must_use]
    pub fn new(stream: WorkloadStream) -> Self {
        Self::with_capacity_hint(stream, 0)
    }

    /// Like [`new`](Self::new), reserving room for `expected_ops` up front
    /// so a predictable recording length avoids growth reallocations.
    /// Storage comes from the process-wide recycling pool when available.
    #[must_use]
    pub fn with_capacity_hint(stream: WorkloadStream, expected_ops: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(TapeInner {
                stream,
                ops: pooled_vec(expected_ops),
                chunk: vec![MicroOp::int_alu(None); TAPE_CHUNK],
            })),
        }
    }

    /// A fresh cursor at position 0 — equivalent to restarting the wrapped
    /// stream from its seed.
    #[must_use]
    pub fn reader(&self) -> TapeReader {
        TapeReader {
            inner: Arc::clone(&self.inner),
            pos: 0,
        }
    }

    /// Number of ops materialised so far.
    #[must_use]
    pub fn generated(&self) -> usize {
        self.inner.lock().expect("tape lock").ops.len()
    }
}

/// An [`InstructionSource`] replaying a [`SharedTape`] from its own cursor.
#[derive(Debug, Clone)]
pub struct TapeReader {
    inner: Arc<Mutex<TapeInner>>,
    pos: usize,
}

impl InstructionSource for TapeReader {
    fn next_op(&mut self) -> MicroOp {
        let mut inner = self.inner.lock().expect("tape lock");
        inner.ensure(self.pos + 1);
        let op = inner.ops[self.pos];
        self.pos += 1;
        op
    }

    /// Block copy out of the recording: one lock and one memcpy per batch.
    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        let mut inner = self.inner.lock().expect("tape lock");
        inner.ensure(self.pos + buf.len());
        buf.copy_from_slice(&inner.ops[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBenchmark;

    #[test]
    fn reader_matches_live_stream_across_batch_sizes() {
        let tape = SharedTape::new(SpecBenchmark::Mcf.stream());
        let mut live = SpecBenchmark::Mcf.stream();
        let mut reader = tape.reader();
        let mut live_buf = vec![MicroOp::int_alu(None); 1000];
        for slot in live_buf.iter_mut() {
            *slot = live.next_op();
        }
        // Mixed single-op and odd-sized batch reads cover chunk boundaries.
        let mut got = Vec::new();
        got.push(reader.next_op());
        let mut batch = vec![MicroOp::int_alu(None); 613];
        assert_eq!(reader.fill_ops(&mut batch), 613);
        got.extend_from_slice(&batch);
        let mut rest = vec![MicroOp::int_alu(None); 386];
        assert_eq!(reader.fill_ops(&mut rest), 386);
        got.extend_from_slice(&rest);
        assert_eq!(got, live_buf);
    }

    #[test]
    fn independent_readers_do_not_interfere() {
        let tape = SharedTape::new(SpecBenchmark::Gcc.stream());
        let mut a = tape.reader();
        let mut b = tape.reader();
        let first: Vec<_> = (0..100).map(|_| a.next_op()).collect();
        // b starts from 0 regardless of how far a has read.
        let again: Vec<_> = (0..100).map(|_| b.next_op()).collect();
        assert_eq!(first, again);
        assert!(tape.generated() >= 100);
    }
}
