//! A shared, append-only recording of a deterministic instruction stream.
//!
//! Capturing a benchmark's per-mode traces replays the *same* op sequence
//! through three differently-clocked cores (plus once more per warm-up).
//! Generating that sequence is as expensive as simulating it, so paying it
//! once and replaying from memory roughly halves end-to-end capture time:
//! a [`SharedTape`] wraps the generator, materialises ops on first demand,
//! and hands out any number of independent [`TapeReader`] cursors.
//!
//! Readers see exactly the ops the wrapped stream would have produced — the
//! tape's content is determined by position alone, so concurrent readers
//! (e.g. per-mode captures running on the `gpm_par` pool) cannot perturb it.
//!
//! # Storage layout
//!
//! The recording is a sequence of immutable fixed-size blocks
//! ([`TAPE_BLOCK`] ops each) behind `Arc`s. A reader caches the `Arc` of
//! the block its cursor is in, so steady-state delivery — including the
//! zero-copy [`borrow_ops`](InstructionSource::borrow_ops) path the core's
//! run loops prefer — touches no lock at all: the tape's mutex is taken
//! only when a cursor crosses into a block it has not cached (once per
//! [`TAPE_BLOCK`] ops), where the block is generated if it does not exist
//! yet.

use std::sync::{Arc, Mutex};

use gpm_microarch::{InstructionSource, MicroOp};

use crate::WorkloadStream;

/// Ops per materialised tape block (~2.5 MiB): large enough that the
/// once-per-block lock and `Arc` clone are invisible, small enough that
/// generating a block ahead of demand is negligible against a full capture.
const TAPE_BLOCK: usize = 65_536;

/// Retired tape blocks kept alive for reuse. A full capture tape runs to
/// hundreds of megabytes, and glibc returns freed blocks that large to the
/// kernel, so without recycling every capture re-pays first-touch page
/// faults across the whole recording (~20 ns/op on a 4 KiB-page host).
/// Keeping a bounded number of blocks mapped turns that into a one-time
/// cost per process.
static POOL: Mutex<Vec<Vec<MicroOp>>> = Mutex::new(Vec::new());

/// Blocks retained in [`POOL`] (~650 MiB): roughly two full capture tapes,
/// matching the one-live-one-retiring pattern of sequential captures.
const POOL_LIMIT: usize = 256;

fn pooled_block() -> Vec<MicroOp> {
    POOL.lock()
        .ok()
        .and_then(|mut pool| pool.pop())
        .unwrap_or_default()
}

/// A lazily-materialised, shareable recording of a [`WorkloadStream`].
///
/// # Examples
///
/// ```
/// use gpm_microarch::InstructionSource;
/// use gpm_workloads::{SharedTape, SpecBenchmark};
///
/// let tape = SharedTape::new(SpecBenchmark::Gcc.stream());
/// let mut live = SpecBenchmark::Gcc.stream();
/// let mut replay = tape.reader();
/// for _ in 0..1000 {
///     assert_eq!(live.next_op(), replay.next_op());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SharedTape {
    inner: Arc<Mutex<TapeInner>>,
}

#[derive(Debug)]
struct TapeInner {
    stream: WorkloadStream,
    blocks: Vec<Arc<Vec<MicroOp>>>,
}

impl TapeInner {
    /// Extends the recording until block `idx` is materialised.
    fn ensure_block(&mut self, idx: usize) {
        while self.blocks.len() <= idx {
            let mut ops = pooled_block();
            ops.clear();
            ops.resize(TAPE_BLOCK, MicroOp::int_alu(None));
            let mut filled = 0;
            while filled < TAPE_BLOCK {
                filled += self.stream.fill_ops(&mut ops[filled..]);
            }
            self.blocks.push(Arc::new(ops));
        }
    }
}

impl Drop for TapeInner {
    fn drop(&mut self) {
        // All readers are gone by the time the inner drops (they keep the
        // tape alive through their own `Arc`), so every block is uniquely
        // owned again and can be recycled.
        if let Ok(mut pool) = POOL.lock() {
            for block in self.blocks.drain(..) {
                if pool.len() >= POOL_LIMIT {
                    break;
                }
                if let Ok(ops) = Arc::try_unwrap(block) {
                    pool.push(ops);
                }
            }
        }
    }
}

impl SharedTape {
    /// Wraps `stream`; ops are generated on first demand and kept for every
    /// subsequent reader.
    #[must_use]
    pub fn new(stream: WorkloadStream) -> Self {
        Self::with_capacity_hint(stream, 0)
    }

    /// Like [`new`](Self::new), sizing the block table for `expected_ops`
    /// up front. Block storage itself comes from the process-wide recycling
    /// pool when available.
    #[must_use]
    pub fn with_capacity_hint(stream: WorkloadStream, expected_ops: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(TapeInner {
                stream,
                blocks: Vec::with_capacity(expected_ops.div_ceil(TAPE_BLOCK)),
            })),
        }
    }

    /// A fresh cursor at position 0 — equivalent to restarting the wrapped
    /// stream from its seed.
    #[must_use]
    pub fn reader(&self) -> TapeReader {
        TapeReader {
            inner: Arc::clone(&self.inner),
            pos: 0,
            cached: None,
        }
    }

    /// Number of ops materialised so far (whole blocks).
    #[must_use]
    pub fn generated(&self) -> usize {
        self.inner.lock().expect("tape lock").blocks.len() * TAPE_BLOCK
    }
}

/// An [`InstructionSource`] replaying a [`SharedTape`] from its own cursor.
#[derive(Debug, Clone)]
pub struct TapeReader {
    inner: Arc<Mutex<TapeInner>>,
    pos: usize,
    /// The block the cursor is in, held locally so steady-state reads skip
    /// the tape lock entirely.
    cached: Option<(usize, Arc<Vec<MicroOp>>)>,
}

impl TapeReader {
    /// The block containing `idx`, from the local cache when possible and
    /// from the (extending) tape otherwise.
    fn block(&mut self, idx: usize) -> &[MicroOp] {
        if self.cached.as_ref().map(|(i, _)| *i) != Some(idx) {
            let mut inner = self.inner.lock().expect("tape lock");
            inner.ensure_block(idx);
            self.cached = Some((idx, Arc::clone(&inner.blocks[idx])));
        }
        self.cached.as_ref().expect("just cached").1.as_slice()
    }
}

impl InstructionSource for TapeReader {
    fn next_op(&mut self) -> MicroOp {
        let (idx, off) = (self.pos / TAPE_BLOCK, self.pos % TAPE_BLOCK);
        let op = self.block(idx)[off];
        self.pos += 1;
        op
    }

    /// Block copy out of the recording — at most one (usually zero) lock
    /// acquisitions and one memcpy per batch. May deliver fewer ops than
    /// requested at a block boundary, as the contract allows.
    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        let (idx, off) = (self.pos / TAPE_BLOCK, self.pos % TAPE_BLOCK);
        let n = buf.len().min(TAPE_BLOCK - off);
        let block = self.block(idx);
        buf[..n].copy_from_slice(&block[off..off + n]);
        self.pos += n;
        n
    }

    /// Zero-copy delivery: a slice straight into the cached block.
    fn borrow_ops(&mut self, max: usize) -> Option<&[MicroOp]> {
        let (idx, off) = (self.pos / TAPE_BLOCK, self.pos % TAPE_BLOCK);
        let n = max.min(TAPE_BLOCK - off);
        let block = self.block(idx);
        Some(&block[off..off + n])
    }

    fn consume_ops(&mut self, n: usize) {
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBenchmark;

    #[test]
    fn reader_matches_live_stream_across_batch_sizes() {
        let tape = SharedTape::new(SpecBenchmark::Mcf.stream());
        let mut live = SpecBenchmark::Mcf.stream();
        let mut reader = tape.reader();
        let mut live_buf = vec![MicroOp::int_alu(None); 1000];
        for slot in live_buf.iter_mut() {
            *slot = live.next_op();
        }
        // Mixed single-op and odd-sized batch reads cover chunk boundaries.
        let mut got = Vec::new();
        got.push(reader.next_op());
        let mut batch = vec![MicroOp::int_alu(None); 613];
        let mut filled = 0;
        while filled < batch.len() {
            filled += reader.fill_ops(&mut batch[filled..]);
        }
        got.extend_from_slice(&batch);
        let mut rest = vec![MicroOp::int_alu(None); 386];
        filled = 0;
        while filled < rest.len() {
            filled += reader.fill_ops(&mut rest[filled..]);
        }
        got.extend_from_slice(&rest);
        assert_eq!(got, live_buf);
    }

    #[test]
    fn independent_readers_do_not_interfere() {
        let tape = SharedTape::new(SpecBenchmark::Gcc.stream());
        let mut a = tape.reader();
        let mut b = tape.reader();
        let first: Vec<_> = (0..100).map(|_| a.next_op()).collect();
        // b starts from 0 regardless of how far a has read.
        let again: Vec<_> = (0..100).map(|_| b.next_op()).collect();
        assert_eq!(first, again);
        assert!(tape.generated() >= 100);
    }

    #[test]
    fn borrowed_blocks_match_next_op_sequence() {
        let tape = SharedTape::new(SpecBenchmark::Art.stream());
        let mut live = SpecBenchmark::Art.stream();
        let mut reader = tape.reader();
        let mut seen = 0usize;
        // Borrow in uneven chunks, consuming fewer ops than borrowed to
        // exercise the borrow/consume split the core's cycle loops use.
        for (i, take) in [400usize, 1, 77, 1000, 3].into_iter().enumerate() {
            let chunk = reader.borrow_ops(take + i).expect("tape serves blocks");
            assert!(!chunk.is_empty() && chunk.len() <= take + i);
            let use_n = chunk.len().min(take);
            for &op in &chunk[..use_n] {
                assert_eq!(op, live.next_op());
            }
            reader.consume_ops(use_n);
            seen += use_n;
        }
        // The cursor advanced by exactly the consumed ops.
        assert_eq!(reader.next_op(), live.next_op());
        assert!(seen > 0);
    }
}
