//! Synthetic SPEC CPU2000-like workloads for the CMP power-management
//! experiments.
//!
//! The paper evaluates 12 SPEC CPU2000 benchmarks (Section 3.2). We cannot
//! ship SPEC binaries or IBM's traces, so this crate generates deterministic
//! synthetic instruction streams whose *architectural behaviour* is
//! calibrated to each benchmark's published character:
//!
//! * instruction mix (fixed-point / floating-point / memory / branch),
//! * working-set structure (an L1-resident hot set, an L2-resident warm
//!   set, and a DRAM-resident cold region),
//! * instruction-level parallelism (dependency density, pointer-chasing
//!   loads),
//! * branch predictability,
//! * and *phase behaviour* — periodic alternation between memory-heavy and
//!   compute-heavy execution, keyed to the **instruction index** so that the
//!   same program point exhibits the same behaviour in every DVFS mode.
//!
//! What matters for reproducing the paper is not cycle-exact SPEC fidelity
//! but that the benchmark population spans the four corners of Table 2
//! (CPU-bound ↔ memory-bound, steady ↔ phased), with mcf and sixtrack as the
//! extreme DVFS-response cases of Figure 2. The calibration tests in this
//! crate pin those properties.
//!
//! # Examples
//!
//! ```
//! use gpm_workloads::SpecBenchmark;
//! use gpm_microarch::{CoreConfig, CoreModel, InstructionSource};
//! use gpm_types::Hertz;
//!
//! let mut stream = SpecBenchmark::Mcf.stream();
//! let mut core = CoreModel::new(&CoreConfig::power4(), Hertz::from_ghz(1.0)).unwrap();
//! let stats = core.run_cycles(&mut stream, 100_000);
//! assert!(stats.ipc() < 1.0, "mcf is memory bound");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combos;
mod profile;
mod stream;
mod tape;

pub use combos::WorkloadCombo;
pub use profile::{
    BenchmarkProfile, BranchProfile, CodeProfile, InstructionMix, MemoryProfile, PhaseProfile,
    SpecBenchmark, Suite, UtilizationClass,
};
pub use stream::WorkloadStream;
pub use tape::{SharedTape, TapeReader};
