//! The deterministic synthetic instruction-stream generator.

use gpm_microarch::{InstructionSource, MicroOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BenchmarkProfile;

/// Base of the synthetic code address space.
const CODE_BASE: u64 = 0x0040_0000;
/// Separation between the code regions of a program.
const CODE_REGION_STRIDE: u64 = 0x2_0000;
/// Offsets of the three data regions inside a core's address slice,
/// indexed hot/warm/cold.
const REGION_BASES: [u64; 3] = [0x1000_0000, 0x2000_0000, 0x4000_0000];

/// Converts a probability threshold to the integer domain of the RNG's
/// 53-bit mantissa draws.
///
/// `rng.gen::<f64>()` is exactly `m * 2⁻⁵³` for the integer
/// `m = next_u64() >> 11`, so `gen::<f64>() < t  ⟺  m < t·2⁵³` in real
/// arithmetic. Both `m as f64` and `t * 2⁵³` are power-of-two scalings and
/// therefore exact in f64, and for integer `m`, `m < T ⟺ m < ⌈T⌉`. The
/// integer compare is thus bit-for-bit the same predicate as the float
/// compare it replaces, without the int→float conversion per draw.
fn threshold_bits(t: f64) -> u64 {
    (t * (1u64 << 53) as f64).ceil() as u64
}

/// One `gen::<f64>()`-equivalent draw, in the integer domain.
/// Consumes exactly one `next_u64`, like `gen::<f64>()`.
#[inline]
fn draw53(rng: &mut SmallRng) -> u64 {
    use rand::RngCore;
    rng.next_u64() >> 11
}

/// A deterministic, infinite micro-op stream realising a
/// [`BenchmarkProfile`].
///
/// The stream is a pure function of `(profile.seed ^ seed_salt)` and the
/// instruction index: simulating it at different DVFS frequencies (or
/// interleaving it with other cores) replays exactly the same instructions,
/// which is what lets per-mode traces be aligned by instruction position the
/// way the paper's trace-based CMP tool requires.
///
/// # Examples
///
/// ```
/// use gpm_microarch::InstructionSource;
/// use gpm_workloads::SpecBenchmark;
///
/// let mut a = SpecBenchmark::Gcc.stream();
/// let mut b = SpecBenchmark::Gcc.stream();
/// for _ in 0..1000 {
///     assert_eq!(a.next_op(), b.next_op(), "streams are deterministic");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    profile: BenchmarkProfile,
    pre: Precomputed,
    rng: SmallRng,
    addr_base: u64,
    instr_index: u64,
    ops_since_load: u32,
    // Sequential sweep cursors per data region (spatial locality),
    // indexed hot/warm/cold like [`REGION_BASES`].
    region_ptrs: [u64; 3],
    // Code-layout state.
    region: u32,
    ops_in_region: u64,
    op_in_loop: u32,
    /// `instr_index % phases.period_instructions`, maintained incrementally.
    phase_pos: u64,
    /// `CODE_BASE + region * CODE_REGION_STRIDE`, updated on region change.
    region_code_base: u64,
}

/// Hot-path constants derived from the profile once at construction.
///
/// `next_op` runs once per simulated instruction across every experiment, so
/// everything that is a pure function of the (immutable) profile — mix
/// thresholds, phase-stressed region probabilities, word counts — is folded
/// here. Each value is computed with exactly the arithmetic the generator
/// previously performed per op, so the produced streams are bit-identical.
#[derive(Debug, Clone)]
struct Precomputed {
    // Cumulative mix thresholds in roll order, as [`threshold_bits`]
    // integers compared against [`draw53`] draws.
    t_load: u64,
    t_store: u64,
    t_branch: u64,
    t_fp: u64,
    // Phase structure. The threshold is `⌈memory_duty · period⌉`: for the
    // integer `phase_pos` the compare is identical to the old
    // `(phase_pos as f64) < memory_duty * period as f64`.
    phase_enabled: bool,
    phase_period: u64,
    phase_threshold: u64,
    // Region-select thresholds: (hot, hot + warm), calm and stressed.
    calm_hot: u64,
    calm_hot_warm: u64,
    stress_hot: u64,
    stress_hot_warm: u64,
    // Region geometry, indexed hot/warm/cold.
    region_bytes: [u64; 3],
    region_words: [u64; 3],
    jump_probability: u64,
    pointer_chase: u64,
    dep_probability: u64,
    // Code layout (`.max(1)` folded in).
    regions: u32,
    region_residency_ops: u64,
    loop_body_ops: u32,
    branch_sites: u32,
    branch_random_fraction: u64,
    branch_taken_bias: u64,
}

impl Precomputed {
    fn from_profile(p: &BenchmarkProfile) -> Self {
        let m = p.memory;
        // A memory phase shifts `intensity` probability mass from the
        // hot/warm sets to the cold region, proportionally.
        let pool = m.hot + m.warm;
        let (stress_hot, stress_warm) = if pool > 0.0 {
            let scale = (1.0 - p.phases.intensity / pool).max(0.0);
            (m.hot * scale, m.warm * scale)
        } else {
            (m.hot, m.warm)
        };
        Self {
            t_load: threshold_bits(p.mix.load),
            t_store: threshold_bits(p.mix.load + p.mix.store),
            t_branch: threshold_bits(p.mix.load + p.mix.store + p.mix.branch),
            t_fp: threshold_bits(p.mix.load + p.mix.store + p.mix.branch + p.mix.fp_alu),
            phase_enabled: p.phases.period_instructions != 0,
            phase_period: p.phases.period_instructions,
            phase_threshold: (p.phases.memory_duty * p.phases.period_instructions as f64).ceil()
                as u64,
            calm_hot: threshold_bits(m.hot),
            calm_hot_warm: threshold_bits(m.hot + m.warm),
            stress_hot: threshold_bits(stress_hot),
            stress_hot_warm: threshold_bits(stress_hot + stress_warm),
            region_bytes: [m.hot_bytes, m.warm_bytes, m.cold_bytes],
            region_words: [m.hot_bytes / 8, m.warm_bytes / 8, m.cold_bytes / 8],
            jump_probability: threshold_bits(m.jump_probability),
            pointer_chase: threshold_bits(m.pointer_chase),
            dep_probability: threshold_bits(p.dep_probability),
            regions: p.code.regions.max(1),
            region_residency_ops: p.code.region_residency_ops,
            loop_body_ops: p.code.loop_body_ops.max(1),
            branch_sites: p.branches.sites.max(1),
            branch_random_fraction: threshold_bits(p.branches.random_fraction),
            branch_taken_bias: threshold_bits(p.branches.taken_bias),
        }
    }
}

impl WorkloadStream {
    /// Builds the stream; see
    /// [`BenchmarkProfile::stream_with`](crate::BenchmarkProfile::stream_with).
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the profile fails
    /// validation.
    pub fn new(
        profile: BenchmarkProfile,
        addr_base: u64,
        seed_salt: u64,
    ) -> gpm_types::Result<Self> {
        profile.validate()?;
        let rng = SmallRng::seed_from_u64(profile.seed ^ seed_salt);
        let pre = Precomputed::from_profile(&profile);
        Ok(Self {
            profile,
            pre,
            rng,
            addr_base,
            instr_index: 0,
            ops_since_load: 0,
            region_ptrs: [0; 3],
            region: 0,
            ops_in_region: 0,
            op_in_loop: 0,
            phase_pos: 0,
            region_code_base: CODE_BASE,
        })
    }

    /// The profile driving this stream.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Number of micro-ops generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.instr_index
    }

    /// Whether the benchmark's region (its `total_instructions`) has been
    /// fully generated. The stream keeps producing ops past this point (the
    /// CMP simulators stop all cores when the *first* benchmark completes).
    #[must_use]
    pub fn region_complete(&self) -> bool {
        self.instr_index >= self.profile.total_instructions
    }

    /// Is the current instruction inside the memory-stressed phase?
    /// `phase_pos` tracks `instr_index % period` incrementally.
    #[inline]
    fn in_memory_phase(&self) -> bool {
        self.pre.phase_enabled && self.phase_pos < self.pre.phase_threshold
    }

    /// Picks a data address according to the working-set structure, applying
    /// the current phase's stress. `force_jump` (pointer-chasing loads)
    /// bypasses the sequential sweep.
    #[inline]
    fn data_address(&mut self, stressed: bool, force_jump: bool) -> u64 {
        let (hot, hot_warm) = if stressed {
            (self.pre.stress_hot, self.pre.stress_hot_warm)
        } else {
            (self.pre.calm_hot, self.pre.calm_hot_warm)
        };
        // Hot/warm/cold select as index arithmetic: `roll < hot` picked hot,
        // `roll < hot_warm` warm, else cold — so the index is the count of
        // thresholds at or below the roll, with no data-dependent branch.
        let roll = draw53(&mut self.rng);
        let region = usize::from(roll >= hot) + usize::from(roll >= hot_warm);
        let words = self.pre.region_words[region];
        let bytes = self.pre.region_bytes[region];
        let offset = if force_jump || draw53(&mut self.rng) < self.pre.jump_probability {
            // Random jump: a fresh cache line somewhere in the region.
            self.rng.gen_range(0..words) * 8
        } else {
            // Sequential sweep: advance by one to three words, wrapping.
            // The cursor stays `< bytes` and the step is at most 24, so one
            // conditional subtract replaces the `%` for any region of at
            // least 24 bytes; the division only runs for degenerate tiny
            // regions.
            let ptr = &mut self.region_ptrs[region];
            let mut next = *ptr + self.rng.gen_range(1u64..=3) * 8;
            if next >= bytes {
                next -= bytes;
                if next >= bytes {
                    next %= bytes;
                }
            }
            *ptr = next;
            next
        };
        self.addr_base + REGION_BASES[region] + offset
    }

    /// Advances the synthetic code layout and returns this op's code
    /// address. The counters wrap by comparison instead of `%`, and the
    /// region's code base is cached across ops.
    #[inline]
    fn code_address(&mut self) -> u64 {
        if self.ops_in_region >= self.pre.region_residency_ops {
            self.ops_in_region = 0;
            self.op_in_loop = 0;
            self.region += 1;
            if self.region == self.pre.regions {
                self.region = 0;
            }
            self.region_code_base = CODE_BASE + u64::from(self.region) * CODE_REGION_STRIDE;
        }
        self.ops_in_region += 1;
        self.op_in_loop += 1;
        if self.op_in_loop == self.pre.loop_body_ops {
            self.op_in_loop = 0;
        }
        self.region_code_base + u64::from(self.op_in_loop) * 4
    }

    /// Rolls a generic dependency on a recent producer. Half of the
    /// dependencies target the most recent load when one is close by —
    /// load-to-use chains dominate real integer code. Distances are clamped
    /// so a dependency never points before the start of the stream.
    #[inline]
    fn generic_dep(&mut self) -> Option<u32> {
        if self.instr_index == 0 || draw53(&mut self.rng) >= self.pre.dep_probability {
            return None;
        }
        if (1..=4).contains(&self.ops_since_load) && self.rng.gen::<bool>() {
            Some(self.ops_since_load)
        } else {
            let max_distance = self.instr_index.min(3) as u32;
            Some(self.rng.gen_range(1..=max_distance))
        }
    }
}

impl InstructionSource for WorkloadStream {
    fn next_op(&mut self) -> MicroOp {
        let stressed = self.in_memory_phase();
        let code_addr = self.code_address();
        let roll = draw53(&mut self.rng);

        let op = if roll < self.pre.t_load {
            // Pointer-chasing loads depend on the previous load;
            // `ops_since_load` is the dynamic distance back to it (0 = no
            // load seen yet).
            let chase = self.ops_since_load > 0 && draw53(&mut self.rng) < self.pre.pointer_chase;
            let dep = chase.then_some(self.ops_since_load);
            let addr = self.data_address(stressed, chase);
            MicroOp::load(addr, dep)
        } else if roll < self.pre.t_store {
            let addr = self.data_address(stressed, false);
            MicroOp::store(addr, None)
        } else if roll < self.pre.t_branch {
            let site = self.rng.gen_range(0..self.pre.branch_sites);
            let pc = self.region_code_base + 0x1_0000 + u64::from(site) * 32;
            let taken = if draw53(&mut self.rng) < self.pre.branch_random_fraction {
                draw53(&mut self.rng) < self.pre.branch_taken_bias
            } else {
                true // loop-back branch, fully predictable once learned
            };
            MicroOp::branch(pc, taken)
        } else if roll < self.pre.t_fp {
            MicroOp::fp_alu(self.generic_dep())
        } else {
            MicroOp::int_alu(self.generic_dep())
        };

        self.ops_since_load = if matches!(op.kind, gpm_microarch::OpKind::Load { .. }) {
            1
        } else if self.ops_since_load > 0 {
            self.ops_since_load.saturating_add(1)
        } else {
            0 // still no load seen
        };
        self.instr_index += 1;
        if self.pre.phase_enabled {
            self.phase_pos += 1;
            if self.phase_pos == self.pre.phase_period {
                self.phase_pos = 0;
            }
        }
        op.at_code(code_addr)
    }

    /// Batched delivery: the whole buffer is filled through the inlined
    /// generator, so a boxed stream pays one virtual call per block.
    fn fill_ops(&mut self, buf: &mut [MicroOp]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.next_op();
        }
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBenchmark;
    use gpm_microarch::OpKind;

    fn count_kinds(bench: SpecBenchmark, n: usize) -> (f64, f64, f64, f64, f64) {
        let mut s = bench.stream();
        let (mut int_n, mut fp, mut ld, mut st, mut br) = (0, 0, 0, 0, 0);
        for _ in 0..n {
            match s.next_op().kind {
                OpKind::IntAlu => int_n += 1,
                OpKind::FpAlu => fp += 1,
                OpKind::Load { .. } => ld += 1,
                OpKind::Store { .. } => st += 1,
                OpKind::Branch { .. } => br += 1,
            }
        }
        let n = n as f64;
        (
            int_n as f64 / n,
            fp as f64 / n,
            ld as f64 / n,
            st as f64 / n,
            br as f64 / n,
        )
    }

    #[test]
    fn mix_fractions_are_respected() {
        let p = SpecBenchmark::Gcc.profile();
        let (int_f, fp, ld, st, br) = count_kinds(SpecBenchmark::Gcc, 200_000);
        assert!((int_f - p.mix.int_alu).abs() < 0.01, "int {int_f}");
        assert!((fp - p.mix.fp_alu).abs() < 0.01);
        assert!((ld - p.mix.load).abs() < 0.01);
        assert!((st - p.mix.store).abs() < 0.01);
        assert!((br - p.mix.branch).abs() < 0.01);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = SpecBenchmark::Art.stream();
        let mut b = SpecBenchmark::Art.stream();
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn seed_salt_changes_the_stream() {
        let p = SpecBenchmark::Art.profile();
        let mut a = p.stream_with(0, 0).unwrap();
        let mut b = p.stream_with(0, 1).unwrap();
        let differs = (0..1000).any(|_| a.next_op() != b.next_op());
        assert!(differs);
    }

    #[test]
    fn addr_base_offsets_all_data_addresses() {
        let p = SpecBenchmark::Mcf.profile();
        let base = 0x10_0000_0000u64;
        let mut s = p.stream_with(base, 0).unwrap();
        let mut seen_mem = 0;
        for _ in 0..10_000 {
            match s.next_op().kind {
                OpKind::Load { addr } | OpKind::Store { addr } => {
                    assert!(addr >= base, "address {addr:#x} below base");
                    seen_mem += 1;
                }
                _ => {}
            }
        }
        assert!(seen_mem > 1000);
    }

    #[test]
    fn region_complete_after_total_instructions() {
        let mut p = SpecBenchmark::Mcf.profile();
        p.total_instructions = 100;
        let mut s = p.stream().unwrap();
        assert!(!s.region_complete());
        for _ in 0..100 {
            let _ = s.next_op();
        }
        assert!(s.region_complete());
        assert_eq!(s.generated(), 100);
        // Stream keeps producing beyond the region.
        let _ = s.next_op();
    }

    #[test]
    fn phases_modulate_cold_traffic() {
        // art has strong phases: cold-region access rate must differ between
        // the two phase halves.
        let p = SpecBenchmark::Art.profile();
        let period = p.phases.period_instructions;
        let mut s = p.stream().unwrap();
        let mut cold_in_phase = [0u64; 2];
        let mut mem_in_phase = [0u64; 2];
        for i in 0..period * 2 {
            let pos = i % period;
            let phase_idx = usize::from((pos as f64) < p.phases.memory_duty * period as f64);
            if let OpKind::Load { addr } | OpKind::Store { addr } = s.next_op().kind {
                mem_in_phase[phase_idx] += 1;
                if addr >= REGION_BASES[2] {
                    cold_in_phase[phase_idx] += 1;
                }
            }
        }
        let rate_stressed = cold_in_phase[1] as f64 / mem_in_phase[1] as f64;
        let rate_calm = cold_in_phase[0] as f64 / mem_in_phase[0] as f64;
        assert!(
            rate_stressed > rate_calm * 1.5,
            "stressed {rate_stressed} vs calm {rate_calm}"
        );
    }

    #[test]
    fn pointer_chase_produces_dependent_loads() {
        let mut s = SpecBenchmark::Mcf.stream();
        let mut chased = 0;
        let mut loads = 0;
        for _ in 0..50_000 {
            let op = s.next_op();
            if let OpKind::Load { .. } = op.kind {
                loads += 1;
                if op.dep.is_some() {
                    chased += 1;
                }
            }
        }
        let frac = chased as f64 / loads as f64;
        let expected = SpecBenchmark::Mcf.profile().memory.pointer_chase;
        assert!((frac - expected).abs() < 0.05, "chase fraction {frac}");
    }

    #[test]
    fn sixtrack_has_no_chased_loads() {
        let mut s = SpecBenchmark::Sixtrack.stream();
        for _ in 0..20_000 {
            let op = s.next_op();
            if matches!(op.kind, OpKind::Load { .. }) {
                assert!(op.dep.is_none());
            }
        }
    }

    #[test]
    fn code_addresses_stay_in_region_footprint() {
        let p = SpecBenchmark::Gcc.profile();
        let mut s = p.stream().unwrap();
        for _ in 0..10_000 {
            let op = s.next_op();
            assert!(op.code_addr >= CODE_BASE);
            assert!(op.code_addr < CODE_BASE + u64::from(p.code.regions) * CODE_REGION_STRIDE);
        }
    }
}
