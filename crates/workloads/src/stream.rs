//! The deterministic synthetic instruction-stream generator.

use gpm_microarch::{InstructionSource, MicroOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BenchmarkProfile;

/// Base of the synthetic code address space.
const CODE_BASE: u64 = 0x0040_0000;
/// Separation between the code regions of a program.
const CODE_REGION_STRIDE: u64 = 0x2_0000;
/// Offsets of the three data regions inside a core's address slice.
const HOT_BASE: u64 = 0x1000_0000;
const WARM_BASE: u64 = 0x2000_0000;
const COLD_BASE: u64 = 0x4000_0000;

/// A deterministic, infinite micro-op stream realising a
/// [`BenchmarkProfile`].
///
/// The stream is a pure function of `(profile.seed ^ seed_salt)` and the
/// instruction index: simulating it at different DVFS frequencies (or
/// interleaving it with other cores) replays exactly the same instructions,
/// which is what lets per-mode traces be aligned by instruction position the
/// way the paper's trace-based CMP tool requires.
///
/// # Examples
///
/// ```
/// use gpm_microarch::InstructionSource;
/// use gpm_workloads::SpecBenchmark;
///
/// let mut a = SpecBenchmark::Gcc.stream();
/// let mut b = SpecBenchmark::Gcc.stream();
/// for _ in 0..1000 {
///     assert_eq!(a.next_op(), b.next_op(), "streams are deterministic");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    profile: BenchmarkProfile,
    rng: SmallRng,
    addr_base: u64,
    instr_index: u64,
    ops_since_load: u32,
    // Sequential sweep cursors per data region (spatial locality).
    hot_ptr: u64,
    warm_ptr: u64,
    cold_ptr: u64,
    // Code-layout state.
    region: u32,
    ops_in_region: u64,
    op_in_loop: u32,
}

impl WorkloadStream {
    /// Builds the stream; see
    /// [`BenchmarkProfile::stream_with`](crate::BenchmarkProfile::stream_with).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, addr_base: u64, seed_salt: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile `{}`: {e}", profile.name));
        let rng = SmallRng::seed_from_u64(profile.seed ^ seed_salt);
        Self {
            profile,
            rng,
            addr_base,
            instr_index: 0,
            ops_since_load: 0,
            hot_ptr: 0,
            warm_ptr: 0,
            cold_ptr: 0,
            region: 0,
            ops_in_region: 0,
            op_in_loop: 0,
        }
    }

    /// The profile driving this stream.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Number of micro-ops generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.instr_index
    }

    /// Whether the benchmark's region (its `total_instructions`) has been
    /// fully generated. The stream keeps producing ops past this point (the
    /// CMP simulators stop all cores when the *first* benchmark completes).
    #[must_use]
    pub fn region_complete(&self) -> bool {
        self.instr_index >= self.profile.total_instructions
    }

    /// Is the current instruction inside the memory-stressed phase?
    fn in_memory_phase(&self) -> bool {
        let p = &self.profile.phases;
        if p.period_instructions == 0 {
            return false;
        }
        let pos = self.instr_index % p.period_instructions;
        (pos as f64) < p.memory_duty * p.period_instructions as f64
    }

    /// Picks a data address according to the working-set structure, applying
    /// the current phase's stress. `force_jump` (pointer-chasing loads)
    /// bypasses the sequential sweep.
    fn data_address(&mut self, stressed: bool, force_jump: bool) -> u64 {
        let m = self.profile.memory;
        let (mut hot, mut warm) = (m.hot, m.warm);
        if stressed {
            // A memory phase shifts `intensity` probability mass from the
            // hot/warm sets to the cold region, proportionally.
            let pool = hot + warm;
            if pool > 0.0 {
                let scale = (1.0 - self.profile.phases.intensity / pool).max(0.0);
                hot *= scale;
                warm *= scale;
            }
        }
        let roll: f64 = self.rng.gen();
        let (base, size, ptr) = if roll < hot {
            (HOT_BASE, m.hot_bytes, &mut self.hot_ptr)
        } else if roll < hot + warm {
            (WARM_BASE, m.warm_bytes, &mut self.warm_ptr)
        } else {
            (COLD_BASE, m.cold_bytes, &mut self.cold_ptr)
        };
        let offset = if force_jump || self.rng.gen::<f64>() < m.jump_probability {
            // Random jump: a fresh cache line somewhere in the region.
            self.rng.gen_range(0..size / 8) * 8
        } else {
            // Sequential sweep: advance by one to three words, wrapping.
            *ptr = (*ptr + self.rng.gen_range(1u64..=3) * 8) % size;
            *ptr
        };
        self.addr_base + base + offset
    }

    /// Advances the synthetic code layout and returns this op's code
    /// address.
    fn code_address(&mut self) -> u64 {
        let c = self.profile.code;
        if self.ops_in_region >= c.region_residency_ops {
            self.ops_in_region = 0;
            self.op_in_loop = 0;
            self.region = (self.region + 1) % c.regions.max(1);
        }
        self.ops_in_region += 1;
        self.op_in_loop = (self.op_in_loop + 1) % c.loop_body_ops.max(1);
        CODE_BASE + u64::from(self.region) * CODE_REGION_STRIDE + u64::from(self.op_in_loop) * 4
    }

    /// Rolls a generic dependency on a recent producer. Half of the
    /// dependencies target the most recent load when one is close by —
    /// load-to-use chains dominate real integer code. Distances are clamped
    /// so a dependency never points before the start of the stream.
    fn generic_dep(&mut self) -> Option<u32> {
        if self.instr_index == 0 || self.rng.gen::<f64>() >= self.profile.dep_probability {
            return None;
        }
        if (1..=4).contains(&self.ops_since_load) && self.rng.gen::<bool>() {
            Some(self.ops_since_load)
        } else {
            let max_distance = self.instr_index.min(3) as u32;
            Some(self.rng.gen_range(1..=max_distance))
        }
    }
}

impl InstructionSource for WorkloadStream {
    fn next_op(&mut self) -> MicroOp {
        let stressed = self.in_memory_phase();
        let code_addr = self.code_address();
        let mix = self.profile.mix;
        let roll: f64 = self.rng.gen();

        let op = if roll < mix.load {
            // Pointer-chasing loads depend on the previous load;
            // `ops_since_load` is the dynamic distance back to it (0 = no
            // load seen yet).
            let chase = self.ops_since_load > 0
                && self.rng.gen::<f64>() < self.profile.memory.pointer_chase;
            let dep = chase.then_some(self.ops_since_load);
            let addr = self.data_address(stressed, chase);
            MicroOp::load(addr, dep)
        } else if roll < mix.load + mix.store {
            let addr = self.data_address(stressed, false);
            MicroOp::store(addr, None)
        } else if roll < mix.load + mix.store + mix.branch {
            let b = self.profile.branches;
            let site = self.rng.gen_range(0..b.sites.max(1));
            let pc = CODE_BASE
                + u64::from(self.region) * CODE_REGION_STRIDE
                + 0x1_0000
                + u64::from(site) * 32;
            let taken = if self.rng.gen::<f64>() < b.random_fraction {
                self.rng.gen::<f64>() < b.taken_bias
            } else {
                true // loop-back branch, fully predictable once learned
            };
            MicroOp::branch(pc, taken)
        } else if roll < mix.load + mix.store + mix.branch + mix.fp_alu {
            MicroOp::fp_alu(self.generic_dep())
        } else {
            MicroOp::int_alu(self.generic_dep())
        };

        self.ops_since_load = if matches!(op.kind, gpm_microarch::OpKind::Load { .. }) {
            1
        } else if self.ops_since_load > 0 {
            self.ops_since_load.saturating_add(1)
        } else {
            0 // still no load seen
        };
        self.instr_index += 1;
        op.at_code(code_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBenchmark;
    use gpm_microarch::OpKind;

    fn count_kinds(bench: SpecBenchmark, n: usize) -> (f64, f64, f64, f64, f64) {
        let mut s = bench.stream();
        let (mut int_n, mut fp, mut ld, mut st, mut br) = (0, 0, 0, 0, 0);
        for _ in 0..n {
            match s.next_op().kind {
                OpKind::IntAlu => int_n += 1,
                OpKind::FpAlu => fp += 1,
                OpKind::Load { .. } => ld += 1,
                OpKind::Store { .. } => st += 1,
                OpKind::Branch { .. } => br += 1,
            }
        }
        let n = n as f64;
        (
            int_n as f64 / n,
            fp as f64 / n,
            ld as f64 / n,
            st as f64 / n,
            br as f64 / n,
        )
    }

    #[test]
    fn mix_fractions_are_respected() {
        let p = SpecBenchmark::Gcc.profile();
        let (int_f, fp, ld, st, br) = count_kinds(SpecBenchmark::Gcc, 200_000);
        assert!((int_f - p.mix.int_alu).abs() < 0.01, "int {int_f}");
        assert!((fp - p.mix.fp_alu).abs() < 0.01);
        assert!((ld - p.mix.load).abs() < 0.01);
        assert!((st - p.mix.store).abs() < 0.01);
        assert!((br - p.mix.branch).abs() < 0.01);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = SpecBenchmark::Art.stream();
        let mut b = SpecBenchmark::Art.stream();
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn seed_salt_changes_the_stream() {
        let p = SpecBenchmark::Art.profile();
        let mut a = p.stream_with(0, 0);
        let mut b = p.stream_with(0, 1);
        let differs = (0..1000).any(|_| a.next_op() != b.next_op());
        assert!(differs);
    }

    #[test]
    fn addr_base_offsets_all_data_addresses() {
        let p = SpecBenchmark::Mcf.profile();
        let base = 0x10_0000_0000u64;
        let mut s = p.stream_with(base, 0);
        let mut seen_mem = 0;
        for _ in 0..10_000 {
            match s.next_op().kind {
                OpKind::Load { addr } | OpKind::Store { addr } => {
                    assert!(addr >= base, "address {addr:#x} below base");
                    seen_mem += 1;
                }
                _ => {}
            }
        }
        assert!(seen_mem > 1000);
    }

    #[test]
    fn region_complete_after_total_instructions() {
        let mut p = SpecBenchmark::Mcf.profile();
        p.total_instructions = 100;
        let mut s = p.stream();
        assert!(!s.region_complete());
        for _ in 0..100 {
            let _ = s.next_op();
        }
        assert!(s.region_complete());
        assert_eq!(s.generated(), 100);
        // Stream keeps producing beyond the region.
        let _ = s.next_op();
    }

    #[test]
    fn phases_modulate_cold_traffic() {
        // art has strong phases: cold-region access rate must differ between
        // the two phase halves.
        let p = SpecBenchmark::Art.profile();
        let period = p.phases.period_instructions;
        let mut s = p.stream();
        let mut cold_in_phase = [0u64; 2];
        let mut mem_in_phase = [0u64; 2];
        for i in 0..period * 2 {
            let pos = i % period;
            let phase_idx = usize::from((pos as f64) < p.phases.memory_duty * period as f64);
            if let OpKind::Load { addr } | OpKind::Store { addr } = s.next_op().kind {
                mem_in_phase[phase_idx] += 1;
                if addr >= COLD_BASE {
                    cold_in_phase[phase_idx] += 1;
                }
            }
        }
        let rate_stressed = cold_in_phase[1] as f64 / mem_in_phase[1] as f64;
        let rate_calm = cold_in_phase[0] as f64 / mem_in_phase[0] as f64;
        assert!(
            rate_stressed > rate_calm * 1.5,
            "stressed {rate_stressed} vs calm {rate_calm}"
        );
    }

    #[test]
    fn pointer_chase_produces_dependent_loads() {
        let mut s = SpecBenchmark::Mcf.stream();
        let mut chased = 0;
        let mut loads = 0;
        for _ in 0..50_000 {
            let op = s.next_op();
            if let OpKind::Load { .. } = op.kind {
                loads += 1;
                if op.dep.is_some() {
                    chased += 1;
                }
            }
        }
        let frac = chased as f64 / loads as f64;
        let expected = SpecBenchmark::Mcf.profile().memory.pointer_chase;
        assert!((frac - expected).abs() < 0.05, "chase fraction {frac}");
    }

    #[test]
    fn sixtrack_has_no_chased_loads() {
        let mut s = SpecBenchmark::Sixtrack.stream();
        for _ in 0..20_000 {
            let op = s.next_op();
            if matches!(op.kind, OpKind::Load { .. }) {
                assert!(op.dep.is_none());
            }
        }
    }

    #[test]
    fn code_addresses_stay_in_region_footprint() {
        let p = SpecBenchmark::Gcc.profile();
        let mut s = p.stream();
        for _ in 0..10_000 {
            let op = s.next_op();
            assert!(op.code_addr >= CODE_BASE);
            assert!(op.code_addr < CODE_BASE + u64::from(p.code.regions) * CODE_REGION_STRIDE);
        }
    }
}
