//! Benchmark profiles: the parameter sets that make each synthetic stream
//! behave like its SPEC CPU2000 namesake.

use gpm_types::{GpmError, Result};
use serde::{Deserialize, Serialize};

use crate::WorkloadStream;

/// SPEC suite of a benchmark (Table 2 annotates each combo with INT/FP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint2000.
    Int,
    /// SPECfp2000.
    Fp,
}

/// Table 2's "aggregate effect" classification: CPU vs memory utilisation.
///
/// Ordered by CPU-boundedness: `VeryHighCpu > HighCpu > LowCpu >
/// VeryLowCpu` — the implicit priority order of the MaxBIPS policy (and
/// the reverse of pullHipushLo's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UtilizationClass {
    /// Very low CPU utilisation, very high memory utilisation (art, mcf).
    VeryLowCpu,
    /// Low CPU utilisation, high memory utilisation (ammp).
    LowCpu,
    /// High CPU utilisation, low memory utilisation (gcc, mesa, vortex).
    HighCpu,
    /// Very high CPU utilisation, very low memory utilisation (crafty,
    /// facerec, sixtrack, gap, perlbmk, wupwise).
    VeryHighCpu,
}

impl std::fmt::Display for UtilizationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UtilizationClass::VeryLowCpu => "very low CPU, very high memory",
            UtilizationClass::LowCpu => "low CPU, high memory",
            UtilizationClass::HighCpu => "high CPU, low memory",
            UtilizationClass::VeryHighCpu => "very high CPU, very low memory",
        };
        f.write_str(s)
    }
}

/// Dynamic instruction mix; the five fractions must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Fixed-point ALU fraction.
    pub int_alu: f64,
    /// Floating-point fraction.
    pub fp_alu: f64,
    /// Load fraction.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Conditional-branch fraction.
    pub branch: f64,
}

impl InstructionMix {
    /// Checks the mix sums to 1 (±1e-6) with no negative entries.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] otherwise.
    pub fn validate(&self) -> Result<()> {
        let parts = [
            self.int_alu,
            self.fp_alu,
            self.load,
            self.store,
            self.branch,
        ];
        if parts.iter().any(|&p| p < 0.0) {
            return Err(GpmError::InvalidConfig {
                parameter: "mix",
                reason: "fractions must be non-negative".into(),
            });
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GpmError::InvalidConfig {
                parameter: "mix",
                reason: format!("fractions sum to {sum}, expected 1"),
            });
        }
        Ok(())
    }
}

/// Working-set structure of the data accesses.
///
/// Accesses are split between three regions: a *hot* set sized to live in
/// L1D, a *warm* set sized to live in the 2 MB L2, and a *cold* region that
/// misses everywhere. `pointer_chase` is the fraction of loads whose address
/// depends on the previous load — serialised misses with no memory-level
/// parallelism, the signature of mcf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Probability an access targets the hot (L1-resident) set.
    pub hot: f64,
    /// Probability an access targets the warm (L2-resident) set.
    pub warm: f64,
    /// Hot-set size in bytes (should fit L1D).
    pub hot_bytes: u64,
    /// Warm-set size in bytes (should fit the 2 MB L2 for one core; four
    /// cores' warm sets overflow a shared L2 — the contention effect the
    /// full-CMP validation measures).
    pub warm_bytes: u64,
    /// Cold-region size in bytes (must comfortably exceed L2).
    pub cold_bytes: u64,
    /// Fraction of loads that pointer-chase (depend on the previous load;
    /// chased loads always jump to a random address).
    pub pointer_chase: f64,
    /// Probability a (non-chased) access jumps to a random address within
    /// its region instead of continuing the region's sequential sweep —
    /// the spatial-locality knob. Sequential accesses mostly stay within a
    /// cache line, so a region's distinct-line (miss) rate is roughly
    /// `jump + (1 − jump) · stride/line`.
    pub jump_probability: f64,
}

impl MemoryProfile {
    /// Probability an access targets the cold region.
    #[must_use]
    pub fn cold(&self) -> f64 {
        (1.0 - self.hot - self.warm).max(0.0)
    }
}

/// Branch-behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Number of distinct static branch sites the stream cycles through.
    pub sites: u32,
    /// Fraction of branches with data-dependent (unpredictable) outcomes.
    pub random_fraction: f64,
    /// Taken probability of the unpredictable branches.
    pub taken_bias: f64,
}

/// Static code-footprint parameters driving the L1I model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeProfile {
    /// Instructions in the current inner loop before wrapping.
    pub loop_body_ops: u32,
    /// Number of distinct loop sites (code regions) the program hops
    /// between.
    pub regions: u32,
    /// Instructions executed in one region before hopping to the next.
    pub region_residency_ops: u64,
}

/// Phase structure: periodic alternation between the profile's base
/// behaviour and a memory-stressed variant, keyed to the instruction index
/// so all DVFS modes see identical per-instruction behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase period in instructions (0 disables phases).
    pub period_instructions: u64,
    /// Fraction of each period spent in the memory-stressed phase.
    pub memory_duty: f64,
    /// Absolute probability mass shifted from the hot/warm sets to the cold
    /// region while the stressed phase is active (e.g. 0.12 turns a 3%
    /// cold-traffic benchmark into a 15% one during its memory phase).
    pub intensity: f64,
}

impl PhaseProfile {
    /// A flat profile with no phase behaviour.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            period_instructions: 0,
            memory_duty: 0.0,
            intensity: 0.0,
        }
    }
}

/// Everything needed to synthesise one benchmark's instruction stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (lower case, as the paper writes it).
    pub name: String,
    /// SPEC suite.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstructionMix,
    /// Working-set structure.
    pub memory: MemoryProfile,
    /// Branch behaviour.
    pub branches: BranchProfile,
    /// Code footprint.
    pub code: CodeProfile,
    /// Phase behaviour.
    pub phases: PhaseProfile,
    /// Probability a non-load op depends on the immediately preceding op
    /// (the ILP knob: higher → more serialisation).
    pub dep_probability: f64,
    /// Total dynamic instructions in the simulated region; the CMP runs
    /// terminate when the first benchmark completes.
    pub total_instructions: u64,
    /// Base RNG seed; streams derive per-instance seeds from it.
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Validates all components.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when any fraction is out of range
    /// or any size is zero.
    pub fn validate(&self) -> Result<()> {
        self.mix.validate()?;
        if self.memory.hot + self.memory.warm > 1.0 + 1e-9 {
            return Err(GpmError::InvalidConfig {
                parameter: "memory",
                reason: "hot + warm probabilities exceed 1".into(),
            });
        }
        for (name, v) in [
            ("pointer_chase", self.memory.pointer_chase),
            ("random_fraction", self.branches.random_fraction),
            ("taken_bias", self.branches.taken_bias),
            ("dep_probability", self.dep_probability),
            ("memory_duty", self.phases.memory_duty),
            ("intensity", self.phases.intensity),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(GpmError::InvalidConfig {
                    parameter: "profile",
                    reason: format!("{name} = {v} outside [0, 1]"),
                });
            }
        }
        if self.memory.hot_bytes == 0 || self.memory.warm_bytes == 0 || self.memory.cold_bytes == 0
        {
            return Err(GpmError::InvalidConfig {
                parameter: "memory",
                reason: "region sizes must be non-zero".into(),
            });
        }
        if self.total_instructions == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "total_instructions",
                reason: "must be non-zero".into(),
            });
        }
        Ok(())
    }

    /// Creates the deterministic instruction stream for this profile, with
    /// data addresses offset by `addr_base` (so co-scheduled cores do not
    /// alias in a shared L2) and the RNG seed XORed with `seed_salt`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if the profile fails validation.
    pub fn stream_with(&self, addr_base: u64, seed_salt: u64) -> Result<WorkloadStream> {
        WorkloadStream::new(self.clone(), addr_base, seed_salt)
    }

    /// Creates the canonical stream (no address offset, no seed salt).
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] if the profile fails validation.
    pub fn stream(&self) -> Result<WorkloadStream> {
        self.stream_with(0, 0)
    }
}

/// The 12 SPEC CPU2000 benchmarks analysed in the paper (Section 3.2).
///
/// Each variant owns a calibrated [`BenchmarkProfile`]. The aggregate
/// classes follow Table 2:
///
/// * very high CPU / very low memory: `crafty`, `facerec`, `sixtrack`,
///   `gap`, `perlbmk`, `wupwise`
/// * high CPU / low memory: `gcc`, `mesa`, `vortex`
/// * low CPU / high memory: `ammp`
/// * very low CPU / very high memory: `art`, `mcf`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the benchmark names themselves
pub enum SpecBenchmark {
    Ammp,
    Art,
    Crafty,
    Facerec,
    Gap,
    Gcc,
    Mcf,
    Mesa,
    Perlbmk,
    Sixtrack,
    Vortex,
    Wupwise,
}

impl SpecBenchmark {
    /// All 12 benchmarks in alphabetical order.
    pub const ALL: [SpecBenchmark; 12] = [
        SpecBenchmark::Ammp,
        SpecBenchmark::Art,
        SpecBenchmark::Crafty,
        SpecBenchmark::Facerec,
        SpecBenchmark::Gap,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Mesa,
        SpecBenchmark::Perlbmk,
        SpecBenchmark::Sixtrack,
        SpecBenchmark::Vortex,
        SpecBenchmark::Wupwise,
    ];

    /// The benchmark's lower-case name as the paper writes it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Ammp => "ammp",
            SpecBenchmark::Art => "art",
            SpecBenchmark::Crafty => "crafty",
            SpecBenchmark::Facerec => "facerec",
            SpecBenchmark::Gap => "gap",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Mesa => "mesa",
            SpecBenchmark::Perlbmk => "perlbmk",
            SpecBenchmark::Sixtrack => "sixtrack",
            SpecBenchmark::Vortex => "vortex",
            SpecBenchmark::Wupwise => "wupwise",
        }
    }

    /// Looks a benchmark up by name.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::UnknownBenchmark`] for names outside the suite.
    pub fn from_name(name: &str) -> Result<Self> {
        Self::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| GpmError::UnknownBenchmark(name.to_owned()))
    }

    /// The calibrated profile for this benchmark.
    ///
    /// Region length: each profile's `total_instructions` is sized so the
    /// benchmark's native Turbo execution lasts roughly 40–60 ms at 1 GHz —
    /// long enough to cover the paper's Figure 3/6 timelines and several
    /// phase periods.
    #[must_use]
    pub fn profile(self) -> BenchmarkProfile {
        let kib = 1024u64;
        let mib = 1024 * kib;
        match self {
            // --- very low CPU, very high memory utilisation ---
            SpecBenchmark::Mcf => BenchmarkProfile {
                name: "mcf".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.36,
                    fp_alu: 0.0,
                    load: 0.38,
                    store: 0.09,
                    branch: 0.17,
                },
                memory: MemoryProfile {
                    hot: 0.56,
                    warm: 0.32,
                    hot_bytes: 16 * kib,
                    warm_bytes: mib,
                    cold_bytes: 192 * mib,
                    pointer_chase: 0.60,
                    jump_probability: 0.30,
                },
                branches: BranchProfile {
                    sites: 24,
                    random_fraction: 0.15,
                    taken_bias: 0.6,
                },
                code: CodeProfile {
                    loop_body_ops: 120,
                    regions: 6,
                    region_residency_ops: 200_000,
                },
                phases: PhaseProfile {
                    period_instructions: 3_000_000,
                    memory_duty: 0.6,
                    intensity: 0.05,
                },
                dep_probability: 0.45,
                total_instructions: 14_000_000,
                seed: 0x6d63_6601,
            },
            SpecBenchmark::Art => BenchmarkProfile {
                name: "art".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.22,
                    fp_alu: 0.24,
                    load: 0.34,
                    store: 0.08,
                    branch: 0.12,
                },
                memory: MemoryProfile {
                    hot: 0.62,
                    warm: 0.32,
                    hot_bytes: 16 * kib,
                    warm_bytes: mib,
                    cold_bytes: 64 * mib,
                    pointer_chase: 0.45,
                    jump_probability: 0.30,
                },
                branches: BranchProfile {
                    sites: 10,
                    random_fraction: 0.06,
                    taken_bias: 0.7,
                },
                code: CodeProfile {
                    loop_body_ops: 80,
                    regions: 4,
                    region_residency_ops: 400_000,
                },
                phases: PhaseProfile {
                    period_instructions: 5_000_000,
                    memory_duty: 0.55,
                    intensity: 0.18,
                },
                dep_probability: 0.40,
                total_instructions: 25_000_000,
                seed: 0x6172_7401,
            },
            // --- low CPU, high memory utilisation ---
            SpecBenchmark::Ammp => BenchmarkProfile {
                name: "ammp".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.20,
                    fp_alu: 0.32,
                    load: 0.30,
                    store: 0.08,
                    branch: 0.10,
                },
                memory: MemoryProfile {
                    hot: 0.70,
                    warm: 0.285,
                    hot_bytes: 16 * kib,
                    warm_bytes: mib,
                    cold_bytes: 48 * mib,
                    pointer_chase: 0.30,
                    jump_probability: 0.25,
                },
                branches: BranchProfile {
                    sites: 12,
                    random_fraction: 0.05,
                    taken_bias: 0.75,
                },
                code: CodeProfile {
                    loop_body_ops: 160,
                    regions: 5,
                    region_residency_ops: 600_000,
                },
                phases: PhaseProfile {
                    period_instructions: 7_000_000,
                    memory_duty: 0.45,
                    intensity: 0.16,
                },
                dep_probability: 0.42,
                total_instructions: 45_000_000,
                seed: 0x616d_6d01,
            },
            // --- high CPU, low memory utilisation ---
            SpecBenchmark::Gcc => BenchmarkProfile {
                name: "gcc".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.42,
                    fp_alu: 0.0,
                    load: 0.28,
                    store: 0.12,
                    branch: 0.18,
                },
                memory: MemoryProfile {
                    hot: 0.85,
                    warm: 0.147,
                    hot_bytes: 24 * kib,
                    warm_bytes: mib,
                    cold_bytes: 32 * mib,
                    pointer_chase: 0.10,
                    jump_probability: 0.30,
                },
                branches: BranchProfile {
                    sites: 64,
                    random_fraction: 0.14,
                    taken_bias: 0.55,
                },
                code: CodeProfile {
                    loop_body_ops: 400,
                    regions: 24,
                    region_residency_ops: 60_000,
                },
                phases: PhaseProfile {
                    period_instructions: 4_000_000,
                    memory_duty: 0.35,
                    intensity: 0.008,
                },
                dep_probability: 0.55,
                total_instructions: 70_000_000,
                seed: 0x6763_6301,
            },
            SpecBenchmark::Mesa => BenchmarkProfile {
                name: "mesa".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.30,
                    fp_alu: 0.25,
                    load: 0.25,
                    store: 0.10,
                    branch: 0.10,
                },
                memory: MemoryProfile {
                    hot: 0.90,
                    warm: 0.098,
                    hot_bytes: 24 * kib,
                    warm_bytes: 768 * kib,
                    cold_bytes: 16 * mib,
                    pointer_chase: 0.05,
                    jump_probability: 0.20,
                },
                branches: BranchProfile {
                    sites: 20,
                    random_fraction: 0.06,
                    taken_bias: 0.7,
                },
                code: CodeProfile {
                    loop_body_ops: 240,
                    regions: 8,
                    region_residency_ops: 150_000,
                },
                phases: PhaseProfile {
                    period_instructions: 6_000_000,
                    memory_duty: 0.3,
                    intensity: 0.004,
                },
                dep_probability: 0.50,
                total_instructions: 85_000_000,
                seed: 0x6d65_7301,
            },
            SpecBenchmark::Vortex => BenchmarkProfile {
                name: "vortex".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.40,
                    fp_alu: 0.0,
                    load: 0.30,
                    store: 0.14,
                    branch: 0.16,
                },
                memory: MemoryProfile {
                    hot: 0.87,
                    warm: 0.1275,
                    hot_bytes: 24 * kib,
                    warm_bytes: mib,
                    cold_bytes: 24 * mib,
                    pointer_chase: 0.08,
                    jump_probability: 0.25,
                },
                branches: BranchProfile {
                    sites: 48,
                    random_fraction: 0.09,
                    taken_bias: 0.6,
                },
                code: CodeProfile {
                    loop_body_ops: 320,
                    regions: 16,
                    region_residency_ops: 80_000,
                },
                phases: PhaseProfile {
                    period_instructions: 5_000_000,
                    memory_duty: 0.3,
                    intensity: 0.005,
                },
                dep_probability: 0.55,
                total_instructions: 80_000_000,
                seed: 0x766f_7201,
            },
            // --- very high CPU, very low memory utilisation ---
            SpecBenchmark::Crafty => BenchmarkProfile {
                name: "crafty".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.48,
                    fp_alu: 0.0,
                    load: 0.27,
                    store: 0.08,
                    branch: 0.17,
                },
                memory: MemoryProfile {
                    hot: 0.95,
                    warm: 0.049,
                    hot_bytes: 24 * kib,
                    warm_bytes: 512 * kib,
                    cold_bytes: 8 * mib,
                    pointer_chase: 0.02,
                    jump_probability: 0.30,
                },
                branches: BranchProfile {
                    sites: 56,
                    random_fraction: 0.12,
                    taken_bias: 0.5,
                },
                code: CodeProfile {
                    loop_body_ops: 280,
                    regions: 12,
                    region_residency_ops: 100_000,
                },
                phases: PhaseProfile::none(),
                dep_probability: 0.55,
                total_instructions: 95_000_000,
                seed: 0x6372_6101,
            },
            SpecBenchmark::Facerec => BenchmarkProfile {
                name: "facerec".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.25,
                    fp_alu: 0.33,
                    load: 0.27,
                    store: 0.06,
                    branch: 0.09,
                },
                memory: MemoryProfile {
                    hot: 0.94,
                    warm: 0.0592,
                    hot_bytes: 24 * kib,
                    warm_bytes: 512 * kib,
                    cold_bytes: 8 * mib,
                    pointer_chase: 0.01,
                    jump_probability: 0.15,
                },
                branches: BranchProfile {
                    sites: 14,
                    random_fraction: 0.04,
                    taken_bias: 0.8,
                },
                code: CodeProfile {
                    loop_body_ops: 180,
                    regions: 6,
                    region_residency_ops: 250_000,
                },
                phases: PhaseProfile {
                    period_instructions: 8_000_000,
                    memory_duty: 0.25,
                    intensity: 0.002,
                },
                dep_probability: 0.50,
                total_instructions: 95_000_000,
                seed: 0x6661_6301,
            },
            SpecBenchmark::Sixtrack => BenchmarkProfile {
                name: "sixtrack".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.22,
                    fp_alu: 0.40,
                    load: 0.24,
                    store: 0.06,
                    branch: 0.08,
                },
                memory: MemoryProfile {
                    hot: 0.96,
                    warm: 0.0396,
                    hot_bytes: 24 * kib,
                    warm_bytes: 256 * kib,
                    cold_bytes: 4 * mib,
                    pointer_chase: 0.0,
                    jump_probability: 0.10,
                },
                branches: BranchProfile {
                    sites: 8,
                    random_fraction: 0.01,
                    taken_bias: 0.9,
                },
                code: CodeProfile {
                    loop_body_ops: 140,
                    regions: 3,
                    region_residency_ops: 500_000,
                },
                phases: PhaseProfile::none(),
                dep_probability: 0.50,
                total_instructions: 115_000_000,
                seed: 0x7369_7801,
            },
            SpecBenchmark::Gap => BenchmarkProfile {
                name: "gap".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.47,
                    fp_alu: 0.0,
                    load: 0.28,
                    store: 0.10,
                    branch: 0.15,
                },
                memory: MemoryProfile {
                    hot: 0.94,
                    warm: 0.0585,
                    hot_bytes: 24 * kib,
                    warm_bytes: 512 * kib,
                    cold_bytes: 8 * mib,
                    pointer_chase: 0.03,
                    jump_probability: 0.25,
                },
                branches: BranchProfile {
                    sites: 32,
                    random_fraction: 0.07,
                    taken_bias: 0.65,
                },
                code: CodeProfile {
                    loop_body_ops: 220,
                    regions: 10,
                    region_residency_ops: 120_000,
                },
                phases: PhaseProfile::none(),
                dep_probability: 0.55,
                total_instructions: 95_000_000,
                seed: 0x6761_7001,
            },
            SpecBenchmark::Perlbmk => BenchmarkProfile {
                name: "perlbmk".into(),
                suite: Suite::Int,
                mix: InstructionMix {
                    int_alu: 0.45,
                    fp_alu: 0.0,
                    load: 0.28,
                    store: 0.11,
                    branch: 0.16,
                },
                memory: MemoryProfile {
                    hot: 0.95,
                    warm: 0.049,
                    hot_bytes: 24 * kib,
                    warm_bytes: 512 * kib,
                    cold_bytes: 8 * mib,
                    pointer_chase: 0.02,
                    jump_probability: 0.25,
                },
                branches: BranchProfile {
                    sites: 40,
                    random_fraction: 0.08,
                    taken_bias: 0.6,
                },
                code: CodeProfile {
                    loop_body_ops: 260,
                    regions: 14,
                    region_residency_ops: 90_000,
                },
                phases: PhaseProfile::none(),
                dep_probability: 0.55,
                total_instructions: 95_000_000,
                seed: 0x7065_7201,
            },
            SpecBenchmark::Wupwise => BenchmarkProfile {
                name: "wupwise".into(),
                suite: Suite::Fp,
                mix: InstructionMix {
                    int_alu: 0.24,
                    fp_alu: 0.36,
                    load: 0.26,
                    store: 0.07,
                    branch: 0.07,
                },
                memory: MemoryProfile {
                    hot: 0.93,
                    warm: 0.068,
                    hot_bytes: 24 * kib,
                    warm_bytes: 512 * kib,
                    cold_bytes: 8 * mib,
                    pointer_chase: 0.0,
                    jump_probability: 0.15,
                },
                branches: BranchProfile {
                    sites: 10,
                    random_fraction: 0.03,
                    taken_bias: 0.85,
                },
                code: CodeProfile {
                    loop_body_ops: 200,
                    regions: 4,
                    region_residency_ops: 400_000,
                },
                phases: PhaseProfile {
                    period_instructions: 10_000_000,
                    memory_duty: 0.2,
                    intensity: 0.004,
                },
                dep_probability: 0.50,
                total_instructions: 100_000_000,
                seed: 0x7775_7001,
            },
        }
    }

    /// Shortcut: builds the canonical stream of this benchmark's profile.
    /// Infallible: the built-in profiles are valid by construction.
    #[must_use]
    pub fn stream(self) -> WorkloadStream {
        self.profile()
            .stream()
            .expect("built-in profiles are valid")
    }

    /// Table 2's utilisation class for this benchmark.
    #[must_use]
    pub fn utilization_class(self) -> UtilizationClass {
        use SpecBenchmark::*;
        match self {
            Art | Mcf => UtilizationClass::VeryLowCpu,
            Ammp => UtilizationClass::LowCpu,
            Gcc | Mesa | Vortex => UtilizationClass::HighCpu,
            Crafty | Facerec | Sixtrack | Gap | Perlbmk | Wupwise => UtilizationClass::VeryHighCpu,
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in SpecBenchmark::ALL {
            b.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in SpecBenchmark::ALL {
            assert_eq!(SpecBenchmark::from_name(b.name()).unwrap(), b);
        }
        assert!(matches!(
            SpecBenchmark::from_name("quake"),
            Err(GpmError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn suites_match_table2() {
        use SpecBenchmark::*;
        for (b, suite) in [
            (Ammp, Suite::Fp),
            (Art, Suite::Fp),
            (Gcc, Suite::Int),
            (Mesa, Suite::Fp),
            (Crafty, Suite::Int),
            (Facerec, Suite::Fp),
            (Mcf, Suite::Int),
            (Sixtrack, Suite::Fp),
            (Gap, Suite::Int),
            (Perlbmk, Suite::Int),
            (Wupwise, Suite::Fp),
            (Vortex, Suite::Int),
        ] {
            assert_eq!(b.profile().suite, suite, "{b}");
        }
    }

    #[test]
    fn memory_cold_complement() {
        let m = SpecBenchmark::Mcf.profile().memory;
        assert!((m.cold() - (1.0 - m.hot - m.warm)).abs() < 1e-12);
        assert!(m.cold() > 0.08, "mcf misses a lot");
        let s = SpecBenchmark::Sixtrack.profile().memory;
        assert!(s.cold() < 0.01, "sixtrack almost never misses");
    }

    #[test]
    fn mix_validation_rejects_bad_sum() {
        let mut p = SpecBenchmark::Gcc.profile();
        p.mix.int_alu += 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut p = SpecBenchmark::Gcc.profile();
        p.dep_probability = 1.5;
        assert!(p.validate().is_err());
        let mut p = SpecBenchmark::Gcc.profile();
        p.memory.hot = 0.9;
        p.memory.warm = 0.3;
        assert!(p.validate().is_err());
        let mut p = SpecBenchmark::Gcc.profile();
        p.total_instructions = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn utilization_classes_match_table2() {
        use SpecBenchmark::*;
        assert_eq!(Mcf.utilization_class(), UtilizationClass::VeryLowCpu);
        assert_eq!(Art.utilization_class(), UtilizationClass::VeryLowCpu);
        assert_eq!(Ammp.utilization_class(), UtilizationClass::LowCpu);
        assert_eq!(Gcc.utilization_class(), UtilizationClass::HighCpu);
        assert_eq!(Sixtrack.utilization_class(), UtilizationClass::VeryHighCpu);
        // Ordered by CPU-boundedness.
        assert!(Sixtrack.utilization_class() > Mcf.utilization_class());
        assert!(Gcc.utilization_class() > Ammp.utilization_class());
        assert!(UtilizationClass::VeryHighCpu
            .to_string()
            .contains("very high CPU"));
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = SpecBenchmark::ALL
            .iter()
            .map(|b| b.profile().seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn memory_bound_benchmarks_are_shorter() {
        // Low-IPC benchmarks get fewer instructions so that wall-clock
        // region lengths stay comparable (the CMP run ends when the first
        // benchmark finishes).
        let mcf = SpecBenchmark::Mcf.profile().total_instructions;
        let six = SpecBenchmark::Sixtrack.profile().total_instructions;
        assert!(mcf * 4 < six);
    }
}
