//! Activity-based core power modelling with DVFS scaling — the workspace's
//! stand-in for IBM's PowerTimer methodology.
//!
//! Two pieces live here:
//!
//! * [`PowerModel`] converts the per-cycle activity factors reported by the
//!   `gpm-microarch` timing model into watts, as a sum of per-unit dynamic
//!   power terms (`P = C·α·V²·f`), a clock-gating-aware clock-grid term and
//!   leakage.
//! * [`DvfsParams`] defines the three operating modes of Section 4 of the
//!   paper — Turbo (1.300 V, f), Eff1 (0.95 V·f), Eff2 (0.85 V·f) — and the
//!   voltage-slew transition model of Table 5 (10 mV/µs, hence 6.5 µs,
//!   13 µs and 19.5 µs transitions).
//!
//! Under the paper's linear-DVFS scenario total power scales cubically with
//! the mode's scale factor `s = V/V₀ = f/f₀`. The model preserves that
//! property by construction (leakage is given an effective cubic voltage
//! sensitivity; see [`PowerParams::leakage`]), so the global manager's
//! Power-matrix predictions achieve the sub-percent accuracy the paper
//! reports in Section 5.5.
//!
//! # Examples
//!
//! ```
//! use gpm_microarch::ActivityFactors;
//! use gpm_power::{DvfsParams, PowerModel};
//! use gpm_types::PowerMode;
//!
//! let model = PowerModel::power4_calibrated();
//! let busy = ActivityFactors {
//!     dispatch: 2.0,
//!     int_issue: 0.9,
//!     fp_issue: 0.3,
//!     mem_issue: 0.6,
//!     l2: 0.01,
//!     busy: 0.95,
//! };
//! let turbo = model.power(&busy, PowerMode::Turbo);
//! let eff2 = model.power(&busy, PowerMode::Eff2);
//! assert!((eff2 / turbo - 0.614).abs() < 0.001, "cubic scaling");
//!
//! let dvfs = DvfsParams::paper();
//! assert!((dvfs.transition_time(PowerMode::Turbo, PowerMode::Eff2).value() - 19.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dvfs;
mod model;
mod thermal;

pub use dvfs::{DvfsParams, ModeEstimate, TransitionTable};
pub use model::{PowerModel, PowerParams};
pub use thermal::{ThermalModel, ThermalParams};
