//! The per-core activity-to-watts power model.

use gpm_microarch::ActivityFactors;
use gpm_types::{PowerMode, Watts};
use serde::{Deserialize, Serialize};

/// Unit weights of the power model, expressed in watts *at the Turbo
/// operating point* per unit of per-cycle activity.
///
/// Dynamic terms scale cubically with the DVFS scale factor `s` (`V²f`
/// under linear scaling). The leakage term is also given an effective cubic
/// voltage sensitivity: over the paper's small voltage range (1.105–1.300 V)
/// the exponential DIBL-driven leakage dependence is well approximated by a
/// steep polynomial, and the paper's measured total-power behaviour
/// ("power dissipations follow closely with our cubic estimates",
/// Section 4) tells us the real platform behaved cubically end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Clock distribution + always-on front-end power at Turbo (watts).
    /// Partially clock-gated: see `clock_gating_floor`.
    pub clock_grid: f64,
    /// Fraction of `clock_grid` burned even when the core dispatches
    /// nothing (imperfect clock gating).
    pub clock_gating_floor: f64,
    /// Leakage power at Turbo voltage (watts).
    pub leakage: f64,
    /// Watts per dispatched instruction per cycle (front end, rename, ROB).
    pub dispatch: f64,
    /// Watts per fixed-point issue per cycle.
    pub int_issue: f64,
    /// Watts per floating-point issue per cycle (wider datapath).
    pub fp_issue: f64,
    /// Watts per memory issue per cycle (LSU + L1D).
    pub mem_issue: f64,
    /// Watts per L2 access per cycle.
    pub l2_access: f64,
}

impl PowerParams {
    /// Calibrated weights for the POWER4-class core of Table 1.
    ///
    /// The calibration targets (validated by the `gpm-trace` capture tests):
    ///
    /// * a CPU-bound SPEC-like benchmark sustains ≈ 18–20 W at Turbo,
    /// * a memory-bound one ≈ 11–14 W,
    /// * the synthetic design peak (all units saturated) is ≈ 32 W.
    ///
    /// The *chip* power envelope of an experiment is not this nameplate but
    /// the peak all-Turbo chip power of the workload combination, exactly as
    /// the paper normalises its budgets.
    #[must_use]
    pub fn power4_calibrated() -> Self {
        Self {
            clock_grid: 8.0,
            clock_gating_floor: 0.70,
            leakage: 4.0,
            dispatch: 1.2,
            int_issue: 1.5,
            fp_issue: 2.5,
            mem_issue: 2.5,
            l2_access: 6.0,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::power4_calibrated()
    }
}

/// Converts activity factors into core power at a given DVFS operating
/// point.
///
/// # Examples
///
/// ```
/// use gpm_microarch::ActivityFactors;
/// use gpm_power::PowerModel;
/// use gpm_types::PowerMode;
///
/// let model = PowerModel::power4_calibrated();
/// let idle = model.power(&ActivityFactors::default(), PowerMode::Turbo);
/// // Idle floor: leakage + gated clock grid.
/// assert!(idle.value() > 8.0 && idle.value() < 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// Builds a model from explicit weights.
    #[must_use]
    pub fn new(params: PowerParams) -> Self {
        Self { params }
    }

    /// The calibrated POWER4-class model (see
    /// [`PowerParams::power4_calibrated`]).
    #[must_use]
    pub fn power4_calibrated() -> Self {
        Self::new(PowerParams::power4_calibrated())
    }

    /// The model's weights.
    #[must_use]
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Core power for the observed `activity` in `mode`.
    ///
    /// Equivalent to [`power_scaled`](Self::power_scaled) with the mode's
    /// cubic scale factor.
    #[must_use]
    pub fn power(&self, activity: &ActivityFactors, mode: PowerMode) -> Watts {
        self.power_scaled(activity, mode.power_scale())
    }

    /// Core power with an explicit cubic DVFS scale (1.0 = Turbo).
    ///
    /// All terms — including leakage, see [`PowerParams`] — scale by
    /// `cubic_scale`, so a mode's power is exactly `s³` times its Turbo
    /// power *for the same activity*. (Activity itself shifts slightly
    /// across modes because memory latencies change in core cycles; that
    /// drift is the 0.1–0.3% prediction error of Section 5.5.)
    #[must_use]
    pub fn power_scaled(&self, activity: &ActivityFactors, cubic_scale: f64) -> Watts {
        let p = &self.params;
        let clock = p.clock_grid
            * (p.clock_gating_floor + (1.0 - p.clock_gating_floor) * activity.busy.min(1.0));
        let units = p.dispatch * activity.dispatch
            + p.int_issue * activity.int_issue
            + p.fp_issue * activity.fp_issue
            + p.mem_issue * activity.mem_issue
            + p.l2_access * activity.l2;
        Watts::new((clock + p.leakage + units) * cubic_scale)
    }

    /// The synthetic design peak: every unit saturated, at Turbo.
    ///
    /// Dispatch at full width (5), both FXUs, both FPUs, both LSUs busy
    /// every cycle, plus a saturated L2 port. No real workload reaches this
    /// point; it is the nameplate against which per-core power fractions can
    /// be quoted.
    #[must_use]
    pub fn design_peak(&self) -> Watts {
        self.power(
            &ActivityFactors {
                dispatch: 5.0,
                int_issue: 2.0,
                fp_issue: 2.0,
                mem_issue: 2.0,
                l2: 0.1,
                busy: 1.0,
            },
            PowerMode::Turbo,
        )
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::power4_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_bound() -> ActivityFactors {
        ActivityFactors {
            dispatch: 2.0,
            int_issue: 0.9,
            fp_issue: 0.3,
            mem_issue: 0.6,
            l2: 0.01,
            busy: 0.95,
        }
    }

    fn mem_bound() -> ActivityFactors {
        ActivityFactors {
            dispatch: 0.3,
            int_issue: 0.15,
            fp_issue: 0.0,
            mem_issue: 0.12,
            l2: 0.05,
            busy: 0.30,
        }
    }

    #[test]
    fn calibration_targets() {
        let m = PowerModel::power4_calibrated();
        let cpu = m.power(&cpu_bound(), PowerMode::Turbo).value();
        let mem = m.power(&mem_bound(), PowerMode::Turbo).value();
        assert!((16.0..=22.0).contains(&cpu), "cpu-bound Turbo power {cpu}");
        assert!((10.0..=15.0).contains(&mem), "mem-bound Turbo power {mem}");
        let peak = m.design_peak().value();
        assert!((25.0..=35.0).contains(&peak), "design peak {peak}");
        assert!(cpu < peak && mem < peak);
    }

    #[test]
    fn cubic_scaling_is_exact_for_fixed_activity() {
        let m = PowerModel::power4_calibrated();
        for mode in PowerMode::ALL {
            let p = m.power(&cpu_bound(), mode);
            let expected = m.power(&cpu_bound(), PowerMode::Turbo) * mode.power_scale();
            assert!((p.value() - expected.value()).abs() < 1e-9, "{mode}");
        }
    }

    #[test]
    fn idle_floor_is_clock_plus_leakage() {
        let m = PowerModel::power4_calibrated();
        let idle = m
            .power(&ActivityFactors::default(), PowerMode::Turbo)
            .value();
        let expected = 8.0 * 0.70 + 4.0;
        assert!((idle - expected).abs() < 1e-9);
    }

    #[test]
    fn busy_is_clamped() {
        let m = PowerModel::power4_calibrated();
        let mut a = cpu_bound();
        a.busy = 1.5; // merged intervals can momentarily exceed 1
        let p = m.power(&a, PowerMode::Turbo);
        a.busy = 1.0;
        assert_eq!(p, m.power(&a, PowerMode::Turbo));
    }

    #[test]
    fn monotone_in_activity() {
        let m = PowerModel::power4_calibrated();
        let lo = m.power(&mem_bound(), PowerMode::Turbo);
        let hi = m.power(&cpu_bound(), PowerMode::Turbo);
        assert!(hi > lo);
    }

    #[test]
    fn power_scaled_general() {
        let m = PowerModel::power4_calibrated();
        let p1 = m.power_scaled(&cpu_bound(), 1.0);
        let p2 = m.power_scaled(&cpu_bound(), 0.5);
        assert!((p2.value() / p1.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(
            PowerModel::default().params(),
            &PowerParams::power4_calibrated()
        );
    }

    #[test]
    fn eff_modes_save_power_in_table3_band() {
        // Table 3 targets: Eff1 ≈ 15%, Eff2 ≈ 45% savings; cubic scaling
        // delivers 14.3% / 38.6% — the "measured" Figure 2 values.
        let m = PowerModel::power4_calibrated();
        let base = m.power(&cpu_bound(), PowerMode::Turbo);
        let s1 = 1.0 - m.power(&cpu_bound(), PowerMode::Eff1) / base;
        let s2 = 1.0 - m.power(&cpu_bound(), PowerMode::Eff2) / base;
        assert!((s1 - 0.142_625).abs() < 1e-6, "{s1}");
        assert!((s2 - 0.385_875).abs() < 1e-6, "{s2}");
    }
}
